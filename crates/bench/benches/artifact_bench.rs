//! Cold-start artifact load microbench (decode-vs-map) and its JSON
//! artifact.
//!
//! Measures what a fresh process pays to get a traced-against case off
//! disk, per bench scene:
//!
//! * **v1 decode** — the legacy element-wise codec (`decode_v1` in
//!   `rip_scene::serial` / `rip_bvh::serial`): read the whole file,
//!   parse every element, then run the full float-heavy
//!   `Bvh::validate`. This is the pre-RIPA cold-start cost and the
//!   baseline the ≥3x acceptance bar is measured against.
//! * **v2 mapped load** — [`MappedArtifact::open`] (owned read or
//!   `mmap(2)` under `--features mmap`) followed by `decode_shared`,
//!   which validates the container checksums plus integer structure
//!   and *borrows* every bulk buffer from the mapped bytes instead of
//!   re-materializing vectors.
//!
//! Results land in machine-readable JSON at the repository root:
//!
//! * `--mode full` (default) — 15 samples per cell, rewrites the
//!   committed `BENCH_artifact.json`.
//! * `--mode smoke` — 3 samples, written to
//!   `BENCH_artifact.smoke.json` so CI never dirties the committed
//!   baseline (the `artifact-smoke` job asserts sanity and the
//!   largest-scene speedup floor).
//!
//! Run it with:
//!
//! ```text
//! cargo bench -p rip-bench --bench artifact_bench                 # full
//! cargo bench -p rip-bench --bench artifact_bench -- --mode smoke
//! cargo bench -p rip-bench --features mmap --bench artifact_bench
//! ```

use std::path::{Path, PathBuf};
use std::time::Instant;

use rip_bvh::Bvh;
use rip_exec::MappedArtifact;
use rip_math::Triangle;
use rip_scene::{Scene, SceneId, SceneScale};

/// Timed samples per cell (median reported).
const SAMPLES_FULL: usize = 15;
const SAMPLES_SMOKE: usize = 3;
/// Scale: Quick (~1/16 paper budget) keeps per-load work well above
/// timer noise while the bench stays runnable in CI smoke mode.
const SCALE: SceneScale = SceneScale::Quick;
const VIEWPORT: u32 = 32;

/// One prepared scene: v1 and v2 artifact files on disk.
struct Prepared {
    scene_v1: PathBuf,
    scene_v2: PathBuf,
    bvh_v1: PathBuf,
    bvh_v2: PathBuf,
    /// Total v2 bytes (scene + bvh), for bytes/s.
    v2_bytes: u64,
    /// Total v1 bytes (scene + bvh).
    v1_bytes: u64,
}

fn backend_name() -> &'static str {
    if cfg!(feature = "mmap") {
        "mmap"
    } else {
        "owned"
    }
}

fn prepare(dir: &Path, id: SceneId, code: &'static str) -> Prepared {
    let scene = id.build_with_viewport(SCALE, VIEWPORT, VIEWPORT);
    let tris: Vec<Triangle> = scene.mesh.triangles().collect();
    let bvh = Bvh::build(&tris);

    let write = |name: &str, bytes: &[u8]| -> PathBuf {
        let path = dir.join(name);
        std::fs::write(&path, bytes).expect("write bench artifact");
        path
    };
    let scene_v1_bytes = rip_scene::serial::encode_v1(&scene);
    let scene_v2_bytes = rip_scene::serial::encode(&scene);
    let bvh_v1_bytes = rip_bvh::serial::encode_v1(&bvh);
    let bvh_v2_bytes = rip_bvh::serial::encode(&bvh);
    Prepared {
        v1_bytes: (scene_v1_bytes.len() + bvh_v1_bytes.len()) as u64,
        v2_bytes: (scene_v2_bytes.len() + bvh_v2_bytes.len()) as u64,
        scene_v1: write(&format!("{code}.scene.v1"), &scene_v1_bytes),
        scene_v2: write(&format!("{code}.scene.v2"), &scene_v2_bytes),
        bvh_v1: write(&format!("{code}.bvh.v1"), &bvh_v1_bytes),
        bvh_v2: write(&format!("{code}.bvh.v2"), &bvh_v2_bytes),
    }
}

/// The legacy cold start: read both files, decode element-wise (the v1
/// BVH decoder runs the full float validation, as the old cache did).
fn load_v1(p: &Prepared) -> (Scene, Bvh) {
    let scene_bytes = std::fs::read(&p.scene_v1).expect("read v1 scene");
    let bvh_bytes = std::fs::read(&p.bvh_v1).expect("read v1 bvh");
    let scene = rip_scene::serial::decode_v1(&scene_bytes).expect("decode v1 scene");
    let bvh = rip_bvh::serial::decode_v1(&bvh_bytes).expect("decode v1 bvh");
    (scene, bvh)
}

/// The RIPA v2 cold start: map both files, decode in place over the
/// mapped bytes (checksums + integer structural validation only).
fn load_v2(p: &Prepared) -> (Scene, Bvh) {
    let scene_map = MappedArtifact::open(&p.scene_v2).expect("map v2 scene");
    let bvh_map = MappedArtifact::open(&p.bvh_v2).expect("map v2 bvh");
    let scene = rip_scene::serial::decode_shared(scene_map.bytes()).expect("decode v2 scene");
    let bvh = rip_bvh::serial::decode_shared(bvh_map.bytes()).expect("decode v2 bvh");
    (scene, bvh)
}

/// Median wall-clock seconds for one cold load.
fn median_secs(samples: usize, mut load: impl FnMut() -> usize) -> f64 {
    assert!(load() > 0, "benchmark load produced an empty case");
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(load());
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--quick")
        || args.windows(2).any(|w| w[0] == "--mode" && w[1] == "smoke");
    let samples = if smoke { SAMPLES_SMOKE } else { SAMPLES_FULL };

    let dir = std::env::temp_dir().join(format!("rip-artifact-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench dir");

    // Table-1 order, smallest to largest triangle budget; the last entry
    // is the largest bench scene and anchors the ≥3x acceptance bar.
    let scene_list: &[(SceneId, &'static str)] = &[
        (SceneId::Sibenik, "SB"),
        (SceneId::CrytekSponza, "SP"),
        (SceneId::LostEmpire, "LE"),
    ];

    let mut scene_rows = Vec::new();
    let mut speedups = Vec::new();
    for &(id, code) in scene_list {
        let p = prepare(&dir, id, code);

        // Equivalence first: both paths must produce the same geometry
        // before either is worth timing.
        let (s1, b1) = load_v1(&p);
        let (s2, b2) = load_v2(&p);
        assert_eq!(
            rip_scene::serial::encode(&s1),
            rip_scene::serial::encode(&s2),
            "{code}: v1 and v2 scenes diverged"
        );
        assert_eq!(
            rip_bvh::serial::encode(&b1),
            rip_bvh::serial::encode(&b2),
            "{code}: v1 and v2 BVHs diverged"
        );

        let t_v1 = median_secs(samples, || load_v1(&p).1.node_count());
        let t_v2 = median_secs(samples, || load_v2(&p).1.node_count());
        let speedup = t_v1 / t_v2.max(1e-12);
        let bps = |bytes: u64, t: f64| bytes as f64 / t.max(1e-12);
        println!(
            "{code}: v1 decode {:.3} ms ({:.1} MB/s) vs v2 {} load {:.3} ms ({:.1} MB/s) — {:.2}x",
            t_v1 * 1e3,
            bps(p.v1_bytes, t_v1) / 1e6,
            backend_name(),
            t_v2 * 1e3,
            bps(p.v2_bytes, t_v2) / 1e6,
            speedup
        );
        scene_rows.push(format!(
            "    {{\"scene\": \"{code}\", \
             \"v1_bytes\": {}, \"v2_bytes\": {}, \
             \"decode_v1_ms\": {:.4}, \"mapped_load_ms\": {:.4}, \
             \"decode_v1_bytes_per_sec\": {:.0}, \"mapped_bytes_per_sec\": {:.0}, \
             \"mapped_over_v1_speedup\": {:.4}}}",
            p.v1_bytes,
            p.v2_bytes,
            t_v1 * 1e3,
            t_v2 * 1e3,
            bps(p.v1_bytes, t_v1),
            bps(p.v2_bytes, t_v2),
            speedup
        ));
        speedups.push((code, speedup));
    }
    let _ = std::fs::remove_dir_all(&dir);

    let &(largest_code, largest_speedup) = speedups.last().expect("at least one scene");
    let json = format!(
        "{{\n  \"bench\": \"artifact_bench\",\n  \"mode\": \"{}\",\n  \"backend\": \"{}\",\n  \
         \"scale\": \"quick\",\n  \"scenes\": [\n{}\n  ],\n  \
         \"largest_scene\": \"{largest_code}\",\n  \
         \"largest_scene_mapped_speedup\": {largest_speedup:.4}\n}}\n",
        if smoke { "smoke" } else { "full" },
        backend_name(),
        scene_rows.join(",\n"),
    );
    let file = if smoke {
        "BENCH_artifact.smoke.json"
    } else {
        "BENCH_artifact.json"
    };
    let path = format!("{}/../../{file}", env!("CARGO_MANIFEST_DIR"));
    std::fs::write(&path, &json).expect("write bench artifact");
    println!("wrote {path}");
}
