//! Traversal-kernel throughput microbench and perf-gate artifact
//! (rays/sec per kernel × scene).
//!
//! Compares the per-ray steppable baseline (`Bvh::intersect`) against the
//! batched ray-stream entry points of every [`TraversalKernel`] on the
//! suite's AO workloads, then writes machine-readable results:
//!
//! * `--mode full` (default) — 15 timed samples per cell, rewrites the
//!   committed baseline `BENCH_traversal.json` at the repository root.
//! * `--mode smoke` — identical scenes and workloads but 3 samples,
//!   written to `BENCH_traversal.smoke.json` so a CI run never dirties
//!   the committed baseline. The `perf-gate` CI job diffs the smoke
//!   numbers against the baseline after normalizing each kernel column
//!   to the in-run `while_while_scalar` throughput, which cancels
//!   machine-speed differences between the baseline host and the runner.
//!
//! Run it with:
//!
//! ```text
//! cargo bench -p rip-bench --features simd --bench bench_traversal                 # full
//! cargo bench -p rip-bench --features simd --bench bench_traversal -- --mode smoke
//! ```
//!
//! The committed baseline is generated with `--features simd`; the JSON
//! records the compiled lane backend so the gate can refuse to compare
//! mismatched configurations.

use std::time::Instant;

use criterion::{BenchmarkId, Criterion, Throughput};
use rip_bvh::{
    simd, Bvh, RayBatch, StacklessKernel, TraversalKernel, TraversalKind, WhileWhileKernel,
    WideBvh, WideKernel,
};
use rip_math::Triangle;
use rip_render::{AoConfig, AoWorkload};
use rip_scene::{SceneId, SceneScale};

/// One prepared scene: geometry, both acceleration structures, AO rays.
struct Prepared {
    code: &'static str,
    bvh: Bvh,
    wide: WideBvh,
    batch: RayBatch,
}

/// Timed samples per kernel (median reported).
const SAMPLES_FULL: usize = 15;
const SAMPLES_SMOKE: usize = 3;
/// The workload is identical in both modes so normalized columns are
/// comparable between a smoke run and the committed full baseline.
const VIEWPORT: u32 = 48;
const MAX_RAYS: usize = 4096;

fn prepare(id: SceneId, code: &'static str) -> Prepared {
    let scene = id.build_with_viewport(SceneScale::Tiny, VIEWPORT, VIEWPORT);
    let tris: Vec<Triangle> = scene.mesh.triangles().collect();
    let bvh = Bvh::build(&tris);
    let wide = WideBvh::from_binary(&bvh);
    let rays = AoWorkload::generate(&scene, &bvh, &AoConfig::default()).rays;
    let batch = RayBatch::from_rays(&rays[..rays.len().min(MAX_RAYS)]);
    Prepared {
        code,
        bvh,
        wide,
        batch,
    }
}

/// Median wall-clock seconds for one full-batch trace.
fn median_secs(samples: usize, mut trace: impl FnMut() -> usize) -> f64 {
    // One warm-up pass populates caches and checks the workload is sane.
    assert!(trace() > 0, "benchmark batch traced zero rays");
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(trace());
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--quick")
        || args.windows(2).any(|w| w[0] == "--mode" && w[1] == "smoke");
    let samples = if smoke { SAMPLES_SMOKE } else { SAMPLES_FULL };
    // Table-1 order, smallest to largest triangle budget; the last entry
    // is the suite's largest scene and anchors the headline speedup.
    let scene_list: &[(SceneId, &'static str)] = &[
        (SceneId::Sibenik, "SB"),
        (SceneId::CrytekSponza, "SP"),
        (SceneId::LostEmpire, "LE"),
    ];
    let prepared: Vec<Prepared> = scene_list
        .iter()
        .map(|&(id, code)| prepare(id, code))
        .collect();

    // Criterion console output: any-hit throughput per kernel × scene.
    let mut criterion = Criterion::default().configure_from_args();
    let mut scene_rows = Vec::new();
    let mut speedups = Vec::new();
    for p in &prepared {
        let n = p.batch.len();
        let mut group = criterion.benchmark_group("bench_traversal");
        group.throughput(Throughput::Elements(n as u64));
        group.sample_size(samples.max(5));

        let scalar = |batch: &RayBatch| {
            let mut hits = 0usize;
            for i in 0..batch.len() {
                let ray = batch.ray(i);
                if p.bvh.intersect(&ray, TraversalKind::AnyHit).hit.is_some() {
                    hits += 1;
                }
            }
            hits
        };
        let batched = |kernel: &mut dyn TraversalKernel, batch: &RayBatch| {
            kernel
                .any_hit_batch(batch)
                .iter()
                .filter(|r| r.hit.is_some())
                .count()
        };

        group.bench_with_input(
            BenchmarkId::new("while_while_scalar", p.code),
            &p.batch,
            |b, batch| b.iter(|| scalar(batch)),
        );
        group.bench_with_input(
            BenchmarkId::new("while_while_batched", p.code),
            &p.batch,
            |b, batch| b.iter(|| batched(&mut WhileWhileKernel::new(&p.bvh), batch)),
        );
        group.bench_with_input(
            BenchmarkId::new("stackless_batched", p.code),
            &p.batch,
            |b, batch| b.iter(|| batched(&mut StacklessKernel::new(&p.bvh), batch)),
        );
        group.bench_with_input(
            BenchmarkId::new("wide4_batched", p.code),
            &p.batch,
            |b, batch| b.iter(|| batched(&mut WideKernel::new(&p.wide, &p.bvh), batch)),
        );
        group.finish();

        // Explicit median timing for the JSON artifact.
        let t_scalar = median_secs(samples, || scalar(&p.batch));
        let t_ww = median_secs(samples, || {
            batched(&mut WhileWhileKernel::new(&p.bvh), &p.batch)
        });
        let t_sl = median_secs(samples, || {
            batched(&mut StacklessKernel::new(&p.bvh), &p.batch)
        });
        let t_wide = median_secs(samples, || {
            batched(&mut WideKernel::new(&p.wide, &p.bvh), &p.batch)
        });
        let rps = |t: f64| n as f64 / t.max(1e-12);
        let speedup = t_scalar / t_ww.max(1e-12);
        println!(
            "{}: batched while-while {:.2}x over per-ray baseline ({:.2} vs {:.2} Mrays/s); \
             wide4 {:.2} Mrays/s ({:.2}x over batched while-while)",
            p.code,
            speedup,
            rps(t_ww) / 1e6,
            rps(t_scalar) / 1e6,
            rps(t_wide) / 1e6,
            t_ww / t_wide.max(1e-12),
        );
        scene_rows.push(format!(
            "    {{\"scene\": \"{}\", \"triangles\": {}, \"rays\": {}, \
             \"rays_per_sec\": {{\
             \"while_while_scalar\": {:.0}, \
             \"while_while_batched\": {:.0}, \
             \"stackless_batched\": {:.0}, \
             \"wide4_batched\": {:.0}}}, \
             \"batched_over_scalar_speedup\": {:.4}}}",
            p.code,
            p.bvh.triangle_count(),
            n,
            rps(t_scalar),
            rps(t_ww),
            rps(t_sl),
            rps(t_wide),
            speedup
        ));
        speedups.push(speedup);
    }
    criterion.final_summary();

    // The last prepared scene is the largest in the suite.
    let largest = prepared.last().expect("at least one scene");
    let largest_speedup = *speedups.last().expect("one speedup per scene");
    let json = format!(
        "{{\n  \"bench\": \"bench_traversal\",\n  \"mode\": \"{}\",\n  \"backend\": \"{}\",\n  \
         \"scenes\": [\n{}\n  ],\n  \
         \"largest_scene\": \"{}\",\n  \"largest_scene_batched_speedup\": {:.4}\n}}\n",
        if smoke { "smoke" } else { "full" },
        simd::backend_name(),
        scene_rows.join(",\n"),
        largest.code,
        largest_speedup
    );
    let file = if smoke {
        "BENCH_traversal.smoke.json"
    } else {
        "BENCH_traversal.json"
    };
    let path = format!("{}/../../{file}", env!("CARGO_MANIFEST_DIR"));
    std::fs::write(&path, &json).expect("write bench artifact");
    println!("wrote {path}");
}
