//! Criterion micro-benchmark: BVH construction throughput for both split
//! methods over the procedural scene suite.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rip_bvh::{BvhBuilder, SplitMethod};
use rip_math::Triangle;
use rip_scene::{SceneId, SceneScale};

fn bvh_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("bvh_build");
    for id in [SceneId::Sibenik, SceneId::CrytekSponza] {
        let mesh = id.build_mesh(SceneScale::Tiny);
        let tris: Vec<Triangle> = mesh.triangles().collect();
        group.throughput(criterion::Throughput::Elements(tris.len() as u64));
        for (label, method) in [
            ("binned_sah", SplitMethod::BinnedSah),
            ("median", SplitMethod::Median),
        ] {
            group.bench_with_input(BenchmarkId::new(label, id.code()), &tris, |b, tris| {
                b.iter(|| {
                    BvhBuilder::new()
                        .split_method(method)
                        .build(std::hint::black_box(tris))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bvh_build);
criterion_main!(benches);
