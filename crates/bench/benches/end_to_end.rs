//! Criterion macro-benchmark: a full AO workload through the functional
//! simulator and the cycle-level timing simulator, baseline vs predictor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rip_bvh::Bvh;
use rip_core::{FunctionalSim, PredictorConfig, SimOptions};
use rip_gpusim::{GpuConfig, Simulator};
use rip_math::Triangle;
use rip_render::{AoConfig, AoWorkload};
use rip_scene::{SceneId, SceneScale};

fn end_to_end(c: &mut Criterion) {
    let scene = SceneId::FireplaceRoom.build_with_viewport(SceneScale::Tiny, 40, 40);
    let tris: Vec<Triangle> = scene.mesh.triangles().collect();
    let bvh = Bvh::build(&tris);
    let rays = AoWorkload::generate(&scene, &bvh, &AoConfig::default()).rays;

    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Elements(rays.len() as u64));

    group.bench_with_input(
        BenchmarkId::new("functional", "predictor"),
        &rays,
        |b, rays| {
            let sim = FunctionalSim::new(
                PredictorConfig::paper_default(),
                SimOptions {
                    classify_accesses: false,
                    ..SimOptions::default()
                },
            );
            b.iter(|| sim.run(&bvh, std::hint::black_box(rays)).memory_savings())
        },
    );
    group.bench_with_input(BenchmarkId::new("timing", "baseline"), &rays, |b, rays| {
        b.iter(|| {
            Simulator::new(GpuConfig::baseline())
                .run(&bvh, std::hint::black_box(rays))
                .cycles
        })
    });
    group.bench_with_input(BenchmarkId::new("timing", "predictor"), &rays, |b, rays| {
        b.iter(|| {
            Simulator::new(GpuConfig::with_predictor())
                .run(&bvh, std::hint::black_box(rays))
                .cycles
        })
    });
    group.finish();
}

criterion_group!(benches, end_to_end);
criterion_main!(benches);
