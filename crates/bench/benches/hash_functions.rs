//! Criterion micro-benchmark: ray hashing throughput for both hash
//! functions — the operation sits on the RT unit's ray-entry path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rip_core::{HashFunction, RayHasher};
use rip_math::{Aabb, Ray, Vec3};

fn hash_functions(c: &mut Criterion) {
    let bounds = Aabb::new(Vec3::ZERO, Vec3::splat(64.0));
    let rays: Vec<Ray> = (0..1024)
        .map(|i| {
            let f = i as f32;
            let o = Vec3::new((f * 0.37) % 64.0, (f * 0.13) % 64.0, (f * 0.71) % 64.0);
            let d = rip_math::sampling::uniform_sphere((f * 0.017) % 1.0, (f * 0.031) % 1.0);
            Ray::segment(o, d, 10.0)
        })
        .collect();
    let mut group = c.benchmark_group("hash_functions");
    group.throughput(criterion::Throughput::Elements(rays.len() as u64));
    let functions = [
        (
            "grid_spherical",
            HashFunction::GridSpherical {
                origin_bits: 5,
                direction_bits: 3,
            },
        ),
        (
            "two_point",
            HashFunction::TwoPoint {
                origin_bits: 5,
                length_ratio: 0.15,
            },
        ),
    ];
    for (label, function) in functions {
        let hasher = RayHasher::new(function, bounds);
        group.bench_with_input(BenchmarkId::new("hash", label), &rays, |b, rays| {
            b.iter(|| {
                let mut acc = 0u32;
                for ray in rays {
                    acc ^= hasher.hash(std::hint::black_box(ray));
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(benches, hash_functions);
criterion_main!(benches);
