//! Criterion micro-benchmark: cache and DRAM model throughput — these run
//! once per simulated memory request, so they dominate timing-sim speed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rip_gpusim::{Cache, CacheConfig, Dram, DramConfig};

fn memory_models(c: &mut Criterion) {
    // A strided-with-reuse trace resembling BVH node fetches.
    let trace: Vec<u64> = (0..8192u64).map(|i| ((i * 37) % 3000) * 64).collect();

    let mut group = c.benchmark_group("memory_models");
    group.throughput(criterion::Throughput::Elements(trace.len() as u64));
    for (label, config) in [
        ("l1_fully_assoc_64kb", CacheConfig::l1_baseline()),
        ("l2_16way_1mb", CacheConfig::l2_baseline()),
        (
            "direct_mapped_16kb",
            CacheConfig {
                size_bytes: 16 * 1024,
                line_bytes: 128,
                ways: 1,
            },
        ),
    ] {
        group.bench_with_input(
            BenchmarkId::new("cache_access", label),
            &trace,
            |b, trace| {
                b.iter(|| {
                    let mut cache = Cache::new(config);
                    let mut hits = 0u64;
                    for &addr in trace {
                        hits += cache.access(std::hint::black_box(addr)) as u64;
                    }
                    hits
                })
            },
        );
    }
    group.bench_with_input(
        BenchmarkId::new("dram_access", "16banks"),
        &trace,
        |b, trace| {
            b.iter(|| {
                let mut dram = Dram::new(DramConfig::baseline());
                let mut t = 0u64;
                for (i, &addr) in trace.iter().enumerate() {
                    t = t.max(dram.access(std::hint::black_box(addr), i as u64));
                }
                t
            })
        },
    );
    group.finish();
}

criterion_group!(benches, memory_models);
criterion_main!(benches);
