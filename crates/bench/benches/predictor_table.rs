//! Criterion micro-benchmark: predictor table lookup/insert throughput for
//! the Table 3 configuration and the associativity extremes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rip_bvh::NodeId;
use rip_core::{PredictorConfig, PredictorTable};

fn predictor_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("predictor_table");
    for (label, ways) in [("direct_mapped", 1usize), ("4way", 4), ("8way", 8)] {
        let config = PredictorConfig {
            ways,
            ..PredictorConfig::paper_default()
        };
        group.bench_with_input(
            BenchmarkId::new("lookup_insert", label),
            &config,
            |b, cfg| {
                let mut table = PredictorTable::new(*cfg);
                // Pre-train with a realistic working set.
                for i in 0u32..4096 {
                    table.insert((i * 2654435761) & 0x7FFF, NodeId::new(i % 1000));
                }
                let mut i = 0u32;
                b.iter(|| {
                    i = i.wrapping_add(1);
                    let hash = (i * 2654435761) & 0x7FFF;
                    let hit = table.lookup(std::hint::black_box(hash));
                    if hit.is_none() {
                        table.insert(hash, NodeId::new(i % 1000));
                    }
                    hit.is_some()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, predictor_table);
criterion_main!(benches);
