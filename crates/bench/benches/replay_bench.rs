//! Capture-then-replay sweep bench and its JSON artifact.
//!
//! Times the §6.2.5 per-SM predictor sweep (`sec625_sm_sweep`) two
//! ways over identical scoped contexts:
//!
//! * **live** — every sweep configuration re-traverses the BVH
//!   functionally (`TraceMode::Off`), the pre-RIPT cost.
//! * **capture+replay** — `TraceMode::Replay`: the first configuration
//!   to touch each scene's AO workload captures its RIPT trace once
//!   (a single traversal pass), and every configuration after that
//!   replays recorded node visits instead of re-traversing. The timing
//!   includes the capture, so this is the honest cold-store cost of
//!   `run_all --replay`.
//!
//! Before timing, both paths are checked for byte-identical experiment
//! reports — a replay that drifted from live would make the speedup
//! meaningless. Scene and BVH construction is pre-warmed into each
//! context's case cache so the measurement isolates the sweep itself.
//!
//! Results land in machine-readable JSON at the repository root:
//!
//! * `--mode full` (default) — rewrites the committed
//!   `BENCH_replay.json`.
//! * `--mode smoke` — written to `BENCH_replay.smoke.json` so CI never
//!   dirties the committed baseline (the `replay-smoke` job asserts the
//!   ≥2x capture+replay speedup floor).
//!
//! Run it with:
//!
//! ```text
//! cargo bench -p rip-bench --bench replay_bench                 # full
//! cargo bench -p rip-bench --bench replay_bench -- --mode smoke
//! ```

use std::sync::Arc;
use std::time::Instant;

use rip_bench::experiments;
use rip_bench::{Context, Report, SceneSelection, TraceMode};
use rip_obs::{ClockMode, Obs};
use rip_scene::SceneScale;

/// Timed samples per mode (median reported).
const SAMPLES_FULL: usize = 5;
const SAMPLES_SMOKE: usize = 2;
/// The acceptance floor: capture+replay must beat live by at least
/// this factor (the sweep runs five configurations per scene, so one
/// capture amortized over five replays has plenty of headroom).
const SPEEDUP_FLOOR: f64 = 2.0;
/// Worker threads — the acceptance criterion is measured at 8 jobs.
const JOBS: usize = 8;

fn fresh_context(scale: SceneScale, scenes: usize, mode: TraceMode) -> Context {
    let obs = Arc::new(Obs::new(ClockMode::Logical));
    let mut ctx = Context::scoped(scale, SceneSelection::Subset(scenes), JOBS, obs);
    ctx.set_trace_mode(mode);
    // Pre-warm scene synthesis and BVH builds so the timed region is
    // the sweep itself, not case construction.
    for id in ctx.scene_ids() {
        ctx.build_case(id);
    }
    ctx
}

fn run_sweep(ctx: &Context) -> Report {
    experiments::sec625_sm_sweep::run(ctx)
}

/// Median wall-clock seconds for one full sweep under `mode`. Each
/// sample uses a fresh context: replay samples re-capture into an empty
/// in-memory trace store, so nothing leaks between samples.
fn median_secs(samples: usize, scale: SceneScale, scenes: usize, mode: TraceMode) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let ctx = fresh_context(scale, scenes, mode);
            let start = Instant::now();
            std::hint::black_box(run_sweep(&ctx));
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--quick")
        || args.windows(2).any(|w| w[0] == "--mode" && w[1] == "smoke");
    let samples = if smoke { SAMPLES_SMOKE } else { SAMPLES_FULL };
    let (scale, scale_name, scenes) = if smoke {
        (SceneScale::Tiny, "tiny", 2)
    } else {
        (SceneScale::Quick, "quick", 3)
    };

    // Equivalence first: the replayed sweep must reproduce the live
    // report byte for byte before its speed means anything.
    let live_report = run_sweep(&fresh_context(scale, scenes, TraceMode::Off));
    let replay_ctx = fresh_context(scale, scenes, TraceMode::Replay);
    let replay_report = run_sweep(&replay_ctx);
    assert_eq!(
        format!("{live_report:?}"),
        format!("{replay_report:?}"),
        "replayed sweep report diverged from live"
    );
    assert_eq!(
        replay_ctx.obs().get("bench.trace.replay_fallback"),
        0,
        "replay fell back to live traversal"
    );
    let captures = replay_ctx.trace_store().stats().captures;
    assert_eq!(
        captures, scenes as u64,
        "expected exactly one capture per scene"
    );

    let t_live = median_secs(samples, scale, scenes, TraceMode::Off);
    let t_replay = median_secs(samples, scale, scenes, TraceMode::Replay);
    let speedup = t_live / t_replay.max(1e-12);
    println!(
        "sec625_sm_sweep ({scale_name}, {scenes} scenes, {JOBS} jobs): \
         live {:.1} ms vs capture+replay {:.1} ms — {speedup:.2}x",
        t_live * 1e3,
        t_replay * 1e3,
    );

    let json = format!(
        "{{\n  \"bench\": \"replay_bench\",\n  \"mode\": \"{}\",\n  \
         \"experiment\": \"sec625_sm_sweep\",\n  \"scale\": \"{scale_name}\",\n  \
         \"scenes\": {scenes},\n  \"jobs\": {JOBS},\n  \"sweep_configs\": 5,\n  \
         \"captures\": {captures},\n  \"reports_identical\": true,\n  \
         \"live_ms\": {:.4},\n  \"capture_replay_ms\": {:.4},\n  \
         \"replay_speedup\": {speedup:.4},\n  \"speedup_floor\": {SPEEDUP_FLOOR}\n}}\n",
        if smoke { "smoke" } else { "full" },
        t_live * 1e3,
        t_replay * 1e3,
    );
    let file = if smoke {
        "BENCH_replay.smoke.json"
    } else {
        "BENCH_replay.json"
    };
    let path = format!("{}/../../{file}", env!("CARGO_MANIFEST_DIR"));
    std::fs::write(&path, &json).expect("write bench artifact");
    println!("wrote {path}");

    assert!(
        speedup >= SPEEDUP_FLOOR,
        "capture+replay speedup {speedup:.2}x is below the {SPEEDUP_FLOOR}x floor"
    );
}
