//! Criterion micro-benchmark: while-while traversal throughput for any-hit
//! and closest-hit queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rip_bvh::{Bvh, TraversalKind};
use rip_math::Triangle;
use rip_render::{AoConfig, AoWorkload};
use rip_scene::{SceneId, SceneScale};

fn traversal(c: &mut Criterion) {
    let scene = SceneId::CrytekSponza.build_with_viewport(SceneScale::Tiny, 48, 48);
    let tris: Vec<Triangle> = scene.mesh.triangles().collect();
    let bvh = Bvh::build(&tris);
    let rays = AoWorkload::generate(&scene, &bvh, &AoConfig::default()).rays;
    let slice = &rays[..rays.len().min(2048)];

    let mut group = c.benchmark_group("traversal");
    group.throughput(criterion::Throughput::Elements(slice.len() as u64));
    for (label, kind) in [
        ("any_hit", TraversalKind::AnyHit),
        ("closest_hit", TraversalKind::ClosestHit),
    ] {
        group.bench_with_input(BenchmarkId::new(label, "sponza_ao"), slice, |b, rays| {
            b.iter(|| {
                let mut hits = 0u32;
                for ray in rays {
                    if bvh.intersect(std::hint::black_box(ray), kind).hit.is_some() {
                        hits += 1;
                    }
                }
                hits
            })
        });
        // Ablation: the restart-trail stackless traversal trades extra
        // interior fetches for zero per-ray stack storage (§2.4).
        group.bench_with_input(
            BenchmarkId::new(format!("{label}_stackless"), "sponza_ao"),
            slice,
            |b, rays| {
                b.iter(|| {
                    let mut hits = 0u32;
                    for ray in rays {
                        if rip_bvh::stackless::traverse(&bvh, std::hint::black_box(ray), kind)
                            .hit
                            .is_some()
                        {
                            hits += 1;
                        }
                    }
                    hits
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, traversal);
criterion_main!(benches);
