//! Chaos harness: the serve_bench workload under deterministic fault
//! injection, gated on an availability floor.
//!
//! Usage: `cargo run --release -p rip-bench --bin chaos_bench -- [OPTIONS]`
//!
//! Drives a [`rip_serve::RayService`] with the open-loop load generator
//! while injecting panics, delays, and transient faults into a seeded
//! pseudo-random fraction of trace chunks
//! ([`rip_serve::ChaosConfig`]). The run passes when:
//!
//! 1. every offered request reaches exactly one typed outcome
//!    (completed / shed / rate-limited / unmeetable / expired / failed),
//! 2. every failure is attributed to a typed fault kind,
//! 3. availability (requests completed within deadline over offered)
//!    meets `--availability-floor`.
//!
//! A dispatch-round abort (worker panic escaping containment) crashes
//! the process — exit status 0 is itself the zero-aborts assertion.
//!
//! Options:
//!
//! - `--fault-rate R`          split evenly into panic + slow rates
//!   (default 0.2 → 10% panics, 10% slow chunks)
//! - `--panic-rate R`          override the panic fraction
//! - `--slow-rate R`           override the slow fraction
//! - `--slow-ms MS`            injected delay per slow chunk (default 2)
//! - `--flaky-rate R`          transient-fault fraction (default 0)
//! - `--panic-attempts N`      attempts on which panics fire (default 1
//!   = transient; set >= 3 for permanently poisoned chunks)
//! - `--deadline-us N`         relative deadline per request
//!   (default 250000)
//! - `--availability-floor F`  minimum passing availability
//!   (default 0.95)
//! - `--tenants N`             logical clients (default 2)
//! - `--rate R`                requests/second per tenant (default 50)
//! - `--duration SECS`         submission window (default 2.0)
//! - `--duration-short`        CI smoke preset (0.3 s window)
//! - `--rays N`                rays per request (default 256)
//! - `--seed N`                chaos + loadgen seed (default 0xC4A05)
//! - `--out PATH`              report path (default `BENCH_chaos.json`)
//!
//! `RIP_FAULT_INJECT` directives labelled `serve_chunk` /
//! `serve_reload` compose with the probabilistic plan (see
//! EXPERIMENTS.md).
//!
//! Exit status: 0 on pass, 1 on a floor/accounting violation.

use rip_exec::{CaseCache, CaseKey, FaultKind};
use rip_scene::{SceneId, SceneScale};
use rip_serve::{ChaosConfig, LoadGenConfig, RayService, SceneRegistry, ServiceConfig};
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "chaos_bench [--fault-rate R] [--panic-rate R] [--slow-rate R] \
                     [--slow-ms MS] [--flaky-rate R] [--panic-attempts N] [--deadline-us N] \
                     [--availability-floor F] [--tenants N] [--rate R] [--duration SECS] \
                     [--duration-short] [--rays N] [--seed N] [--out PATH]";

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    value
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("{flag} needs a valid value\nusage: {USAGE}"))
}

fn main() {
    let mut fault_rate = 0.2f64;
    let mut panic_rate: Option<f64> = None;
    let mut slow_rate: Option<f64> = None;
    let mut slow_ms = 2u64;
    let mut flaky_rate = 0.0f64;
    let mut panic_attempts = 1u32;
    let mut deadline_us = 250_000u64;
    let mut availability_floor = 0.95f64;
    let mut tenants = 2usize;
    let mut rate = 50.0f64;
    let mut duration = 2.0f64;
    let mut rays = 256usize;
    let mut seed = 0xC4A05u64;
    let mut out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_chaos.json").to_string();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fault-rate" => fault_rate = parse(&arg, args.next()),
            "--panic-rate" => panic_rate = Some(parse(&arg, args.next())),
            "--slow-rate" => slow_rate = Some(parse(&arg, args.next())),
            "--slow-ms" => slow_ms = parse(&arg, args.next()),
            "--flaky-rate" => flaky_rate = parse(&arg, args.next()),
            "--panic-attempts" => panic_attempts = parse(&arg, args.next()),
            "--deadline-us" => deadline_us = parse(&arg, args.next()),
            "--availability-floor" => availability_floor = parse(&arg, args.next()),
            "--tenants" => tenants = parse(&arg, args.next()),
            "--rate" => rate = parse(&arg, args.next()),
            "--duration" => duration = parse(&arg, args.next()),
            "--duration-short" => duration = 0.3,
            "--rays" => rays = parse(&arg, args.next()),
            "--seed" => seed = parse(&arg, args.next()),
            "--out" => out = parse(&arg, args.next()),
            "--help" | "-h" => {
                println!("usage: {USAGE}");
                return;
            }
            other => {
                eprintln!("unknown option {other}\nusage: {USAGE}");
                std::process::exit(2);
            }
        }
    }

    // Injected panics are caught by the service's fault isolation, but
    // the default panic hook would still print a backtrace for each one
    // — hundreds per run. Filter exactly those; real panics keep the
    // full report.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let message = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !message.starts_with("chaos: injected panic") {
            default_hook(info);
        }
    }));

    let chaos = ChaosConfig {
        panic_rate: panic_rate.unwrap_or(fault_rate / 2.0),
        panic_attempts,
        slow_rate: slow_rate.unwrap_or(fault_rate / 2.0),
        slow_ms,
        flaky_rate,
        flaky_attempts: 1,
        seed,
    };
    let key = CaseKey::square(SceneId::Sibenik, SceneScale::Tiny, 64);
    let registry = SceneRegistry::new(Arc::new(CaseCache::new()));
    let lease = registry.get(key);
    let service = RayService::new(
        lease,
        tenants,
        ServiceConfig {
            chaos,
            ..ServiceConfig::default()
        },
    );
    let config = LoadGenConfig {
        tenants,
        rate,
        rays_per_request: rays,
        duration: Duration::from_secs_f64(duration),
        deadline: Some(Duration::from_micros(deadline_us)),
        seed,
    };
    eprintln!(
        "[chaos_bench] {tenants} tenant(s) x {rate} req/s x {rays} rays, {duration} s window, \
         deadline {deadline_us} us | inject: panic {:.0}% (x{panic_attempts}), slow {:.0}% \
         ({slow_ms} ms), flaky {:.0}%, seed {seed:#x}",
        100.0 * chaos.panic_rate,
        100.0 * chaos.slow_rate,
        100.0 * chaos.flaky_rate,
    );
    let report = rip_serve::loadgen::run(&service, &config);

    println!(
        "chaos_bench: {:.2} s wall, {} offered, {} completed, {} deadline miss, \
         {} expired, {} failed, {} retried chunk(s)",
        report.wall.as_secs_f64(),
        report.offered_requests,
        report.completed_requests,
        report.deadline_miss_requests,
        report.expired_requests,
        report.failed_requests,
        report.retried_chunks,
    );
    println!(
        "  availability {:.4} (floor {availability_floor}), {} mode transition(s), final mode {}",
        report.availability,
        report.mode_transitions,
        report.final_mode.label(),
    );
    let attributed: u64 = report.faults_by_kind.iter().sum();
    for kind in FaultKind::ALL {
        let count = report.faults_by_kind[kind.index()];
        if count > 0 {
            println!("  fault {:18} {count}", kind.slug());
        }
    }

    let extras = [
        ("panic_rate", format!("{:.4}", chaos.panic_rate)),
        ("panic_attempts", format!("{panic_attempts}")),
        ("slow_rate", format!("{:.4}", chaos.slow_rate)),
        ("slow_ms", format!("{slow_ms}")),
        ("flaky_rate", format!("{:.4}", chaos.flaky_rate)),
        ("availability_floor", format!("{availability_floor}")),
    ];
    let json =
        rip_bench::serve_report_json("chaos", &report, &config, 4, &key.label(), None, &extras);
    std::fs::write(&out, &json).expect("write chaos report");
    eprintln!("[chaos_bench] report written to {out}");

    let mut failures = Vec::new();
    let outcomes = report.completed_requests
        + report.shed_requests
        + report.rate_limited
        + report.rejected_unmeetable
        + report.expired_requests
        + report.failed_requests;
    if outcomes != report.offered_requests {
        failures.push(format!(
            "accounting leak: {} offered vs {outcomes} outcomes",
            report.offered_requests
        ));
    }
    if attributed != report.failed_requests + report.expired_requests {
        failures.push(format!(
            "unattributed failures: {} typed faults vs {} failed + {} expired",
            attributed, report.failed_requests, report.expired_requests
        ));
    }
    if report.availability < availability_floor {
        failures.push(format!(
            "availability {:.4} below floor {availability_floor}",
            report.availability
        ));
    }
    if report.offered_requests == 0 {
        failures.push("no requests offered".to_string());
    }
    if failures.is_empty() {
        println!("  PASS");
    } else {
        for failure in &failures {
            eprintln!("[chaos_bench] FAILED: {failure}");
        }
        std::process::exit(1);
    }
}
