//! Binary wrapper for the `ext_adaptive_hash` extension experiment.
//! Usage: `cargo run --release -p rip-bench --bin ext_adaptive_hash -- [--scale tiny|quick|paper] [--scenes N]`

fn main() {
    let ctx = rip_bench::Context::from_args();
    let report = rip_bench::experiments::ext_adaptive_hash::run(&ctx);
    println!("{report}");
}
