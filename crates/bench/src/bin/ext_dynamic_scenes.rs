//! Binary wrapper for the `ext_dynamic_scenes` extension experiment.
//! Usage: `cargo run --release -p rip-bench --bin ext_dynamic_scenes -- [--scale tiny|quick|paper] [--scenes N]`

fn main() {
    let ctx = rip_bench::Context::from_args();
    let report = rip_bench::experiments::ext_dynamic_scenes::run(&ctx);
    println!("{report}");
}
