//! Binary wrapper for the `ext_shadow_rays` extension experiment.
//! Usage: `cargo run --release -p rip-bench --bin ext_shadow_rays -- [--scale tiny|quick|paper] [--scenes N]`

fn main() {
    let ctx = rip_bench::Context::from_args();
    let report = rip_bench::experiments::ext_shadow_rays::run(&ctx);
    println!("{report}");
}
