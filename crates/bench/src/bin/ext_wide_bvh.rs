//! Binary wrapper for the `ext_wide_bvh` extension experiment.
//! Usage: `cargo run --release -p rip-bench --bin ext_wide_bvh -- [--scale tiny|quick|paper] [--scenes N]`

fn main() {
    let ctx = rip_bench::Context::from_args();
    let report = rip_bench::experiments::ext_wide_bvh::run(&ctx);
    println!("{report}");
}
