//! Binary wrapper for the `ext_wide_predictor` extension experiment.
//! Usage: `cargo run --release -p rip-bench --bin ext_wide_predictor -- [--scale tiny|quick|paper] [--scenes N]`

fn main() {
    let ctx = rip_bench::Context::from_args();
    let report = rip_bench::experiments::ext_wide_predictor::run(&ctx);
    println!("{report}");
}
