//! Binary wrapper for the `fig01_memory_distribution` experiment.
//! Usage: `cargo run --release -p rip-bench --bin fig01_memory_distribution -- [--scale tiny|quick|paper] [--scenes N]`

fn main() {
    let ctx = rip_bench::Context::from_args();
    let report = rip_bench::experiments::fig01_memory_distribution::run(&ctx);
    println!("{report}");
}
