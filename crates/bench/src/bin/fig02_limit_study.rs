//! Binary wrapper for the `fig02_limit_study` experiment.
//! Usage: `cargo run --release -p rip-bench --bin fig02_limit_study -- [--scale tiny|quick|paper] [--scenes N]`

fn main() {
    let ctx = rip_bench::Context::from_args();
    let report = rip_bench::experiments::fig02_limit_study::run(&ctx);
    println!("{report}");
}
