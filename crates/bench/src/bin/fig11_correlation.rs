//! Binary wrapper for the `fig11_correlation` experiment.
//! Usage: `cargo run --release -p rip-bench --bin fig11_correlation -- [--scale tiny|quick|paper] [--scenes N]`

fn main() {
    let ctx = rip_bench::Context::from_args();
    let report = rip_bench::experiments::fig11_correlation::run(&ctx);
    println!("{report}");
}
