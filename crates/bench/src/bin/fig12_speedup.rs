//! Binary wrapper for the `fig12_speedup` experiment.
//! Usage: `cargo run --release -p rip-bench --bin fig12_speedup -- [--scale tiny|quick|paper] [--scenes N]`

fn main() {
    let ctx = rip_bench::Context::from_args();
    let report = rip_bench::experiments::fig12_speedup::run(&ctx);
    println!("{report}");
}
