//! Binary wrapper for the `fig13_memory_accesses` experiment.
//! Usage: `cargo run --release -p rip-bench --bin fig13_memory_accesses -- [--scale tiny|quick|paper] [--scenes N]`

fn main() {
    let ctx = rip_bench::Context::from_args();
    let report = rip_bench::experiments::fig13_memory_accesses::run(&ctx);
    println!("{report}");
}
