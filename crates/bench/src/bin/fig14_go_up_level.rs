//! Binary wrapper for the `fig14_go_up_level` experiment.
//! Usage: `cargo run --release -p rip-bench --bin fig14_go_up_level -- [--scale tiny|quick|paper] [--scenes N]`

fn main() {
    let ctx = rip_bench::Context::from_args();
    let report = rip_bench::experiments::fig14_go_up_level::run(&ctx);
    println!("{report}");
}
