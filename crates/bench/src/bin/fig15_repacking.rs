//! Binary wrapper for the `fig15_repacking` experiment.
//! Usage: `cargo run --release -p rip-bench --bin fig15_repacking -- [--scale tiny|quick|paper] [--scenes N]`

fn main() {
    let ctx = rip_bench::Context::from_args();
    let report = rip_bench::experiments::fig15_repacking::run(&ctx);
    println!("{report}");
}
