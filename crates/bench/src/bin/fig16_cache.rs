//! Binary wrapper for the `fig16_cache` experiment.
//! Usage: `cargo run --release -p rip-bench --bin fig16_cache -- [--scale tiny|quick|paper] [--scenes N]`

fn main() {
    let ctx = rip_bench::Context::from_args();
    let report = rip_bench::experiments::fig16_cache::run(&ctx);
    println!("{report}");
}
