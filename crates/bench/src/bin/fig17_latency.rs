//! Binary wrapper for the `fig17_latency` experiment.
//! Usage: `cargo run --release -p rip-bench --bin fig17_latency -- [--scale tiny|quick|paper] [--scenes N]`

fn main() {
    let ctx = rip_bench::Context::from_args();
    let report = rip_bench::experiments::fig17_latency::run(&ctx);
    println!("{report}");
}
