//! Runs every reproduced table and figure in paper order.
//! Usage: `cargo run --release -p rip-bench --bin run_all -- [--scale tiny|quick|paper] [--scenes N]`

use std::time::Instant;

fn main() {
    let ctx = rip_bench::Context::from_args();
    eprintln!("running all experiments at {:?} scale…", ctx.scale);
    let start = Instant::now();
    for report in rip_bench::experiments::run_all(&ctx) {
        println!("{report}");
        eprintln!(
            "[{}] done at {:.1}s",
            report.id,
            start.elapsed().as_secs_f64()
        );
    }
}
