//! Runs every reproduced table and figure in paper order, with per-unit
//! fault isolation and optional checkpoint/resume.
//!
//! Usage: `cargo run --release -p rip-bench --bin run_all -- [OPTIONS]`
//!
//! On top of the shared experiment options (`--scale`, `--scenes`,
//! `--jobs`), `run_all` understands:
//!
//! - `--journal PATH` — checkpoint each completed experiment to `PATH`
//!   (default: `$RIP_JOURNAL` when set). Without `--resume`, an existing
//!   journal is overwritten.
//! - `--resume` — load completed experiments from the journal and run
//!   only the rest; the final tables are byte-identical to an
//!   uninterrupted run. Implies journaling (to the same path).
//! - `--trace PATH` (or `RIP_TRACE`) — record a chrome://tracing JSONL
//!   trace of the whole sweep (spans, structured events, final counter
//!   totals) to `PATH`, and append the counter summary to stderr.
//!   Tracing never touches stdout: the experiment tables stay
//!   byte-identical with or without it.
//!
//! Each experiment runs behind `catch_unwind`, the `RIP_UNIT_TIMEOUT`
//! watchdog, and bounded retry, so one panicking or hung experiment is
//! recorded in the final failure report (and flips the exit status to 1)
//! while every other experiment still completes and prints.

use rip_bench::experiments;
use rip_exec::Journal;
use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Instant;

fn usage() -> String {
    format!(
        "{}\n\
         \n\
         RUN_ALL OPTIONS:\n\
         \x20 --journal PATH            checkpoint completed experiments to PATH\n\
         \x20                           (default: RIP_JOURNAL env when set)\n\
         \x20 --resume                  resume from the journal instead of starting over\n\
         \n\
         RUN_ALL ENVIRONMENT:\n\
         \x20 RIP_JOURNAL       default journal path for --journal/--resume\n\
         \x20 RIP_UNIT_TIMEOUT  per-experiment watchdog deadline in seconds (off when unset)\n\
         \n\
         Exit status: 0 when every experiment succeeded, 1 when any failed.",
        rip_bench::Context::usage()
    )
}

fn main() {
    let mut journal_path: Option<PathBuf> = std::env::var("RIP_JOURNAL")
        .ok()
        .filter(|v| !v.is_empty())
        .map(PathBuf::from);
    let mut resume = false;
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--journal" => match args.next() {
                Some(path) => journal_path = Some(PathBuf::from(path)),
                None => {
                    eprintln!("error: --journal requires a path");
                    eprintln!("{}", usage());
                    std::process::exit(2);
                }
            },
            "--resume" => resume = true,
            _ => rest.push(arg),
        }
    }
    let ctx = rip_bench::Context::from_arg_slice(&rest, &usage());
    if resume && journal_path.is_none() {
        eprintln!("error: --resume needs a journal (--journal PATH or RIP_JOURNAL)");
        eprintln!("{}", usage());
        std::process::exit(2);
    }

    let fingerprint = experiments::sweep_fingerprint(&ctx);
    let mut completed = HashMap::new();
    let journal = match &journal_path {
        None => None,
        Some(path) => {
            let opened = if resume {
                Journal::resume(path, &fingerprint).map(|(journal, entries)| {
                    completed = experiments::decode_journal_entries(&entries);
                    journal
                })
            } else {
                Journal::create(path, &fingerprint)
            };
            match opened {
                Ok(journal) => Some(journal),
                Err(e) => {
                    eprintln!("error: cannot open journal {}: {e}", path.display());
                    std::process::exit(2);
                }
            }
        }
    };

    eprintln!("running all experiments at {:?} scale…", ctx.scale);
    if !completed.is_empty() {
        eprintln!(
            "resuming: {} of {} experiment(s) restored from {}",
            completed.len(),
            experiments::ALL.len(),
            journal_path
                .as_deref()
                .map(|p| p.display().to_string())
                .unwrap_or_default(),
        );
    }
    let start = Instant::now();
    let outcome = experiments::run_all_isolated(&ctx, journal.as_ref(), &completed);
    for report in &outcome.reports {
        println!("{report}");
        eprintln!(
            "[{}] done at {:.1}s",
            report.id,
            start.elapsed().as_secs_f64()
        );
    }
    // The metrics summary and the trace go to stderr / the trace file
    // only — stdout stays byte-identical with tracing on or off.
    if ctx.trace_guard().is_some() {
        eprintln!("metrics summary:");
        eprint!("{}", ctx.metrics_summary());
    }
    if !outcome.failures.is_empty() {
        print!("{}", outcome.failure_report());
        eprintln!(
            "{} experiment(s) failed after {:.1}s; see the failure report above",
            outcome.failures.len(),
            start.elapsed().as_secs_f64()
        );
        // exit() skips destructors; write the trace before leaving.
        ctx.flush_trace();
        std::process::exit(1);
    }
    ctx.flush_trace();
}
