//! Binary wrapper for the `sec613_node_replacement` experiment.
//! Usage: `cargo run --release -p rip-bench --bin sec613_node_replacement -- [--scale tiny|quick|paper] [--scenes N]`

fn main() {
    let ctx = rip_bench::Context::from_args();
    let report = rip_bench::experiments::sec613_node_replacement::run(&ctx);
    println!("{report}");
}
