//! Binary wrapper for the `sec625_sm_sweep` experiment.
//! Usage: `cargo run --release -p rip-bench --bin sec625_sm_sweep -- [--scale tiny|quick|paper] [--scenes N]`

fn main() {
    let ctx = rip_bench::Context::from_args();
    let report = rip_bench::experiments::sec625_sm_sweep::run(&ctx);
    println!("{report}");
}
