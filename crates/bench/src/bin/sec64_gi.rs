//! Binary wrapper for the `sec64_gi` experiment.
//! Usage: `cargo run --release -p rip-bench --bin sec64_gi -- [--scale tiny|quick|paper] [--scenes N]`

fn main() {
    let ctx = rip_bench::Context::from_args();
    let report = rip_bench::experiments::sec64_gi::run(&ctx);
    println!("{report}");
}
