//! Multi-tenant open-loop load benchmark for the `rip-serve` layer.
//!
//! Usage: `cargo run --release -p rip-bench --bin serve_bench -- [OPTIONS]`
//!
//! Spins up a [`rip_serve::RayService`] over one cached scene, drives it
//! with `--tenants` open-loop generators for `--duration` seconds, and
//! writes sustained throughput, p50/p95/p99 latency per request class,
//! and the SLO accounting (availability, deadline misses, typed faults,
//! mode history) to `BENCH_serve.json` (or `--out`). Timing-based by
//! nature — the JSON is a recorded baseline, not a deterministic
//! snapshot.
//!
//! Options:
//!
//! - `--tenants N`        logical clients (default 2)
//! - `--rate R`           requests/second per tenant (default 50)
//! - `--duration SECS`    submission window (default 2.0)
//! - `--duration-short`   CI smoke preset (0.3 s window)
//! - `--rays N`           rays per request (default 256)
//! - `--deadline-us N`    relative deadline per request, microseconds
//!   (default 0 = no deadlines)
//! - `--shards N`         predictor table lock stripes
//!   (default: `RIP_SERVE_SHARDS` env, else 4)
//! - `--seed N`           load-generator RNG seed (default 0x5EED)
//! - `--out PATH`         report path (default `BENCH_serve.json` at the
//!   repository root)
//!
//! Exit status: 0 on a healthy run, 1 when no rays completed, a class
//! with traffic reports degenerate percentiles, or any request failed
//! (this bench runs with injection off — failures here are real bugs).

use rip_exec::{CaseCache, CaseKey};
use rip_scene::{SceneId, SceneScale};
use rip_serve::{LoadGenConfig, LoadReport, RayService, SceneRegistry, ServiceConfig};
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "serve_bench [--tenants N] [--rate R] [--duration SECS] \
                     [--duration-short] [--rays N] [--deadline-us N] [--shards N] \
                     [--seed N] [--out PATH]";

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    value
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("{flag} needs a valid value\nusage: {USAGE}"))
}

fn main() {
    let mut tenants = 2usize;
    let mut rate = 50.0f64;
    let mut duration = 2.0f64;
    let mut rays = 256usize;
    let mut deadline_us = 0u64;
    let mut seed = 0x5EEDu64;
    let mut shards: usize = std::env::var("RIP_SERVE_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let mut out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json").to_string();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tenants" => tenants = parse(&arg, args.next()),
            "--rate" => rate = parse(&arg, args.next()),
            "--duration" => duration = parse(&arg, args.next()),
            "--duration-short" => duration = 0.3,
            "--rays" => rays = parse(&arg, args.next()),
            "--deadline-us" => deadline_us = parse(&arg, args.next()),
            "--shards" => shards = parse(&arg, args.next()),
            "--seed" => seed = parse(&arg, args.next()),
            "--out" => out = parse(&arg, args.next()),
            "--help" | "-h" => {
                println!("usage: {USAGE}");
                return;
            }
            other => {
                eprintln!("unknown option {other}\nusage: {USAGE}");
                std::process::exit(2);
            }
        }
    }

    let key = CaseKey::square(SceneId::Sibenik, SceneScale::Tiny, 64);
    let registry = SceneRegistry::new(Arc::new(CaseCache::new()));
    let lease = registry.get(key);
    let service = RayService::new(
        lease,
        tenants,
        ServiceConfig {
            shards,
            ..ServiceConfig::default()
        },
    );
    let config = LoadGenConfig {
        tenants,
        rate,
        rays_per_request: rays,
        duration: Duration::from_secs_f64(duration),
        deadline: (deadline_us > 0).then(|| Duration::from_micros(deadline_us)),
        seed,
    };
    eprintln!(
        "[serve_bench] {} tenant(s) x {rate} req/s x {rays} rays, {duration} s window, \
         {} shard(s), deadline {} us, scene {}",
        tenants,
        service.table().shard_count(),
        deadline_us,
        key.label(),
    );
    let report = rip_serve::loadgen::run(&service, &config);
    let table = service.table_stats();

    println!(
        "serve_bench: {:.2} s wall, {} requests ({} shed), {} rays, {:.0} rays/s",
        report.wall.as_secs_f64(),
        report.completed_requests,
        report.shed_requests,
        report.completed_rays,
        report.rays_per_sec,
    );
    println!(
        "  slo: {:.4} availability, {} deadline miss, {} expired, {} failed, \
         {} mode transition(s), final mode {}",
        report.availability,
        report.deadline_miss_requests,
        report.expired_requests,
        report.failed_requests,
        report.mode_transitions,
        report.final_mode.label(),
    );
    for class in &report.classes {
        println!(
            "  {:8} {:6} req {:8} rays  p50 {:6} us  p95 {:6} us  p99 {:6} us",
            class.class.label(),
            class.requests,
            class.rays,
            class.p50_us,
            class.p95_us,
            class.p99_us,
        );
    }
    let hit_rate = if table.lookups > 0 {
        table.tag_hits as f64 / table.lookups as f64
    } else {
        0.0
    };
    println!(
        "  table: {} lookups, {:.1}% tag hits, {} insertions",
        table.lookups,
        100.0 * hit_rate,
        table.insertions,
    );

    let json = rip_bench::serve_report_json(
        "serve",
        &report,
        &config,
        shards,
        &key.label(),
        Some(&table),
        &[],
    );
    std::fs::write(&out, &json).expect("write serve report");
    eprintln!("[serve_bench] report written to {out}");

    if !healthy(&report) {
        eprintln!("[serve_bench] FAILED: zero throughput, degenerate percentiles, or failures");
        std::process::exit(1);
    }
}

/// A run is healthy when rays completed, nothing failed, and every
/// class that saw traffic has ordered, non-degenerate percentiles.
fn healthy(report: &LoadReport) -> bool {
    report.completed_rays > 0
        && report.rays_per_sec > 0.0
        && report.failed_requests == 0
        && report
            .classes
            .iter()
            .filter(|c| c.requests > 0)
            .all(|c| c.p50_us <= c.p95_us && c.p95_us <= c.p99_us && c.p99_us <= c.max_us)
}
