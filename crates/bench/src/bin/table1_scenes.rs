//! Binary wrapper for the `table1_scenes` experiment.
//! Usage: `cargo run --release -p rip-bench --bin table1_scenes -- [--scale tiny|quick|paper] [--scenes N]`

fn main() {
    let ctx = rip_bench::Context::from_args();
    let report = rip_bench::experiments::table1_scenes::run(&ctx);
    println!("{report}");
}
