//! Binary wrapper for the `table4_energy` experiment.
//! Usage: `cargo run --release -p rip-bench --bin table4_energy -- [--scale tiny|quick|paper] [--scenes N]`

fn main() {
    let ctx = rip_bench::Context::from_args();
    let report = rip_bench::experiments::table4_energy::run(&ctx);
    println!("{report}");
}
