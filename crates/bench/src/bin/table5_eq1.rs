//! Binary wrapper for the `table5_eq1` experiment.
//! Usage: `cargo run --release -p rip-bench --bin table5_eq1 -- [--scale tiny|quick|paper] [--scenes N]`

fn main() {
    let ctx = rip_bench::Context::from_args();
    let report = rip_bench::experiments::table5_eq1::run(&ctx);
    println!("{report}");
}
