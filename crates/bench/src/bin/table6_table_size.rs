//! Binary wrapper for the `table6_table_size` experiment.
//! Usage: `cargo run --release -p rip-bench --bin table6_table_size -- [--scale tiny|quick|paper] [--scenes N]`

fn main() {
    let ctx = rip_bench::Context::from_args();
    let report = rip_bench::experiments::table6_table_size::run(&ctx);
    println!("{report}");
}
