//! Binary wrapper for the `table7_placement` experiment.
//! Usage: `cargo run --release -p rip-bench --bin table7_placement -- [--scale tiny|quick|paper] [--scenes N]`

fn main() {
    let ctx = rip_bench::Context::from_args();
    let report = rip_bench::experiments::table7_placement::run(&ctx);
    println!("{report}");
}
