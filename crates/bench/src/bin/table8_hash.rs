//! Binary wrapper for the `table8_hash` experiment.
//! Usage: `cargo run --release -p rip-bench --bin table8_hash -- [--scale tiny|quick|paper] [--scenes N]`

fn main() {
    let ctx = rip_bench::Context::from_args();
    let report = rip_bench::experiments::table8_hash::run(&ctx);
    println!("{report}");
}
