//! Extension (§4.2 future work): adaptive hash-function selection.
//!
//! Compares three predictors at the same 5.5 KB storage budget: the
//! paper's single 1024-entry Grid Spherical table, a single 1024-entry
//! Two Point table, and the tournament of two 512-entry tables with a
//! saturating selector ([`rip_core::AdaptivePredictor`]).

use crate::{fmt_pct, Context, Report, Table};
use rip_core::{
    trace_occlusion, AdaptivePredictor, HashFunction, PredictionStats, Predictor, PredictorConfig,
};

/// Runs the tournament comparison on every selected scene.
pub fn run(ctx: &Context) -> Report {
    let mut report = Report::new("Extension (§4.2): adaptive hash selection at constant budget");
    let mut table = Table::new(&[
        "Scene",
        "Grid Spherical v",
        "Two Point v",
        "Adaptive v",
        "Switches",
    ]);
    let mut adaptive_wins = 0usize;
    let mut rows = 0usize;
    let results = ctx.map_scenes("ext_adaptive_hash", &ctx.scene_ids(), |id| {
        let case = ctx.build_case_with_viewport(id, ctx.sweep_viewport());
        let batch = case.ao_batch();

        let run_pure = |hash: HashFunction| -> PredictionStats {
            let config = PredictorConfig {
                hash,
                ..PredictorConfig::paper_default()
            };
            let mut predictor = Predictor::new(config, case.bvh.bounds());
            for ray in batch.iter() {
                trace_occlusion(&mut predictor, &case.bvh, &ray);
            }
            predictor.stats()
        };
        let grid = run_pure(HashFunction::default());
        let two_point = run_pure(HashFunction::TwoPoint {
            origin_bits: 4,
            length_ratio: 0.15,
        });

        let mut adaptive = AdaptivePredictor::paper_budget(case.bvh.bounds());
        for ray in batch.iter() {
            adaptive.trace_occlusion(&case.bvh, &ray);
        }
        (
            grid.verified_rate(),
            two_point.verified_rate(),
            adaptive.stats(),
            adaptive.switches(),
        )
    });
    for (id, (grid_v, two_point_v, a, switches)) in ctx.scene_ids().into_iter().zip(results) {
        table.row(&[
            id.code().to_string(),
            fmt_pct(grid_v),
            fmt_pct(two_point_v),
            fmt_pct(a.verified_rate()),
            format!("{switches}"),
        ]);
        report.metric(format!("adaptive_v_{}", id.code()), a.verified_rate());
        let best_pure = grid_v.max(two_point_v);
        if a.verified_rate() >= best_pure - 0.03 {
            adaptive_wins += 1;
        }
        rows += 1;
    }
    report.line(table.render());
    report.line(format!(
        "The tournament tracked within 3 points of the better pure hash on {adaptive_wins}/{rows} \
         scenes while halving each table — evidence that the paper's proposed hash combination \
         is implementable without extra storage.",
    ));
    report.metric("scenes_within_3pp", adaptive_wins as f64);
    report
}
