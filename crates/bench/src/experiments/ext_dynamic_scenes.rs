//! Extension (§8 future work): dynamic scenes and animation.
//!
//! The paper's conclusion suggests that "predictor states could
//! potentially be preserved between frames and the predictor retrained
//! only for dynamic elements". This experiment evaluates that hypothesis:
//! a benchmark scene animates a subset of its triangles over several
//! frames, the BVH is *refitted* each frame (node ids stable), and the
//! predictor runs under two policies — flushed every frame versus
//! persisted across frames.

use crate::{fmt_pct, Context, Report, Table};
use rip_core::{trace_occlusion, PredictionStats, Predictor, PredictorConfig};
use rip_render::{AnimatedScene, AoConfig, AoWorkload};

/// Frames simulated per scene.
const FRAMES: u32 = 4;

/// Runs the cross-frame persistence study on a subset of scenes.
pub fn run(ctx: &Context) -> Report {
    let mut report = Report::new("Extension (§8): predictor persistence across animated frames");
    let scene_ids = ctx.scene_ids();
    let subset = &scene_ids[..scene_ids.len().min(3)];
    let mut table = Table::new(&[
        "Scene",
        "Policy",
        "Frame-0 v",
        "Later-frame v (mean)",
        "Warm-up gain",
    ]);
    let mut gains = Vec::new();
    let results = ctx.map_scenes("ext_dynamic_scenes", subset, |id| {
        let case = ctx.build_case_with_viewport(id, ctx.sweep_viewport());
        let scene = &case.scene;
        [false, true].map(|persist| {
            let mut animated = AnimatedScene::new(scene, 0.08, 0.02);
            let mut predictor =
                Predictor::new(PredictorConfig::paper_default(), animated.bvh().bounds());
            let mut per_frame_v = Vec::new();
            for frame in 0..FRAMES {
                if frame > 0 {
                    animated.advance_frame();
                    if !persist {
                        predictor.clear_learned_state();
                    }
                }
                let before = predictor.stats();
                let workload = AoWorkload::generate(
                    scene,
                    animated.bvh(),
                    &AoConfig {
                        seed: 0xF0 + frame as u64,
                        ..AoConfig::default()
                    },
                );
                for ray in workload.batch().iter() {
                    trace_occlusion(&mut predictor, animated.bvh(), &ray);
                }
                per_frame_v.push(frame_verified_rate(&before, &predictor.stats()));
            }
            let later = per_frame_v[1..].iter().sum::<f64>() / (FRAMES - 1) as f64;
            (per_frame_v[0], later)
        })
    });
    for (&id, per_policy) in subset.iter().zip(results) {
        for (persist, (frame0, later)) in [false, true].into_iter().zip(per_policy) {
            let gain = later - frame0;
            table.row(&[
                id.code().to_string(),
                if persist { "persist" } else { "flush" }.to_string(),
                fmt_pct(frame0),
                fmt_pct(later),
                format!("{:+.1}pp", gain * 100.0),
            ]);
            if persist {
                gains.push(gain);
                report.metric(format!("persist_gain_{}", id.code()), gain);
            }
        }
    }
    report.line(table.render());
    let mean_gain = gains.iter().sum::<f64>() / gains.len().max(1) as f64;
    report.line(format!(
        "Persisting predictor state across refitted frames raises later-frame verified \
         rates by a mean of {:+.1} percentage points over frame 0; flushing resets the \
         warm-up every frame. This supports the paper's §8 hypothesis (BVH refit keeps \
         node ids — and therefore trained entries — valid).",
        mean_gain * 100.0
    ));
    report.metric("mean_persist_gain", mean_gain);
    report
}

/// Verified rate over just the rays traced between two stat snapshots.
fn frame_verified_rate(before: &PredictionStats, after: &PredictionStats) -> f64 {
    let rays = after.rays - before.rays;
    if rays == 0 {
        0.0
    } else {
        (after.verified - before.verified) as f64 / rays as f64
    }
}
