//! Extension: shadow-ray workloads.
//!
//! §2.2 argues the predictor's memoization "benefits occlusion rays, such
//! as AO and shadow rays". The paper evaluates AO; this experiment applies
//! the identical predictor to point-light shadow rays and reports the same
//! rate/savings metrics.

use crate::{fmt_pct, Context, Report, Table};
use rip_core::{FunctionalSim, PredictorConfig, SimOptions};
use rip_render::{ShadowConfig, ShadowWorkload};

/// Runs the shadow-ray study on every selected scene.
pub fn run(ctx: &Context) -> Report {
    let mut report = Report::new("Extension: shadow rays through the AO predictor");
    let mut table = Table::new(&[
        "Scene",
        "Shadow rays",
        "Shadowed",
        "Predicted",
        "Verified",
        "Node savings",
    ]);
    let mut savings = Vec::new();
    let results = ctx.map_cases("ext_shadow_rays", |case| {
        let workload = ShadowWorkload::generate(&case.scene, &case.bvh, &ShadowConfig::default());
        if workload.rays.is_empty() {
            return None;
        }
        let sim = FunctionalSim::new(
            PredictorConfig::paper_default(),
            SimOptions {
                classify_accesses: false,
                ..SimOptions::default()
            },
        );
        let r = sim.run_batch(&case.bvh, &workload.batch());
        Some((
            workload.rays.len(),
            r.prediction.hit_rate(),
            r.prediction.predicted_rate(),
            r.prediction.verified_rate(),
            r.node_savings(),
        ))
    });
    for (id, result) in ctx.scene_ids().into_iter().zip(results) {
        let Some((rays, shadowed, predict, verify, saving)) = result else {
            continue;
        };
        table.row(&[
            id.code().to_string(),
            format!("{rays}"),
            fmt_pct(shadowed),
            fmt_pct(predict),
            fmt_pct(verify),
            fmt_pct(saving),
        ]);
        report.metric(format!("node_savings_{}", id.code()), saving);
        savings.push(saving);
    }
    let mean = savings.iter().sum::<f64>() / savings.len().max(1) as f64;
    report.line(table.render());
    report.line(format!(
        "Mean node-fetch savings on shadow rays: {} — the §2.2 claim that shadow rays \
         are the same predictable occlusion class as AO holds, with smaller gains because \
         one ray per light gives the table fewer similar rays to train on.",
        fmt_pct(mean)
    ));
    report.metric("mean_node_savings", mean);
    report
}
