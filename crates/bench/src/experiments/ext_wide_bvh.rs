//! Extension (§7 related work): four-wide BVH traversal as an
//! acceleration-structure ablation.
//!
//! The paper notes that wide-BVH optimizations (Ylitie et al.) "should
//! also work in parallel with our proposed ray intersection predictor".
//! This ablation quantifies the substrate side of that claim: collapsing
//! the binary BVH to 4-wide nodes cuts interior fetches per AO ray, which
//! shrinks `n` in Equation 1 — the same budget the predictor competes for.

use crate::{Context, Report, Table};
use rip_bvh::{TraversalKernel, WhileWhileKernel, WideBvh, WideKernel};

/// Compares binary vs 4-wide traversal work on the AO workloads.
pub fn run(ctx: &Context) -> Report {
    let mut report = Report::new("Extension (§7): 4-wide BVH traversal ablation");
    let mut table = Table::new(&[
        "Scene",
        "Binary nodes",
        "Wide nodes",
        "Binary fetches/ray",
        "Wide fetches/ray",
        "Fetch reduction",
    ]);
    let scene_ids = ctx.scene_ids();
    let subset = &scene_ids[..scene_ids.len().min(4)];
    let mut reductions = Vec::new();
    let results = ctx.map_scenes("ext_wide_bvh", subset, |id| {
        let case = ctx.build_case_with_viewport(id, ctx.sweep_viewport());
        let wide = WideBvh::from_binary(&case.bvh);
        let batch = case.ao_batch();
        let binary_results = WhileWhileKernel::new(&case.bvh).any_hit_batch(&batch);
        let wide_results = WideKernel::new(&wide, &case.bvh).any_hit_batch(&batch);
        let mut binary_fetches = 0u64;
        let mut wide_fetches = 0u64;
        for (b, w) in binary_results.iter().zip(&wide_results) {
            debug_assert_eq!(b.hit.is_some(), w.hit.is_some());
            binary_fetches += b.stats.node_fetches();
            wide_fetches += w.stats.interior_fetches + w.stats.leaf_fetches;
        }
        let n = batch.len().max(1) as f64;
        (
            case.bvh.node_count(),
            wide.node_count(),
            binary_fetches,
            wide_fetches,
            n,
        )
    });
    for (&id, (bin_nodes, wide_nodes, binary_fetches, wide_fetches, n)) in
        subset.iter().zip(results)
    {
        let reduction = 1.0 - wide_fetches as f64 / binary_fetches.max(1) as f64;
        table.row(&[
            id.code().to_string(),
            format!("{bin_nodes}"),
            format!("{wide_nodes}"),
            format!("{:.2}", binary_fetches as f64 / n),
            format!("{:.2}", wide_fetches as f64 / n),
            format!("{:.1}%", reduction * 100.0),
        ]);
        report.metric(format!("fetch_reduction_{}", id.code()), reduction);
        reductions.push(reduction);
    }
    let mean = reductions.iter().sum::<f64>() / reductions.len().max(1) as f64;
    report.line(table.render());
    report.line(format!(
        "Mean node-fetch reduction from 4-wide collapse: {:.1}%. Wide traversal shrinks \
         the full-traversal cost n of Equation 1, so a predictor on a wide AS competes \
         for a smaller (but still dominant) budget — the two techniques address the same \
         traffic from opposite ends, as §7 anticipates.",
        mean * 100.0
    ));
    report.metric("mean_fetch_reduction", mean);
    report
}
