//! Extension (§7): the predictor composed over every traversal kernel.
//!
//! §7 anticipates that wide-BVH traversal "should also work in parallel
//! with our proposed ray intersection predictor". With the predictor
//! packaged as a wrapper kernel ([`rip_core::Predicted`]) that claim is
//! directly testable: this experiment runs the AO workload through the
//! bare and predicted variants of all three BVH kernels — while-while,
//! stackless restart-trail, and 4-wide — and reports fetches per ray,
//! memory savings, and verified rates side by side.

use crate::{fmt_pct, Context, Report, Table};
use rip_bvh::{
    Bvh, RayBatch, StacklessKernel, TraversalKernel, WhileWhileKernel, WideBvh, WideKernel,
};
use rip_core::{Predicted, PredictorConfig};

/// Per-kernel outcome: bare fetches/ray, predicted fetches/ray, verified.
struct KernelRow {
    bare_per_ray: f64,
    predicted_per_ray: f64,
    verified: f64,
}

/// Traces `batch` through a bare kernel and its predicted wrapper, checking
/// that prediction never changes an occlusion answer.
fn eval<B: TraversalKernel, W: TraversalKernel>(
    batch: &RayBatch,
    mut bare: B,
    mut wrapped: Predicted<'_, W>,
) -> KernelRow {
    let bare_results = bare.any_hit_batch(batch);
    let pred_results = wrapped.any_hit_batch(batch);
    let mut bare_fetches = 0u64;
    let mut pred_fetches = 0u64;
    for (i, (b, p)) in bare_results.iter().zip(&pred_results).enumerate() {
        assert_eq!(
            b.hit.is_some(),
            p.hit.is_some(),
            "{}: prediction changed the occlusion answer for ray {i}",
            wrapped.name()
        );
        bare_fetches += b.stats.node_fetches();
        pred_fetches += p.stats.node_fetches();
    }
    let n = batch.len().max(1) as f64;
    KernelRow {
        bare_per_ray: bare_fetches as f64 / n,
        predicted_per_ray: pred_fetches as f64 / n,
        verified: wrapped.predictor().stats().verified_rate(),
    }
}

/// Kernel labels in presentation order.
const KERNELS: [&str; 3] = ["while-while", "stackless", "wide4"];

/// Runs the predictor × traversal-kernel cross on a subset of scenes.
pub fn run(ctx: &Context) -> Report {
    let mut report = Report::new("Extension (§7): predictor × traversal-kernel cross");
    let mut table = Table::new(&[
        "Scene",
        "Kernel",
        "Bare fetches/ray",
        "Predicted fetches/ray",
        "Savings",
        "Verified",
    ]);
    let scene_ids = ctx.scene_ids();
    let subset = &scene_ids[..scene_ids.len().min(3)];
    let mut per_kernel_savings = vec![Vec::new(); KERNELS.len()];
    let mut per_kernel_verified = vec![Vec::new(); KERNELS.len()];
    let results = ctx.map_scenes("ext_wide_predictor", subset, |id| {
        let case = ctx.build_case_with_viewport(id, ctx.sweep_viewport());
        let bvh: &Bvh = &case.bvh;
        let wide = WideBvh::from_binary(bvh);
        let batch = case.ao_batch();
        let config = PredictorConfig::paper_default;
        [
            eval(
                &batch,
                WhileWhileKernel::new(bvh),
                Predicted::new(bvh, config(), WhileWhileKernel::new(bvh)),
            ),
            eval(
                &batch,
                StacklessKernel::new(bvh),
                Predicted::new(bvh, config(), StacklessKernel::new(bvh)),
            ),
            eval(
                &batch,
                WideKernel::new(&wide, bvh),
                Predicted::new(bvh, config(), WideKernel::new(&wide, bvh)),
            ),
        ]
    });
    for (&id, rows) in subset.iter().zip(results) {
        for (i, (label, row)) in KERNELS.iter().zip(rows).enumerate() {
            let savings = 1.0 - row.predicted_per_ray / row.bare_per_ray.max(1e-12);
            table.row(&[
                id.code().to_string(),
                label.to_string(),
                format!("{:.2}", row.bare_per_ray),
                format!("{:.2}", row.predicted_per_ray),
                fmt_pct(savings),
                fmt_pct(row.verified),
            ]);
            per_kernel_savings[i].push(savings);
            per_kernel_verified[i].push(row.verified);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    report.line(table.render());
    for (i, label) in KERNELS.iter().enumerate() {
        let s = mean(&per_kernel_savings[i]);
        let v = mean(&per_kernel_verified[i]);
        report.line(format!(
            "Mean over scenes — predicted({label}): node-fetch savings {}, verified {}.",
            fmt_pct(s),
            fmt_pct(v)
        ));
        report.metric(format!("savings_{label}"), s);
        report.metric(format!("verified_{label}"), v);
    }
    report.line(
        "The predictor composes with all three kernels without changing any occlusion \
         answer. Wide traversal already fetches fewer nodes per ray, so the same verified \
         rate buys a smaller (but still positive) saving — the two techniques stack, as \
         §7 anticipates.",
    );
    report
}
