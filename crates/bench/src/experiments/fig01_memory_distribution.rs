//! Figure 1: distribution of memory accesses for AO workloads (left) and
//! speedups of varying L1 cache sizes without the predictor (right).

use crate::{fmt_pct, Context, Report, Table};
use rip_core::{FunctionalSim, PredictorConfig, SimOptions};

/// Regenerates both panels of Figure 1.
pub fn run(ctx: &Context) -> Report {
    let mut report = Report::new("Figure 1: AO memory-access distribution & L1 size sweep");

    // Left panel: classify baseline accesses. The paper reports ~88%
    // repeated BVH node accesses averaged over the seven scenes.
    let mut left = Table::new(&[
        "Scene",
        "Repeated node",
        "First-touch node",
        "Repeated tri",
        "First-touch tri",
    ]);
    let mut repeated_fracs = Vec::new();
    let left_results = ctx.map_cases("fig01_left", |case| {
        let batch = case.ao_batch();
        let sim = FunctionalSim::new(
            PredictorConfig::paper_default(),
            SimOptions {
                classify_accesses: true,
                ..SimOptions::default()
            },
        );
        let r = ctx.run_functional(&sim, case, &batch);
        let total = (r.first_touch_node_fetches
            + r.repeated_node_fetches
            + r.first_touch_tri_fetches
            + r.repeated_tri_fetches) as f64;
        let frac = |x: u64| if total == 0.0 { 0.0 } else { x as f64 / total };
        (
            [
                frac(r.repeated_node_fetches),
                frac(r.first_touch_node_fetches),
                frac(r.repeated_tri_fetches),
                frac(r.first_touch_tri_fetches),
            ],
            r.repeated_node_access_fraction(),
        )
    });
    for (id, (fracs, repeated)) in ctx.scene_ids().into_iter().zip(left_results) {
        let [rn, fn_, rt, ft] = fracs;
        left.row(&[
            id.code().to_string(),
            fmt_pct(rn),
            fmt_pct(fn_),
            fmt_pct(rt),
            fmt_pct(ft),
        ]);
        repeated_fracs.push(repeated);
    }
    let mean_repeated = repeated_fracs.iter().sum::<f64>() / repeated_fracs.len().max(1) as f64;
    report.line("Left panel — per-unique-ray access classification (paper: ~88% repeated node):");
    report.line(left.render());
    report.line(format!(
        "Average repeated-BVH-node fraction: {}",
        fmt_pct(mean_repeated)
    ));
    report.metric("mean_repeated_node_fraction", mean_repeated);

    // Right panel: baseline speedup vs L1 size (relative to 64 KB), first
    // scene subset to bound runtime.
    let sizes_kb = [16usize, 32, 64, 128, 256, 384, 512, 1024];
    let scene_ids = ctx.scene_ids();
    let sweep_scenes = &scene_ids[..scene_ids.len().min(3)];
    let mut right = Table::new(&["L1 size", "Speedup vs 64KB (geomean)"]);
    let mut per_size: Vec<Vec<f64>> = vec![Vec::new(); sizes_kb.len()];
    let right_results = ctx.map_scenes("fig01_right", sweep_scenes, |id| {
        let case = ctx.build_case_with_viewport(id, ctx.sweep_viewport());
        let batch = case.ao_batch();
        let cycles: Vec<f64> = sizes_kb
            .iter()
            .map(|&kb| {
                let mut cfg = ctx.gpu_baseline();
                cfg.l1 = cfg.l1.with_size(kb * 1024);
                ctx.simulator_for(cfg, &case, &batch)
                    .run_batch(&case.bvh, &batch)
                    .cycles as f64
            })
            .collect();
        let base = cycles[sizes_kb
            .iter()
            .position(|&k| k == 64)
            .expect("64KB present")];
        cycles.into_iter().map(|c| base / c).collect::<Vec<_>>()
    });
    for per_scene in right_results {
        for (i, speedup) in per_scene.into_iter().enumerate() {
            per_size[i].push(speedup);
        }
    }
    for (i, &kb) in sizes_kb.iter().enumerate() {
        let gm = super::geomean_or_one(per_size[i].iter().copied());
        right.row(&[format!("{kb}KB"), format!("{gm:.3}")]);
        report.metric(format!("l1_speedup_{kb}kb"), gm);
    }
    report.line("Right panel — baseline (no predictor) speedup vs L1 capacity:");
    report.line(right.render());
    report
}
