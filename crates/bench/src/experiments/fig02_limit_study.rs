//! Figure 2 / §6.3: the limit study — memory savings and verified rates
//! for the realistic predictor and the OL / OT / OU oracle ladder.

use crate::{fmt_pct, Context, Report, Table};
use rip_core::{FunctionalSim, OracleMode, PredictorConfig, SimOptions};

/// Regenerates the limit study (paper: Predictor ≈13% savings / 27%
/// verified; OL 24% / 38%; OT up to 58% savings; OU +0.25% more).
pub fn run(ctx: &Context) -> Report {
    let mut report = Report::new("Figure 2 / §6.3: limit study (oracle ladder)");
    let modes = [
        OracleMode::None,
        OracleMode::Lookup,
        OracleMode::UnboundedTraining,
        OracleMode::ImmediateUpdates,
    ];
    let mut table = Table::new(&["Mode", "Memory savings", "Verified rays", "Predicted rays"]);
    let mut per_mode_savings = vec![Vec::new(); modes.len()];
    let mut per_mode_verified = vec![Vec::new(); modes.len()];
    let mut per_mode_predicted = vec![Vec::new(); modes.len()];
    let results = ctx.map_cases("fig02_limit_study", |case| {
        let batch = case.ao_batch();
        modes
            .iter()
            .map(|&mode| {
                let config = PredictorConfig::paper_default().with_oracle(mode);
                let sim = FunctionalSim::new(
                    config,
                    SimOptions {
                        classify_accesses: false,
                        ..SimOptions::default()
                    },
                );
                let r = ctx.run_functional(&sim, case, &batch);
                (
                    r.memory_savings(),
                    r.prediction.verified_rate(),
                    r.prediction.predicted_rate(),
                )
            })
            .collect::<Vec<_>>()
    });
    for per_scene in results {
        for (i, (saving, verify, predict)) in per_scene.into_iter().enumerate() {
            per_mode_savings[i].push(saving);
            per_mode_verified[i].push(verify);
            per_mode_predicted[i].push(predict);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    for (i, &mode) in modes.iter().enumerate() {
        let s = mean(&per_mode_savings[i]);
        let v = mean(&per_mode_verified[i]);
        let p = mean(&per_mode_predicted[i]);
        table.row(&[mode.label().to_string(), fmt_pct(s), fmt_pct(v), fmt_pct(p)]);
        report.metric(format!("savings_{}", mode.label()), s);
        report.metric(format!("verified_{}", mode.label()), v);
    }
    report.line(table.render());
    report.line(
        "Paper reference: Predictor 13% / 27%; OL doubles savings (24%) with 38% verified; \
         unbounded training (OT) reaches up to 58% savings; immediate updates (OU) add ~0.25%.",
    );
    report
}
