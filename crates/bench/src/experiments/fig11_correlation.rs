//! Figure 11: correlation between the simulated RT unit and an
//! independent hardware reference model.
//!
//! The paper correlates simulated rays/s against an RTX 2080 Ti for
//! primary and reflection rays (r = 0.9). We substitute the analytic
//! reference model of [`rip_render::reference_rays_per_second`]
//! (DESIGN.md §2) and report the same correlation coefficient.

use crate::{Context, Report, Table};

use rip_render::{GiConfig, GiWorkload, ReferenceInput};

/// Core clock used to convert cycles to rays/s (Table 2).
const CORE_MHZ: f64 = 1365.0;

/// Regenerates the correlation study over primary and reflection rays.
pub fn run(ctx: &Context) -> Report {
    let mut report = Report::new("Figure 11: RT-unit vs reference-model correlation");
    let mut table = Table::new(&["Scene", "Ray type", "Sim Mrays/s", "Reference Mrays/s"]);
    let mut sim_points = Vec::new();
    let mut ref_points = Vec::new();
    let results = ctx.map_scenes("fig11_correlation", &ctx.scene_ids(), |id| {
        let case = ctx.build_case_with_viewport(id, ctx.sweep_viewport());
        // Primary rays (generation 0) and reflection-like bounce rays
        // (generation 1) from the GI path generator.
        let gi = GiWorkload::generate(
            &case.scene,
            &case.bvh,
            &GiConfig {
                bounces: 1,
                seed: 11,
            },
        );
        // Generation batches: 0 = primary, 1 = reflection-like bounces.
        let batches = gi.generation_batches();
        let mut points = Vec::new();
        for (&label, batch) in ["primary", "reflection"].iter().zip(&batches) {
            if batch.len() < 64 {
                continue;
            }
            let sim = ctx
                .simulator(ctx.gpu_baseline())
                .run_batch(&case.bvh, batch);
            let sim_rps = sim.rays_per_second(CORE_MHZ);
            let mean_nodes = sim.traversal.node_fetches() as f64 / sim.completed_rays.max(1) as f64;
            let mean_tris = sim.traversal.tri_fetches as f64 / sim.completed_rays.max(1) as f64;
            let reference = rip_render::reference_rays_per_second(&ReferenceInput {
                mean_node_fetches: mean_nodes,
                mean_tri_fetches: mean_tris,
                footprint_mb: case.bvh.layout().footprint_bytes() as f64 / (1024.0 * 1024.0),
            });
            points.push((label, sim_rps, reference));
        }
        points
    });
    for (id, points) in ctx.scene_ids().into_iter().zip(results) {
        for (label, sim_rps, reference) in points {
            table.row(&[
                id.code().to_string(),
                label.to_string(),
                format!("{:.2}", sim_rps / 1e6),
                format!("{:.2}", reference / 1e6),
            ]);
            sim_points.push(sim_rps);
            ref_points.push(reference);
        }
    }
    report.line(table.render());
    let r = rip_math::pearson(&sim_points, &ref_points).unwrap_or(0.0);
    report.line(format!(
        "Pearson correlation: {r:.3} over {} points (paper: 0.9 vs RTX 2080 Ti).",
        sim_points.len()
    ));
    report
        .line("Note: the reference is an analytic RT-Core model, not hardware — see DESIGN.md §2.");
    report.metric("correlation", r);
    report
}
