//! Figure 12: the headline result — speedup of the proposed predictor
//! (with repacking) over the baseline RT unit, for unsorted and
//! Morton-sorted rays.

use crate::{Context, Report, Table};

/// Regenerates Figure 12 (paper: 26% geometric-mean speedup on unsorted
/// rays; sorted rays benefit less because similar rays are traced close
/// together and do not train the predictor).
pub fn run(ctx: &Context) -> Report {
    let mut report = Report::new("Figure 12: predictor speedup over baseline RT unit");
    let mut table = Table::new(&[
        "Scene",
        "Unsorted speedup",
        "Sorted speedup",
        "v (unsorted)",
    ]);
    let mut unsorted_speedups = Vec::new();
    let mut sorted_speedups = Vec::new();
    let results = ctx.map_cases("fig12_speedup", |case| {
        let workload = case.ao_workload();
        let unsorted = workload.batch();
        let sorted = workload.sorted(&case.bvh).batch();

        let base_u = ctx
            .simulator(ctx.gpu_baseline())
            .run_batch(&case.bvh, &unsorted);
        let pred_u = ctx
            .simulator(ctx.gpu_predictor())
            .run_batch(&case.bvh, &unsorted);
        let base_s = ctx
            .simulator(ctx.gpu_baseline())
            .run_batch(&case.bvh, &sorted);
        let pred_s = ctx
            .simulator(ctx.gpu_predictor())
            .run_batch(&case.bvh, &sorted);

        assert_eq!(
            base_u.hits, pred_u.hits,
            "{}: prediction changed visibility",
            case.id
        );
        (
            pred_u.speedup_over(&base_u),
            pred_s.speedup_over(&base_s),
            pred_u.prediction.verified_rate(),
        )
    });
    for (id, (su, ss, verified)) in ctx.scene_ids().into_iter().zip(results) {
        table.row(&[
            id.code().to_string(),
            format!("{su:.3}"),
            format!("{ss:.3}"),
            format!("{verified:.3}"),
        ]);
        report.metric(format!("speedup_{}", id.code()), su);
        unsorted_speedups.push(su);
        sorted_speedups.push(ss);
    }
    let gm_u = super::geomean_or_one(unsorted_speedups);
    let gm_s = super::geomean_or_one(sorted_speedups);
    report.line(table.render());
    report.line(format!(
        "Geomean speedup — unsorted: {gm_u:.3}, sorted: {gm_s:.3} (paper: 1.26 unsorted, \
         smaller gains sorted)."
    ));
    report.metric("geomean_unsorted", gm_u);
    report.metric("geomean_sorted", gm_s);
    report
}
