//! Figure 13: memory accesses and predictor overheads relative to the
//! baseline RT unit.

use crate::{fmt_pct, Context, Report, Table};
use rip_core::{FunctionalSim, PredictorConfig, SimOptions};

/// Regenerates Figure 13 (paper: −13% net memory accesses, +9% predictor
/// overhead of which 5.5% is wasteful mispredictions, −12% interior node
/// accesses, −2% primitive accesses).
pub fn run(ctx: &Context) -> Report {
    let mut report = Report::new("Figure 13: memory accesses and predictor overheads");
    let mut table = Table::new(&[
        "Scene",
        "Net accesses",
        "Node savings",
        "Tri savings",
        "Overhead",
        "Wasteful",
    ]);
    let mut nets = Vec::new();
    let mut nodes = Vec::new();
    let mut tris = Vec::new();
    let mut overheads = Vec::new();
    let mut wastes = Vec::new();
    let results = ctx.map_cases("fig13_memory_accesses", |case| {
        let batch = case.ao_batch();
        let sim = FunctionalSim::new(
            PredictorConfig::paper_default(),
            SimOptions {
                classify_accesses: false,
                ..SimOptions::default()
            },
        );
        let r = ctx.run_functional(&sim, case, &batch);
        (
            r.memory_savings(),
            r.node_savings(),
            r.tri_savings(),
            r.prediction_overhead_fraction(),
            r.wasted_fraction(),
        )
    });
    for (id, (net, node, tri, overhead, waste)) in ctx.scene_ids().into_iter().zip(results) {
        table.row(&[
            id.code().to_string(),
            format!("{:.3}", 1.0 - net),
            fmt_pct(node),
            fmt_pct(tri),
            fmt_pct(overhead),
            fmt_pct(waste),
        ]);
        nets.push(net);
        nodes.push(node);
        tris.push(tri);
        overheads.push(overhead);
        wastes.push(waste);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    report.line(table.render());
    report.line(format!(
        "Averages — net access reduction {}, node fetch reduction {}, triangle reduction {}, \
         predictor overhead +{}, wasteful {} (paper: −13%, −12%, −2%, +9%, 5.5%).",
        fmt_pct(mean(&nets)),
        fmt_pct(mean(&nodes)),
        fmt_pct(mean(&tris)),
        fmt_pct(mean(&overheads)),
        fmt_pct(mean(&wastes)),
    ));
    report.metric("mean_net_savings", mean(&nets));
    report.metric("mean_node_savings", mean(&nodes));
    report.metric("mean_overhead", mean(&overheads));
    report.metric("mean_wasteful", mean(&wastes));
    report
}
