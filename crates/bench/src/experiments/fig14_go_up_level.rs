//! Figure 14: Go Up Level sweep — verified rate rises with the level while
//! memory savings peak and fall (§6.2.1).

use crate::{fmt_pct, Context, Report, Table};
use rip_core::{FunctionalSim, PredictorConfig, SimOptions};

/// Regenerates Figure 14 over Go Up Levels 0–5 (paper: verified rate
/// increases monotonically; savings peak around level 3–5; level 3 gives
/// the best end-to-end performance).
pub fn run(ctx: &Context) -> Report {
    let mut report = Report::new("Figure 14: Go Up Level tradeoff");
    let levels = [0u32, 1, 2, 3, 4, 5];
    let mut verified = vec![Vec::new(); levels.len()];
    let mut savings = vec![Vec::new(); levels.len()];
    let mut m_costs = vec![Vec::new(); levels.len()];
    let results = ctx.map_cases("fig14_go_up_level", |case| {
        let batch = case.ao_batch();
        levels
            .iter()
            .map(|&gul| {
                let config = PredictorConfig {
                    go_up_level: gul,
                    ..PredictorConfig::paper_default()
                };
                let sim = FunctionalSim::new(
                    config,
                    SimOptions {
                        classify_accesses: false,
                        ..SimOptions::default()
                    },
                );
                let r = ctx.run_functional(&sim, case, &batch);
                (
                    r.prediction.verified_rate(),
                    r.memory_savings(),
                    r.prediction.mean_m(),
                )
            })
            .collect::<Vec<_>>()
    });
    for per_scene in results {
        for (i, (verify, saving, m)) in per_scene.into_iter().enumerate() {
            verified[i].push(verify);
            savings[i].push(saving);
            m_costs[i].push(m);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let mut table = Table::new(&[
        "Go Up Level",
        "Verified rays",
        "Memory savings",
        "m (fetches/pred)",
    ]);
    for (i, &gul) in levels.iter().enumerate() {
        let v = mean(&verified[i]);
        let s = mean(&savings[i]);
        table.row(&[
            format!("{gul}"),
            fmt_pct(v),
            fmt_pct(s),
            format!("{:.2}", mean(&m_costs[i])),
        ]);
        report.metric(format!("verified_gul{gul}"), v);
        report.metric(format!("savings_gul{gul}"), s);
    }
    report.line(table.render());
    report.line(
        "Paper: verified rate rises with level (slightly different leaves share ancestors) \
         while each prediction costs more fetches (m); savings peak then flatten — level 3 \
         performs best end-to-end.",
    );
    report
}
