//! Figure 15: warp repacking — Default (no repacking), Repack, and Repack
//! with four additional warps, relative to the baseline RT unit (§6.2.2).

use crate::{Context, Report, Table};
use rip_gpusim::RepackMode;

/// Regenerates Figure 15 (paper: Default sometimes slows down; Repack
/// improves on Default by a geomean 17%; four additional warps add ~7%).
pub fn run(ctx: &Context) -> Report {
    let mut report = Report::new("Figure 15: warp repacking");
    let modes = [
        ("Default", RepackMode::Off),
        ("Repack", RepackMode::On),
        ("Repack 4", RepackMode::WithExtraWarps(4)),
    ];
    let mut table = Table::new(&["Scene", "Default", "Repack", "Repack 4"]);
    let mut per_mode: Vec<Vec<f64>> = vec![Vec::new(); modes.len()];
    let results = ctx.map_cases("fig15_repacking", |case| {
        let batch = case.ao_batch();
        let baseline = ctx
            .simulator_for(ctx.gpu_baseline(), case, &batch)
            .run_batch(&case.bvh, &batch);
        modes
            .iter()
            .map(|(_, mode)| {
                let mut cfg = ctx.gpu_predictor();
                cfg.repack = *mode;
                ctx.simulator_for(cfg, case, &batch)
                    .run_batch(&case.bvh, &batch)
                    .speedup_over(&baseline)
            })
            .collect::<Vec<f64>>()
    });
    for (id, speedups) in ctx.scene_ids().into_iter().zip(results) {
        let mut cells = vec![id.code().to_string()];
        for (i, speedup) in speedups.into_iter().enumerate() {
            cells.push(format!("{speedup:.3}"));
            per_mode[i].push(speedup);
        }
        table.row(&cells);
    }
    report.line(table.render());
    for (i, (label, _)) in modes.iter().enumerate() {
        let gm = super::geomean_or_one(per_mode[i].iter().copied());
        report.line(format!("Geomean {label}: {gm:.3}"));
        report.metric(
            format!("geomean_{}", label.replace(' ', "_").to_lowercase()),
            gm,
        );
    }
    report.line(
        "Paper: repacking separates predicted from not-predicted rays so mispredicted \
         long-tail threads no longer delay whole warps (+17% over Default); allowing four \
         extra concurrent warps adds ~7% more.",
    );
    report
}
