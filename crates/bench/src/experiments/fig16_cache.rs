//! Figure 16: cache hit rates and speedups for varying cache
//! configurations, including a dedicated RT cache (§6.2.3).

use crate::{fmt_pct, Context, Report, Table};
use rip_gpusim::CacheConfig;

/// Regenerates Figure 16 (paper: diminishing returns beyond a 64 KB L1;
/// a dedicated RT cache is an alternative placement).
pub fn run(ctx: &Context) -> Report {
    let mut report = Report::new("Figure 16: cache configurations");
    // (label, l1_kb, rt_cache_kb)
    let configs: [(&str, usize, Option<usize>); 6] = [
        ("L1 16KB", 16, None),
        ("L1 32KB", 32, None),
        ("L1 64KB (base)", 64, None),
        ("L1 128KB", 128, None),
        ("RT$ 16KB + L1 64KB", 64, Some(16)),
        ("RT$ 32KB + L1 64KB", 64, Some(32)),
    ];
    let scene_ids = ctx.scene_ids();
    let sweep = &scene_ids[..scene_ids.len().min(3)];
    let mut rows: Vec<(String, Vec<f64>, Vec<f64>)> = configs
        .iter()
        .map(|(label, _, _)| (label.to_string(), Vec::new(), Vec::new()))
        .collect();
    let results = ctx.map_scenes("fig16_cache", sweep, |id| {
        let case = ctx.build_case_with_viewport(id, ctx.sweep_viewport());
        let batch = case.ao_batch();
        let mut base_cycles = None;
        let mut per_config = Vec::new();
        for (i, &(_, l1_kb, rt_kb)) in configs.iter().enumerate() {
            let mut cfg = ctx.gpu_predictor();
            cfg.l1 = cfg.l1.with_size(l1_kb * 1024);
            cfg.rt_cache = rt_kb.map(|kb| CacheConfig {
                size_bytes: kb * 1024,
                line_bytes: 128,
                ways: usize::MAX,
            });
            let r = ctx
                .simulator_for(cfg, &case, &batch)
                .run_batch(&case.bvh, &batch);
            if configs[i].0.contains("base") {
                base_cycles = Some(r.cycles as f64);
            }
            let hit_rate = if r.memory.rt_cache.is_empty() {
                r.memory.l1_combined().hit_rate()
            } else {
                // Combined front-end hit rate: RT cache hits plus L1 hits
                // over all front-end accesses.
                let rt_hits: u64 = r.memory.rt_cache.iter().map(|c| c.hits).sum();
                let rt_acc: u64 = r.memory.rt_cache.iter().map(|c| c.accesses).sum();
                let l1 = r.memory.l1_combined();
                (rt_hits + l1.hits) as f64 / rt_acc.max(1) as f64
            };
            per_config.push((r.cycles as f64, hit_rate));
        }
        // Normalize this scene's cycles into speedups vs the 64KB base.
        let base = base_cycles.expect("base config present");
        per_config
            .into_iter()
            .map(|(cycles, hit_rate)| (base / cycles, hit_rate))
            .collect::<Vec<_>>()
    });
    for per_scene in results {
        for (i, (speedup, hit_rate)) in per_scene.into_iter().enumerate() {
            rows[i].1.push(speedup);
            rows[i].2.push(hit_rate);
        }
    }
    let mut table = Table::new(&["Configuration", "Hit rate", "Speedup vs 64KB L1"]);
    for (label, speedups, hit_rates) in &rows {
        let gm = super::geomean_or_one(speedups.iter().copied());
        let hr = hit_rates.iter().sum::<f64>() / hit_rates.len().max(1) as f64;
        table.row(&[label.clone(), fmt_pct(hr), format!("{gm:.3}")]);
        report.metric(format!("speedup_{label}"), gm);
    }
    report.line(table.render());
    report.line("Paper: returns diminish beyond 64KB; the RT cache placement is an alternative.");
    report
}
