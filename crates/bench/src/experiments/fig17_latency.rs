//! Figure 17: latency sensitivity — intersection-test latency, predictor
//! access latency, and predictor bandwidth (§6.2.4).

use crate::{Context, Report, Table};

/// Regenerates Figure 17 (paper: intersection latency matters most; the
/// predictor's own latency and bandwidth barely move the result because
/// only one prediction is made per ray).
pub fn run(ctx: &Context) -> Report {
    let mut report = Report::new("Figure 17: latency sensitivity");
    let scene_ids = ctx.scene_ids();
    let sweep = &scene_ids[..scene_ids.len().min(3)];

    let isect_latencies = [1u64, 2, 4, 8, 16];
    let pred_latencies = [1u64, 2, 4, 8];
    let pred_ports = [1u64, 2, 4, 8];

    let mut isect_speedups = vec![Vec::new(); isect_latencies.len()];
    let mut lat_speedups = vec![Vec::new(); pred_latencies.len()];
    let mut port_speedups = vec![Vec::new(); pred_ports.len()];

    let results = ctx.map_scenes("fig17_latency", sweep, |id| {
        let case = ctx.build_case_with_viewport(id, ctx.sweep_viewport());
        let batch = case.ao_batch();

        let isect: Vec<f64> = isect_latencies
            .iter()
            .map(|&lat| {
                let mut base = ctx.gpu_baseline();
                base.latency.intersection = lat;
                let mut pred = ctx.gpu_predictor();
                pred.latency.intersection = lat;
                let b = ctx
                    .simulator_for(base, &case, &batch)
                    .run_batch(&case.bvh, &batch);
                let p = ctx
                    .simulator_for(pred, &case, &batch)
                    .run_batch(&case.bvh, &batch);
                p.speedup_over(&b)
            })
            .collect();
        let baseline = ctx
            .simulator_for(ctx.gpu_baseline(), &case, &batch)
            .run_batch(&case.bvh, &batch);
        let lat: Vec<f64> = pred_latencies
            .iter()
            .map(|&lat| {
                let mut pred = ctx.gpu_predictor();
                pred.predictor_unit.access_latency = lat;
                ctx.simulator_for(pred, &case, &batch)
                    .run_batch(&case.bvh, &batch)
                    .speedup_over(&baseline)
            })
            .collect();
        let ports: Vec<f64> = pred_ports
            .iter()
            .map(|&ports| {
                let mut pred = ctx.gpu_predictor();
                pred.predictor_unit.ports = ports;
                ctx.simulator_for(pred, &case, &batch)
                    .run_batch(&case.bvh, &batch)
                    .speedup_over(&baseline)
            })
            .collect();
        (isect, lat, ports)
    });
    for (isect, lat, ports) in results {
        for (i, s) in isect.into_iter().enumerate() {
            isect_speedups[i].push(s);
        }
        for (i, s) in lat.into_iter().enumerate() {
            lat_speedups[i].push(s);
        }
        for (i, s) in ports.into_iter().enumerate() {
            port_speedups[i].push(s);
        }
    }

    let mut table = Table::new(&["Parameter", "Value", "Predictor speedup (geomean)"]);
    for (i, &lat) in isect_latencies.iter().enumerate() {
        let gm = super::geomean_or_one(isect_speedups[i].iter().copied());
        table.row(&[
            "Intersection latency".to_string(),
            format!("{lat} cyc"),
            format!("{gm:.3}"),
        ]);
        report.metric(format!("isect_lat_{lat}"), gm);
    }
    for (i, &lat) in pred_latencies.iter().enumerate() {
        let gm = super::geomean_or_one(lat_speedups[i].iter().copied());
        table.row(&[
            "Predictor latency".to_string(),
            format!("{lat} cyc"),
            format!("{gm:.3}"),
        ]);
        report.metric(format!("pred_lat_{lat}"), gm);
    }
    for (i, &ports) in pred_ports.iter().enumerate() {
        let gm = super::geomean_or_one(port_speedups[i].iter().copied());
        table.row(&[
            "Predictor ports".to_string(),
            format!("{ports}/cyc"),
            format!("{gm:.3}"),
        ]);
        report.metric(format!("pred_ports_{ports}"), gm);
    }
    report.line(table.render());
    report.line(
        "Paper: speedups fall as intersection latency grows; predictor latency/bandwidth \
         have little effect (one lookup per ray vs many intersection tests).",
    );
    report
}
