//! One module per reproduced table/figure. Every experiment is a pure
//! function `run(&Context) -> Report` so the binaries, `run_all` and the
//! integration tests share one implementation.

pub mod ext_adaptive_hash;
pub mod ext_dynamic_scenes;
pub mod ext_shadow_rays;
pub mod ext_wide_bvh;
pub mod fig01_memory_distribution;
pub mod fig02_limit_study;
pub mod fig11_correlation;
pub mod fig12_speedup;
pub mod fig13_memory_accesses;
pub mod fig14_go_up_level;
pub mod fig15_repacking;
pub mod fig16_cache;
pub mod fig17_latency;
pub mod sec613_node_replacement;
pub mod sec625_sm_sweep;
pub mod sec64_gi;
pub mod table1_scenes;
pub mod table4_energy;
pub mod table5_eq1;
pub mod table6_table_size;
pub mod table7_placement;
pub mod table8_hash;

use crate::{Context, Report};

/// An experiment entry point: pure function from context to report.
pub type Experiment = fn(&Context) -> Report;

/// Every experiment in paper order, as `(name, run)` pairs. This is the
/// schedule consumed by [`run_all`] and by the determinism tests.
pub const ALL: [(&str, Experiment); 22] = [
    ("table1_scenes", table1_scenes::run),
    ("fig01_memory_distribution", fig01_memory_distribution::run),
    ("fig02_limit_study", fig02_limit_study::run),
    ("fig11_correlation", fig11_correlation::run),
    ("fig12_speedup", fig12_speedup::run),
    ("fig13_memory_accesses", fig13_memory_accesses::run),
    ("table4_energy", table4_energy::run),
    ("table5_eq1", table5_eq1::run),
    ("table6_table_size", table6_table_size::run),
    ("table7_placement", table7_placement::run),
    ("table8_hash", table8_hash::run),
    ("sec613_node_replacement", sec613_node_replacement::run),
    ("fig14_go_up_level", fig14_go_up_level::run),
    ("fig15_repacking", fig15_repacking::run),
    ("fig16_cache", fig16_cache::run),
    ("fig17_latency", fig17_latency::run),
    ("sec625_sm_sweep", sec625_sm_sweep::run),
    ("sec64_gi", sec64_gi::run),
    ("ext_dynamic_scenes", ext_dynamic_scenes::run),
    ("ext_adaptive_hash", ext_adaptive_hash::run),
    ("ext_shadow_rays", ext_shadow_rays::run),
    ("ext_wide_bvh", ext_wide_bvh::run),
];

/// Runs every experiment in paper order.
///
/// Whole experiments are fanned over the shared job pool: each experiment
/// still parallelizes internally, but the global permit budget keeps the
/// total worker count bounded, so scheduling experiments concurrently
/// fills the machine even while one experiment is in a serial stretch.
/// Reports come back in paper order regardless of completion order.
pub fn run_all(ctx: &Context) -> Vec<Report> {
    ctx.runner("run_all")
        .run(&ALL, |(name, _)| (*name).to_string(), |&(_, run)| run(ctx))
        .into_iter()
        .map(|report| report.value)
        .collect()
}

/// Helper: geometric mean that tolerates empty input by returning 1.0.
pub(crate) fn geomean_or_one(values: impl IntoIterator<Item = f64>) -> f64 {
    rip_math::geometric_mean(values).unwrap_or(1.0)
}
