//! One module per reproduced table/figure. Every experiment is a pure
//! function `run(&Context) -> Report` so the binaries, `run_all` and the
//! integration tests share one implementation.

pub mod ext_adaptive_hash;
pub mod ext_shadow_rays;
pub mod ext_wide_bvh;
pub mod ext_dynamic_scenes;
pub mod fig01_memory_distribution;
pub mod fig02_limit_study;
pub mod fig11_correlation;
pub mod fig12_speedup;
pub mod fig13_memory_accesses;
pub mod fig14_go_up_level;
pub mod fig15_repacking;
pub mod fig16_cache;
pub mod fig17_latency;
pub mod sec613_node_replacement;
pub mod sec625_sm_sweep;
pub mod sec64_gi;
pub mod table1_scenes;
pub mod table4_energy;
pub mod table5_eq1;
pub mod table6_table_size;
pub mod table7_placement;
pub mod table8_hash;

use crate::{Context, Report};

/// Runs every experiment in paper order.
pub fn run_all(ctx: &Context) -> Vec<Report> {
    vec![
        table1_scenes::run(ctx),
        fig01_memory_distribution::run(ctx),
        fig02_limit_study::run(ctx),
        fig11_correlation::run(ctx),
        fig12_speedup::run(ctx),
        fig13_memory_accesses::run(ctx),
        table4_energy::run(ctx),
        table5_eq1::run(ctx),
        table6_table_size::run(ctx),
        table7_placement::run(ctx),
        table8_hash::run(ctx),
        sec613_node_replacement::run(ctx),
        fig14_go_up_level::run(ctx),
        fig15_repacking::run(ctx),
        fig16_cache::run(ctx),
        fig17_latency::run(ctx),
        sec625_sm_sweep::run(ctx),
        sec64_gi::run(ctx),
        ext_dynamic_scenes::run(ctx),
        ext_adaptive_hash::run(ctx),
        ext_shadow_rays::run(ctx),
        ext_wide_bvh::run(ctx),
    ]
}

/// Helper: geometric mean that tolerates empty input by returning 1.0.
pub(crate) fn geomean_or_one(values: impl IntoIterator<Item = f64>) -> f64 {
    rip_math::geometric_mean(values).unwrap_or(1.0)
}
