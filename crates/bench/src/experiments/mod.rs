//! One module per reproduced table/figure. Every experiment is a pure
//! function `run(&Context) -> Report` so the binaries, `run_all` and the
//! integration tests share one implementation.

pub mod ext_adaptive_hash;
pub mod ext_dynamic_scenes;
pub mod ext_shadow_rays;
pub mod ext_wide_bvh;
pub mod ext_wide_predictor;
pub mod fig01_memory_distribution;
pub mod fig02_limit_study;
pub mod fig11_correlation;
pub mod fig12_speedup;
pub mod fig13_memory_accesses;
pub mod fig14_go_up_level;
pub mod fig15_repacking;
pub mod fig16_cache;
pub mod fig17_latency;
pub mod sec613_node_replacement;
pub mod sec625_sm_sweep;
pub mod sec64_gi;
pub mod table1_scenes;
pub mod table4_energy;
pub mod table5_eq1;
pub mod table6_table_size;
pub mod table7_placement;
pub mod table8_hash;

use crate::{Context, Report};
use rip_exec::{fault, Fault, Journal, JournalEntry, RetryPolicy};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// An experiment entry point: pure function from context to report.
pub type Experiment = fn(&Context) -> Report;

/// Every experiment in paper order, as `(name, run)` pairs. This is the
/// schedule consumed by [`run_all`] and by the determinism tests.
pub const ALL: [(&str, Experiment); 23] = [
    ("table1_scenes", table1_scenes::run),
    ("fig01_memory_distribution", fig01_memory_distribution::run),
    ("fig02_limit_study", fig02_limit_study::run),
    ("fig11_correlation", fig11_correlation::run),
    ("fig12_speedup", fig12_speedup::run),
    ("fig13_memory_accesses", fig13_memory_accesses::run),
    ("table4_energy", table4_energy::run),
    ("table5_eq1", table5_eq1::run),
    ("table6_table_size", table6_table_size::run),
    ("table7_placement", table7_placement::run),
    ("table8_hash", table8_hash::run),
    ("sec613_node_replacement", sec613_node_replacement::run),
    ("fig14_go_up_level", fig14_go_up_level::run),
    ("fig15_repacking", fig15_repacking::run),
    ("fig16_cache", fig16_cache::run),
    ("fig17_latency", fig17_latency::run),
    ("sec625_sm_sweep", sec625_sm_sweep::run),
    ("sec64_gi", sec64_gi::run),
    ("ext_dynamic_scenes", ext_dynamic_scenes::run),
    ("ext_adaptive_hash", ext_adaptive_hash::run),
    ("ext_shadow_rays", ext_shadow_rays::run),
    ("ext_wide_bvh", ext_wide_bvh::run),
    ("ext_wide_predictor", ext_wide_predictor::run),
];

/// Runs every experiment in paper order.
///
/// Whole experiments are fanned over the shared job pool: each experiment
/// still parallelizes internally, but the global permit budget keeps the
/// total worker count bounded, so scheduling experiments concurrently
/// fills the machine even while one experiment is in a serial stretch.
/// Reports come back in paper order regardless of completion order.
pub fn run_all(ctx: &Context) -> Vec<Report> {
    ctx.runner("run_all")
        .run(&ALL, |(name, _)| (*name).to_string(), |&(_, run)| run(ctx))
        .into_iter()
        .map(|report| report.into_value())
        .collect()
}

/// One failed work unit of a fault-isolated sweep.
#[derive(Clone, Debug)]
pub struct UnitFailure {
    /// Experiment name (the schedule key).
    pub name: String,
    /// The structured fault that felled it.
    pub fault: Fault,
    /// Attempts consumed (>1 when retries fired).
    pub attempts: u32,
    /// Wall-clock time spent on the unit.
    pub elapsed: Duration,
}

/// Outcome of a fault-isolated (and possibly resumed) sweep.
#[derive(Clone, Debug, Default)]
pub struct SweepOutcome {
    /// Successful reports in paper order (failed units are absent).
    pub reports: Vec<Report>,
    /// Failed units in paper order.
    pub failures: Vec<UnitFailure>,
    /// Units served from the resume journal instead of re-running.
    pub resumed: usize,
}

impl SweepOutcome {
    /// Renders the per-unit failure table (empty string when clean).
    pub fn failure_report(&self) -> String {
        if self.failures.is_empty() {
            return String::new();
        }
        let mut table = crate::Table::new(&["Unit", "Fault", "Attempts", "Elapsed (ms)", "Detail"]);
        for failure in &self.failures {
            let mut detail = failure.fault.message.replace('\n', " ");
            if detail.len() > 60 {
                detail.truncate(57);
                detail.push_str("...");
            }
            table.row(&[
                failure.name.clone(),
                failure.fault.kind.label().to_string(),
                failure.attempts.to_string(),
                failure.elapsed.as_millis().to_string(),
                detail,
            ]);
        }
        format!(
            "=== Failure report ===\n{}{} of {} unit(s) failed; completed units are unaffected.\n",
            table.render(),
            self.failures.len(),
            ALL.len(),
        )
    }
}

/// Configuration fingerprint tying a resume journal to one sweep shape:
/// scale, scene selection, the experiment schedule, and both artifact
/// format versions. A journal written under any other fingerprint is
/// refused on resume.
pub fn sweep_fingerprint(ctx: &Context) -> String {
    let scenes: Vec<&str> = ctx.scene_ids().iter().map(|id| id.code()).collect();
    let schedule: Vec<&str> = ALL.iter().map(|(name, _)| *name).collect();
    format!(
        "run_all scale={:?} scenes={} schedule={} formats=s{}b{}t{} trace={:?}",
        ctx.scale,
        scenes.join(","),
        schedule.join(","),
        rip_scene::serial::FORMAT_VERSION,
        rip_bvh::serial::FORMAT_VERSION,
        rip_bvh::ript::FORMAT_VERSION,
        ctx.trace_mode(),
    )
}

/// Fault-isolated, resumable variant of [`run_all`].
///
/// Every experiment runs behind `catch_unwind`, the `RIP_UNIT_TIMEOUT`
/// watchdog, and bounded retry for retryable faults, so one bad unit is
/// recorded in [`SweepOutcome::failures`] while the rest of the sweep
/// completes. Units named in `completed` (decoded from a resume journal)
/// are served from their recorded reports instead of re-running; each
/// fresh success is appended to `journal` the moment it finishes, so a
/// killed sweep restarts where it left off.
///
/// For an all-success, non-resumed sweep the returned reports are
/// *identical* to [`run_all`]'s — fault isolation must never perturb
/// clean output.
pub fn run_all_isolated(
    ctx: &Context,
    journal: Option<&Journal>,
    completed: &HashMap<String, Report>,
) -> SweepOutcome {
    let pending: Vec<&(&str, Experiment)> = ALL
        .iter()
        .filter(|(name, _)| !completed.contains_key(*name))
        .collect();
    let runner = ctx
        .runner("run_all")
        .with_deadline(fault::unit_timeout_from_env())
        .with_retry(RetryPolicy::standard());
    let unit_reports = runner.try_run(
        &pending,
        |(name, _)| (*name).to_string(),
        |&&(name, run), attempt| {
            fault::apply_injections(name, attempt)?;
            let start = Instant::now();
            let report = run(ctx);
            if let Some(journal) = journal {
                journal
                    .append(&JournalEntry {
                        label: name.to_string(),
                        attempts: attempt,
                        elapsed: start.elapsed(),
                        payload: report.encode(),
                    })
                    .map_err(|e| Fault::io(format!("cannot checkpoint unit {name}: {e}")))?;
            }
            Ok(report)
        },
    );

    let mut fresh: HashMap<&str, Result<Report, UnitFailure>> = HashMap::new();
    for report in unit_reports {
        let name = report.label.clone();
        fresh.insert(
            pending[report.index].0,
            match report.outcome {
                Ok(value) => Ok(value),
                Err(fault) => Err(UnitFailure {
                    name,
                    fault,
                    attempts: report.attempts,
                    elapsed: report.elapsed,
                }),
            },
        );
    }

    let mut outcome = SweepOutcome::default();
    for (name, _) in &ALL {
        if let Some(report) = completed.get(*name) {
            outcome.reports.push(report.clone());
            outcome.resumed += 1;
        } else {
            match fresh
                .remove(*name)
                .expect("every pending unit has a report")
            {
                Ok(report) => outcome.reports.push(report),
                Err(failure) => outcome.failures.push(failure),
            }
        }
    }
    outcome
}

/// Decodes journal entries into per-unit reports, dropping entries whose
/// labels are not in the schedule or whose payloads fail decoding (either
/// way the unit simply re-runs).
pub fn decode_journal_entries(entries: &[JournalEntry]) -> HashMap<String, Report> {
    let mut completed = HashMap::new();
    for entry in entries {
        if !ALL.iter().any(|(name, _)| *name == entry.label) {
            eprintln!(
                "[run_all] journal names unknown unit '{}'; ignoring it",
                entry.label
            );
            continue;
        }
        match Report::decode(&entry.payload) {
            Some(report) => {
                completed.insert(entry.label.clone(), report);
            }
            None => eprintln!(
                "[run_all] journal payload for '{}' is damaged; the unit will re-run",
                entry.label
            ),
        }
    }
    completed
}

/// Helper: geometric mean that tolerates empty input by returning 1.0.
pub(crate) fn geomean_or_one(values: impl IntoIterator<Item = f64>) -> f64 {
    rip_math::geometric_mean(values).unwrap_or(1.0)
}
