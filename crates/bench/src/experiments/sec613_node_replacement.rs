//! §6.1.3: node replacement policies (LFU / LRU / LRU-K) for multi-node
//! entries — an ablation the paper reports as insignificant.

use crate::{fmt_pct, Context, Report, Table};
use rip_core::{FunctionalSim, NodeReplacement, PredictorConfig, SimOptions};

/// Regenerates the §6.1.3 ablation with 4 nodes per entry (paper: the
/// differences between LFU, LRU and LRU-K are insignificant).
pub fn run(ctx: &Context) -> Report {
    let mut report = Report::new("§6.1.3: node replacement policy ablation (4 nodes/entry)");
    let policies = [
        ("LRU", NodeReplacement::Lru),
        ("LFU", NodeReplacement::Lfu),
        ("LRU-2", NodeReplacement::LruK(2)),
        ("LRU-4", NodeReplacement::LruK(4)),
    ];
    let mut savings = vec![Vec::new(); policies.len()];
    let mut verified = vec![Vec::new(); policies.len()];
    let results = ctx.map_cases("sec613_node_replacement", |case| {
        let batch = case.ao_batch();
        policies
            .iter()
            .map(|&(_, policy)| {
                let config = PredictorConfig {
                    nodes_per_entry: 4,
                    node_replacement: policy,
                    ..PredictorConfig::paper_default()
                };
                let sim = FunctionalSim::new(
                    config,
                    SimOptions {
                        classify_accesses: false,
                        ..SimOptions::default()
                    },
                );
                let r = ctx.run_functional(&sim, case, &batch);
                (r.memory_savings(), r.prediction.verified_rate())
            })
            .collect::<Vec<_>>()
    });
    for per_scene in results {
        for (i, (saving, verify)) in per_scene.into_iter().enumerate() {
            savings[i].push(saving);
            verified[i].push(verify);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let mut table = Table::new(&["Policy", "Memory savings", "Verified"]);
    let mut extremes = (f64::MAX, f64::MIN);
    for (i, &(label, _)) in policies.iter().enumerate() {
        let s = mean(&savings[i]);
        table.row(&[label.to_string(), fmt_pct(s), fmt_pct(mean(&verified[i]))]);
        report.metric(format!("savings_{label}"), s);
        extremes = (extremes.0.min(s), extremes.1.max(s));
    }
    report.line(table.render());
    report.line(format!(
        "Spread between policies: {:.2} percentage points (paper: insignificant).",
        (extremes.1 - extremes.0) * 100.0
    ));
    report.metric("policy_spread", extremes.1 - extremes.0);
    report
}
