//! §6.2.5: GPU configurations with more SMs — per-SM predictors see fewer
//! rays, reducing prediction opportunities.

use crate::{fmt_pct, Context, Report, Table};
use rip_core::{FunctionalSim, PredictorConfig, SimOptions};

/// Regenerates the §6.2.5 sweep (paper: 90% of the savings are retained
/// up to six SMs).
pub fn run(ctx: &Context) -> Report {
    let mut report = Report::new("§6.2.5: per-SM predictor count sweep");
    let sm_counts = [1usize, 2, 4, 6, 8];
    let mut savings = vec![Vec::new(); sm_counts.len()];
    let mut verified = vec![Vec::new(); sm_counts.len()];
    let results = ctx.map_cases("sec625_sm_sweep", |case| {
        let batch = case.ao_batch();
        sm_counts
            .iter()
            .map(|&sms| {
                let sim = FunctionalSim::new(
                    PredictorConfig::paper_default(),
                    SimOptions {
                        num_predictors: sms,
                        classify_accesses: false,
                        ..SimOptions::default()
                    },
                );
                let r = ctx.run_functional(&sim, case, &batch);
                (r.memory_savings(), r.prediction.verified_rate())
            })
            .collect::<Vec<_>>()
    });
    for per_scene in results {
        for (i, (saving, verify)) in per_scene.into_iter().enumerate() {
            savings[i].push(saving);
            verified[i].push(verify);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let one_sm = mean(&savings[0]);
    let mut table = Table::new(&["SMs", "Memory savings", "Retained vs 1 SM", "Verified"]);
    for (i, &sms) in sm_counts.iter().enumerate() {
        let s = mean(&savings[i]);
        let retained = if one_sm.abs() < 1e-12 {
            1.0
        } else {
            s / one_sm
        };
        table.row(&[
            format!("{sms}"),
            fmt_pct(s),
            fmt_pct(retained),
            fmt_pct(mean(&verified[i])),
        ]);
        report.metric(format!("savings_{sms}sm"), s);
        report.metric(format!("retained_{sms}sm"), retained);
    }
    report.line(table.render());
    report.line("Paper: ≥90% of the savings retained up to six SMs.");
    report
}
