//! §6.4: the predictor applied to global illumination (closest-hit rays),
//! where predicted intersections trim each ray's maximum length.

use crate::{fmt_pct, Context, Report, Table};
use rip_core::{FunctionalSim, PredictorConfig, SimOptions};
use rip_render::{GiConfig, GiWorkload};

/// Regenerates the §6.4 GI study with three bounces (paper: 4% average
/// speedup despite the predictor being designed for occlusion rays).
pub fn run(ctx: &Context) -> Report {
    let mut report = Report::new("§6.4: global illumination (3 bounces, closest-hit)");
    let mut table = Table::new(&[
        "Scene",
        "Rays",
        "Node savings",
        "Memory savings",
        "Verified",
    ]);
    let mut node_savings = Vec::new();
    let mut mem_savings = Vec::new();
    let results = ctx.map_scenes("sec64_gi", &ctx.scene_ids(), |id| {
        let case = ctx.build_case_with_viewport(id, ctx.sweep_viewport());
        let gi = GiWorkload::generate(&case.scene, &case.bvh, &GiConfig::default());
        // Closest-hit rays predict the leaf itself (Go Up Level 0): the
        // prediction only supplies a trim bound, so cheap probes beat the
        // wider ancestors that occlusion rays prefer.
        let config = PredictorConfig {
            go_up_level: 0,
            ..PredictorConfig::paper_default()
        };
        let sim = FunctionalSim::new(
            config,
            SimOptions {
                classify_accesses: false,
                ..SimOptions::default()
            },
        );
        let r = sim.run_closest_batch(&case.bvh, &gi.batch());
        (
            gi.rays.len(),
            r.node_savings(),
            r.memory_savings(),
            r.prediction.verified_rate(),
        )
    });
    for (id, (rays, node, mem, verify)) in ctx.scene_ids().into_iter().zip(results) {
        table.row(&[
            id.code().to_string(),
            format!("{rays}"),
            fmt_pct(node),
            fmt_pct(mem),
            fmt_pct(verify),
        ]);
        node_savings.push(node);
        mem_savings.push(mem);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    report.line(table.render());
    report.line(format!(
        "Average node-fetch savings {} / memory savings {} from prediction-based ray \
         trimming (paper: ~4% end-to-end speedup for GI; closest-hit rays cannot elide \
         traversal, only shorten it).",
        fmt_pct(mean(&node_savings)),
        fmt_pct(mean(&mem_savings)),
    ));
    report.metric("mean_node_savings", mean(&node_savings));
    report.metric("mean_memory_savings", mean(&mem_savings));
    report
}
