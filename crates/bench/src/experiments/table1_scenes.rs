//! Table 1: the benchmark scene suite (triangles, BVH depth, AO rays).

use crate::{Context, Report, Table};

/// Regenerates Table 1 from the built procedural scenes, alongside the
/// paper's original numbers for comparison.
pub fn run(ctx: &Context) -> Report {
    let mut report = Report::new("Table 1: Summary of benchmark scenes");
    let mut table = Table::new(&[
        "Scene",
        "Code",
        "Triangles",
        "Paper tris",
        "BVH depth",
        "Paper depth",
        "AO rays",
        "Paper AO rays",
    ]);
    let stats = ctx.map_cases("table1_scenes", |case| {
        (
            case.bvh.triangle_count(),
            case.bvh.depth(),
            case.ao_workload().rays.len(),
        )
    });
    for (id, (tris, depth, rays)) in ctx.scene_ids().into_iter().zip(stats) {
        table.row(&[
            id.name().to_string(),
            id.code().to_string(),
            format!("{tris}"),
            format!("{}", id.paper_triangles()),
            format!("{depth}"),
            format!("{}", id.paper_bvh_depth()),
            format!("{rays}"),
            format!("{}", id.paper_ao_rays()),
        ]);
        report.metric(format!("tris_{}", id.code()), tris as f64);
        report.metric(format!("depth_{}", id.code()), depth as f64);
    }
    report.line(table.render());
    report.line(format!(
        "Scale: {:?} (paper columns are the original models at full scale; \
         procedural analogs track them at scale divisor {}).",
        ctx.scale,
        ctx.scale.divisor()
    ));
    report
}
