//! Table 4: per-ray energy breakdown, baseline vs predictor.

use crate::{Context, Report, Table};
use rip_energy::EnergyModel;

/// Regenerates Table 4 (paper: 296 nJ/ray baseline; −20 nJ/ray with the
/// predictor, dominated by the base GPU's DRAM term while the predictor
/// structures themselves cost well under 0.1 nJ/ray).
pub fn run(ctx: &Context) -> Report {
    let mut report = Report::new("Table 4: energy analysis (nJ/ray)");
    let model = EnergyModel::paper_45nm();
    let mut base_total = rip_energy::EnergyBreakdown::default();
    let mut pred_total = rip_energy::EnergyBreakdown::default();
    let mut scenes = 0.0f64;
    let results = ctx.map_cases("table4_energy", |case| {
        let batch = case.ao_batch();
        let base = ctx
            .simulator_for(ctx.gpu_baseline(), case, &batch)
            .run_batch(&case.bvh, &batch);
        let pred = ctx
            .simulator_for(ctx.gpu_predictor(), case, &batch)
            .run_batch(&case.bvh, &batch);
        (model.breakdown(&base), model.breakdown(&pred))
    });
    for (bb, pb) in results {
        base_total = add(&base_total, &bb);
        pred_total = add(&pred_total, &pb);
        scenes += 1.0;
    }
    let base_avg = scale(&base_total, 1.0 / scenes.max(1.0));
    let pred_avg = scale(&pred_total, 1.0 / scenes.max(1.0));
    let delta = pred_avg.delta(&base_avg);

    let mut table = Table::new(&["Component", "Baseline RT unit", "Change from Predictor"]);
    let rows: [(&str, f64, f64); 6] = [
        ("Base GPU", base_avg.base_gpu, delta.base_gpu),
        (
            "Predictor table",
            base_avg.predictor_table,
            delta.predictor_table,
        ),
        (
            "Warp repacking",
            base_avg.warp_repacking,
            delta.warp_repacking,
        ),
        (
            "Traversal stack",
            base_avg.traversal_stack,
            delta.traversal_stack,
        ),
        ("Ray buffer", base_avg.ray_buffer, delta.ray_buffer),
        (
            "Ray intersections",
            base_avg.ray_intersections,
            delta.ray_intersections,
        ),
    ];
    for (label, b, d) in rows {
        table.row(&[label.to_string(), format!("{b:.2}"), format!("{d:+.2}")]);
    }
    table.row(&[
        "Total".to_string(),
        format!("{:.1} nJ/ray", base_avg.total_nj_per_ray()),
        format!(
            "{:+.1} nJ/ray",
            pred_avg.total_nj_per_ray() - base_avg.total_nj_per_ray()
        ),
    ]);
    report.line(table.render());
    let saving = 1.0 - pred_avg.total_nj_per_ray() / base_avg.total_nj_per_ray().max(1e-12);
    report.line(format!(
        "Energy saving: {:.1}% (paper: ~7%, with DRAM dominating both columns).",
        saving * 100.0
    ));
    report.metric("baseline_nj_per_ray", base_avg.total_nj_per_ray());
    report.metric(
        "delta_nj_per_ray",
        pred_avg.total_nj_per_ray() - base_avg.total_nj_per_ray(),
    );
    report.metric("energy_saving_fraction", saving);
    report
}

fn add(
    a: &rip_energy::EnergyBreakdown,
    b: &rip_energy::EnergyBreakdown,
) -> rip_energy::EnergyBreakdown {
    rip_energy::EnergyBreakdown {
        base_gpu: a.base_gpu + b.base_gpu,
        predictor_table: a.predictor_table + b.predictor_table,
        warp_repacking: a.warp_repacking + b.warp_repacking,
        traversal_stack: a.traversal_stack + b.traversal_stack,
        ray_buffer: a.ray_buffer + b.ray_buffer,
        ray_intersections: a.ray_intersections + b.ray_intersections,
    }
}

fn scale(a: &rip_energy::EnergyBreakdown, k: f64) -> rip_energy::EnergyBreakdown {
    rip_energy::EnergyBreakdown {
        base_gpu: a.base_gpu * k,
        predictor_table: a.predictor_table * k,
        warp_repacking: a.warp_repacking * k,
        traversal_stack: a.traversal_stack * k,
        ray_buffer: a.ray_buffer * k,
        ray_intersections: a.ray_intersections * k,
    }
}
