//! Table 5: Equation 1's estimated node-access reduction vs the measured
//! reduction.

use crate::{Context, Report, Table};
use rip_core::{FunctionalSim, PredictorConfig, SimOptions};

/// Regenerates Table 5 (paper averages: v = 0.246, n = 28.382, p = 0.955,
/// k = 1, m = 2.810 → estimated 4.298 vs actual 3.726 nodes skipped/ray).
pub fn run(ctx: &Context) -> Report {
    let mut report = Report::new("Table 5: Equation 1 estimate vs measured reduction");
    let mut v_sum = 0.0;
    let mut n_sum = 0.0;
    let mut p_sum = 0.0;
    let mut k_sum = 0.0;
    let mut m_sum = 0.0;
    let mut est_sum = 0.0;
    let mut act_sum = 0.0;
    let mut count = 0.0f64;
    let mut per_scene = Table::new(&["Scene", "v", "n", "p", "k", "m", "Estimated", "Actual"]);
    let results = ctx.map_cases("table5_eq1", |case| {
        let batch = case.ao_batch();
        let sim = FunctionalSim::new(
            PredictorConfig::paper_default(),
            SimOptions {
                classify_accesses: false,
                ..SimOptions::default()
            },
        );
        let r = ctx.run_functional(&sim, case, &batch);
        (r.eq1_model(), r.actual_nodes_skipped_per_ray())
    });
    for (id, (model, actual)) in ctx.scene_ids().into_iter().zip(results) {
        per_scene.row(&[
            id.code().to_string(),
            format!("{:.3}", model.v),
            format!("{:.3}", model.n),
            format!("{:.3}", model.p),
            format!("{:.3}", model.k),
            format!("{:.3}", model.m),
            format!("{:.3}", model.estimated_nodes_skipped()),
            format!("{actual:.3}"),
        ]);
        v_sum += model.v;
        n_sum += model.n;
        p_sum += model.p;
        k_sum += model.k;
        m_sum += model.m;
        est_sum += model.estimated_nodes_skipped();
        act_sum += actual;
        count += 1.0;
    }
    report.line(per_scene.render());
    let c = count.max(1.0);
    let mut avg = Table::new(&["v", "n", "p", "k", "m", "Estimated", "Actual"]);
    avg.row(&[
        format!("{:.3}", v_sum / c),
        format!("{:.3}", n_sum / c),
        format!("{:.3}", p_sum / c),
        format!("{:.3}", k_sum / c),
        format!("{:.3}", m_sum / c),
        format!("{:.3}", est_sum / c),
        format!("{:.3}", act_sum / c),
    ]);
    report.line("Averages across scenes (paper: 0.246, 28.382, 0.955, 1, 2.810 → 4.298 vs 3.726):");
    report.line(avg.render());
    report.metric("estimated_mean", est_sum / c);
    report.metric("actual_mean", act_sum / c);
    report.metric("v_mean", v_sum / c);
    report.metric("p_mean", p_sum / c);
    report
}
