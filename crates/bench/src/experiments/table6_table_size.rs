//! Table 6: predictor table size sweep — entries × nodes-per-entry.

use crate::{Context, Report, Table};
use rip_core::PredictorConfig;

/// Regenerates Table 6 (paper: best at 1024 entries × 1 node/entry;
/// more nodes per entry raise verification but cost more per prediction).
pub fn run(ctx: &Context) -> Report {
    let mut report = Report::new("Table 6: speedups for different table sizes");
    let entry_counts = [512usize, 1024, 2048];
    let node_counts = [1usize, 2, 4];
    let scene_ids = ctx.scene_ids();
    let sweep = &scene_ids[..scene_ids.len().min(3)];

    // speedups[entries][nodes] per scene.
    let mut speedups = vec![vec![Vec::new(); node_counts.len()]; entry_counts.len()];
    let results = ctx.map_scenes("table6_table_size", sweep, |id| {
        let case = ctx.build_case_with_viewport(id, ctx.sweep_viewport());
        let batch = case.ao_batch();
        let baseline = ctx
            .simulator_for(ctx.gpu_baseline(), &case, &batch)
            .run_batch(&case.bvh, &batch);
        entry_counts
            .iter()
            .map(|&entries| {
                node_counts
                    .iter()
                    .map(|&nodes| {
                        let mut cfg = ctx.gpu_predictor();
                        cfg.predictor = Some(PredictorConfig {
                            entries,
                            nodes_per_entry: nodes,
                            ..PredictorConfig::paper_default()
                        });
                        ctx.simulator_for(cfg, &case, &batch)
                            .run_batch(&case.bvh, &batch)
                            .speedup_over(&baseline)
                    })
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>()
    });
    for per_scene in results {
        for (ei, per_entry) in per_scene.into_iter().enumerate() {
            for (ni, speedup) in per_entry.into_iter().enumerate() {
                speedups[ei][ni].push(speedup);
            }
        }
    }
    let mut table = Table::new(&["Entries", "1 node", "2 nodes", "4 nodes"]);
    let mut best = (0usize, 0usize, f64::MIN);
    for (ei, &entries) in entry_counts.iter().enumerate() {
        let mut cells = vec![format!("{entries}")];
        for (ni, _) in node_counts.iter().enumerate() {
            let gm = super::geomean_or_one(speedups[ei][ni].iter().copied());
            cells.push(format!("{:+.1}%", (gm - 1.0) * 100.0));
            report.metric(format!("speedup_e{entries}_n{}", node_counts[ni]), gm);
            if gm > best.2 {
                best = (entries, node_counts[ni], gm);
            }
        }
        table.row(&cells);
    }
    report.line(table.render());
    report.line(format!(
        "Best configuration: {} entries × {} node(s) per entry at {:+.1}% \
         (paper: 1024 × 1 at +25.8%; the default table costs 5.5 KB per SM).",
        best.0,
        best.1,
        (best.2 - 1.0) * 100.0
    ));
    report.metric("best_entries", best.0 as f64);
    report.metric("best_nodes", best.1 as f64);
    report
}
