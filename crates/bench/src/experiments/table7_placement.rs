//! Table 7: placement-policy comparison (direct-mapped through 8-way).

use crate::{fmt_pct, Context, Report, Table};
use rip_core::PredictorConfig;

/// Regenerates Table 7 (paper: 4-way set-associative is best — 25.8%
/// speedup, 95.5% predicted, 24.6% verified; direct-mapped falls to 15.9%).
pub fn run(ctx: &Context) -> Report {
    let mut report = Report::new("Table 7: comparison of placement policies");
    let ways_options = [
        (1usize, "Direct-mapped"),
        (2, "2-way"),
        (4, "4-way"),
        (8, "8-way"),
    ];
    let scene_ids = ctx.scene_ids();
    let sweep = &scene_ids[..scene_ids.len().min(3)];
    let mut speedups = vec![Vec::new(); ways_options.len()];
    let mut predicted = vec![Vec::new(); ways_options.len()];
    let mut verified = vec![Vec::new(); ways_options.len()];
    let results = ctx.map_scenes("table7_placement", sweep, |id| {
        let case = ctx.build_case_with_viewport(id, ctx.sweep_viewport());
        let batch = case.ao_batch();
        let baseline = ctx
            .simulator_for(ctx.gpu_baseline(), &case, &batch)
            .run_batch(&case.bvh, &batch);
        ways_options
            .iter()
            .map(|&(ways, _)| {
                let mut cfg = ctx.gpu_predictor();
                cfg.predictor = Some(PredictorConfig {
                    ways,
                    ..PredictorConfig::paper_default()
                });
                let r = ctx
                    .simulator_for(cfg, &case, &batch)
                    .run_batch(&case.bvh, &batch);
                (
                    r.speedup_over(&baseline),
                    r.prediction.predicted_rate(),
                    r.prediction.verified_rate(),
                )
            })
            .collect::<Vec<_>>()
    });
    for per_scene in results {
        for (i, (speedup, predict, verify)) in per_scene.into_iter().enumerate() {
            speedups[i].push(speedup);
            predicted[i].push(predict);
            verified[i].push(verify);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let mut table = Table::new(&["Policy", "Speedup", "Predicted", "Verified"]);
    for (i, &(ways, label)) in ways_options.iter().enumerate() {
        let gm = super::geomean_or_one(speedups[i].iter().copied());
        table.row(&[
            label.to_string(),
            format!("{:+.1}%", (gm - 1.0) * 100.0),
            fmt_pct(mean(&predicted[i])),
            fmt_pct(mean(&verified[i])),
        ]);
        report.metric(format!("speedup_{ways}way"), gm);
        report.metric(format!("verified_{ways}way"), mean(&verified[i]));
    }
    report.line(table.render());
    report.line(
        "Paper: 15.9% / 23.1% / 25.8% / 25.5% speedups; predicted rises with associativity \
         (58.7% → 96.2%) while verified peaks at 4-way (24.6%).",
    );
    report
}
