//! Table 8: hash-function parameter sweeps (Grid Spherical and Two Point).

use crate::{Context, Report, Table};
use rip_core::{HashFunction, PredictorConfig};

/// Regenerates Tables 8a and 8b (paper: Grid Spherical with 5 origin /
/// 3 direction bits is best at +25.8%; Two Point is comparable with
/// 4 origin bits and ratio 0.15 at +24.7%).
pub fn run(ctx: &Context) -> Report {
    let mut report = Report::new("Table 8: hash function sweeps");
    let scene_ids = ctx.scene_ids();
    let sweep = &scene_ids[..scene_ids.len().min(2)];

    // Gather the per-scene baselines once (in parallel across scenes).
    let cases = ctx.map_scenes("table8_hash_cases", sweep, |id| {
        let case = ctx.build_case_with_viewport(id, ctx.sweep_viewport());
        let batch = case.ao_batch();
        let baseline = ctx
            .simulator_for(ctx.gpu_baseline(), &case, &batch)
            .run_batch(&case.bvh, &batch);
        (case, batch, baseline)
    });
    let run_hash = |hash: &HashFunction| -> f64 {
        let hash = *hash;
        let mut speedups = Vec::new();
        for (case, batch, baseline) in &cases {
            let mut cfg = ctx.gpu_predictor();
            cfg.predictor = Some(PredictorConfig {
                hash,
                ..PredictorConfig::paper_default()
            });
            let r = ctx
                .simulator_for(cfg, case, batch)
                .run_batch(&case.bvh, batch);
            speedups.push(r.speedup_over(baseline));
        }
        super::geomean_or_one(speedups)
    };

    // Table 8a: Grid Spherical origin × direction bits.
    let origin_bits = [3u32, 4, 5];
    let direction_bits = [1u32, 2, 3, 4, 5];
    let grid_hashes: Vec<HashFunction> = origin_bits
        .iter()
        .flat_map(|&ob| {
            direction_bits
                .iter()
                .map(move |&db| HashFunction::GridSpherical {
                    origin_bits: ob,
                    direction_bits: db,
                })
        })
        .collect();
    let grid_speedups = ctx.pool().map(&grid_hashes, run_hash);
    let mut t8a = Table::new(&["Origin bits", "1 dir", "2 dir", "3 dir", "4 dir", "5 dir"]);
    let mut best_a = (0u32, 0u32, f64::MIN);
    let mut grid_iter = grid_speedups.into_iter();
    for &ob in &origin_bits {
        let mut cells = vec![format!("{ob}")];
        for &db in &direction_bits {
            let gm = grid_iter.next().expect("one speedup per grid combination");
            cells.push(format!("{:+.1}%", (gm - 1.0) * 100.0));
            report.metric(format!("gs_o{ob}_d{db}"), gm);
            if gm > best_a.2 {
                best_a = (ob, db, gm);
            }
        }
        t8a.row(&cells);
    }
    report.line("Table 8a — Grid Spherical (paper best: 5 origin / 3 direction, +25.8%):");
    report.line(t8a.render());
    report.line(format!(
        "Best Grid Spherical: {} origin / {} direction bits at {:+.1}%.",
        best_a.0,
        best_a.1,
        (best_a.2 - 1.0) * 100.0
    ));

    // Table 8b: Two Point origin bits × estimated length ratio.
    let ratios = [0.05f32, 0.15, 0.25, 0.35];
    let tp_hashes: Vec<HashFunction> = origin_bits
        .iter()
        .flat_map(|&ob| {
            ratios.iter().map(move |&r| HashFunction::TwoPoint {
                origin_bits: ob,
                length_ratio: r,
            })
        })
        .collect();
    let tp_speedups = ctx.pool().map(&tp_hashes, run_hash);
    let mut t8b = Table::new(&["Origin bits", "r=0.05", "r=0.15", "r=0.25", "r=0.35"]);
    let mut best_b = (0u32, 0.0f32, f64::MIN);
    let mut tp_iter = tp_speedups.into_iter();
    for &ob in &origin_bits {
        let mut cells = vec![format!("{ob}")];
        for &r in &ratios {
            let gm = tp_iter
                .next()
                .expect("one speedup per two-point combination");
            cells.push(format!("{:+.1}%", (gm - 1.0) * 100.0));
            report.metric(format!("tp_o{ob}_r{r}"), gm);
            if gm > best_b.2 {
                best_b = (ob, r, gm);
            }
        }
        t8b.row(&cells);
    }
    report.line("Table 8b — Two Point (paper best: 4 origin bits, ratio 0.15, +24.7%):");
    report.line(t8b.render());
    report.line(format!(
        "Best Two Point: {} origin bits, ratio {:.2} at {:+.1}%.",
        best_b.0,
        best_b.1,
        (best_b.2 - 1.0) * 100.0
    ));
    report.metric("best_gs", best_a.2);
    report.metric("best_tp", best_b.2);
    report
}
