//! Shared experiment scaffolding: scales, scene cases, GPU configurations.

use rip_bvh::Bvh;
use rip_gpusim::GpuConfig;
use rip_math::Triangle;
use rip_render::{AoConfig, AoWorkload};
use rip_scene::{Scene, SceneId, SceneScale, SCENE_IDS};

/// Which benchmark scenes an experiment covers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SceneSelection {
    /// All seven Table-1 scenes.
    All,
    /// The first `n` scenes (cheap smoke runs / parameter sweeps).
    Subset(usize),
    /// An explicit list.
    Explicit(Vec<SceneId>),
}

/// Execution context shared by every experiment.
#[derive(Clone, Debug)]
pub struct Context {
    /// Geometry/workload scale.
    pub scale: SceneScale,
    /// Scene coverage.
    pub selection: SceneSelection,
}

impl Context {
    /// Creates a context.
    pub fn new(scale: SceneScale, selection: SceneSelection) -> Self {
        Context { scale, selection }
    }

    /// Parses a context from command-line arguments:
    /// `--scale tiny|quick|paper` and `--scenes N` (first N scenes).
    /// Unknown arguments are ignored so binaries can add their own.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut scale = SceneScale::Quick;
        let mut selection = SceneSelection::All;
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => {
                    if let Some(v) = it.next() {
                        scale = SceneScale::parse(v).unwrap_or_else(|| {
                            eprintln!("unknown scale '{v}', using quick");
                            SceneScale::Quick
                        });
                    }
                }
                "--scenes" => {
                    if let Some(v) = it.next() {
                        if let Ok(n) = v.parse::<usize>() {
                            selection = SceneSelection::Subset(n.clamp(1, SCENE_IDS.len()));
                        }
                    }
                }
                _ => {}
            }
        }
        Context { scale, selection }
    }

    /// The scene ids this context covers.
    pub fn scene_ids(&self) -> Vec<SceneId> {
        match &self.selection {
            SceneSelection::All => SCENE_IDS.to_vec(),
            SceneSelection::Subset(n) => SCENE_IDS[..(*n).min(SCENE_IDS.len())].to_vec(),
            SceneSelection::Explicit(ids) => ids.clone(),
        }
    }

    /// Viewport edge (square) for the main experiments. The paper renders
    /// 1024×1024; lower scales shrink the viewport with the scene budget so
    /// the ray density over the hash space stays comparable.
    pub fn viewport(&self) -> u32 {
        match self.scale {
            SceneScale::Tiny => 48,
            SceneScale::Quick => 256,
            SceneScale::Paper => 1024,
        }
    }

    /// Reduced viewport for parameter sweeps (quarter the ray count).
    pub fn sweep_viewport(&self) -> u32 {
        (self.viewport() / 2).max(32)
    }

    /// Builds a scene case (scene + BVH) at this context's scale.
    pub fn build_case(&self, id: SceneId) -> Case {
        self.build_case_with_viewport(id, self.viewport())
    }

    /// Builds a scene case with an explicit viewport edge.
    pub fn build_case_with_viewport(&self, id: SceneId, viewport: u32) -> Case {
        let scene = id.build_with_viewport(self.scale, viewport, viewport);
        let tris: Vec<Triangle> = scene.mesh.triangles().collect();
        let bvh = Bvh::build(&tris);
        Case { id, scene, bvh }
    }

    /// The baseline Table-2 GPU configuration.
    pub fn gpu_baseline(&self) -> GpuConfig {
        GpuConfig::baseline()
    }

    /// The Table-3 predictor configuration with repacking.
    pub fn gpu_predictor(&self) -> GpuConfig {
        GpuConfig::with_predictor()
    }
}

/// A built benchmark case.
#[derive(Clone, Debug)]
pub struct Case {
    /// Which scene.
    pub id: SceneId,
    /// Scene geometry and camera.
    pub scene: Scene,
    /// The acceleration structure.
    pub bvh: Bvh,
}

impl Case {
    /// Generates this case's AO workload with the §5.2 parameters.
    pub fn ao_workload(&self) -> AoWorkload {
        AoWorkload::generate(&self.scene, &self.bvh, &AoConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_expansion() {
        let all = Context::new(SceneScale::Tiny, SceneSelection::All);
        assert_eq!(all.scene_ids().len(), 7);
        let two = Context::new(SceneScale::Tiny, SceneSelection::Subset(2));
        assert_eq!(two.scene_ids(), vec![SceneId::Sibenik, SceneId::CrytekSponza]);
        let explicit =
            Context::new(SceneScale::Tiny, SceneSelection::Explicit(vec![SceneId::LostEmpire]));
        assert_eq!(explicit.scene_ids(), vec![SceneId::LostEmpire]);
    }

    #[test]
    fn viewports_scale() {
        let tiny = Context::new(SceneScale::Tiny, SceneSelection::All);
        let paper = Context::new(SceneScale::Paper, SceneSelection::All);
        assert!(tiny.viewport() < paper.viewport());
        assert_eq!(paper.viewport(), 1024);
        assert_eq!(tiny.sweep_viewport(), 32);
    }

    #[test]
    fn build_case_produces_consistent_bvh() {
        let ctx = Context::new(SceneScale::Tiny, SceneSelection::All);
        let case = ctx.build_case(SceneId::Sibenik);
        assert_eq!(case.bvh.triangle_count(), case.scene.mesh.triangle_count());
        case.bvh.validate().unwrap();
    }

    #[test]
    fn ao_workload_generates() {
        let ctx = Context::new(SceneScale::Tiny, SceneSelection::All);
        let case = ctx.build_case_with_viewport(SceneId::FireplaceRoom, 16);
        let w = case.ao_workload();
        assert!(!w.rays.is_empty());
    }
}
