//! Shared experiment scaffolding: scales, scene cases, GPU
//! configurations, and the parallel execution context.
//!
//! Every experiment receives a [`Context`]: scale and scene coverage plus
//! a [`JobPool`] and a process-shared [`CaseCache`] so scenes and BVHs
//! are built once per `(scene, scale, viewport)` no matter how many
//! experiments touch them, and persisted to the on-disk artifact store
//! for later runs. Parallel runs collect results in input order, so
//! experiment output is byte-identical at any `--jobs` count.

use rip_bvh::ript::RayTraceSet;
use rip_bvh::{RayBatch, TraversalKind};
use rip_core::{FunctionalReport, FunctionalSim};
use rip_exec::{CaseCache, CaseKey, JobPool, ShardedRunner, TraceStore};
use rip_gpusim::{GpuConfig, Simulator};
use rip_obs::{Obs, TraceFileGuard};
use rip_scene::{SceneId, SceneScale, SCENE_IDS};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

pub use rip_exec::Case;

/// How experiments interact with recorded RIPT ray traces.
///
/// `Capture` runs every experiment live but records each workload's
/// traversal trace into the [`TraceStore`] (memory tier plus
/// `$RIP_TRACE_DIR` disk tier). `Replay` resolves the trace — capturing
/// on a miss — and feeds it back through the replay entry points
/// (`FunctionalSim::run_batch_replay`, `Simulator::with_trace`), so a
/// parameter sweep pays for one functional traversal per workload
/// instead of one per configuration. Replayed results are byte-identical
/// to live runs; `rip-testkit`'s differential suite holds both paths to
/// that.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceMode {
    /// No trace interaction (the default).
    #[default]
    Off,
    /// Run live, recording traces for later replay.
    Capture,
    /// Replay recorded traces, capturing any that are missing.
    Replay,
}

/// Which benchmark scenes an experiment covers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SceneSelection {
    /// All seven Table-1 scenes.
    All,
    /// The first `n` scenes (cheap smoke runs / parameter sweeps).
    Subset(usize),
    /// An explicit list.
    Explicit(Vec<SceneId>),
}

/// Execution context shared by every experiment.
#[derive(Clone)]
pub struct Context {
    /// Geometry/workload scale.
    pub scale: SceneScale,
    /// Scene coverage.
    pub selection: SceneSelection,
    jobs: usize,
    pool: JobPool,
    cache: Arc<CaseCache>,
    obs: Arc<Obs>,
    trace: Option<Arc<TraceFileGuard>>,
    /// `--trace PATH` seen during parsing, installed by
    /// [`Context::from_arg_slice`].
    trace_request: Option<PathBuf>,
    trace_mode: TraceMode,
    trace_store: Arc<TraceStore>,
    /// Memoized per-workload ray-hash streams, keyed by (batch content
    /// digest, hasher fingerprint). The spherical hash pays real
    /// trigonometry per ray and is a pure function of that key, so a
    /// parameter sweep (or a capture-then-replay pass) hashes each
    /// workload once instead of once per configuration.
    hash_memo: Arc<HashMemo>,
}

/// Bounded map behind [`Context`]'s per-workload hash-stream memo.
type HashMemo = Mutex<HashMap<(u64, u64), Arc<Vec<u32>>>>;

impl std::fmt::Debug for Context {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Context")
            .field("scale", &self.scale)
            .field("selection", &self.selection)
            .field("jobs", &self.jobs)
            .finish()
    }
}

/// Outcome of parsing a command line (see [`Context::parse_args`]).
#[derive(Debug)]
pub enum ParsedArgs {
    /// Run with this context.
    Run(Context),
    /// `--help` was requested.
    Help,
}

impl Context {
    /// Creates a context with default parallelism (`RIP_JOBS` env
    /// override, else available parallelism).
    pub fn new(scale: SceneScale, selection: SceneSelection) -> Self {
        Context::with_jobs(scale, selection, jobs_from_env())
    }

    /// Creates a context with an explicit worker-thread count.
    pub fn with_jobs(scale: SceneScale, selection: SceneSelection, jobs: usize) -> Self {
        Context::assemble(
            scale,
            selection,
            jobs,
            Arc::clone(Obs::global()),
            CaseCache::new(),
            TraceStore::new(),
        )
    }

    /// A context with an isolated [`Obs`] instance and an in-memory-only
    /// case cache — for tests that compare counter totals or traces
    /// across runs without cross-test pollution or disk-tier asymmetry.
    pub fn scoped(
        scale: SceneScale,
        selection: SceneSelection,
        jobs: usize,
        obs: Arc<Obs>,
    ) -> Self {
        Context::assemble(
            scale,
            selection,
            jobs,
            obs,
            CaseCache::in_memory_only(),
            TraceStore::in_memory_only(),
        )
    }

    fn assemble(
        scale: SceneScale,
        selection: SceneSelection,
        jobs: usize,
        obs: Arc<Obs>,
        cache: CaseCache,
        trace_store: TraceStore,
    ) -> Self {
        let jobs = jobs.max(1);
        Context {
            scale,
            selection,
            jobs,
            pool: JobPool::new(jobs),
            cache: Arc::new(cache.with_obs(Arc::clone(&obs))),
            trace_store: Arc::new(trace_store.with_obs(Arc::clone(&obs)).with_parallelism(
                // More capture threads than hardware threads is pure
                // scheduling overhead; byte-identity holds regardless.
                jobs.min(std::thread::available_parallelism().map_or(1, |n| n.get())),
            )),
            obs,
            trace: None,
            trace_request: None,
            trace_mode: TraceMode::Off,
            hash_memo: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// The usage text shared by every experiment binary.
    pub fn usage() -> &'static str {
        "USAGE: <experiment> [OPTIONS]\n\
         \n\
         OPTIONS:\n\
         \x20 --scale tiny|quick|paper  geometry/workload scale (default: quick)\n\
         \x20 --scenes N                restrict to the first N Table-1 scenes\n\
         \x20 --jobs N                  worker threads (default: RIP_JOBS env, else\n\
         \x20                           available parallelism; 1 = serial)\n\
         \x20 --trace PATH              write a chrome://tracing JSONL trace to PATH\n\
         \x20 --capture-trace           run live, recording RIPT ray traces for replay\n\
         \x20 --replay                  replay recorded ray traces (capture on miss);\n\
         \x20                           results are byte-identical to live runs\n\
         \x20 --help                    print this help\n\
         \n\
         ENVIRONMENT:\n\
         \x20 RIP_JOBS         default worker-thread count\n\
         \x20 RIP_CACHE_DIR    scene/BVH artifact store (set empty to disable;\n\
         \x20                  default: <system temp dir>/rip-artifacts)\n\
         \x20 RIP_TRACE        default trace path for --trace (set empty to disable)\n\
         \x20 RIP_TRACE_CLOCK  trace timestamp source: wall (default) or logical\n\
         \x20 RIP_TRACE_DIR    RIPT ray-trace store for --capture-trace/--replay (set\n\
         \x20                  empty to disable the disk tier; default: <system temp\n\
         \x20                  dir>/rip-traces)\n\
         \n\
         Output at a given scale is byte-identical for every --jobs value;\n\
         with tracing enabled, counter totals and normalized traces are too."
    }

    /// Parses a context from command-line arguments; the production entry
    /// point is [`Context::from_args`].
    ///
    /// Malformed values (`--scale mars`, `--jobs zero`, missing operands)
    /// are errors. Unknown arguments are *not* errors — they are reported
    /// on stderr and ignored so binaries can grow private flags — but a
    /// `--help` anywhere wins.
    pub fn parse_args(args: &[String]) -> Result<ParsedArgs, String> {
        let mut scale = SceneScale::Quick;
        let mut selection = SceneSelection::All;
        let mut jobs = None;
        let mut trace_request: Option<PathBuf> = None;
        let mut trace_mode = TraceMode::Off;
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--help" | "-h" => return Ok(ParsedArgs::Help),
                "--scale" => {
                    let v = it
                        .next()
                        .ok_or("--scale requires a value (tiny|quick|paper)")?;
                    scale = SceneScale::parse(v).ok_or_else(|| {
                        format!("unknown scale '{v}' (expected tiny|quick|paper)")
                    })?;
                }
                "--scenes" => {
                    let v = it.next().ok_or("--scenes requires a count")?;
                    let n: usize = v
                        .parse()
                        .map_err(|_| format!("invalid scene count '{v}' (expected a number)"))?;
                    if n == 0 {
                        return Err("--scenes must be at least 1".into());
                    }
                    selection = SceneSelection::Subset(n.min(SCENE_IDS.len()));
                }
                "--jobs" => {
                    let v = it.next().ok_or("--jobs requires a count")?;
                    let n: usize = v
                        .parse()
                        .map_err(|_| format!("invalid job count '{v}' (expected a number)"))?;
                    if n == 0 {
                        return Err("--jobs must be at least 1".into());
                    }
                    jobs = Some(n);
                }
                "--trace" => {
                    let v = it.next().ok_or("--trace requires a path")?;
                    if v.is_empty() {
                        return Err("--trace requires a non-empty path".into());
                    }
                    trace_request = Some(PathBuf::from(v));
                }
                "--capture-trace" => trace_mode = TraceMode::Capture,
                "--replay" => trace_mode = TraceMode::Replay,
                other => {
                    eprintln!("warning: ignoring unknown argument '{other}' (see --help)");
                }
            }
        }
        let mut ctx = Context::with_jobs(scale, selection, jobs.unwrap_or_else(jobs_from_env));
        ctx.trace_request = trace_request;
        ctx.trace_mode = trace_mode;
        Ok(ParsedArgs::Run(ctx))
    }

    /// Parses the process arguments, printing help or errors as needed.
    ///
    /// Exits with status 0 after printing usage for `--help`, and with
    /// status 2 (plus a stderr diagnostic and the usage text) on
    /// malformed arguments. Also installs the context's job count as the
    /// process-wide budget so nested pools share it.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Context::from_arg_slice(&args, Context::usage())
    }

    /// Like [`Context::from_args`] but over an explicit argument slice and
    /// usage text — for binaries (such as `run_all`) that extract their
    /// own private flags first and pass the remainder through.
    pub fn from_arg_slice(args: &[String], usage: &str) -> Self {
        match Context::parse_args(args) {
            Ok(ParsedArgs::Run(mut ctx)) => {
                rip_exec::set_global_budget(ctx.jobs);
                let trace_path = ctx.trace_request.take().or_else(|| {
                    std::env::var("RIP_TRACE")
                        .ok()
                        .filter(|v| !v.is_empty())
                        .map(PathBuf::from)
                });
                if let Some(path) = trace_path {
                    ctx.install_trace(path);
                }
                ctx
            }
            Ok(ParsedArgs::Help) => {
                println!("{usage}");
                std::process::exit(0);
            }
            Err(message) => {
                eprintln!("error: {message}");
                eprintln!("{usage}");
                std::process::exit(2);
            }
        }
    }

    /// The scene ids this context covers.
    pub fn scene_ids(&self) -> Vec<SceneId> {
        match &self.selection {
            SceneSelection::All => SCENE_IDS.to_vec(),
            SceneSelection::Subset(n) => SCENE_IDS[..(*n).min(SCENE_IDS.len())].to_vec(),
            SceneSelection::Explicit(ids) => ids.clone(),
        }
    }

    /// Worker threads this context targets (1 = serial).
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The job pool experiments schedule onto.
    pub fn pool(&self) -> &JobPool {
        &self.pool
    }

    /// The shared scene/BVH cache.
    pub fn cache(&self) -> &CaseCache {
        &self.cache
    }

    /// The observability instance this context's cache, runners, and
    /// simulators report into.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// Enables tracing on this context's [`Obs`] instance and arranges
    /// for the trace to be written to `path` when the context (strictly:
    /// its last clone) is dropped — or earlier via
    /// [`Context::flush_trace`].
    pub fn install_trace(&mut self, path: impl Into<PathBuf>) {
        self.trace = Some(Arc::new(TraceFileGuard::new(Arc::clone(&self.obs), path)));
    }

    /// The installed trace file guard, when `--trace`/`RIP_TRACE` (or
    /// [`Context::install_trace`]) enabled tracing.
    pub fn trace_guard(&self) -> Option<&Arc<TraceFileGuard>> {
        self.trace.as_ref()
    }

    /// Writes the pending trace file now, if tracing is enabled — call
    /// before `std::process::exit`, which skips destructors.
    pub fn flush_trace(&self) {
        if let Some(guard) = &self.trace {
            guard.flush();
        }
    }

    /// The counter-registry summary table (every `exec.*`, `gpusim.*`,
    /// `predictor.*` total recorded so far), followed — when tracing is
    /// enabled and spans were recorded — by per-span latency
    /// percentiles (p50/p95/p99) aggregated from the trace. Rendered
    /// onto stderr by `run_all` after the experiment tables.
    pub fn metrics_summary(&self) -> String {
        let mut out = self.obs.registry().summary_table();
        let spans = self.obs.span_latency_summary();
        if !spans.is_empty() {
            out.push_str("span latency percentiles:\n");
            out.push_str(&spans);
        }
        out
    }

    /// A sharded runner named `name` on this context's pool, reporting
    /// into this context's [`Obs`] instance.
    pub fn runner(&self, name: &str) -> ShardedRunner<'_> {
        ShardedRunner::new(&self.pool, name).with_obs(Arc::clone(&self.obs))
    }

    /// A simulator for `config` whose `gpusim.*` counters land in this
    /// context's [`Obs`] instance. Experiments construct simulators
    /// through here so scoped contexts observe their own runs.
    pub fn simulator(&self, config: GpuConfig) -> Simulator {
        Simulator::new(config).with_obs(Arc::clone(&self.obs))
    }

    /// The trace mode selected by `--capture-trace`/`--replay` (default
    /// [`TraceMode::Off`]).
    pub fn trace_mode(&self) -> TraceMode {
        self.trace_mode
    }

    /// Overrides the trace mode — for tests and drivers (`replay_bench`)
    /// that flip one context between live and replay runs.
    pub fn set_trace_mode(&mut self, mode: TraceMode) {
        self.trace_mode = mode;
    }

    /// The shared store of recorded RIPT ray traces.
    pub fn trace_store(&self) -> &Arc<TraceStore> {
        &self.trace_store
    }

    /// Resolves the recorded trace for `batch` against `case` under the
    /// current [`TraceMode`]: `None` when off, and under `Capture` too
    /// (the trace is recorded as a side effect but the experiment still
    /// runs live); `Some` only under `Replay`. Traces are keyed by the
    /// case label (scene, scale, viewport) plus a workload `tag`
    /// (`"ao"`, `"shadow"`, …) so the same workload is captured once per
    /// process no matter how many configurations sweep over it.
    pub fn workload_trace(
        &self,
        case: &Case,
        tag: &str,
        batch: &RayBatch,
        kind: TraversalKind,
    ) -> Option<Arc<RayTraceSet>> {
        if self.trace_mode == TraceMode::Off {
            return None;
        }
        let label = format!("{}_{tag}", self.trace_label(case));
        let set = self
            .trace_store
            .get_or_capture(&label, &case.bvh, batch, kind);
        match self.trace_mode {
            TraceMode::Off => unreachable!("handled above"),
            TraceMode::Capture => None,
            TraceMode::Replay => Some(set),
        }
    }

    /// A timing simulator for `config` with the recorded any-hit AO
    /// trace for `batch` attached when this context is replaying.
    /// Experiments that sweep gpusim configurations over a case's AO
    /// workload construct their simulators through here.
    pub fn simulator_for(&self, config: GpuConfig, case: &Case, batch: &RayBatch) -> Simulator {
        let sim = self.simulator(config);
        match self.workload_trace(case, "ao", batch, TraversalKind::AnyHit) {
            Some(set) => sim.with_trace(set),
            None => sim,
        }
    }

    /// Runs `sim` over a case's any-hit AO `batch`, replaying the
    /// recorded trace when this context is replaying (live otherwise,
    /// with the trace recorded as a side effect under `Capture`). A
    /// trace the functional simulator rejects — unreachable through
    /// [`TraceStore`]'s validation, but defended anyway — falls back to
    /// the live run and bumps `bench.trace.replay_fallback`.
    pub fn run_functional(
        &self,
        sim: &FunctionalSim,
        case: &Case,
        batch: &RayBatch,
    ) -> FunctionalReport {
        let hashes = self.workload_hashes(sim, case, batch);
        match self.workload_trace(case, "ao", batch, TraversalKind::AnyHit) {
            Some(set) => sim
                .run_batch_replay_hashed(&case.bvh, batch, &set, &hashes)
                .unwrap_or_else(|e| {
                    eprintln!(
                        "warning: replay rejected for {}: {e}; running live",
                        case.id.code()
                    );
                    self.obs.add("bench.trace.replay_fallback", 1);
                    sim.run_batch_hashed(&case.bvh, batch, &hashes)
                }),
            None => sim.run_batch_hashed(&case.bvh, batch, &hashes),
        }
    }

    /// The memoized ray-hash stream for `batch` under `sim`'s hasher.
    /// Reports are byte-identical with or without the memo — it only
    /// hoists a pure per-ray computation out of repeated runs.
    fn workload_hashes(&self, sim: &FunctionalSim, case: &Case, batch: &RayBatch) -> Arc<Vec<u32>> {
        let key = (batch.content_digest(), sim.hasher(&case.bvh).fingerprint());
        let mut memo = self.hash_memo.lock().expect("hash memo poisoned");
        if let Some(hashes) = memo.get(&key) {
            return Arc::clone(hashes);
        }
        // Hash-function sweeps at paper scale could otherwise pin one
        // multi-MB stream per (workload, hasher) for the whole process.
        if memo.len() >= 16 {
            memo.clear();
        }
        let hashes = Arc::new(sim.hash_batch(&case.bvh, batch));
        memo.insert(key, Arc::clone(&hashes));
        hashes
    }

    /// The stable store label for `case`'s workload: the case-key label
    /// (scene, scale, viewport), which pins everything that determines
    /// the AO ray set.
    fn trace_label(&self, case: &Case) -> String {
        CaseKey {
            id: case.id,
            scale: self.scale,
            width: case.scene.camera.width(),
            height: case.scene.camera.height(),
        }
        .label()
    }

    /// Fans `f` over this context's scenes (each given its built case),
    /// returning results in Table-1 order regardless of scheduling.
    pub fn map_cases<U: Send>(&self, name: &str, f: impl Fn(&Case) -> U + Sync) -> Vec<U> {
        self.map_scenes(name, &self.scene_ids(), |id| f(&self.build_case(id)))
    }

    /// Fans `f` over an explicit scene list (the closure builds whatever
    /// case/viewport it needs), returning results in input order.
    pub fn map_scenes<U: Send>(
        &self,
        name: &str,
        ids: &[SceneId],
        f: impl Fn(SceneId) -> U + Sync,
    ) -> Vec<U> {
        self.runner(name)
            .run(ids, |id| id.code().to_string(), |&id| f(id))
            .into_iter()
            .map(|report| report.into_value())
            .collect()
    }

    /// Viewport edge (square) for the main experiments. The paper renders
    /// 1024×1024; lower scales shrink the viewport with the scene budget so
    /// the ray density over the hash space stays comparable.
    pub fn viewport(&self) -> u32 {
        match self.scale {
            SceneScale::Tiny => 48,
            SceneScale::Quick => 256,
            SceneScale::Paper => 1024,
        }
    }

    /// Reduced viewport for parameter sweeps (quarter the ray count).
    pub fn sweep_viewport(&self) -> u32 {
        (self.viewport() / 2).max(32)
    }

    /// Returns the shared case (scene + BVH) for `id` at this context's
    /// scale, building it at most once per process.
    pub fn build_case(&self, id: SceneId) -> Arc<Case> {
        self.build_case_with_viewport(id, self.viewport())
    }

    /// Returns the shared case for an explicit viewport edge.
    pub fn build_case_with_viewport(&self, id: SceneId, viewport: u32) -> Arc<Case> {
        self.cache
            .get_or_build(CaseKey::square(id, self.scale, viewport))
    }

    /// The baseline Table-2 GPU configuration.
    pub fn gpu_baseline(&self) -> GpuConfig {
        GpuConfig::baseline()
    }

    /// The Table-3 predictor configuration with repacking.
    pub fn gpu_predictor(&self) -> GpuConfig {
        GpuConfig::with_predictor()
    }
}

/// `RIP_JOBS` env override, else the machine's available parallelism.
fn jobs_from_env() -> usize {
    match std::env::var("RIP_JOBS") {
        Ok(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("warning: ignoring invalid RIP_JOBS='{v}' (expected a positive number)");
                rip_exec::available_parallelism()
            }
        },
        Err(_) => rip_exec::available_parallelism(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn selection_expansion() {
        let all = Context::new(SceneScale::Tiny, SceneSelection::All);
        assert_eq!(all.scene_ids().len(), 7);
        let two = Context::new(SceneScale::Tiny, SceneSelection::Subset(2));
        assert_eq!(
            two.scene_ids(),
            vec![SceneId::Sibenik, SceneId::CrytekSponza]
        );
        let explicit = Context::new(
            SceneScale::Tiny,
            SceneSelection::Explicit(vec![SceneId::LostEmpire]),
        );
        assert_eq!(explicit.scene_ids(), vec![SceneId::LostEmpire]);
    }

    #[test]
    fn viewports_scale() {
        let tiny = Context::new(SceneScale::Tiny, SceneSelection::All);
        let paper = Context::new(SceneScale::Paper, SceneSelection::All);
        assert!(tiny.viewport() < paper.viewport());
        assert_eq!(paper.viewport(), 1024);
        assert_eq!(tiny.sweep_viewport(), 32);
    }

    #[test]
    fn build_case_produces_consistent_bvh() {
        let ctx = Context::new(SceneScale::Tiny, SceneSelection::All);
        let case = ctx.build_case(SceneId::Sibenik);
        assert_eq!(case.bvh.triangle_count(), case.scene.mesh.triangle_count());
        case.bvh.validate().unwrap();
    }

    #[test]
    fn build_case_is_shared_across_requests() {
        let ctx = Context::new(SceneScale::Tiny, SceneSelection::All);
        let a = ctx.build_case(SceneId::Sibenik);
        let b = ctx.build_case(SceneId::Sibenik);
        assert!(Arc::ptr_eq(&a, &b));
        let clone = ctx.clone();
        let c = clone.build_case(SceneId::Sibenik);
        assert!(Arc::ptr_eq(&a, &c), "clones share the cache");
    }

    #[test]
    fn ao_workload_generates() {
        let ctx = Context::new(SceneScale::Tiny, SceneSelection::All);
        let case = ctx.build_case_with_viewport(SceneId::FireplaceRoom, 16);
        let w = case.ao_workload();
        assert!(!w.rays.is_empty());
    }

    #[test]
    fn parse_args_accepts_known_flags() {
        let parsed =
            Context::parse_args(&args(&["--scale", "tiny", "--scenes", "3", "--jobs", "2"]))
                .unwrap();
        let ParsedArgs::Run(ctx) = parsed else {
            panic!("expected a context")
        };
        assert_eq!(ctx.scale, SceneScale::Tiny);
        assert_eq!(ctx.selection, SceneSelection::Subset(3));
        assert_eq!(ctx.jobs(), 2);
    }

    #[test]
    fn parse_args_reports_malformed_values() {
        for bad in [
            &["--scale", "mars"][..],
            &["--scale"][..],
            &["--scenes", "zero"][..],
            &["--scenes", "0"][..],
            &["--jobs", "-3"][..],
            &["--jobs", "0"][..],
            &["--jobs"][..],
        ] {
            assert!(
                Context::parse_args(&args(bad)).is_err(),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn parse_args_help_and_unknown() {
        assert!(matches!(
            Context::parse_args(&args(&["--help"])).unwrap(),
            ParsedArgs::Help
        ));
        assert!(matches!(
            Context::parse_args(&args(&["--scale", "tiny", "-h"])).unwrap(),
            ParsedArgs::Help
        ));
        // Unknown flags warn but do not fail.
        let parsed = Context::parse_args(&args(&["--frobnicate", "--scenes", "2"])).unwrap();
        let ParsedArgs::Run(ctx) = parsed else {
            panic!("expected a context")
        };
        assert_eq!(ctx.selection, SceneSelection::Subset(2));
    }

    #[test]
    fn scenes_clamp_to_suite_size() {
        let ParsedArgs::Run(ctx) = Context::parse_args(&args(&["--scenes", "99"])).unwrap() else {
            panic!("expected a context")
        };
        assert_eq!(ctx.selection, SceneSelection::Subset(7));
    }

    fn scoped_ctx(mode: TraceMode) -> Context {
        let obs = Arc::new(Obs::new(rip_obs::ClockMode::Logical));
        let mut ctx = Context::scoped(SceneScale::Tiny, SceneSelection::Subset(1), 1, obs);
        ctx.set_trace_mode(mode);
        ctx
    }

    #[test]
    fn parse_args_accepts_trace_modes() {
        let ParsedArgs::Run(ctx) = Context::parse_args(&args(&["--capture-trace"])).unwrap() else {
            panic!("expected a context")
        };
        assert_eq!(ctx.trace_mode(), TraceMode::Capture);
        let ParsedArgs::Run(ctx) = Context::parse_args(&args(&["--replay"])).unwrap() else {
            panic!("expected a context")
        };
        assert_eq!(ctx.trace_mode(), TraceMode::Replay);
        let ParsedArgs::Run(ctx) = Context::parse_args(&args(&[])).unwrap() else {
            panic!("expected a context")
        };
        assert_eq!(ctx.trace_mode(), TraceMode::Off);
    }

    #[test]
    fn workload_trace_respects_mode() {
        let ctx = scoped_ctx(TraceMode::Off);
        let case = ctx.build_case_with_viewport(SceneId::Sibenik, 16);
        let batch = case.ao_batch();
        assert!(ctx
            .workload_trace(&case, "ao", &batch, TraversalKind::AnyHit)
            .is_none());
        assert_eq!(ctx.trace_store().stats().captures, 0, "Off never captures");

        let ctx = scoped_ctx(TraceMode::Capture);
        let case = ctx.build_case_with_viewport(SceneId::Sibenik, 16);
        let batch = case.ao_batch();
        assert!(ctx
            .workload_trace(&case, "ao", &batch, TraversalKind::AnyHit)
            .is_none());
        assert_eq!(ctx.trace_store().stats().captures, 1, "Capture records");

        let ctx = scoped_ctx(TraceMode::Replay);
        let case = ctx.build_case_with_viewport(SceneId::Sibenik, 16);
        let batch = case.ao_batch();
        let a = ctx
            .workload_trace(&case, "ao", &batch, TraversalKind::AnyHit)
            .expect("replay resolves a trace");
        let b = ctx
            .workload_trace(&case, "ao", &batch, TraversalKind::AnyHit)
            .expect("second lookup hits the memory tier");
        assert!(Arc::ptr_eq(&a, &b), "one capture serves every sweep config");
        assert_eq!(ctx.trace_store().stats().captures, 1);
    }

    #[test]
    fn run_functional_replay_is_byte_identical_to_live() {
        use rip_core::{PredictorConfig, SimOptions};
        let live_ctx = scoped_ctx(TraceMode::Off);
        let replay_ctx = scoped_ctx(TraceMode::Replay);
        let sim = FunctionalSim::new(PredictorConfig::paper_default(), SimOptions::default());
        let case = live_ctx.build_case_with_viewport(SceneId::Sibenik, 16);
        let batch = case.ao_batch();
        let live = live_ctx.run_functional(&sim, &case, &batch);
        let case2 = replay_ctx.build_case_with_viewport(SceneId::Sibenik, 16);
        let replayed = replay_ctx.run_functional(&sim, &case2, &batch);
        assert_eq!(format!("{live:?}"), format!("{replayed:?}"));
        assert_eq!(
            replay_ctx.obs().get("bench.trace.replay_fallback"),
            0,
            "the validated trace must replay, not fall back"
        );
    }

    #[test]
    fn simulator_for_replay_matches_live_run() {
        let live_ctx = scoped_ctx(TraceMode::Off);
        let replay_ctx = scoped_ctx(TraceMode::Replay);
        let case = live_ctx.build_case_with_viewport(SceneId::Sibenik, 16);
        let batch = case.ao_batch();
        let live = live_ctx
            .simulator_for(live_ctx.gpu_predictor(), &case, &batch)
            .run_batch(&case.bvh, &batch);
        let case2 = replay_ctx.build_case_with_viewport(SceneId::Sibenik, 16);
        let replayed = replay_ctx
            .simulator_for(replay_ctx.gpu_predictor(), &case2, &batch)
            .run_batch(&case2.bvh, &batch);
        assert_eq!(format!("{live:?}"), format!("{replayed:?}"));
        assert_eq!(replay_ctx.obs().get("gpusim.trace.rejected"), 0);
    }

    #[test]
    fn map_cases_returns_table_order() {
        let ctx = Context::with_jobs(SceneScale::Tiny, SceneSelection::Subset(3), 3);
        let codes = ctx.map_cases("test", |case| case.id.code().to_string());
        assert_eq!(codes, vec!["SB", "SP", "LE"]);
    }
}
