//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§6).
//!
//! Each experiment lives in [`experiments`] as a function from a
//! [`Context`] to a [`Report`]; the `src/bin/*` binaries are thin wrappers
//! so results can be produced one figure at a time or all at once via
//! `run_all`. Experiments run at three scales (`--scale tiny|quick|paper`)
//! with viewport and workload density scaled alongside the procedural
//! scene budgets, preserving the ray-density-to-hash-space ratio that the
//! predictor's training depends on (see DESIGN.md).
//!
//! # Examples
//!
//! ```
//! use rip_bench::{Context, SceneSelection};
//! use rip_scene::SceneScale;
//!
//! let ctx = Context::new(SceneScale::Tiny, SceneSelection::Subset(1));
//! let report = rip_bench::experiments::table1_scenes::run(&ctx);
//! assert!(report.text.contains("Sibenik"));
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod experiments;
mod harness;
mod serve_json;
mod table;

pub use harness::{Case, Context, ParsedArgs, SceneSelection, TraceMode};
pub use serve_json::serve_report_json;
pub use table::{fmt_f64, fmt_pct, Report, Table};
