//! Shared JSON rendering for the serve-layer benchmarks
//! (`serve_bench`, `chaos_bench`).
//!
//! Hand-rolled formatting (no serde in the workspace): every field is
//! written explicitly so the baseline files diff cleanly and the schema
//! is visible in one place.

use rip_core::TableStats;
use rip_exec::FaultKind;
use rip_serve::{LoadGenConfig, LoadReport, ServiceMode};

/// Renders one load-generation run as the `BENCH_serve.json` /
/// `BENCH_chaos.json` schema. `extras` are extra top-level entries
/// (key, raw JSON value) spliced in after the standard fields — the
/// chaos bench records its injection plan there.
pub fn serve_report_json(
    bench: &str,
    report: &LoadReport,
    config: &LoadGenConfig,
    shards: usize,
    scene: &str,
    table: Option<&TableStats>,
    extras: &[(&str, String)],
) -> String {
    let classes = report
        .classes
        .iter()
        .map(|c| {
            format!(
                "    {{\"class\": \"{}\", \"requests\": {}, \"rays\": {}, \"hits\": {}, \
                 \"deadline_miss\": {}, \"expired\": {}, \"failed\": {}, \"shed\": {}, \
                 \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"max_us\": {}, \
                 \"mean_us\": {:.1}}}",
                c.class.label(),
                c.requests,
                c.rays,
                c.hits,
                c.deadline_miss,
                c.expired,
                c.failed,
                c.shed,
                c.p50_us,
                c.p95_us,
                c.p99_us,
                c.max_us,
                c.mean_us,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let faults = FaultKind::ALL
        .iter()
        .map(|kind| {
            format!(
                "\"{}\": {}",
                kind.slug(),
                report.faults_by_kind[kind.index()]
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let modes = ServiceMode::ALL
        .iter()
        .map(|mode| format!("\"{}\": {}", mode.label(), report.mode_rounds[mode.index()]))
        .collect::<Vec<_>>()
        .join(", ");
    let table_json = match table {
        Some(t) => {
            let hit_rate = if t.lookups > 0 {
                t.tag_hits as f64 / t.lookups as f64
            } else {
                0.0
            };
            format!(
                "{{\"lookups\": {}, \"tag_hits\": {}, \"insertions\": {}, \"hit_rate\": {:.4}}}",
                t.lookups, t.tag_hits, t.insertions, hit_rate,
            )
        }
        None => "null".to_string(),
    };
    let extras_json = extras
        .iter()
        .map(|(key, value)| format!(",\n  \"{key}\": {value}"))
        .collect::<String>();
    format!(
        "{{\n  \"bench\": \"{bench}\",\n  \"scene\": \"{scene}\",\n  \"tenants\": {},\n  \
         \"shards\": {shards},\n  \"rate_per_tenant\": {},\n  \"rays_per_request\": {},\n  \
         \"duration_s\": {},\n  \"deadline_us\": {},\n  \"wall_s\": {:.3},\n  \
         \"offered_requests\": {},\n  \"completed_requests\": {},\n  \"shed_requests\": {},\n  \
         \"rate_limited\": {},\n  \"rejected_unmeetable\": {},\n  \"expired_requests\": {},\n  \
         \"failed_requests\": {},\n  \"deadline_miss_requests\": {},\n  \
         \"availability\": {:.4},\n  \"retried_chunks\": {},\n  \"mode_transitions\": {},\n  \
         \"mode_rounds\": {{{modes}}},\n  \"final_mode\": \"{}\",\n  \
         \"faults_by_kind\": {{{faults}}},\n  \"completed_rays\": {},\n  \
         \"rays_per_sec\": {:.0},\n  \"rounds\": {},\n  \"table\": {table_json}{extras_json},\n  \
         \"classes\": [\n{classes}\n  ]\n}}\n",
        config.tenants,
        config.rate,
        config.rays_per_request,
        config.duration.as_secs_f64(),
        config.deadline.map_or(0, |d| d.as_micros() as u64),
        report.wall.as_secs_f64(),
        report.offered_requests,
        report.completed_requests,
        report.shed_requests,
        report.rate_limited,
        report.rejected_unmeetable,
        report.expired_requests,
        report.failed_requests,
        report.deadline_miss_requests,
        report.availability,
        report.retried_chunks,
        report.mode_transitions,
        report.final_mode.label(),
        report.completed_rays,
        report.rays_per_sec,
        report.rounds,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn schema_contains_every_slo_field() {
        let report = LoadReport {
            wall: Duration::from_millis(100),
            completed_requests: 10,
            completed_rays: 1000,
            shed_requests: 1,
            rate_limited: 2,
            rejected_unmeetable: 3,
            expired_requests: 4,
            failed_requests: 5,
            deadline_miss_requests: 6,
            offered_requests: 31,
            availability: 0.5,
            retried_chunks: 7,
            mode_transitions: 2,
            mode_rounds: [8, 1, 0],
            final_mode: ServiceMode::NoPredict,
            faults_by_kind: [5, 0, 0, 0, 0, 4],
            rays_per_sec: 10_000.0,
            rounds: 9,
            classes: Vec::new(),
        };
        let config = LoadGenConfig {
            deadline: Some(Duration::from_micros(2500)),
            ..LoadGenConfig::default()
        };
        let json = serve_report_json(
            "chaos",
            &report,
            &config,
            4,
            "sb_tiny_64x64",
            None,
            &[("panic_rate", "0.1".to_string())],
        );
        for needle in [
            "\"bench\": \"chaos\"",
            "\"deadline_us\": 2500",
            "\"availability\": 0.5000",
            "\"deadline_miss_requests\": 6",
            "\"final_mode\": \"no_predict\"",
            "\"deadline_exceeded\": 4",
            "\"mode_rounds\": {\"full\": 8, \"no_predict\": 1, \"survival\": 0}",
            "\"table\": null",
            "\"panic_rate\": 0.1",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }
}
