//! ASCII table rendering for experiment reports.

/// A rendered experiment report: a title, free-form text (tables, notes)
/// and the headline numbers other tooling may want.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Experiment identifier (e.g. `"Figure 12"`).
    pub id: String,
    /// Full rendered text.
    pub text: String,
    /// Named headline metrics (e.g. `("geomean_speedup", 1.26)`).
    pub metrics: Vec<(String, f64)>,
}

impl Report {
    /// Creates a report with the given id.
    pub fn new(id: impl Into<String>) -> Self {
        Report {
            id: id.into(),
            ..Default::default()
        }
    }

    /// Appends a line of text.
    pub fn line(&mut self, s: impl AsRef<str>) {
        self.text.push_str(s.as_ref());
        self.text.push('\n');
    }

    /// Records a headline metric.
    pub fn metric(&mut self, name: impl Into<String>, value: f64) {
        self.metrics.push((name.into(), value));
    }

    /// Looks up a recorded metric.
    pub fn get_metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "=== {} ===", self.id)?;
        f.write_str(&self.text)
    }
}

/// A simple aligned ASCII table.
///
/// # Examples
///
/// ```
/// use rip_bench::Table;
///
/// let mut t = Table::new(&["Scene", "Speedup"]);
/// t.row(&["Sibenik", "1.26"]);
/// assert!(t.render().contains("Sibenik"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when the cell count differs from the header count.
    pub fn row(&mut self, cells: &[impl AsRef<str>]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows
            .push(cells.iter().map(|c| c.as_ref().to_string()).collect());
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        let mut out = fmt_row(&self.headers);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio as a percentage string (`0.26` → `"26.0%"`).
pub fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Formats a float to 3 decimal places.
pub fn fmt_f64(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(&["A", "Long header"]);
        t.row(&["wide cell value", "x"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("Long header"));
        assert!(lines[2].starts_with("wide cell value"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["A", "B"]);
        t.row(&["only one"]);
    }

    #[test]
    fn report_metrics() {
        let mut r = Report::new("Figure X");
        r.metric("speedup", 1.26);
        r.line("hello");
        assert_eq!(r.get_metric("speedup"), Some(1.26));
        assert_eq!(r.get_metric("absent"), None);
        assert!(r.to_string().contains("=== Figure X ==="));
        assert!(r.text.contains("hello"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_pct(0.2634), "26.3%");
        assert_eq!(fmt_f64(1.23456), "1.235");
    }
}
