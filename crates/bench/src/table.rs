//! ASCII table rendering for experiment reports.

/// A rendered experiment report: a title, free-form text (tables, notes)
/// and the headline numbers other tooling may want.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Experiment identifier (e.g. `"Figure 12"`).
    pub id: String,
    /// Full rendered text.
    pub text: String,
    /// Named headline metrics (e.g. `("geomean_speedup", 1.26)`).
    pub metrics: Vec<(String, f64)>,
}

impl Report {
    /// Creates a report with the given id.
    pub fn new(id: impl Into<String>) -> Self {
        Report {
            id: id.into(),
            ..Default::default()
        }
    }

    /// Appends a line of text.
    pub fn line(&mut self, s: impl AsRef<str>) {
        self.text.push_str(s.as_ref());
        self.text.push('\n');
    }

    /// Records a headline metric.
    pub fn metric(&mut self, name: impl Into<String>, value: f64) {
        self.metrics.push((name.into(), value));
    }

    /// Looks up a recorded metric.
    pub fn get_metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Serializes the report for the resume journal: little-endian
    /// length-prefixed strings, metric values as raw `f64` bits so a
    /// resumed sweep reproduces the original run *byte-identically*.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.id.len() + self.text.len());
        let put_str = |out: &mut Vec<u8>, s: &str| {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        };
        put_str(&mut out, &self.id);
        out.extend_from_slice(&(self.metrics.len() as u32).to_le_bytes());
        for (name, value) in &self.metrics {
            put_str(&mut out, name);
            out.extend_from_slice(&value.to_bits().to_le_bytes());
        }
        put_str(&mut out, &self.text);
        out
    }

    /// Decodes a buffer produced by [`Report::encode`]. Returns `None`
    /// on any structural mismatch so a damaged journal payload degrades
    /// to re-running the unit instead of resurrecting garbage.
    pub fn decode(bytes: &[u8]) -> Option<Report> {
        let mut at = 0usize;
        let take = |at: &mut usize, n: usize| -> Option<&[u8]> {
            let slice = bytes.get(*at..*at + n)?;
            *at += n;
            Some(slice)
        };
        let take_u32 = |at: &mut usize| -> Option<u32> {
            Some(u32::from_le_bytes(take(at, 4)?.try_into().ok()?))
        };
        let take_str = |at: &mut usize| -> Option<String> {
            let len = take_u32(at)? as usize;
            String::from_utf8(take(at, len)?.to_vec()).ok()
        };
        let id = take_str(&mut at)?;
        let metric_count = take_u32(&mut at)? as usize;
        // Each metric needs ≥ 12 bytes; reject bogus counts before allocating.
        if metric_count > bytes.len() / 12 {
            return None;
        }
        let mut metrics = Vec::with_capacity(metric_count);
        for _ in 0..metric_count {
            let name = take_str(&mut at)?;
            let value = f64::from_bits(u64::from_le_bytes(take(&mut at, 8)?.try_into().ok()?));
            metrics.push((name, value));
        }
        let text = take_str(&mut at)?;
        (at == bytes.len()).then_some(Report { id, text, metrics })
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "=== {} ===", self.id)?;
        f.write_str(&self.text)
    }
}

/// A simple aligned ASCII table.
///
/// # Examples
///
/// ```
/// use rip_bench::Table;
///
/// let mut t = Table::new(&["Scene", "Speedup"]);
/// t.row(&["Sibenik", "1.26"]);
/// assert!(t.render().contains("Sibenik"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when the cell count differs from the header count.
    pub fn row(&mut self, cells: &[impl AsRef<str>]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows
            .push(cells.iter().map(|c| c.as_ref().to_string()).collect());
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        let mut out = fmt_row(&self.headers);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio as a percentage string (`0.26` → `"26.0%"`).
pub fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Formats a float to 3 decimal places.
pub fn fmt_f64(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(&["A", "Long header"]);
        t.row(&["wide cell value", "x"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("Long header"));
        assert!(lines[2].starts_with("wide cell value"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["A", "B"]);
        t.row(&["only one"]);
    }

    #[test]
    fn report_metrics() {
        let mut r = Report::new("Figure X");
        r.metric("speedup", 1.26);
        r.line("hello");
        assert_eq!(r.get_metric("speedup"), Some(1.26));
        assert_eq!(r.get_metric("absent"), None);
        assert!(r.to_string().contains("=== Figure X ==="));
        assert!(r.text.contains("hello"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_pct(0.2634), "26.3%");
        assert_eq!(fmt_f64(1.23456), "1.235");
    }

    #[test]
    fn report_journal_round_trip_is_exact() {
        let mut r = Report::new("Figure 12");
        r.line("Scene  Speedup");
        r.line("SB     1.260");
        r.metric("geomean_speedup", 1.2599999999999998);
        r.metric("nan_guard", f64::NAN);
        let decoded = Report::decode(&r.encode()).expect("round trip");
        assert_eq!(decoded.id, r.id);
        assert_eq!(decoded.text, r.text);
        assert_eq!(decoded.metrics.len(), 2);
        assert_eq!(decoded.metrics[0].0, "geomean_speedup");
        // Bit-exact, including values that != themselves.
        assert_eq!(
            decoded.metrics[0].1.to_bits(),
            r.metrics[0].1.to_bits(),
            "metric bits must survive the journal"
        );
        assert_eq!(decoded.metrics[1].1.to_bits(), r.metrics[1].1.to_bits());
    }

    #[test]
    fn report_decode_rejects_damage() {
        let r = {
            let mut r = Report::new("X");
            r.line("body");
            r.metric("m", 2.0);
            r
        };
        let bytes = r.encode();
        assert!(
            Report::decode(&bytes[..bytes.len() - 1]).is_none(),
            "truncation"
        );
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(Report::decode(&extended).is_none(), "trailing garbage");
        let mut bombed = bytes;
        // Header-bomb the metric count field (right after the 1-byte id).
        let count_at = 4 + 1;
        bombed[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(Report::decode(&bombed).is_none(), "metric-count bomb");
    }
}
