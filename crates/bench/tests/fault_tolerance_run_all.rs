//! End-to-end fault tolerance of the `run_all` binary (ISSUE 3
//! acceptance): an injected panicking unit plus an unrecoverable corrupt
//! artifact must not stop the sweep — every other experiment completes, a
//! failure report names both faults, and the exit status flips to 1.
//! A sweep killed partway must resume from its journal and produce
//! stdout tables byte-identical to an uninterrupted run.
//!
//! These tests drive the real binary (`CARGO_BIN_EXE_run_all`) at tiny
//! scale with one scene, sharing one artifact cache across runs.

use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::OnceLock;

fn temp_root() -> &'static PathBuf {
    static ROOT: OnceLock<PathBuf> = OnceLock::new();
    ROOT.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("rip-run-all-e2e-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    })
}

/// Runs the `run_all` binary at tiny scale / 1 scene with a shared
/// artifact cache, extra args, and extra environment.
fn run_all(extra_args: &[&str], extra_env: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_run_all"));
    cmd.args(["--scale", "tiny", "--scenes", "1", "--jobs", "2"])
        .args(extra_args)
        .env("RIP_CACHE_DIR", temp_root().join("artifacts"))
        .env_remove("RIP_FAULT_INJECT")
        .env_remove("RIP_UNIT_TIMEOUT")
        .env_remove("RIP_JOURNAL");
    for (key, value) in extra_env {
        cmd.env(key, value);
    }
    cmd.output().expect("run_all binary must spawn")
}

fn stdout_of(output: &Output) -> String {
    String::from_utf8(output.stdout.clone()).expect("stdout is UTF-8")
}

/// The uninterrupted reference sweep, run once and shared.
fn reference_stdout() -> &'static str {
    static REFERENCE: OnceLock<String> = OnceLock::new();
    REFERENCE.get_or_init(|| {
        let output = run_all(&[], &[]);
        assert!(
            output.status.success(),
            "reference sweep must succeed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        stdout_of(&output)
    })
}

#[test]
fn faulted_sweep_completes_reports_and_exits_nonzero() {
    let reference = reference_stdout();

    // Damage the on-disk cache for real (exercises quarantine+rebuild on
    // stderr) and inject one panicking unit plus one unrecoverable
    // corruption fault (both must be *named* in the failure report).
    let cache_dir = temp_root().join("artifacts");
    let mut flipped = 0;
    for entry in std::fs::read_dir(&cache_dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "bvh") {
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x08;
            std::fs::write(&path, bytes).unwrap();
            flipped += 1;
        }
    }
    assert!(flipped > 0, "reference run must have populated the cache");

    let output = run_all(
        &[],
        &[(
            "RIP_FAULT_INJECT",
            "panic:fig12_speedup;corrupt:table8_hash",
        )],
    );
    assert_eq!(
        output.status.code(),
        Some(1),
        "a faulted sweep must exit 1; stderr:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = stdout_of(&output);
    let stderr = String::from_utf8_lossy(&output.stderr);

    // The failure report names both injected faults.
    assert!(
        stdout.contains("=== Failure report ==="),
        "missing report:\n{stdout}"
    );
    assert!(stdout.contains("fig12_speedup"), "panicking unit not named");
    assert!(stdout.contains("Panic"), "panic fault kind not named");
    assert!(stdout.contains("table8_hash"), "corrupt unit not named");
    assert!(
        stdout.contains("CacheCorrupt"),
        "corrupt fault kind not named"
    );
    assert!(
        stdout.contains("2 of 23 unit(s) failed"),
        "wrong failure count"
    );

    // Every *other* experiment completed, byte-identically to the
    // reference run (the failed units' reports are simply absent).
    for report in reference.split("=== ").filter(|s| !s.is_empty()) {
        let header = report.lines().next().unwrap_or_default();
        if header.contains("Figure 12") || header.contains("Table 8") {
            assert!(
                !stdout.contains(&format!("=== {report}")),
                "failed unit '{header}' must not print a report"
            );
        } else {
            assert!(
                stdout.contains(&format!("=== {report}")),
                "surviving unit '{header}' must print its exact report"
            );
        }
    }

    // The bit-flipped artifact was quarantined and rebuilt underneath.
    assert!(
        stderr.contains("quarantined"),
        "expected a quarantine log line on stderr:\n{stderr}"
    );
    let quarantined = std::fs::read_dir(&cache_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "quarantine"))
        .count();
    assert!(quarantined > 0, "expected *.quarantine files in the cache");
}

#[test]
fn killed_sweep_resumes_from_the_journal_byte_identically() {
    let reference = reference_stdout();
    let journal = temp_root().join("resume.journal");
    let journal_arg = journal.to_str().unwrap();

    // Phase 1: the sweep is killed (simulated `kill -9` via the fault
    // injection hook) when fig15_repacking starts.
    let killed = run_all(
        &["--journal", journal_arg],
        &[("RIP_FAULT_INJECT", "kill:fig15_repacking")],
    );
    assert_eq!(
        killed.status.code(),
        Some(9),
        "the injected kill must end the process; stderr:\n{}",
        String::from_utf8_lossy(&killed.stderr)
    );
    assert!(journal.exists(), "the journal must survive the kill");

    // Phase 2: resume. Only the remaining units run; completed units are
    // restored from the journal.
    let resumed = run_all(&["--journal", journal_arg, "--resume"], &[]);
    assert!(
        resumed.status.success(),
        "resume must complete cleanly; stderr:\n{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let resumed_stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        resumed_stderr.contains("resuming:"),
        "resume must restore journal units; stderr:\n{resumed_stderr}"
    );
    assert_eq!(
        stdout_of(&resumed),
        *reference,
        "a resumed sweep must reproduce the uninterrupted tables byte-for-byte"
    );
}

#[test]
fn resume_refuses_a_journal_from_another_configuration() {
    reference_stdout(); // warm the artifact cache
    let journal = temp_root().join("mismatch.journal");
    let journal_arg = journal.to_str().unwrap();
    std::fs::write(
        &journal,
        "rip-journal v1 run_all scale=Paper scenes=SB schedule=x formats=s1b1\n",
    )
    .unwrap();
    let output = run_all(&["--journal", journal_arg, "--resume"], &[]);
    assert!(
        output.status.success(),
        "a mismatched journal restarts the sweep instead of failing"
    );
    assert!(
        String::from_utf8_lossy(&output.stderr).contains("does not match this configuration"),
        "the mismatch must be reported on stderr"
    );
    assert_eq!(stdout_of(&output), *reference_stdout());
}
