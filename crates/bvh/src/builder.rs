//! Binned-SAH BVH construction.

use crate::node::{BvhNode, NodeId, NodeKind};
use crate::Bvh;
use rip_math::{Aabb, Triangle, Vec3};

/// Partitioning strategy used at each interior node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SplitMethod {
    /// Surface-area heuristic over binned centroids (16 bins). The
    /// production-quality default, matching what the paper's OptiX/Embree
    /// toolchain produces in spirit.
    #[default]
    BinnedSah,
    /// Median split along the largest centroid axis. Cheaper to build and
    /// useful as an ablation baseline.
    Median,
}

/// Configurable BVH builder.
///
/// # Examples
///
/// ```
/// use rip_bvh::{BvhBuilder, SplitMethod};
/// use rip_math::{Triangle, Vec3};
///
/// let tris: Vec<Triangle> = (0..64)
///     .map(|i| {
///         let o = Vec3::new(i as f32, 0.0, 0.0);
///         Triangle::new(o, o + Vec3::X, o + Vec3::Y)
///     })
///     .collect();
/// let bvh = BvhBuilder::new()
///     .split_method(SplitMethod::BinnedSah)
///     .max_leaf_size(2)
///     .build(&tris);
/// assert!(bvh.depth() >= 5);
/// ```
#[derive(Clone, Debug)]
pub struct BvhBuilder {
    split_method: SplitMethod,
    max_leaf_size: u32,
    bins: usize,
}

impl Default for BvhBuilder {
    fn default() -> Self {
        BvhBuilder {
            split_method: SplitMethod::BinnedSah,
            max_leaf_size: 4,
            bins: 16,
        }
    }
}

/// A triangle reference carried through the build.
#[derive(Clone, Copy)]
struct TriRef {
    index: u32,
    bounds: Aabb,
    centroid: Vec3,
}

impl BvhBuilder {
    /// Creates a builder with the default configuration (binned SAH,
    /// max 4 triangles per leaf, 16 bins).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the partitioning strategy.
    pub fn split_method(mut self, method: SplitMethod) -> Self {
        self.split_method = method;
        self
    }

    /// Sets the maximum number of triangles per leaf.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    pub fn max_leaf_size(mut self, n: u32) -> Self {
        assert!(n > 0, "leaf size must be positive");
        self.max_leaf_size = n;
        self
    }

    /// Sets the SAH bin count.
    ///
    /// # Panics
    ///
    /// Panics when `bins < 2`.
    pub fn bins(mut self, bins: usize) -> Self {
        assert!(bins >= 2, "need at least 2 bins");
        self.bins = bins;
        self
    }

    /// Builds a BVH over `triangles`.
    ///
    /// # Panics
    ///
    /// Panics when `triangles` is empty.
    pub fn build(&self, triangles: &[Triangle]) -> Bvh {
        assert!(
            !triangles.is_empty(),
            "cannot build a BVH over zero triangles"
        );
        let mut refs: Vec<TriRef> = triangles
            .iter()
            .enumerate()
            .map(|(i, t)| TriRef {
                index: i as u32,
                bounds: t.bounds(),
                centroid: t.centroid(),
            })
            .collect();

        let mut nodes: Vec<BvhNode> = Vec::with_capacity(triangles.len() * 2);
        let mut tri_order: Vec<u32> = Vec::with_capacity(triangles.len());

        // Reserve the root slot, then build recursively.
        nodes.push(BvhNode {
            bounds: Aabb::empty(),
            kind: NodeKind::Leaf { first: 0, count: 0 },
            parent: None,
            depth: 0,
        });
        let n = refs.len();
        self.build_node(&mut nodes, &mut tri_order, &mut refs, 0, n, 0, None, 0);

        Bvh::from_parts(nodes, tri_order, triangles.to_vec())
    }

    /// Builds the subtree for `refs[start..end]` into `nodes[slot]`.
    #[allow(clippy::too_many_arguments)]
    fn build_node(
        &self,
        nodes: &mut Vec<BvhNode>,
        tri_order: &mut Vec<u32>,
        refs: &mut [TriRef],
        start: usize,
        end: usize,
        slot: usize,
        parent: Option<NodeId>,
        depth: u32,
    ) {
        let bounds = refs[start..end]
            .iter()
            .fold(Aabb::empty(), |b, r| b.union(&r.bounds));
        let count = end - start;

        let split = if count <= self.max_leaf_size as usize {
            None
        } else {
            match self.split_method {
                SplitMethod::BinnedSah => self.sah_split(&mut refs[start..end]),
                SplitMethod::Median => self.median_split(&mut refs[start..end]),
            }
        };

        match split {
            None => {
                let first = tri_order.len() as u32;
                tri_order.extend(refs[start..end].iter().map(|r| r.index));
                nodes[slot] = BvhNode {
                    bounds,
                    kind: NodeKind::Leaf {
                        first,
                        count: count as u32,
                    },
                    parent,
                    depth,
                };
            }
            Some(mid_rel) => {
                let mid = start + mid_rel;
                let left_slot = nodes.len();
                let right_slot = left_slot + 1;
                let placeholder = BvhNode {
                    bounds: Aabb::empty(),
                    kind: NodeKind::Leaf { first: 0, count: 0 },
                    parent: Some(NodeId::new(slot as u32)),
                    depth: depth + 1,
                };
                nodes.push(placeholder);
                nodes.push(placeholder);
                self.build_node(
                    nodes,
                    tri_order,
                    refs,
                    start,
                    mid,
                    left_slot,
                    Some(NodeId::new(slot as u32)),
                    depth + 1,
                );
                self.build_node(
                    nodes,
                    tri_order,
                    refs,
                    mid,
                    end,
                    right_slot,
                    Some(NodeId::new(slot as u32)),
                    depth + 1,
                );
                nodes[slot] = BvhNode {
                    bounds,
                    kind: NodeKind::Interior {
                        left: NodeId::new(left_slot as u32),
                        right: NodeId::new(right_slot as u32),
                        left_bounds: nodes[left_slot].bounds,
                        right_bounds: nodes[right_slot].bounds,
                    },
                    parent,
                    depth,
                };
            }
        }
    }

    /// Partitions `refs` with binned SAH; returns the split point, or `None`
    /// to make a leaf. Falls back to a median split when centroids are
    /// degenerate, and makes a leaf only when SAH says splitting never pays.
    fn sah_split(&self, refs: &mut [TriRef]) -> Option<usize> {
        let centroid_bounds: Aabb = refs.iter().map(|r| r.centroid).collect();
        let axis = centroid_bounds.diagonal().largest_axis();
        let extent = centroid_bounds.diagonal()[axis];
        if extent < 1e-12 {
            // All centroids coincide along every useful axis: median split
            // by index keeps the tree balanced.
            return self.median_split(refs);
        }

        let nbins = self.bins;
        let mut bin_bounds = vec![Aabb::empty(); nbins];
        let mut bin_counts = vec![0usize; nbins];
        let k = nbins as f32 * (1.0 - 1e-6) / extent;
        let bin_of =
            |c: Vec3| (((c[axis] - centroid_bounds.min[axis]) * k) as usize).min(nbins - 1);
        for r in refs.iter() {
            let b = bin_of(r.centroid);
            bin_bounds[b] = bin_bounds[b].union(&r.bounds);
            bin_counts[b] += 1;
        }

        // Sweep to find the cheapest split boundary.
        let mut right_area = vec![0.0f32; nbins];
        let mut acc = Aabb::empty();
        for i in (1..nbins).rev() {
            acc = acc.union(&bin_bounds[i]);
            right_area[i] = acc.surface_area();
        }
        let mut best: Option<(usize, f32)> = None;
        let mut left_acc = Aabb::empty();
        let mut left_count = 0usize;
        let total = refs.len();
        for boundary in 1..nbins {
            left_acc = left_acc.union(&bin_bounds[boundary - 1]);
            left_count += bin_counts[boundary - 1];
            let right_count = total - left_count;
            if left_count == 0 || right_count == 0 {
                continue;
            }
            let cost = left_acc.surface_area() * left_count as f32
                + right_area[boundary] * right_count as f32;
            if best.is_none_or(|(_, c)| cost < c) {
                best = Some((boundary, cost));
            }
        }
        let (boundary, split_cost) = best?;

        // Compare against the cost of not splitting (SAH with traversal
        // cost folded into a 1.2× relative intersection weight).
        let parent_area = refs
            .iter()
            .fold(Aabb::empty(), |b, r| b.union(&r.bounds))
            .surface_area();
        let leaf_cost = total as f32 * parent_area;
        if split_cost / parent_area.max(1e-20) + 1.2 >= leaf_cost / parent_area.max(1e-20)
            && total <= 2 * self.max_leaf_size as usize
        {
            return None;
        }

        let mid = partition_in_place(refs, |r| bin_of(r.centroid) < boundary);
        if mid == 0 || mid == refs.len() {
            return self.median_split(refs);
        }
        Some(mid)
    }

    /// Median split along the largest centroid axis.
    fn median_split(&self, refs: &mut [TriRef]) -> Option<usize> {
        if refs.len() < 2 {
            return None;
        }
        let centroid_bounds: Aabb = refs.iter().map(|r| r.centroid).collect();
        let axis = centroid_bounds.diagonal().largest_axis();
        let mid = refs.len() / 2;
        refs.select_nth_unstable_by(mid, |a, b| {
            a.centroid[axis]
                .partial_cmp(&b.centroid[axis])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        Some(mid)
    }
}

/// Stable-order-agnostic in-place partition; returns the boundary index.
fn partition_in_place<T, F: FnMut(&T) -> bool>(slice: &mut [T], mut pred: F) -> usize {
    let mut i = 0;
    for j in 0..slice.len() {
        if pred(&slice[j]) {
            slice.swap(i, j);
            i += 1;
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strip(n: usize) -> Vec<Triangle> {
        (0..n)
            .map(|i| {
                let o = Vec3::new(i as f32 * 2.0, 0.0, 0.0);
                Triangle::new(o, o + Vec3::X, o + Vec3::Y)
            })
            .collect()
    }

    #[test]
    fn single_triangle_is_root_leaf() {
        let bvh = BvhBuilder::new().build(&strip(1));
        assert_eq!(bvh.node_count(), 1);
        assert!(bvh.node(NodeId::ROOT).is_leaf());
    }

    #[test]
    fn leaf_size_respected() {
        for method in [SplitMethod::BinnedSah, SplitMethod::Median] {
            let bvh = BvhBuilder::new()
                .split_method(method)
                .max_leaf_size(3)
                .build(&strip(100));
            for node in bvh.nodes() {
                if let NodeKind::Leaf { count, .. } = node.kind {
                    assert!(count <= 6, "{method:?} leaf with {count} tris");
                }
            }
        }
    }

    #[test]
    fn sah_tree_is_roughly_logarithmic() {
        let bvh = BvhBuilder::new().max_leaf_size(1).build(&strip(256));
        assert!(bvh.depth() >= 8, "depth {}", bvh.depth());
        assert!(bvh.depth() <= 24, "depth {}", bvh.depth());
    }

    #[test]
    fn coincident_centroids_still_terminate() {
        // 64 identical triangles: centroid extent is zero on every axis.
        let tris: Vec<Triangle> = (0..64)
            .map(|_| Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y))
            .collect();
        let bvh = BvhBuilder::new().max_leaf_size(2).build(&tris);
        bvh.validate().unwrap();
    }

    #[test]
    fn partition_in_place_is_correct() {
        let mut v = vec![5, 1, 4, 2, 3];
        let mid = partition_in_place(&mut v, |&x| x <= 2);
        assert_eq!(mid, 2);
        assert!(v[..mid].iter().all(|&x| x <= 2));
        assert!(v[mid..].iter().all(|&x| x > 2));
    }

    #[test]
    #[should_panic(expected = "zero triangles")]
    fn empty_input_panics() {
        let _ = BvhBuilder::new().build(&[]);
    }
}
