//! The BVH container and whole-tree queries.

use crate::node::{BvhNode, NodeId, NodeKind};
use crate::traversal::{Traversal, TraversalKind, TraversalResult};
use crate::{BvhBuilder, MemoryLayout};
use rip_math::{Aabb, Ray, Triangle};
use rip_pod::PodBuf;

/// A built bounding volume hierarchy.
///
/// Owns the node array, the leaf-order triangle permutation and a copy of
/// the triangles themselves, so traversal needs no external lookups.
///
/// # Examples
///
/// ```
/// use rip_bvh::{Bvh, TraversalKind};
/// use rip_math::{Ray, Triangle, Vec3};
///
/// let tris = vec![
///     Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y),
///     Triangle::new(Vec3::Z * 3.0, Vec3::Z * 3.0 + Vec3::X, Vec3::Z * 3.0 + Vec3::Y),
/// ];
/// let bvh = Bvh::build(&tris);
/// let ray = Ray::new(Vec3::new(0.2, 0.2, -1.0), Vec3::Z);
/// let closest = bvh.intersect(&ray, TraversalKind::ClosestHit);
/// assert_eq!(closest.hit.unwrap().tri_index, 0);
/// ```
#[derive(Clone, Debug)]
pub struct Bvh {
    nodes: Vec<BvhNode>,
    // The flat pod buffers may borrow shared artifact memory (RIPA v2
    // zero-copy load); every mutation path detaches a private copy.
    tri_order: PodBuf<u32>,
    triangles: PodBuf<Triangle>,
    depth: u32,
    layout: MemoryLayout,
}

impl Bvh {
    /// Builds a BVH with the default [`BvhBuilder`] configuration.
    ///
    /// # Panics
    ///
    /// Panics when `triangles` is empty.
    pub fn build(triangles: &[Triangle]) -> Self {
        BvhBuilder::new().build(triangles)
    }

    /// Assembles a BVH from builder output (crate-internal). The pod
    /// buffers may be owned or borrow shared artifact memory.
    pub(crate) fn from_parts(
        nodes: Vec<BvhNode>,
        tri_order: impl Into<PodBuf<u32>>,
        triangles: impl Into<PodBuf<Triangle>>,
    ) -> Self {
        let tri_order = tri_order.into();
        let triangles = triangles.into();
        let depth = nodes.iter().map(|n| n.depth).max().unwrap_or(0);
        let layout = MemoryLayout::for_tree(nodes.len(), triangles.len());
        Bvh {
            nodes,
            tri_order,
            triangles,
            depth,
            layout,
        }
    }

    /// Whether any buffer borrows shared artifact memory (diagnostics).
    pub fn is_shared(&self) -> bool {
        self.tri_order.is_shared() || self.triangles.is_shared()
    }

    /// Raw node/order/triangle buffers for serialization (crate-internal).
    pub(crate) fn raw_parts(&self) -> (&[BvhNode], &[u32], &[Triangle]) {
        (&self.nodes, &self.tri_order, &self.triangles)
    }

    /// Number of nodes (interior + leaf).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaf nodes.
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Number of triangles.
    pub fn triangle_count(&self) -> usize {
        self.triangles.len()
    }

    /// Maximum node depth (root = 0); the "BVH Tree Depth" of Table 1.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Scene bounds (root bounds).
    pub fn bounds(&self) -> Aabb {
        self.nodes[0].bounds
    }

    /// Byte-address layout of the node/triangle buffers.
    pub fn layout(&self) -> &MemoryLayout {
        &self.layout
    }

    /// All nodes in index order.
    pub fn nodes(&self) -> &[BvhNode] {
        &self.nodes
    }

    /// Looks up a node.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range.
    #[inline]
    pub fn node(&self, id: NodeId) -> &BvhNode {
        &self.nodes[id.index() as usize]
    }

    /// The triangles of a leaf as `(original_index, triangle)` pairs.
    ///
    /// # Panics
    ///
    /// Panics when `id` is not a leaf.
    pub fn leaf_triangles(&self, id: NodeId) -> impl Iterator<Item = (u32, &Triangle)> + '_ {
        match self.node(id).kind {
            NodeKind::Leaf { first, count } => self.tri_order
                [first as usize..(first + count) as usize]
                .iter()
                .map(move |&t| (t, &self.triangles[t as usize])),
            NodeKind::Interior { .. } => panic!("{id} is not a leaf"),
        }
    }

    /// A triangle by original index.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    #[inline]
    pub fn triangle(&self, index: u32) -> &Triangle {
        &self.triangles[index as usize]
    }

    /// The original triangle index stored at `slot` of the leaf-order
    /// permutation (used by alternative traversals such as
    /// [`WideBvh`](crate::WideBvh) that share this tree's leaf layout).
    ///
    /// # Panics
    ///
    /// Panics when `slot` is out of range.
    #[inline]
    pub fn tri_order_at(&self, slot: u32) -> u32 {
        self.tri_order[slot as usize]
    }

    /// The `k`-th ancestor of `id` (clamped at the root). With `k = 0` this
    /// is the node itself — exactly the Go Up Level semantics of §4.3.
    ///
    /// Because every node carries its parent index in its padded space, the
    /// walk costs no simulated memory accesses.
    pub fn ancestor(&self, id: NodeId, k: u32) -> NodeId {
        let mut cur = id;
        for _ in 0..k {
            match self.node(cur).parent {
                Some(p) => cur = p,
                None => break,
            }
        }
        cur
    }

    /// The leaf containing triangle `tri_index`, found by walking down from
    /// the root (test helper; O(depth)).
    pub fn leaf_of_triangle(&self, tri_index: u32) -> Option<NodeId> {
        let mut stack = vec![NodeId::ROOT];
        while let Some(id) = stack.pop() {
            match self.node(id).kind {
                NodeKind::Leaf { first, count } => {
                    if self.tri_order[first as usize..(first + count) as usize].contains(&tri_index)
                    {
                        return Some(id);
                    }
                }
                NodeKind::Interior { left, right, .. } => {
                    stack.push(left);
                    stack.push(right);
                }
            }
        }
        None
    }

    /// Runs a full traversal to completion (convenience wrapper around the
    /// steppable [`Traversal`]).
    pub fn intersect(&self, ray: &Ray, kind: TraversalKind) -> TraversalResult {
        let mut t = Traversal::new(kind);
        t.run(self, ray)
    }

    /// Brute-force reference intersection over every triangle (for tests
    /// and validation; O(n) per ray).
    ///
    /// Closest-hit applies the shared tie-break rule of
    /// [`Hit::closer_than`](crate::Hit::closer_than): smaller `t` wins,
    /// equal `t` resolves to the smaller original triangle index. All three
    /// traversal kernels follow the same rule, so their closest hit matches
    /// this reference exactly.
    pub fn intersect_brute_force(&self, ray: &Ray, kind: TraversalKind) -> Option<(u32, f32)> {
        let mut best: Option<(u32, f32)> = None;
        for (i, tri) in self.triangles.iter().enumerate() {
            if let Some(h) = tri.intersect(ray) {
                match kind {
                    TraversalKind::AnyHit => return Some((i as u32, h.t)),
                    TraversalKind::ClosestHit => {
                        // Iteration is in index order, so strict `<` on t
                        // keeps the lowest-index triangle among equal-t hits.
                        if best.is_none_or(|(_, t)| h.t < t) {
                            best = Some((i as u32, h.t));
                        }
                    }
                }
            }
        }
        best
    }

    /// Refits the hierarchy to deformed geometry **without changing its
    /// topology**: every node keeps its [`NodeId`], only the bounds are
    /// recomputed bottom-up.
    ///
    /// This is the classic dynamic-scene update (animation, §8 of the
    /// paper): because node identities are stable, predictor state trained
    /// on previous frames remains *valid* — a stored node still denotes the
    /// same subtree, it merely bounds slightly different geometry. The
    /// paper's future-work hypothesis ("predictor states could potentially
    /// be preserved between frames") is evaluated on top of this primitive.
    ///
    /// # Errors
    ///
    /// Returns an error (leaving the BVH untouched) when `new_triangles`
    /// does not have exactly the original triangle count.
    pub fn refit(&mut self, new_triangles: &[Triangle]) -> Result<(), String> {
        if new_triangles.len() != self.triangles.len() {
            return Err(format!(
                "refit requires {} triangles, got {}",
                self.triangles.len(),
                new_triangles.len()
            ));
        }
        let triangles = self.triangles.to_mut();
        triangles.clear();
        triangles.extend_from_slice(new_triangles);
        // Nodes were allocated parent-before-child (the builder reserves a
        // slot, then pushes children), so a reverse index sweep visits
        // children before parents.
        for idx in (0..self.nodes.len()).rev() {
            let new_bounds = match self.nodes[idx].kind {
                NodeKind::Leaf { first, count } => self.tri_order
                    [first as usize..(first + count) as usize]
                    .iter()
                    .fold(Aabb::empty(), |b, &t| {
                        b.union(&self.triangles[t as usize].bounds())
                    }),
                NodeKind::Interior { left, right, .. } => {
                    let lb = self.node(left).bounds;
                    let rb = self.node(right).bounds;
                    // Keep the Aila–Laine-style cached child boxes coherent.
                    if let NodeKind::Interior {
                        ref mut left_bounds,
                        ref mut right_bounds,
                        ..
                    } = self.nodes[idx].kind
                    {
                        *left_bounds = lb;
                        *right_bounds = rb;
                    }
                    lb.union(&rb)
                }
            };
            self.nodes[idx].bounds = new_bounds;
        }
        Ok(())
    }

    /// Checks the structural invariants of the tree.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant: index ranges
    /// (this method must never panic — deserialization relies on it to
    /// reject corrupt artifacts), child bounds containment, parent/child
    /// link consistency, triangle coverage (each triangle in exactly one
    /// leaf), and depth bookkeeping.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("tree has no nodes".into());
        }
        let mut seen = vec![false; self.triangles.len()];
        for (idx, node) in self.nodes.iter().enumerate() {
            let id = NodeId::new(idx as u32);
            match node.kind {
                NodeKind::Leaf { first, count } => {
                    if count == 0 {
                        return Err(format!("{id} is an empty leaf"));
                    }
                    let range = (first as usize)
                        .checked_add(count as usize)
                        .filter(|&end| end <= self.tri_order.len())
                        .map(|end| first as usize..end)
                        .ok_or_else(|| format!("{id} leaf range out of bounds"))?;
                    for &t in &self.tri_order[range] {
                        let slot = seen
                            .get_mut(t as usize)
                            .ok_or_else(|| format!("{id} references triangle {t} out of range"))?;
                        if *slot {
                            return Err(format!("triangle {t} appears in two leaves"));
                        }
                        *slot = true;
                        let tb = self.triangles[t as usize].bounds();
                        if !inflate(node.bounds).contains_box(&tb) {
                            return Err(format!("{id} does not bound triangle {t}"));
                        }
                    }
                }
                NodeKind::Interior {
                    left,
                    right,
                    left_bounds,
                    right_bounds,
                } => {
                    for (child, cb) in [(left, left_bounds), (right, right_bounds)] {
                        let cnode = self
                            .nodes
                            .get(child.index() as usize)
                            .ok_or_else(|| format!("{id} child {child} out of range"))?;
                        if cnode.parent != Some(id) {
                            return Err(format!("{child} parent link broken"));
                        }
                        if cnode.depth != node.depth + 1 {
                            return Err(format!("{child} depth wrong"));
                        }
                        if cnode.bounds != cb {
                            return Err(format!("{id} cached child bounds stale for {child}"));
                        }
                        if !inflate(node.bounds).contains_box(&cnode.bounds) {
                            return Err(format!("{id} does not contain child {child}"));
                        }
                    }
                }
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(format!("triangle {missing} not referenced by any leaf"));
        }
        if self.nodes[0].parent.is_some() {
            return Err("root has a parent".into());
        }
        Ok(())
    }
}

/// Inflates a box by a relative epsilon for containment checks.
fn inflate(b: Aabb) -> Aabb {
    let eps = rip_math::Vec3::splat(1e-4 * (1.0 + b.diagonal().max_component()));
    Aabb::new(b.min - eps, b.max + eps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_math::Vec3;

    fn grid_scene(n: usize) -> Vec<Triangle> {
        let mut tris = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let o = Vec3::new(i as f32, 0.0, j as f32);
                tris.push(Triangle::new(o, o + Vec3::X, o + Vec3::Z));
            }
        }
        tris
    }

    #[test]
    fn build_and_validate() {
        let bvh = Bvh::build(&grid_scene(8));
        bvh.validate().unwrap();
        assert_eq!(bvh.triangle_count(), 64);
        assert!(bvh.leaf_count() >= 8);
        assert!(bvh.node_count() >= 2 * bvh.leaf_count() - 1);
    }

    #[test]
    fn ancestor_walk_clamps_at_root() {
        let bvh = Bvh::build(&grid_scene(4));
        let leaf = bvh.leaf_of_triangle(0).unwrap();
        assert_eq!(bvh.ancestor(leaf, 0), leaf);
        assert_eq!(bvh.ancestor(leaf, 100), NodeId::ROOT);
        let parent = bvh.ancestor(leaf, 1);
        assert_eq!(bvh.node(leaf).parent, Some(parent));
    }

    #[test]
    fn leaf_of_triangle_finds_every_triangle() {
        let bvh = Bvh::build(&grid_scene(4));
        for t in 0..bvh.triangle_count() as u32 {
            let leaf = bvh.leaf_of_triangle(t).expect("triangle must be in a leaf");
            assert!(bvh.leaf_triangles(leaf).any(|(i, _)| i == t));
        }
    }

    #[test]
    fn intersect_down_matches_brute_force_for_grid() {
        let bvh = Bvh::build(&grid_scene(6));
        let ray = Ray::new(Vec3::new(2.5, 5.0, 3.5), -Vec3::Y);
        let fast = bvh.intersect(&ray, TraversalKind::ClosestHit);
        let brute = bvh.intersect_brute_force(&ray, TraversalKind::ClosestHit);
        assert_eq!(fast.hit.map(|h| h.tri_index), brute.map(|(i, _)| i));
    }

    #[test]
    fn miss_reports_no_hit() {
        let bvh = Bvh::build(&grid_scene(2));
        let ray = Ray::new(Vec3::new(0.0, 5.0, 0.0), Vec3::Y);
        assert!(bvh.intersect(&ray, TraversalKind::AnyHit).hit.is_none());
    }

    #[test]
    fn refit_preserves_topology_and_correctness() {
        let tris = grid_scene(6);
        let mut bvh = Bvh::build(&tris);
        let depth_before = bvh.depth();
        let node_count = bvh.node_count();
        // Deform: lift every vertex by a per-triangle amount.
        let deformed: Vec<Triangle> = tris
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let dy = Vec3::Y * ((i % 5) as f32 * 0.3);
                Triangle::new(t.a + dy, t.b + dy, t.c + dy)
            })
            .collect();
        bvh.refit(&deformed).unwrap();
        assert_eq!(bvh.node_count(), node_count, "topology must be unchanged");
        assert_eq!(bvh.depth(), depth_before);
        bvh.validate().unwrap();
        // Traversal over the refitted tree matches brute force.
        for i in 0..24 {
            let ray = Ray::new(
                Vec3::new(0.5 + (i % 6) as f32, 6.0, 0.5 + (i / 6) as f32),
                -Vec3::Y,
            );
            let fast = bvh
                .intersect(&ray, TraversalKind::ClosestHit)
                .hit
                .map(|h| h.tri_index);
            let brute = bvh
                .intersect_brute_force(&ray, TraversalKind::ClosestHit)
                .map(|(t, _)| t);
            assert_eq!(fast, brute, "refit broke traversal for ray {i}");
        }
    }

    #[test]
    fn refit_rejects_wrong_triangle_count() {
        let tris = grid_scene(3);
        let mut bvh = Bvh::build(&tris);
        assert!(bvh.refit(&tris[..4]).is_err());
        bvh.validate().unwrap();
    }

    #[test]
    fn refit_updates_cached_child_bounds() {
        let tris = grid_scene(4);
        let mut bvh = Bvh::build(&tris);
        let moved: Vec<Triangle> = tris
            .iter()
            .map(|t| Triangle::new(t.a + Vec3::Y, t.b + Vec3::Y, t.c + Vec3::Y))
            .collect();
        bvh.refit(&moved).unwrap();
        // validate() checks cached child bounds == child node bounds.
        bvh.validate().unwrap();
        assert!(bvh.bounds().min.y >= 0.9, "bounds must follow the geometry");
    }

    #[test]
    #[should_panic(expected = "not a leaf")]
    fn leaf_triangles_on_interior_panics() {
        let bvh = Bvh::build(&grid_scene(4));
        // Root of a 16-triangle tree is interior.
        let _ = bvh.leaf_triangles(NodeId::ROOT).count();
    }
}
