//! The unified traversal-kernel interface and its shared building blocks.
//!
//! Before this module existed the repo carried four near-duplicate scalar
//! traversal loops (the steppable while-while [`Traversal`], the stackless
//! restart-trail, the 4-wide BVH and the predicted traversal in
//! `rip-core`), each re-deriving per-ray setup (reciprocal direction,
//! best-hit trimming) and repeating the leaf-test / tie-break / stats
//! plumbing. This module hoists that shared code into one place and fronts
//! every kernel with the [`TraversalKernel`] trait, whose batch entry
//! points consume the SoA [`RayBatch`](crate::RayBatch) of
//! [`stream`](crate::stream):
//!
//! * [`effective_ray`] — the closest-hit `t_max` trim every loop applies,
//! * [`fetch_interior`] — one binary interior-node fetch: stats charge plus
//!   both child slab tests,
//! * [`test_leaf_triangles`] — the leaf loop: per-triangle fetch/test
//!   accounting, inclusive re-trimming against the best hit so far, the
//!   [`Hit::closer_than`] tie-break, and any-hit early termination,
//! * [`run_while_while`] — a tight (non-steppable) transcription of
//!   Algorithm 1 used by [`WhileWhileKernel`]; it visits nodes in exactly
//!   the order of [`Traversal::run`] and produces bit-identical hits and
//!   statistics, but allocates nothing per step and reuses the batch's
//!   precomputed reciprocal direction.
//!
//! Every kernel agrees exactly (same `t` bits, same triangle index, per the
//! shared tie-break) and the batched paths are bit-exact with their scalar
//! counterparts — `rip-testkit`'s differential oracles enforce both.

use crate::node::{NodeId, NodeKind};
use crate::stack::TraversalStack;
use crate::stats::TraversalStats;
use crate::stream::RayBatch;
use crate::traversal::{Hit, Traversal, TraversalKind, TraversalResult};
use crate::{stackless, Bvh, WideBvh};
use rip_math::{Aabb, Ray, Triangle, Vec3};

/// A traversal kernel: anything that can answer ray queries against a
/// scene, one ray at a time or over an SoA batch.
///
/// Implementations take `&mut self` so stateful kernels (the predictor
/// wrapper in `rip-core` trains its hash tables as it traces) compose
/// behind the same interface as the stateless BVH loops.
///
/// The batch methods default to per-ray [`TraversalKernel::trace`] calls;
/// kernels override them to hoist per-batch setup (precomputed reciprocal
/// directions). Overrides must stay bit-exact with the scalar path —
/// result `i` of a batch call equals `trace(&batch.ray(i), kind)` exactly,
/// hits and statistics alike.
///
/// # Examples
///
/// ```
/// use rip_bvh::{Bvh, RayBatch, TraversalKernel, WhileWhileKernel};
/// use rip_math::{Ray, Triangle, Vec3};
///
/// let bvh = Bvh::build(&[Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y)]);
/// let batch = RayBatch::from_rays(&[Ray::new(Vec3::new(0.2, 0.2, -1.0), Vec3::Z)]);
/// let mut kernel = WhileWhileKernel::new(&bvh);
/// let results = kernel.any_hit_batch(&batch);
/// assert!(results[0].hit.is_some());
/// ```
pub trait TraversalKernel {
    /// Human-readable kernel name for reports and benches.
    fn name(&self) -> String;

    /// Traces a single ray.
    fn trace(&mut self, ray: &Ray, kind: TraversalKind) -> TraversalResult;

    /// Traces every ray of a batch, in batch order.
    fn trace_batch(&mut self, batch: &RayBatch, kind: TraversalKind) -> Vec<TraversalResult> {
        (0..batch.len())
            .map(|i| self.trace(&batch.ray(i), kind))
            .collect()
    }

    /// Closest-hit query over a batch.
    fn closest_hit_batch(&mut self, batch: &RayBatch) -> Vec<TraversalResult> {
        self.trace_batch(batch, TraversalKind::ClosestHit)
    }

    /// Any-hit (occlusion) query over a batch.
    fn any_hit_batch(&mut self, batch: &RayBatch) -> Vec<TraversalResult> {
        self.trace_batch(batch, TraversalKind::AnyHit)
    }
}

/// The ray interval still worth searching: `t_max` shrinks (inclusively)
/// to the best hit for closest-hit queries. The shared per-step ray setup
/// of all four kernels.
#[inline]
pub(crate) fn effective_ray(ray: &Ray, kind: TraversalKind, best: Option<Hit>) -> Ray {
    match (kind, best) {
        (TraversalKind::ClosestHit, Some(h)) => ray.trimmed(h.t),
        _ => *ray,
    }
}

/// Fetches one binary interior node: charges the node fetch plus both
/// child slab tests and returns the children's entry distances.
#[inline]
pub(crate) fn fetch_interior(
    stats: &mut TraversalStats,
    left_bounds: &Aabb,
    right_bounds: &Aabb,
    ray_eff: &Ray,
    inv_dir: Vec3,
) -> (Option<f32>, Option<f32>) {
    stats.interior_fetches += 1;
    stats.box_tests += 2;
    (
        left_bounds.intersect_with_inv(ray_eff, inv_dir),
        right_bounds.intersect_with_inv(ray_eff, inv_dir),
    )
}

/// What one leaf visit produced.
pub(crate) struct LeafOutcome {
    /// Best intersection found within this leaf (after the tie-break).
    pub found: Option<Hit>,
    /// Whether an any-hit query terminated inside the leaf.
    pub terminated: bool,
}

/// The shared leaf loop: charges the leaf fetch and per-triangle
/// fetch/test stats, re-trims (inclusively) against the best hit so far,
/// applies the [`Hit::closer_than`] tie-break, updates `best` in place and
/// stops at the first intersection for any-hit queries.
///
/// `leaf_for` maps a hit triangle to the leaf id reported in [`Hit`]; it
/// is only invoked on an actual intersection (the wide kernel resolves the
/// binary leaf lazily). `tested` optionally records every triangle index
/// fetched, in order, for the steppable traversal's [`StepEvent`]
/// reporting.
///
/// [`StepEvent`]: crate::StepEvent
pub(crate) fn test_leaf_triangles<'t>(
    tris: impl Iterator<Item = (u32, &'t Triangle)>,
    leaf_for: &mut dyn FnMut(u32) -> NodeId,
    kind: TraversalKind,
    best: &mut Option<Hit>,
    ray_eff: &Ray,
    stats: &mut TraversalStats,
    mut tested: Option<&mut Vec<u32>>,
) -> LeafOutcome {
    stats.leaf_fetches += 1;
    let mut found: Option<Hit> = None;
    let mut terminated = false;
    for (tri_index, tri) in tris {
        if let Some(record) = tested.as_deref_mut() {
            record.push(tri_index);
        }
        stats.tri_fetches += 1;
        stats.tri_tests += 1;
        // Re-trim against the best hit found so far, including hits from
        // earlier triangles of this same leaf. Trimming is inclusive, so a
        // candidate tying the current best is still tested and the
        // tie-break decides the winner.
        let bound = effective_ray(ray_eff, kind, *best);
        if let Some(h) = tri.intersect(&bound) {
            let hit = Hit {
                t: h.t,
                tri_index,
                leaf: leaf_for(tri_index),
            };
            found = Some(match found {
                Some(prev) if !hit.closer_than(&prev) => prev,
                _ => hit,
            });
            if best.is_none_or(|b| hit.closer_than(&b)) {
                *best = Some(hit);
            }
            if kind == TraversalKind::AnyHit {
                terminated = true; // Algorithm 1 line 13
                break;
            }
        }
    }
    LeafOutcome { found, terminated }
}

/// Tight while-while traversal: the non-steppable transcription of
/// [`Traversal::run`] used by [`WhileWhileKernel`].
///
/// Visits nodes in the identical order and produces bit-identical hits and
/// [`TraversalStats`] (stack spills included), but performs no per-step
/// allocation and takes the ray's reciprocal direction precomputed —
/// trimming `t_max` never changes the direction, so one reciprocal serves
/// the whole traversal.
pub(crate) fn run_while_while(
    bvh: &Bvh,
    ray: &Ray,
    inv_dir: Vec3,
    kind: TraversalKind,
) -> TraversalResult {
    let mut stack = TraversalStack::new();
    let mut current = Some(NodeId::ROOT);
    let mut best: Option<Hit> = None;
    let mut stats = TraversalStats::default();
    while let Some(node_id) = current.take() {
        let ray_eff = effective_ray(ray, kind, best);
        match bvh.node(node_id).kind {
            NodeKind::Interior {
                left,
                right,
                left_bounds,
                right_bounds,
            } => {
                let (t_left, t_right) =
                    fetch_interior(&mut stats, &left_bounds, &right_bounds, &ray_eff, inv_dir);
                match (t_left, t_right) {
                    (Some(tl), Some(tr)) => {
                        // Visit the closer child first (§2.4).
                        let (near, far) = if tl <= tr {
                            (left, right)
                        } else {
                            (right, left)
                        };
                        stack.push(far);
                        current = Some(near);
                    }
                    (Some(_), None) => current = Some(left),
                    (None, Some(_)) => current = Some(right),
                    (None, None) => current = stack.pop(),
                }
            }
            NodeKind::Leaf { .. } => {
                let outcome = test_leaf_triangles(
                    bvh.leaf_triangles(node_id),
                    &mut |_| node_id,
                    kind,
                    &mut best,
                    &ray_eff,
                    &mut stats,
                    None,
                );
                current = if outcome.terminated {
                    None // Algorithm 1 line 15
                } else {
                    stack.pop()
                };
            }
        }
    }
    stats.stack_spills = stack.spills();
    TraversalResult { hit: best, stats }
}

/// The while-while kernel of Algorithm 1 (tight loop over the binary BVH).
///
/// Scalar calls and batch calls are bit-exact with the steppable
/// [`Traversal`] the cycle simulator uses; the batch path additionally
/// reuses the [`RayBatch`]'s precomputed reciprocal directions.
#[derive(Clone, Copy, Debug)]
pub struct WhileWhileKernel<'a> {
    bvh: &'a Bvh,
}

impl<'a> WhileWhileKernel<'a> {
    /// A kernel tracing against `bvh`.
    pub fn new(bvh: &'a Bvh) -> Self {
        WhileWhileKernel { bvh }
    }

    /// The BVH this kernel traces against.
    pub fn bvh(&self) -> &'a Bvh {
        self.bvh
    }
}

impl TraversalKernel for WhileWhileKernel<'_> {
    fn name(&self) -> String {
        "while-while".to_owned()
    }

    fn trace(&mut self, ray: &Ray, kind: TraversalKind) -> TraversalResult {
        run_while_while(self.bvh, ray, ray.inv_direction(), kind)
    }

    fn trace_batch(&mut self, batch: &RayBatch, kind: TraversalKind) -> Vec<TraversalResult> {
        (0..batch.len())
            .map(|i| run_while_while(self.bvh, &batch.ray(i), batch.inv_direction(i), kind))
            .collect()
    }
}

/// The stackless restart-trail kernel (Laine 2010) over the binary BVH.
///
/// Restart refetches inflate `interior_fetches`; the per-run restart count
/// itself is available from [`stackless::traverse`].
#[derive(Clone, Copy, Debug)]
pub struct StacklessKernel<'a> {
    bvh: &'a Bvh,
}

impl<'a> StacklessKernel<'a> {
    /// A kernel tracing against `bvh`.
    pub fn new(bvh: &'a Bvh) -> Self {
        StacklessKernel { bvh }
    }

    /// The BVH this kernel traces against.
    pub fn bvh(&self) -> &'a Bvh {
        self.bvh
    }
}

impl TraversalKernel for StacklessKernel<'_> {
    fn name(&self) -> String {
        "stackless".to_owned()
    }

    fn trace(&mut self, ray: &Ray, kind: TraversalKind) -> TraversalResult {
        let r = stackless::traverse_with_inv(self.bvh, ray, ray.inv_direction(), kind);
        TraversalResult {
            hit: r.hit,
            stats: r.stats,
        }
    }

    fn trace_batch(&mut self, batch: &RayBatch, kind: TraversalKind) -> Vec<TraversalResult> {
        (0..batch.len())
            .map(|i| {
                let r = stackless::traverse_with_inv(
                    self.bvh,
                    &batch.ray(i),
                    batch.inv_direction(i),
                    kind,
                );
                TraversalResult {
                    hit: r.hit,
                    stats: r.stats,
                }
            })
            .collect()
    }
}

/// The 4-wide BVH kernel. Holds the wide tree plus the binary BVH that
/// supplies shared triangle storage and leaf identity.
#[derive(Clone, Copy, Debug)]
pub struct WideKernel<'a> {
    wide: &'a WideBvh,
    bvh: &'a Bvh,
}

impl<'a> WideKernel<'a> {
    /// A kernel tracing `wide`, with `bvh` as the backing binary tree it
    /// was collapsed from.
    pub fn new(wide: &'a WideBvh, bvh: &'a Bvh) -> Self {
        WideKernel { wide, bvh }
    }

    /// The backing binary BVH.
    pub fn bvh(&self) -> &'a Bvh {
        self.bvh
    }

    /// The wide tree.
    pub fn wide(&self) -> &'a WideBvh {
        self.wide
    }
}

impl TraversalKernel for WideKernel<'_> {
    fn name(&self) -> String {
        "wide4".to_owned()
    }

    fn trace(&mut self, ray: &Ray, kind: TraversalKind) -> TraversalResult {
        let r = self
            .wide
            .intersect_with_inv(self.bvh, ray, ray.inv_direction(), kind);
        TraversalResult {
            hit: r.hit,
            stats: r.stats,
        }
    }

    fn trace_batch(&mut self, batch: &RayBatch, kind: TraversalKind) -> Vec<TraversalResult> {
        (0..batch.len())
            .map(|i| {
                let r = self.wide.intersect_with_inv(
                    self.bvh,
                    &batch.ray(i),
                    batch.inv_direction(i),
                    kind,
                );
                TraversalResult {
                    hit: r.hit,
                    stats: r.stats,
                }
            })
            .collect()
    }
}

/// The steppable [`Traversal`] exposed as a kernel, for differential
/// testing of the tight loop against the simulator's reference state
/// machine.
#[derive(Clone, Copy, Debug)]
pub struct SteppableKernel<'a> {
    bvh: &'a Bvh,
}

impl<'a> SteppableKernel<'a> {
    /// A kernel tracing against `bvh`.
    pub fn new(bvh: &'a Bvh) -> Self {
        SteppableKernel { bvh }
    }
}

impl TraversalKernel for SteppableKernel<'_> {
    fn name(&self) -> String {
        "while-while-steppable".to_owned()
    }

    fn trace(&mut self, ray: &Ray, kind: TraversalKind) -> TraversalResult {
        Traversal::new(kind).run(self.bvh, ray)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use rip_math::Vec3;

    fn soup(n: usize, seed: u64) -> Vec<Triangle> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let base = Vec3::new(
                    rng.gen_range(-5.0..5.0),
                    rng.gen_range(-5.0..5.0),
                    rng.gen_range(-5.0..5.0),
                );
                let e1 = Vec3::new(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                );
                let e2 = Vec3::new(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                );
                Triangle::new(base, base + e1, base + e2)
            })
            .collect()
    }

    fn rays(n: usize, seed: u64) -> Vec<Ray> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let o = Vec3::new(
                    rng.gen_range(-8.0..8.0),
                    rng.gen_range(-8.0..8.0),
                    rng.gen_range(-8.0..8.0),
                );
                let d = rip_math::sampling::uniform_sphere(rng.gen(), rng.gen());
                Ray::segment(o, d, 20.0)
            })
            .collect()
    }

    #[test]
    fn tight_loop_matches_steppable_bit_exactly() {
        for seed in 0..4 {
            let bvh = Bvh::build(&soup(180, seed));
            for ray in rays(80, seed ^ 0x55) {
                for kind in [TraversalKind::AnyHit, TraversalKind::ClosestHit] {
                    let tight = run_while_while(&bvh, &ray, ray.inv_direction(), kind);
                    let steppable = Traversal::new(kind).run(&bvh, &ray);
                    assert_eq!(
                        tight.hit.map(|h| (h.t.to_bits(), h.tri_index, h.leaf)),
                        steppable.hit.map(|h| (h.t.to_bits(), h.tri_index, h.leaf)),
                        "hit mismatch (seed {seed}, {kind:?})"
                    );
                    assert_eq!(
                        tight.stats, steppable.stats,
                        "stats mismatch (seed {seed}, {kind:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_paths_match_scalar_paths() {
        let tris = soup(200, 7);
        let bvh = Bvh::build(&tris);
        let wide = WideBvh::from_binary(&bvh);
        let batch = RayBatch::from_rays(&rays(120, 9));
        let mut kernels: Vec<Box<dyn TraversalKernel + '_>> = vec![
            Box::new(WhileWhileKernel::new(&bvh)),
            Box::new(StacklessKernel::new(&bvh)),
            Box::new(WideKernel::new(&wide, &bvh)),
        ];
        for kernel in &mut kernels {
            for kind in [TraversalKind::AnyHit, TraversalKind::ClosestHit] {
                let batched = kernel.trace_batch(&batch, kind);
                for (i, b) in batched.iter().enumerate() {
                    let scalar = kernel.trace(&batch.ray(i), kind);
                    assert_eq!(*b, scalar, "{} ray {i} ({kind:?})", kernel.name());
                }
            }
        }
    }

    #[test]
    fn convenience_batch_methods_dispatch_kinds() {
        let bvh = Bvh::build(&soup(40, 3));
        let batch = RayBatch::from_rays(&rays(30, 3));
        let mut kernel = WhileWhileKernel::new(&bvh);
        assert_eq!(
            kernel.closest_hit_batch(&batch),
            kernel.trace_batch(&batch, TraversalKind::ClosestHit)
        );
        assert_eq!(
            kernel.any_hit_batch(&batch),
            kernel.trace_batch(&batch, TraversalKind::AnyHit)
        );
    }
}
