//! Byte-address layout of the BVH node and triangle buffers.
//!
//! The cache and DRAM models operate on byte addresses. We mirror the
//! Aila–Laine layout the paper assumes: 64-byte node records (Figure 8) and
//! 48-byte Woop-style triangle records, with the triangle buffer placed
//! after the node buffer. The L1/L2 line size is 128 B (Table 2), so one
//! line holds two nodes.

use crate::node::NodeId;

/// Size of one BVH node record in bytes (Figure 8).
pub const NODE_SIZE: u64 = 64;
/// Size of one Woop-format triangle record in bytes.
pub const TRI_SIZE: u64 = 48;
/// Size of one compressed 4-wide node record in bytes: quantization keeps
/// four child slabs plus references inside the same 64-byte record one
/// binary Aila–Laine node occupies, so a wide fetch costs no extra lines.
pub const WIDE_NODE_SIZE: u64 = 64;

/// Address map for one BVH's buffers.
///
/// # Examples
///
/// ```
/// use rip_bvh::{MemoryLayout, NodeId};
///
/// let layout = MemoryLayout::for_tree(100, 50);
/// assert_eq!(layout.node_address(NodeId::new(2)), 128);
/// assert!(layout.tri_address(0) >= 100 * 64);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryLayout {
    node_base: u64,
    tri_base: u64,
    node_count: u64,
    tri_count: u64,
}

impl MemoryLayout {
    /// Lays out a tree with the given node and triangle counts: nodes at
    /// address 0, triangles following (aligned to 128-byte lines).
    pub fn for_tree(node_count: usize, tri_count: usize) -> Self {
        let node_base = 0u64;
        let nodes_end = node_base + node_count as u64 * NODE_SIZE;
        let tri_base = nodes_end.next_multiple_of(128);
        MemoryLayout {
            node_base,
            tri_base,
            node_count: node_count as u64,
            tri_count: tri_count as u64,
        }
    }

    /// Byte address of a node record.
    ///
    /// # Panics
    ///
    /// Panics when the node is out of range.
    #[inline]
    pub fn node_address(&self, id: NodeId) -> u64 {
        assert!((id.index() as u64) < self.node_count, "{id} out of range");
        self.node_base + id.index() as u64 * NODE_SIZE
    }

    /// Byte address of a triangle record.
    ///
    /// # Panics
    ///
    /// Panics when the triangle is out of range.
    #[inline]
    pub fn tri_address(&self, tri_index: u32) -> u64 {
        assert!(
            (tri_index as u64) < self.tri_count,
            "triangle {tri_index} out of range"
        );
        self.tri_base + tri_index as u64 * TRI_SIZE
    }

    /// Whether a byte address falls in the node buffer.
    #[inline]
    pub fn is_node_address(&self, addr: u64) -> bool {
        addr >= self.node_base && addr < self.node_base + self.node_count * NODE_SIZE
    }

    /// Total footprint in bytes (nodes + triangles).
    pub fn footprint_bytes(&self) -> u64 {
        self.tri_base + self.tri_count * TRI_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_before_triangles() {
        let l = MemoryLayout::for_tree(10, 5);
        assert!(l.node_address(NodeId::new(9)) < l.tri_address(0));
        assert_eq!(l.tri_address(0) % 128, 0, "triangle buffer line-aligned");
    }

    #[test]
    fn two_nodes_share_a_line() {
        let l = MemoryLayout::for_tree(4, 1);
        assert_eq!(
            l.node_address(NodeId::new(0)) / 128,
            l.node_address(NodeId::new(1)) / 128
        );
        assert_ne!(
            l.node_address(NodeId::new(1)) / 128,
            l.node_address(NodeId::new(2)) / 128
        );
    }

    #[test]
    fn address_classification() {
        let l = MemoryLayout::for_tree(10, 5);
        assert!(l.is_node_address(0));
        assert!(l.is_node_address(10 * 64 - 1));
        assert!(!l.is_node_address(l.tri_address(0)));
    }

    #[test]
    fn footprint_covers_everything() {
        let l = MemoryLayout::for_tree(10, 5);
        assert_eq!(l.footprint_bytes(), l.tri_address(4) + TRI_SIZE);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_address_bounds_checked() {
        let _ = MemoryLayout::for_tree(2, 2).node_address(NodeId::new(2));
    }

    #[test]
    fn compressed_wide_node_fills_its_record_exactly() {
        assert_eq!(
            std::mem::size_of::<crate::node::CompressedWideNode>() as u64,
            WIDE_NODE_SIZE
        );
        assert_eq!(WIDE_NODE_SIZE, NODE_SIZE, "wide fetch costs the same lines");
    }
}
