//! Bounding Volume Hierarchy substrate.
//!
//! Implements the acceleration structure the predictor operates on (§2.4):
//!
//! * a binned-SAH binary BVH builder ([`BvhBuilder`]),
//! * an Aila–Laine-style node representation where fetching one interior
//!   node yields both children's bounding boxes, and where each node carries
//!   its parent index in the padded space (enabling the Go Up Level of §4.3
//!   without extra memory traffic),
//! * the while-while traversal loop of Algorithm 1 for both **any-hit**
//!   (occlusion) and **closest-hit** queries, exposed as a *steppable*
//!   state machine so the cycle-level simulator can interleave rays,
//! * Morton-order ray sorting (the Aila–Laine quicksort baseline of §5.2),
//! * the byte-address layout of the node/triangle buffers used for cache
//!   simulation,
//! * the batched ray-stream layer: the SoA [`RayBatch`] with its
//!   un-sortable [`StreamPermutation`] ([`stream`]), and the unified
//!   [`TraversalKernel`] trait fronting the while-while, stackless and
//!   4-wide traversal loops ([`kernel`]).
//!
//! # Examples
//!
//! ```
//! use rip_bvh::{Bvh, TraversalKind};
//! use rip_math::{Ray, Triangle, Vec3};
//!
//! let tris = vec![Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y)];
//! let bvh = Bvh::build(&tris);
//! let ray = Ray::new(Vec3::new(0.2, 0.2, -1.0), Vec3::Z);
//! let result = bvh.intersect(&ray, TraversalKind::AnyHit);
//! assert!(result.hit.is_some());
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod builder;
mod bvh;
pub mod kernel;
mod layout;
mod node;
pub mod ript;
pub mod serial;
pub mod simd;
pub mod sorting;
mod stack;
pub mod stackless;
mod stats;
pub mod stream;
mod traversal;
mod wide;

pub use builder::{BvhBuilder, SplitMethod};
pub use bvh::Bvh;
pub use kernel::{StacklessKernel, SteppableKernel, TraversalKernel, WhileWhileKernel, WideKernel};
pub use layout::{MemoryLayout, NODE_SIZE, TRI_SIZE, WIDE_NODE_SIZE};
pub use node::{BvhNode, CompressedWideNode, NodeId, NodeKind, QuantFrame, EMPTY_WIDE_CHILD};
pub use stack::{ShortStack, TraversalStack, HW_STACK_CAPACITY, SHORT_STACK_CAPACITY};
pub use stats::TraversalStats;
pub use stream::{RayBatch, StreamPermutation};
pub use traversal::{Hit, LeanStep, StepEvent, Traversal, TraversalKind, TraversalResult};
pub use wide::{WideBvh, WideResult, WIDE_ARITY};
