//! BVH node representation.

use rip_math::Aabb;

/// Index of a node in the BVH's flat node array.
///
/// The predictor stores 27-bit node indices in its table entries (§4.1,
/// "adequately manages BVH trees with up to 2²⁷ = 134 million nodes").
///
/// # Examples
///
/// ```
/// use rip_bvh::NodeId;
///
/// let root = NodeId::ROOT;
/// assert_eq!(root.index(), 0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// The root node is always element 0 of the node array.
    pub const ROOT: NodeId = NodeId(0);

    /// Number of bits a predictor table slot uses for a node index (§4.1).
    pub const PREDICTOR_INDEX_BITS: u32 = 27;

    /// Creates a node id from a raw index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The raw index.
    #[inline]
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Whether this id fits in the predictor's 27-bit slot.
    #[inline]
    pub const fn fits_predictor_slot(self) -> bool {
        self.0 < (1 << Self::PREDICTOR_INDEX_BITS)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Payload of a BVH node: interior (two children with their bounds baked
/// into this record, Aila–Laine style) or leaf (a contiguous triangle
/// range in the BVH's permuted triangle index array).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NodeKind {
    /// An interior node. Fetching this record yields both child boxes, so
    /// one memory access funds two ray-box tests — matching the layout in
    /// Figure 8 of the paper.
    Interior {
        /// Left child id.
        left: NodeId,
        /// Right child id.
        right: NodeId,
        /// Bounds of the left child.
        left_bounds: Aabb,
        /// Bounds of the right child.
        right_bounds: Aabb,
    },
    /// A leaf node owning `count` triangles starting at `first` in the
    /// BVH's triangle index array.
    Leaf {
        /// Offset of the first triangle index.
        first: u32,
        /// Number of triangles in this leaf.
        count: u32,
    },
}

/// One node of the BVH.
///
/// `parent` lives in what would be the padded space of a 64-byte
/// Aila–Laine node (§4.3): retrieving an ancestor for the Go Up Level
/// therefore costs no additional memory accesses.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BvhNode {
    /// Bounds of everything under this node.
    pub bounds: Aabb,
    /// Interior/leaf payload.
    pub kind: NodeKind,
    /// Parent node, `None` for the root.
    pub parent: Option<NodeId>,
    /// Depth below the root (root = 0).
    pub depth: u32,
}

impl BvhNode {
    /// Whether this node is a leaf.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        matches!(self.kind, NodeKind::Leaf { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_is_index_zero() {
        assert_eq!(NodeId::ROOT, NodeId::new(0));
        assert_eq!(NodeId::ROOT.to_string(), "n0");
    }

    #[test]
    fn predictor_slot_bound() {
        assert!(NodeId::new((1 << 27) - 1).fits_predictor_slot());
        assert!(!NodeId::new(1 << 27).fits_predictor_slot());
    }

    #[test]
    fn leaf_detection() {
        let leaf = BvhNode {
            bounds: Aabb::empty(),
            kind: NodeKind::Leaf { first: 0, count: 1 },
            parent: None,
            depth: 0,
        };
        assert!(leaf.is_leaf());
        let interior = BvhNode {
            kind: NodeKind::Interior {
                left: NodeId::new(1),
                right: NodeId::new(2),
                left_bounds: Aabb::empty(),
                right_bounds: Aabb::empty(),
            },
            ..leaf
        };
        assert!(!interior.is_leaf());
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(3) < NodeId::new(10));
    }
}
