//! BVH node representation: the binary Aila–Laine node and the compressed
//! 4-wide node with its per-node quantization frame.

use rip_math::{Aabb, Vec3};

/// Index of a node in the BVH's flat node array.
///
/// The predictor stores 27-bit node indices in its table entries (§4.1,
/// "adequately manages BVH trees with up to 2²⁷ = 134 million nodes").
///
/// # Examples
///
/// ```
/// use rip_bvh::NodeId;
///
/// let root = NodeId::ROOT;
/// assert_eq!(root.index(), 0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// The root node is always element 0 of the node array.
    pub const ROOT: NodeId = NodeId(0);

    /// Number of bits a predictor table slot uses for a node index (§4.1).
    pub const PREDICTOR_INDEX_BITS: u32 = 27;

    /// Creates a node id from a raw index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The raw index.
    #[inline]
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Whether this id fits in the predictor's 27-bit slot.
    #[inline]
    pub const fn fits_predictor_slot(self) -> bool {
        self.0 < (1 << Self::PREDICTOR_INDEX_BITS)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Payload of a BVH node: interior (two children with their bounds baked
/// into this record, Aila–Laine style) or leaf (a contiguous triangle
/// range in the BVH's permuted triangle index array).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NodeKind {
    /// An interior node. Fetching this record yields both child boxes, so
    /// one memory access funds two ray-box tests — matching the layout in
    /// Figure 8 of the paper.
    Interior {
        /// Left child id.
        left: NodeId,
        /// Right child id.
        right: NodeId,
        /// Bounds of the left child.
        left_bounds: Aabb,
        /// Bounds of the right child.
        right_bounds: Aabb,
    },
    /// A leaf node owning `count` triangles starting at `first` in the
    /// BVH's triangle index array.
    Leaf {
        /// Offset of the first triangle index.
        first: u32,
        /// Number of triangles in this leaf.
        count: u32,
    },
}

/// One node of the BVH.
///
/// `parent` lives in what would be the padded space of a 64-byte
/// Aila–Laine node (§4.3): retrieving an ancestor for the Go Up Level
/// therefore costs no additional memory accesses.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BvhNode {
    /// Bounds of everything under this node.
    pub bounds: Aabb,
    /// Interior/leaf payload.
    pub kind: NodeKind,
    /// Parent node, `None` for the root.
    pub parent: Option<NodeId>,
    /// Depth below the root (root = 0).
    pub depth: u32,
}

impl BvhNode {
    /// Whether this node is a leaf.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        matches!(self.kind, NodeKind::Leaf { .. })
    }
}

/// Sentinel for an unused child slot of a [`CompressedWideNode`].
pub const EMPTY_WIDE_CHILD: u32 = u32::MAX;

/// Per-node quantization frame of a [`CompressedWideNode`] (CWBVH style):
/// child bounds are stored as 8-bit grid coordinates relative to the
/// node's minimum corner, on a per-axis power-of-two grid.
///
/// The grid step along axis `a` is `2^(exponents[a] − 127)` — exactly the
/// value of an `f32` whose biased exponent byte is `exponents[a]` — so
/// dequantization is one exact multiply-add and quantization error is a
/// pure scaling, never a drift.
///
/// Encoding is *conservative*: [`QuantFrame::encode_box`] rounds minima
/// down and maxima up (with verify-adjust loops that absorb the rounding
/// of the decode arithmetic itself), so the decoded box always contains
/// the source box. Traversal over quantized boxes therefore visits a
/// superset of the exact-box visits, which preserves bit-exact hits.
///
/// # Examples
///
/// ```
/// use rip_bvh::QuantFrame;
/// use rip_math::{Aabb, Vec3};
///
/// let world = Aabb::new(Vec3::ZERO, Vec3::splat(10.0));
/// let frame = QuantFrame::for_bounds(&world);
/// let child = Aabb::new(Vec3::splat(1.25), Vec3::splat(2.75));
/// let (qlo, qhi) = frame.encode_box(&child);
/// assert!(frame.decode_box(qlo, qhi).contains_box(&child));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuantFrame {
    /// Grid origin: the framed node's minimum corner.
    pub origin: Vec3,
    /// Per-axis biased exponent of the power-of-two grid step.
    pub exponents: [u8; 3],
}

impl QuantFrame {
    /// Grid step for a biased exponent byte: `2^(e − 127)`.
    #[inline]
    pub fn scale_for_exponent(e: u8) -> f32 {
        f32::from_bits((e as u32) << 23)
    }

    /// Grid step along `axis` (0 = x, 1 = y, 2 = z).
    #[inline]
    pub fn scale(&self, axis: usize) -> f32 {
        Self::scale_for_exponent(self.exponents[axis])
    }

    /// A coordinate of the grid origin.
    #[inline]
    fn origin_axis(&self, axis: usize) -> f32 {
        match axis {
            0 => self.origin.x,
            1 => self.origin.y,
            _ => self.origin.z,
        }
    }

    /// Decodes one grid coordinate: `origin + q · scale`, the exact
    /// arithmetic the traversal slab test performs.
    #[inline]
    pub fn dequantize(&self, axis: usize, q: u8) -> f32 {
        self.origin_axis(axis) + q as f32 * self.scale(axis)
    }

    /// Chooses the frame for a node whose children all lie in `bounds`:
    /// origin at the minimum corner, and per axis the smallest
    /// power-of-two step whose 255-cell grid still reaches the maximum
    /// corner (verified against the decode arithmetic itself, so rounding
    /// cannot leave the far corner uncovered).
    pub fn for_bounds(bounds: &Aabb) -> Self {
        if bounds.is_empty() {
            return QuantFrame {
                origin: Vec3::ZERO,
                exponents: [1; 3],
            };
        }
        let origin = bounds.min;
        let origins = [origin.x, origin.y, origin.z];
        let maxes = [bounds.max.x, bounds.max.y, bounds.max.z];
        let mut exponents = [1u8; 3];
        for axis in 0..3 {
            let extent = (maxes[axis] - origins[axis]).max(0.0);
            // A 255-cell grid of step 2^(e−127) covers the extent exactly
            // when origin + 255·step reaches the maximum corner *in the
            // decode arithmetic*. Jump close via the extent's own exponent,
            // then verify-adjust in both directions.
            let covered =
                |e: u8| origins[axis] + 255.0 * Self::scale_for_exponent(e) >= maxes[axis];
            let mut e = (((extent / 255.0).to_bits() >> 23) as u8).clamp(1, 254);
            while e > 1 && covered(e - 1) {
                e -= 1;
            }
            while e < 254 && !covered(e) {
                e += 1;
            }
            exponents[axis] = e;
        }
        QuantFrame { origin, exponents }
    }

    /// Conservatively encodes `b` (which must lie inside the framed
    /// bounds): minima round down, maxima round up, each verified against
    /// [`QuantFrame::dequantize`] so the decoded box contains `b` exactly.
    ///
    /// Empty boxes encode as the inverted pair `(255, 0)` per axis, which
    /// decodes back to an empty box.
    pub fn encode_box(&self, b: &Aabb) -> ([u8; 3], [u8; 3]) {
        if b.is_empty() {
            return ([255; 3], [0; 3]);
        }
        let mins = [b.min.x, b.min.y, b.min.z];
        let maxes = [b.max.x, b.max.y, b.max.z];
        let mut qlo = [0u8; 3];
        let mut qhi = [0u8; 3];
        for axis in 0..3 {
            let scale = self.scale(axis);
            let origin = self.origin_axis(axis);

            let raw = ((mins[axis] - origin) / scale).floor();
            let mut lo = if raw.is_nan() {
                0.0
            } else {
                raw.clamp(0.0, 255.0)
            } as u8;
            while lo > 0 && self.dequantize(axis, lo) > mins[axis] {
                lo -= 1;
            }

            let raw = ((maxes[axis] - origin) / scale).ceil();
            let mut hi = if raw.is_nan() {
                255.0
            } else {
                raw.clamp(0.0, 255.0)
            } as u8;
            while hi < 255 && self.dequantize(axis, hi) < maxes[axis] {
                hi += 1;
            }

            debug_assert!(
                self.dequantize(axis, lo) <= mins[axis],
                "quantized minimum must not exceed the exact minimum"
            );
            debug_assert!(
                self.dequantize(axis, hi) >= maxes[axis],
                "quantized maximum must cover the exact maximum (box outside frame?)"
            );
            qlo[axis] = lo;
            qhi[axis] = hi;
        }
        (qlo, qhi)
    }

    /// Decodes a quantized box back to world coordinates.
    pub fn decode_box(&self, qlo: [u8; 3], qhi: [u8; 3]) -> Aabb {
        if qlo.iter().zip(&qhi).any(|(l, h)| l > h) {
            return Aabb::empty();
        }
        Aabb {
            min: Vec3::new(
                self.dequantize(0, qlo[0]),
                self.dequantize(1, qlo[1]),
                self.dequantize(2, qlo[2]),
            ),
            max: Vec3::new(
                self.dequantize(0, qhi[0]),
                self.dequantize(1, qhi[1]),
                self.dequantize(2, qhi[2]),
            ),
        }
    }
}

/// One compressed 4-wide BVH node: a 64-byte `#[repr(C)]` record holding
/// four quantized child slabs plus their references, fetched as a unit so
/// one memory access funds four lockstep ray-box tests.
///
/// Child slot `i` is interpreted from `counts[i]` and `children[i]`:
///
/// * `counts[i] > 0` — **leaf**: `children[i]` is the first packed
///   triangle-group index, `counts[i]` the triangle count;
/// * `counts[i] == 0`, `children[i] == EMPTY_WIDE_CHILD` — **empty slot**;
/// * otherwise — **interior**: `children[i]` indexes the wide node array.
///
/// Child bounds are stored as 8-bit grid coordinates (`qlo`/`qhi`,
/// `[axis][slot]`) in the node's [`QuantFrame`] (`origin` + `exponents`),
/// conservatively rounded outward so traversal never culls a box the
/// exact bounds would enter.
#[derive(Clone, Copy, Debug, PartialEq)]
#[repr(C)]
pub struct CompressedWideNode {
    /// Quantization frame origin (the node's minimum corner).
    pub origin: [f32; 3],
    /// Per-axis biased grid-step exponents of the quantization frame.
    pub exponents: [u8; 3],
    /// Reserved; always zero.
    pub pad: u8,
    /// Quantized child minima, indexed `[axis][slot]`.
    pub qlo: [[u8; 4]; 3],
    /// Quantized child maxima, indexed `[axis][slot]`.
    pub qhi: [[u8; 4]; 3],
    /// Child references (see the type docs for the slot encoding).
    pub children: [u32; 4],
    /// Per-slot triangle counts; zero for interior and empty slots.
    pub counts: [u16; 4],
}

// One wide node is exactly one 64-byte record with no implicit padding
// (the `pad` byte is explicit), so the RIPA v2 artifact stores the node
// array verbatim and casts it back in place.
rip_pod::impl_pod!(CompressedWideNode, size = 64, align = 4);

impl CompressedWideNode {
    /// A node with four empty slots.
    pub fn empty() -> Self {
        CompressedWideNode {
            origin: [0.0; 3],
            exponents: [1; 3],
            pad: 0,
            qlo: [[255; 4]; 3],
            qhi: [[0; 4]; 3],
            children: [EMPTY_WIDE_CHILD; 4],
            counts: [0; 4],
        }
    }

    /// The node's quantization frame.
    #[inline]
    pub fn frame(&self) -> QuantFrame {
        QuantFrame {
            origin: Vec3::new(self.origin[0], self.origin[1], self.origin[2]),
            exponents: self.exponents,
        }
    }

    /// Whether slot `i` is occupied.
    #[inline]
    pub fn slot_occupied(&self, i: usize) -> bool {
        self.counts[i] > 0 || self.children[i] != EMPTY_WIDE_CHILD
    }

    /// Bitmask (bit `i` = slot `i`) of occupied slots.
    #[inline]
    pub fn occupied_mask(&self) -> u8 {
        (0..4).fold(0u8, |m, i| m | (u8::from(self.slot_occupied(i)) << i))
    }

    /// Decoded (conservative) world-space bounds of child slot `i`.
    pub fn child_bounds(&self, i: usize) -> Aabb {
        self.frame().decode_box(
            [self.qlo[0][i], self.qlo[1][i], self.qlo[2][i]],
            [self.qhi[0][i], self.qhi[1][i], self.qhi[2][i]],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_is_index_zero() {
        assert_eq!(NodeId::ROOT, NodeId::new(0));
        assert_eq!(NodeId::ROOT.to_string(), "n0");
    }

    #[test]
    fn predictor_slot_bound() {
        assert!(NodeId::new((1 << 27) - 1).fits_predictor_slot());
        assert!(!NodeId::new(1 << 27).fits_predictor_slot());
    }

    #[test]
    fn leaf_detection() {
        let leaf = BvhNode {
            bounds: Aabb::empty(),
            kind: NodeKind::Leaf { first: 0, count: 1 },
            parent: None,
            depth: 0,
        };
        assert!(leaf.is_leaf());
        let interior = BvhNode {
            kind: NodeKind::Interior {
                left: NodeId::new(1),
                right: NodeId::new(2),
                left_bounds: Aabb::empty(),
                right_bounds: Aabb::empty(),
            },
            ..leaf
        };
        assert!(!interior.is_leaf());
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(3) < NodeId::new(10));
    }

    #[test]
    fn compressed_node_is_one_aila_laine_record() {
        assert_eq!(std::mem::size_of::<CompressedWideNode>(), 64);
        assert_eq!(std::mem::align_of::<CompressedWideNode>(), 4);
    }

    #[test]
    fn quantized_boxes_contain_their_source() {
        let world = Aabb::new(Vec3::new(-3.0, 0.0, 1.0e-3), Vec3::new(9.0, 7.5, 2.0e3));
        let frame = QuantFrame::for_bounds(&world);
        for b in [
            Aabb::new(Vec3::new(-3.0, 0.0, 1.0e-3), Vec3::new(9.0, 7.5, 2.0e3)),
            Aabb::new(Vec3::new(0.1, 0.2, 0.3), Vec3::new(0.1, 0.2, 0.3)),
            Aabb::new(Vec3::new(-2.9, 7.4, 1.0), Vec3::new(8.9, 7.5, 1999.0)),
        ] {
            let (qlo, qhi) = frame.encode_box(&b);
            let decoded = frame.decode_box(qlo, qhi);
            assert!(decoded.contains_box(&b), "{decoded:?} must contain {b:?}");
        }
    }

    #[test]
    fn empty_boxes_quantize_to_the_inverted_sentinel() {
        let frame = QuantFrame::for_bounds(&Aabb::new(Vec3::ZERO, Vec3::ONE));
        let (qlo, qhi) = frame.encode_box(&Aabb::empty());
        assert_eq!((qlo, qhi), ([255; 3], [0; 3]));
        assert!(frame.decode_box(qlo, qhi).is_empty());
    }

    #[test]
    fn empty_wide_node_has_no_occupied_slots() {
        let node = CompressedWideNode::empty();
        assert_eq!(node.occupied_mask(), 0);
        assert!(node.child_bounds(0).is_empty());
    }

    #[test]
    fn degenerate_frame_still_covers_flat_axes() {
        // A box flat in y and spanning many orders of magnitude in z.
        let b = Aabb::new(
            Vec3::new(0.0, 2.0, -1.0e30),
            Vec3::new(1.0e-38, 2.0, 1.0e30),
        );
        let frame = QuantFrame::for_bounds(&b);
        let (qlo, qhi) = frame.encode_box(&b);
        assert!(frame.decode_box(qlo, qhi).contains_box(&b));
    }
}
