//! RIPT — recorded full-traversal traces on the RIPA v2 container.
//!
//! A trace stores, for every ray of a workload, the exact node-visit
//! sequence of its **virgin full traversal** (a fresh
//! [`Traversal::new`] run from the root). That sequence is
//! configuration-independent — it depends only on the BVH and the ray —
//! so one capture serves an entire parameter sweep: the cycle-level
//! simulator replays the recorded per-warp ray work through the timing
//! model without re-traversing, and the functional simulator substitutes
//! recorded [`TraversalResult`]s for its full-traversal legs.
//!
//! The encoding exploits two invariants of the while-while loop:
//!
//! * the triangles tested in a leaf are always a **prefix** of
//!   [`Bvh::leaf_triangles`] order (any-hit breaks after the first hit,
//!   closest-hit tests them all), so per leaf visit only a *count* is
//!   stored and the triangle indices are reconstructed from the BVH;
//! * per-step statistics follow mechanically from the node kinds
//!   (interior fetch = one node fetch + two box tests; leaf fetch = one
//!   node fetch + `count` triangle fetches/tests), so no stats stream is
//!   stored — only the per-ray stack-spill total, which the 8-entry
//!   hardware stack makes data-dependent.
//!
//! Rays themselves are *not* stored: the consumer regenerates the batch
//! deterministically and [`RayTraceSet::attach`] cross-checks an FNV-1a
//! digest of the ray stream (plus the BVH's node/triangle counts), so a
//! trace can never be silently replayed against the wrong workload.

use crate::bvh::Bvh;
use crate::kernel;
use crate::kernel::{TraversalKernel, WhileWhileKernel};
use crate::node::{NodeId, NodeKind};
use crate::stack::TraversalStack;
use crate::stream::RayBatch;
use crate::traversal::{Hit, StepEvent, TraversalKind, TraversalResult};
use crate::TraversalStats;
use rip_math::Ray;
use rip_pod::ripa::{RipaFile, RipaWriter};
use rip_pod::{Bytes, PodBuf};
use std::sync::{Arc, Mutex, OnceLock};

/// Bumped whenever the encoded layout changes; part of the trace-store
/// cache key in `rip-exec`.
pub const FORMAT_VERSION: u32 = 2;

/// RIPA artifact kind of a ray-trace set (scene = 1, BVH = 2, wide = 3).
pub const KIND_TRACE: u32 = 4;

const SEC_META: u32 = 1;
const SEC_RECORDS: u32 = 2;
const SEC_NODES: u32 = 3;
const SEC_LEAF_COUNTS: u32 = 4;

const TAG_ANY_HIT: u32 = 0;
const TAG_CLOSEST_HIT: u32 = 1;
const NO_HIT: u32 = u32::MAX;

/// Workload header, cross-checked against the section lengths on decode
/// and against the live BVH + ray batch on [`RayTraceSet::attach`].
#[repr(C)]
#[derive(Clone, Copy, Debug)]
struct TraceMeta {
    format_version: u32,
    kind_tag: u32,
    ray_count: u64,
    node_count: u32,
    tri_count: u32,
    ray_digest: u64,
    step_total: u64,
    leaf_total: u64,
}

rip_pod::impl_pod!(TraceMeta, size = 48, align = 8);

/// One ray's recorded full traversal: windows into the shared node and
/// leaf-count streams plus the final outcome.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct TraceRecord {
    step_offset: u64,
    leaf_offset: u64,
    step_count: u32,
    leaf_count: u32,
    hit_tri: u32,
    hit_leaf: u32,
    hit_t: f32,
    stack_spills: u32,
}

rip_pod::impl_pod!(TraceRecord, size = 40, align = 8);

/// FNV-1a digest over the raw ray stream (origin, direction, `t_min`,
/// `t_max` bit patterns in batch order) — the workload identity a trace
/// is bound to. Delegates to [`RayBatch::content_digest`], which caches
/// the pass, so attaching a trace before every replay run hashes the
/// batch once, not once per run.
pub fn ray_digest(batch: &RayBatch) -> u64 {
    batch.content_digest()
}

/// The capture loop: one virgin full traversal in the tight while-while
/// shape, recording each fetched node id and each leaf visit's
/// tested-triangle count. Node order, hit and stack-spill total are
/// bit-identical to a steppable [`Traversal`] run (the round-trip tests
/// pin this), but the loop carries no per-step event or allocation, so
/// capturing costs barely more than the traversal itself.
fn record_full_traversal(
    bvh: &Bvh,
    ray: &Ray,
    inv_dir: rip_math::Vec3,
    kind: TraversalKind,
    nodes: &mut Vec<u32>,
    leaf_counts: &mut Vec<u32>,
) -> (Option<Hit>, u64) {
    let mut stack = TraversalStack::new();
    let mut current = Some(NodeId::ROOT);
    let mut best: Option<Hit> = None;
    let mut stats = TraversalStats::default();
    while let Some(node_id) = current.take() {
        nodes.push(node_id.index());
        let ray_eff = kernel::effective_ray(ray, kind, best);
        match bvh.node(node_id).kind {
            NodeKind::Interior {
                left,
                right,
                left_bounds,
                right_bounds,
            } => {
                let (t_left, t_right) = kernel::fetch_interior(
                    &mut stats,
                    &left_bounds,
                    &right_bounds,
                    &ray_eff,
                    inv_dir,
                );
                match (t_left, t_right) {
                    (Some(tl), Some(tr)) => {
                        // Visit the closer child first (§2.4).
                        let (near, far) = if tl <= tr {
                            (left, right)
                        } else {
                            (right, left)
                        };
                        stack.push(far);
                        current = Some(near);
                    }
                    (Some(_), None) => current = Some(left),
                    (None, Some(_)) => current = Some(right),
                    (None, None) => current = stack.pop(),
                }
            }
            NodeKind::Leaf { .. } => {
                let before = stats.tri_tests;
                let outcome = kernel::test_leaf_triangles(
                    bvh.leaf_triangles(node_id),
                    &mut |_| node_id,
                    kind,
                    &mut best,
                    &ray_eff,
                    &mut stats,
                    None,
                );
                leaf_counts.push((stats.tri_tests - before) as u32);
                current = if outcome.terminated {
                    None // Algorithm 1 line 15
                } else {
                    stack.pop()
                };
            }
        }
    }
    (best, stack.spills())
}

/// One contiguous ray range's capture output, with chunk-local stream
/// offsets; [`RayTraceSet::capture_parallel`] rebases and concatenates
/// chunks in ray-index order.
struct CaptureChunk {
    records: Vec<TraceRecord>,
    nodes: Vec<u32>,
    leaf_counts: Vec<u32>,
}

/// Captures rays `start..end` of `batch` as a standalone chunk.
fn capture_chunk(
    bvh: &Bvh,
    batch: &RayBatch,
    kind: TraversalKind,
    start: usize,
    end: usize,
) -> CaptureChunk {
    let len = end - start;
    let mut records = Vec::with_capacity(len);
    // Typical AO traversals visit a few dozen nodes; reserving up front
    // keeps the growth reallocations off the capture loop.
    let mut nodes: Vec<u32> = Vec::with_capacity(len * 32);
    let mut leaf_counts: Vec<u32> = Vec::with_capacity(len * 8);
    for i in start..end {
        let ray = batch.ray(i);
        let step_offset = nodes.len() as u64;
        let leaf_offset = leaf_counts.len() as u64;
        let (hit, spills) = record_full_traversal(
            bvh,
            &ray,
            batch.inv_direction(i),
            kind,
            &mut nodes,
            &mut leaf_counts,
        );
        records.push(TraceRecord {
            step_offset,
            leaf_offset,
            step_count: (nodes.len() as u64 - step_offset) as u32,
            leaf_count: (leaf_counts.len() as u64 - leaf_offset) as u32,
            hit_tri: hit.map_or(NO_HIT, |h| h.tri_index),
            hit_leaf: hit.map_or(NO_HIT, |h| h.leaf.index()),
            hit_t: hit.map_or(0.0, |h| h.t),
            stack_spills: spills as u32,
        });
    }
    CaptureChunk {
        records,
        nodes,
        leaf_counts,
    }
}

/// A captured (or decoded) set of full-traversal traces, one per ray of
/// a workload, in batch order.
#[derive(Debug)]
pub struct RayTraceSet {
    meta: TraceMeta,
    records: PodBuf<TraceRecord>,
    nodes: PodBuf<u32>,
    leaf_counts: PodBuf<u32>,
    /// Lazily materialized [`RayTraceSet::full_result`] per ray: every
    /// replayed run consults each ray's recorded outcome once (fallback
    /// kernels and baselines alike), so after the first run over a trace
    /// the reconstruction work is a table lookup.
    full_results: OnceLock<Vec<TraversalResult>>,
    /// One-slot-per-ray memo of predicted-probe evaluations — see
    /// [`RayTraceSet::probe_cached`].
    probe_memo: Mutex<Vec<Option<(NodeId, TraversalResult)>>>,
}

impl RayTraceSet {
    /// Runs every ray's virgin full traversal and records it.
    ///
    /// Leaf visits are stored as bare counts: [`Traversal`]'s leaf arm
    /// always tests a *prefix* of the leaf's triangle order (any-hit
    /// early-out is the only way to stop short), so the count alone
    /// reconstructs the tested indices. [`ReplayCursor`] rebuilds them
    /// from `Bvh::leaf_triangles`, and the capture/replay round-trip
    /// tests pin the equivalence.
    pub fn capture(bvh: &Bvh, batch: &RayBatch, kind: TraversalKind) -> RayTraceSet {
        Self::capture_parallel(bvh, batch, kind, 1)
    }

    /// [`RayTraceSet::capture`] with the per-ray traversals sharded over
    /// `threads` contiguous ray ranges. Rays are independent and chunks
    /// are stitched back in ray-index order, so the result is
    /// **byte-identical** to a sequential capture at every thread count
    /// (the determinism suite pins this).
    pub fn capture_parallel(
        bvh: &Bvh,
        batch: &RayBatch,
        kind: TraversalKind,
        threads: usize,
    ) -> RayTraceSet {
        let threads = threads.clamp(1, batch.len().max(1));
        let chunk_len = batch.len().div_ceil(threads);
        let chunks: Vec<CaptureChunk> = if threads == 1 {
            vec![capture_chunk(bvh, batch, kind, 0, batch.len())]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        // Both bounds are clamped: with a chunk length of
                        // ceil(len / threads), trailing shards can start
                        // past the batch and must degenerate to empty
                        // ranges rather than underflow.
                        let start = (t * chunk_len).min(batch.len());
                        let end = (start + chunk_len).min(batch.len());
                        scope.spawn(move || capture_chunk(bvh, batch, kind, start, end))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
        };

        let mut records = Vec::with_capacity(chunks.iter().map(|c| c.records.len()).sum::<usize>());
        let mut nodes: Vec<u32> =
            Vec::with_capacity(chunks.iter().map(|c| c.nodes.len()).sum::<usize>());
        let mut leaf_counts: Vec<u32> =
            Vec::with_capacity(chunks.iter().map(|c| c.leaf_counts.len()).sum::<usize>());
        for chunk in chunks {
            let (step_base, leaf_base) = (nodes.len() as u64, leaf_counts.len() as u64);
            records.extend(chunk.records.into_iter().map(|mut r| {
                r.step_offset += step_base;
                r.leaf_offset += leaf_base;
                r
            }));
            nodes.extend_from_slice(&chunk.nodes);
            leaf_counts.extend_from_slice(&chunk.leaf_counts);
        }
        RayTraceSet {
            meta: TraceMeta {
                format_version: FORMAT_VERSION,
                kind_tag: match kind {
                    TraversalKind::AnyHit => TAG_ANY_HIT,
                    TraversalKind::ClosestHit => TAG_CLOSEST_HIT,
                },
                ray_count: batch.len() as u64,
                node_count: bvh.node_count() as u32,
                tri_count: bvh.triangle_count() as u32,
                ray_digest: ray_digest(batch),
                step_total: nodes.len() as u64,
                leaf_total: leaf_counts.len() as u64,
            },
            records: records.into(),
            nodes: nodes.into(),
            leaf_counts: leaf_counts.into(),
            full_results: OnceLock::new(),
            probe_memo: Mutex::new(Vec::new()),
        }
    }

    /// Serializes into a self-contained RIPA v2 buffer. Re-encoding a
    /// decoded set is byte-identical (canonical section layout).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = RipaWriter::new(KIND_TRACE);
        w.section(SEC_META, std::slice::from_ref(&self.meta))
            .section(SEC_RECORDS, self.records.as_slice())
            .section(SEC_NODES, self.nodes.as_slice())
            .section(SEC_LEAF_COUNTS, self.leaf_counts.as_slice());
        w.finish()
    }

    /// Decodes a RIPA v2 trace artifact **in place**: the record and
    /// stream sections are borrowed out of `bytes` (owned aligned buffer
    /// or page mapping alike). Any structural problem is an `Err` so the
    /// trace store can quarantine the file and recapture.
    pub fn decode_shared(bytes: Bytes) -> Result<RayTraceSet, String> {
        let file = RipaFile::parse(bytes, KIND_TRACE)?;
        let meta: TraceMeta = file.read_one(SEC_META)?;
        if meta.format_version != FORMAT_VERSION {
            return Err(format!(
                "trace format version {} (expected {FORMAT_VERSION})",
                meta.format_version
            ));
        }
        if meta.kind_tag != TAG_ANY_HIT && meta.kind_tag != TAG_CLOSEST_HIT {
            return Err(format!("unknown traversal-kind tag {}", meta.kind_tag));
        }
        let records = file.pod_section::<TraceRecord>(SEC_RECORDS)?;
        let nodes = file.pod_section::<u32>(SEC_NODES)?;
        let leaf_counts = file.pod_section::<u32>(SEC_LEAF_COUNTS)?;
        if records.len() as u64 != meta.ray_count
            || nodes.len() as u64 != meta.step_total
            || leaf_counts.len() as u64 != meta.leaf_total
        {
            return Err(format!(
                "meta promises {}/{}/{} records/steps/leaves but sections hold {}/{}/{}",
                meta.ray_count,
                meta.step_total,
                meta.leaf_total,
                records.len(),
                nodes.len(),
                leaf_counts.len()
            ));
        }
        // The per-ray windows must tile both streams exactly, in order.
        let (mut step_cursor, mut leaf_cursor) = (0u64, 0u64);
        for (i, r) in records.as_slice().iter().enumerate() {
            if r.step_offset != step_cursor || r.leaf_offset != leaf_cursor {
                return Err(format!("record {i}: stream windows are not contiguous"));
            }
            if r.leaf_count > r.step_count {
                return Err(format!(
                    "record {i}: {} leaf visits in {} steps",
                    r.leaf_count, r.step_count
                ));
            }
            let in_range = |v: u32, bound: u32| v == NO_HIT || v < bound;
            if !in_range(r.hit_tri, meta.tri_count)
                || !in_range(r.hit_leaf, meta.node_count)
                || (r.hit_tri == NO_HIT) != (r.hit_leaf == NO_HIT)
            {
                return Err(format!("record {i}: inconsistent hit encoding"));
            }
            step_cursor += u64::from(r.step_count);
            leaf_cursor += u64::from(r.leaf_count);
        }
        if step_cursor != meta.step_total || leaf_cursor != meta.leaf_total {
            return Err(format!(
                "records cover {step_cursor}/{leaf_cursor} steps/leaves of {}/{}",
                meta.step_total, meta.leaf_total
            ));
        }
        if nodes.as_slice().iter().any(|&n| n >= meta.node_count) {
            return Err("node stream references a node out of range".into());
        }
        Ok(RayTraceSet {
            meta,
            records: records.into(),
            nodes: nodes.into(),
            leaf_counts: leaf_counts.into(),
            full_results: OnceLock::new(),
            probe_memo: Mutex::new(Vec::new()),
        })
    }

    /// Decodes an owned buffer produced by [`RayTraceSet::encode`].
    pub fn decode(bytes: &[u8]) -> Result<RayTraceSet, String> {
        Self::decode_shared(Bytes::copy_from_slice(bytes))
    }

    /// Verifies this trace was captured against exactly this BVH and ray
    /// batch (node/triangle counts and the ray-stream digest). Call once
    /// before replaying; a mismatch means the trace belongs to a
    /// different workload.
    pub fn attach(&self, bvh: &Bvh, batch: &RayBatch) -> Result<(), String> {
        if self.meta.node_count as usize != bvh.node_count()
            || self.meta.tri_count as usize != bvh.triangle_count()
        {
            return Err(format!(
                "trace captured against a {}-node/{}-triangle BVH, live has {}/{}",
                self.meta.node_count,
                self.meta.tri_count,
                bvh.node_count(),
                bvh.triangle_count()
            ));
        }
        if self.meta.ray_count as usize != batch.len() {
            return Err(format!(
                "trace holds {} rays, workload has {}",
                self.meta.ray_count,
                batch.len()
            ));
        }
        let digest = ray_digest(batch);
        if self.meta.ray_digest != digest {
            return Err(format!(
                "ray-stream digest {:#018x} != recorded {:#018x}",
                digest, self.meta.ray_digest
            ));
        }
        Ok(())
    }

    /// The traversal kind this trace records.
    pub fn kind(&self) -> TraversalKind {
        if self.meta.kind_tag == TAG_ANY_HIT {
            TraversalKind::AnyHit
        } else {
            TraversalKind::ClosestHit
        }
    }

    /// Number of recorded rays.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Whether the storage borrows shared (mapped) artifact memory.
    pub fn is_shared(&self) -> bool {
        self.records.is_shared()
    }

    fn record(&self, i: usize) -> &TraceRecord {
        &self.records.as_slice()[i]
    }

    /// Recorded node-visit sequence of ray `i` (raw node indices).
    pub fn node_steps(&self, i: usize) -> &[u32] {
        let r = self.record(i);
        &self.nodes.as_slice()
            [r.step_offset as usize..(r.step_offset + u64::from(r.step_count)) as usize]
    }

    /// Recorded per-leaf-visit tested-triangle counts of ray `i`.
    pub fn leaf_prefix_counts(&self, i: usize) -> &[u32] {
        let r = self.record(i);
        &self.leaf_counts.as_slice()
            [r.leaf_offset as usize..(r.leaf_offset + u64::from(r.leaf_count)) as usize]
    }

    /// The recorded final intersection of ray `i`.
    pub fn hit(&self, i: usize) -> Option<Hit> {
        let r = self.record(i);
        (r.hit_tri != NO_HIT).then(|| Hit {
            t: r.hit_t,
            tri_index: r.hit_tri,
            leaf: NodeId::new(r.hit_leaf),
        })
    }

    /// The full traversal's outcome for ray `i`, reconstructed without
    /// re-traversing: bit-identical to `Traversal::new(kind).run(bvh,
    /// ray)` on the captured workload.
    pub fn full_result(&self, i: usize) -> TraversalResult {
        self.full_results.get_or_init(|| {
            (0..self.len())
                .map(|i| self.reconstruct_result(i))
                .collect()
        })[i]
            .clone()
    }

    /// Memoizes a single-seed-node predicted-probe evaluation for ray
    /// `ray`: the probe is a pure function of the BVH, the ray and the
    /// seed node, and across a parameter sweep a replayed ray is almost
    /// always handed the same predicted node (training derives it from
    /// the ray's recorded hit), so runs after the first reuse the stored
    /// [`TraversalResult`] instead of re-traversing the subtree. Live
    /// runs never consult this — it exists only on the replay path, so
    /// the live baseline keeps paying (and measuring) the real probe.
    ///
    /// One slot per ray, overwritten when a run predicts a different
    /// node (rare — the seed derives from the ray's recorded hit).
    pub fn probe_cached(
        &self,
        ray: u32,
        node: NodeId,
        eval: impl FnOnce() -> TraversalResult,
    ) -> TraversalResult {
        let i = ray as usize;
        {
            let memo = self.probe_memo.lock().expect("probe memo poisoned");
            if let Some(Some((seed, result))) = memo.get(i) {
                if *seed == node {
                    return result.clone();
                }
            }
        }
        let result = eval();
        let mut memo = self.probe_memo.lock().expect("probe memo poisoned");
        if memo.is_empty() {
            memo.resize(self.len(), None);
        }
        if let Some(slot) = memo.get_mut(i) {
            *slot = Some((node, result.clone()));
        }
        result
    }

    /// Rebuilds one ray's [`TraversalResult`] from the recorded streams
    /// (the slow path behind the [`RayTraceSet::full_result`] memo).
    fn reconstruct_result(&self, i: usize) -> TraversalResult {
        let r = self.record(i);
        let interior = u64::from(r.step_count - r.leaf_count);
        let tris: u64 = self
            .leaf_prefix_counts(i)
            .iter()
            .map(|&c| u64::from(c))
            .sum();
        TraversalResult {
            hit: self.hit(i),
            stats: TraversalStats {
                interior_fetches: interior,
                leaf_fetches: u64::from(r.leaf_count),
                tri_fetches: tris,
                box_tests: 2 * interior,
                tri_tests: tris,
                stack_spills: u64::from(r.stack_spills),
            },
        }
    }
}

/// Steppable replay of one recorded full traversal, mirroring the
/// [`Traversal`] driving surface (`current_request` / `step` /
/// `is_done` / `best_hit` / `stats`) so the cycle-level simulator can
/// drive recorded and live rays through the same warp machinery.
///
/// The synthesized [`StepEvent`]s carry everything the timing model
/// consumes — the node id and the tested-triangle indices (reconstructed
/// as a leaf-order prefix). `child_hits` is not recorded and is reported
/// as 0.
#[derive(Clone, Debug)]
pub struct ReplayCursor {
    set: Arc<RayTraceSet>,
    step_offset: usize,
    leaf_offset: usize,
    step_count: usize,
    pos: usize,
    leaf_pos: usize,
    hit: Option<Hit>,
    stats: TraversalStats,
}

impl ReplayCursor {
    /// A cursor over ray `i` of `set`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn new(set: Arc<RayTraceSet>, i: usize) -> ReplayCursor {
        let hit = set.hit(i);
        let r = *set.record(i);
        ReplayCursor {
            set,
            step_offset: r.step_offset as usize,
            leaf_offset: r.leaf_offset as usize,
            step_count: r.step_count as usize,
            pos: 0,
            leaf_pos: 0,
            hit,
            stats: TraversalStats {
                stack_spills: u64::from(r.stack_spills),
                ..TraversalStats::default()
            },
        }
    }

    /// The node the replayed traversal needs next, or `None` when done.
    #[inline]
    pub fn current_request(&self) -> Option<NodeId> {
        (self.pos < self.step_count)
            .then(|| NodeId::new(self.set.nodes.as_slice()[self.step_offset + self.pos]))
    }

    /// Whether the replay has consumed every recorded step.
    #[inline]
    pub fn is_done(&self) -> bool {
        self.pos >= self.step_count
    }

    /// The recorded intersection — surfaced only once the replay is
    /// done, matching the live any-hit traversal (whose best hit is set
    /// by its final leaf step).
    pub fn best_hit(&self) -> Option<Hit> {
        if !self.is_done() {
            return None;
        }
        self.hit
    }

    /// Statistics accumulated so far; includes the recorded stack-spill
    /// total (live traversals report spills-so-far, but the simulator
    /// only reads stats at leg completion).
    pub fn stats(&self) -> TraversalStats {
        self.stats
    }

    /// Consumes the next recorded step, synthesizing its [`StepEvent`].
    pub fn step(&mut self, bvh: &Bvh) -> StepEvent {
        if self.pos >= self.step_count {
            return StepEvent::Finished;
        }
        let node = NodeId::new(self.set.nodes.as_slice()[self.step_offset + self.pos]);
        self.pos += 1;
        match bvh.node(node).kind {
            NodeKind::Interior { .. } => {
                self.stats.interior_fetches += 1;
                self.stats.box_tests += 2;
                StepEvent::Interior {
                    node,
                    child_hits: 0,
                }
            }
            NodeKind::Leaf { .. } => {
                let count =
                    self.set.leaf_counts.as_slice()[self.leaf_offset + self.leaf_pos] as usize;
                self.leaf_pos += 1;
                self.stats.leaf_fetches += 1;
                self.stats.tri_fetches += count as u64;
                self.stats.tri_tests += count as u64;
                let tris_tested: Vec<u32> = bvh
                    .leaf_triangles(node)
                    .take(count)
                    .map(|(t, _)| t)
                    .collect();
                let found = self.best_hit().filter(|h| h.leaf == node);
                StepEvent::Leaf {
                    node,
                    tris_tested,
                    found,
                }
            }
        }
    }
}

/// A [`TraversalKernel`] that answers one ray's **untrimmed** full
/// traversal from the recorded result and falls back to a live
/// while-while trace for anything else.
///
/// The predictor flow in `rip-core` routes exactly two query shapes
/// through its fallback kernel: the full root traversal of
/// not-predicted / mispredicted rays (the original ray — replayable) and
/// the closest-hit verified leg's *trimmed* authoritative traversal
/// (whose `t_max` depends on live predictor state — not replayable).
/// The two are distinguished by `t_max` bit equality: `Ray::trimmed`
/// takes a min, so a bit-identical `t_max` implies a bit-identical
/// traversal and the recorded result is exact.
pub struct RecordedKernel<'a> {
    bvh: &'a Bvh,
    kind: TraversalKind,
    result: TraversalResult,
    ray_t_max_bits: u32,
    live_fallbacks: u64,
}

impl<'a> RecordedKernel<'a> {
    /// A kernel replaying ray `i` of `set`, captured for `ray`.
    pub fn new(bvh: &'a Bvh, set: &RayTraceSet, i: usize, ray: &Ray) -> RecordedKernel<'a> {
        RecordedKernel {
            bvh,
            kind: set.kind(),
            result: set.full_result(i),
            ray_t_max_bits: ray.t_max.to_bits(),
            live_fallbacks: 0,
        }
    }

    /// How many queries could not be served from the record (trimmed
    /// closest-hit legs) and ran live.
    pub fn live_fallbacks(&self) -> u64 {
        self.live_fallbacks
    }
}

impl TraversalKernel for RecordedKernel<'_> {
    fn name(&self) -> String {
        "recorded".to_string()
    }

    fn trace(&mut self, ray: &Ray, kind: TraversalKind) -> TraversalResult {
        if kind == self.kind && ray.t_max.to_bits() == self.ray_t_max_bits {
            self.result.clone()
        } else {
            self.live_fallbacks += 1;
            WhileWhileKernel::new(self.bvh).trace(ray, kind)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::Traversal;
    use rip_math::{Triangle, Vec3};

    fn occluded_scene() -> (Bvh, RayBatch) {
        let mut tris = Vec::new();
        for i in 0..8 {
            for j in 0..8 {
                let o = Vec3::new(i as f32, 0.0, j as f32);
                tris.push(Triangle::new(o, o + Vec3::X, o + Vec3::Z));
                tris.push(Triangle::new(
                    o + Vec3::X,
                    o + Vec3::X + Vec3::Z,
                    o + Vec3::Z,
                ));
            }
        }
        let bvh = Bvh::build(&tris);
        let mut batch = RayBatch::with_capacity(64);
        for i in 0..64 {
            let x = 0.3 + (i % 8) as f32 * 0.9;
            let z = 0.4 + (i / 8) as f32 * 0.9;
            let dir = if i % 5 == 0 { Vec3::Y } else { -Vec3::Y };
            batch.push(Ray::segment(Vec3::new(x, 1.5, z), dir, 4.0));
        }
        (bvh, batch)
    }

    #[test]
    fn parallel_capture_is_byte_identical_at_every_thread_count() {
        let (bvh, batch) = occluded_scene();
        for kind in [TraversalKind::AnyHit, TraversalKind::ClosestHit] {
            let sequential = RayTraceSet::capture(&bvh, &batch, kind).encode();
            // 48 threads over 64 rays makes trailing shards start past the
            // batch (ceil-sized chunks): they must be empty, not underflow.
            for threads in [2, 3, 8, 48, 64, 200] {
                let sharded = RayTraceSet::capture_parallel(&bvh, &batch, kind, threads).encode();
                assert_eq!(sequential, sharded, "threads={threads} ({kind:?})");
            }
        }
    }

    #[test]
    fn capture_matches_live_traversal_exactly() {
        let (bvh, batch) = occluded_scene();
        for kind in [TraversalKind::AnyHit, TraversalKind::ClosestHit] {
            let set = RayTraceSet::capture(&bvh, &batch, kind);
            set.attach(&bvh, &batch).unwrap();
            for i in 0..batch.len() {
                let live = Traversal::new(kind).run(&bvh, &batch.ray(i));
                assert_eq!(set.full_result(i), live, "ray {i} ({kind:?})");
            }
        }
    }

    #[test]
    fn cursor_steps_like_a_live_traversal() {
        let (bvh, batch) = occluded_scene();
        let set = Arc::new(RayTraceSet::capture(&bvh, &batch, TraversalKind::AnyHit));
        for i in 0..batch.len() {
            let ray = batch.ray(i);
            let mut live = Traversal::new(TraversalKind::AnyHit);
            let mut cursor = ReplayCursor::new(Arc::clone(&set), i);
            loop {
                assert_eq!(cursor.current_request(), live.current_request());
                assert_eq!(cursor.is_done(), live.is_done());
                if live.is_done() {
                    break;
                }
                let live_event = live.step(&bvh, &ray);
                let replay_event = cursor.step(&bvh);
                // Everything the timing model consumes must agree; only
                // child_hits (unrecorded) and mid-leaf `found` hits may
                // differ.
                match (&live_event, &replay_event) {
                    (StepEvent::Interior { node: a, .. }, StepEvent::Interior { node: b, .. }) => {
                        assert_eq!(a, b)
                    }
                    (
                        StepEvent::Leaf {
                            node: a,
                            tris_tested: ta,
                            ..
                        },
                        StepEvent::Leaf {
                            node: b,
                            tris_tested: tb,
                            ..
                        },
                    ) => {
                        assert_eq!(a, b);
                        assert_eq!(ta, tb);
                    }
                    other => panic!("event shape diverged: {other:?}"),
                }
            }
            assert_eq!(cursor.best_hit(), live.best_hit(), "ray {i}");
            assert_eq!(cursor.stats(), live.stats(), "ray {i}");
        }
    }

    #[test]
    fn encode_decode_round_trips_byte_stably() {
        let (bvh, batch) = occluded_scene();
        let set = RayTraceSet::capture(&bvh, &batch, TraversalKind::AnyHit);
        let encoded = set.encode();
        let decoded = RayTraceSet::decode(&encoded).unwrap();
        assert!(decoded.is_shared());
        assert_eq!(decoded.encode(), encoded, "re-encoding must be byte-stable");
        decoded.attach(&bvh, &batch).unwrap();
        for i in 0..batch.len() {
            assert_eq!(decoded.full_result(i), set.full_result(i));
            assert_eq!(decoded.node_steps(i), set.node_steps(i));
            assert_eq!(decoded.leaf_prefix_counts(i), set.leaf_prefix_counts(i));
        }
    }

    #[test]
    fn attach_rejects_a_different_workload() {
        let (bvh, batch) = occluded_scene();
        let set = RayTraceSet::capture(&bvh, &batch, TraversalKind::AnyHit);
        let mut other = RayBatch::with_capacity(batch.len());
        for i in 0..batch.len() {
            let mut r = batch.ray(i);
            if i == 17 {
                r.t_max += 0.25;
            }
            other.push(r);
        }
        assert!(set.attach(&bvh, &other).unwrap_err().contains("digest"));
        let small = Bvh::build(&[Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y)]);
        assert!(set.attach(&small, &batch).is_err());
        let mut short = RayBatch::with_capacity(1);
        short.push(batch.ray(0));
        assert!(set.attach(&bvh, &short).unwrap_err().contains("rays"));
    }

    #[test]
    fn decode_rejects_semantic_corruption_without_panicking() {
        let (bvh, batch) = occluded_scene();
        let set = RayTraceSet::capture(&bvh, &batch, TraversalKind::AnyHit);
        // Tamper *before* encoding so the container checksums stay
        // valid and the semantic validators are what must catch it.
        let mut bad = RayTraceSet {
            meta: set.meta,
            records: set.records.as_slice().to_vec().into(),
            nodes: set.nodes.as_slice().to_vec().into(),
            leaf_counts: set.leaf_counts.as_slice().to_vec().into(),
            full_results: OnceLock::new(),
            probe_memo: Mutex::new(Vec::new()),
        };
        bad.nodes.to_mut()[0] = u32::MAX - 1;
        assert!(RayTraceSet::decode(&bad.encode())
            .unwrap_err()
            .contains("out of range"));

        let mut bad_meta = set.meta;
        bad_meta.format_version += 1;
        bad.meta = bad_meta;
        let reversioned = bad;
        assert!(RayTraceSet::decode(&reversioned.encode())
            .unwrap_err()
            .contains("version"));
    }
}
