//! BVH artifact serialization on the RIPA v2 zero-copy container.
//!
//! The artifact cache in `rip-exec` persists built acceleration
//! structures so repeated experiment runs skip BVH construction. Since
//! format version 2 an artifact is a [`rip_pod::ripa`] file: flat
//! `#[repr(C)]` record sections (nodes, leaf-order permutation,
//! triangle soup) behind a checksummed header + section table, so
//! decoding is *validate and cast* instead of an element-wise copy.
//! [`decode_shared`] borrows the triangle and order sections straight
//! out of the mapped bytes ([`rip_pod::PodBuf`] storage in [`Bvh`]);
//! only the node array is materialized, because the in-memory
//! [`BvhNode`] carries an enum the flat file cannot alias.
//!
//! Validation is pure integer work — tags, index ranges, the builder's
//! parent-before-child allocation order, parent/depth back-links, and
//! exact leaf coverage of the triangle set — with bit integrity already
//! guaranteed by the container's per-section FNV checksums. That keeps
//! the cold-start load path cheap enough to beat the v1 element-wise
//! decode by the margin `BENCH_artifact.json` records.
//!
//! The legacy v1 stream codec is kept as [`encode_v1`]/[`decode_v1`]
//! solely as the measured baseline of `artifact_bench`; the cache never
//! reads or writes it (v1 artifacts are invisible under the v2 cache
//! key and simply rebuilt on miss).

use crate::bvh::Bvh;
use crate::node::{BvhNode, CompressedWideNode, NodeId, NodeKind};
use crate::wide::{TriGroup, WideBvh};
use rip_math::{Aabb, Triangle, Vec3};
use rip_pod::ripa::{RipaFile, RipaWriter};
use rip_pod::Bytes;

/// Bumped whenever the encoded layout changes; part of the header *and*
/// of the artifact cache key in `rip-exec`.
pub const FORMAT_VERSION: u32 = 2;

/// RIPA artifact kind of a binary BVH.
pub const KIND_BVH: u32 = 2;
/// RIPA artifact kind of a compressed wide BVH.
pub const KIND_WIDE: u32 = 3;

const NO_PARENT: u32 = u32::MAX;
const TAG_INTERIOR: u32 = 0;
const TAG_LEAF: u32 = 1;

// Section ids of the binary-BVH artifact.
const SEC_META: u32 = 1;
const SEC_NODES: u32 = 2;
const SEC_ORDER: u32 = 3;
const SEC_TRIS: u32 = 4;

// Section ids of the wide-BVH artifact.
const SEC_WIDE_META: u32 = 1;
const SEC_WIDE_NODES: u32 = 2;
const SEC_WIDE_GROUPS: u32 = 3;

/// Counts header of the binary artifact, cross-checked against the
/// actual section lengths.
#[repr(C)]
#[derive(Clone, Copy)]
struct BvhMeta {
    node_count: u32,
    order_count: u32,
    tri_count: u32,
    reserved: u32,
}

rip_pod::impl_pod!(BvhMeta, size = 16, align = 4);

/// One node as stored on disk: the in-memory [`BvhNode`] enum flattened
/// into a fixed 96-byte record (`tag` selects the `a`/`b` meaning —
/// children for interiors, first/count for leaves).
#[repr(C)]
#[derive(Clone, Copy)]
struct PodBvhNode {
    bounds_min: [f32; 3],
    bounds_max: [f32; 3],
    left_min: [f32; 3],
    left_max: [f32; 3],
    right_min: [f32; 3],
    right_max: [f32; 3],
    a: u32,
    b: u32,
    parent: u32,
    depth: u32,
    tag: u32,
    reserved: u32,
}

rip_pod::impl_pod!(PodBvhNode, size = 96, align = 4);

fn flat_vec3(v: Vec3) -> [f32; 3] {
    [v.x, v.y, v.z]
}

fn unflat_vec3(v: [f32; 3]) -> Vec3 {
    Vec3::new(v[0], v[1], v[2])
}

fn flatten_node(node: &BvhNode) -> PodBvhNode {
    let (tag, a, b, lmin, lmax, rmin, rmax) = match node.kind {
        NodeKind::Interior {
            left,
            right,
            left_bounds,
            right_bounds,
        } => (
            TAG_INTERIOR,
            left.index(),
            right.index(),
            flat_vec3(left_bounds.min),
            flat_vec3(left_bounds.max),
            flat_vec3(right_bounds.min),
            flat_vec3(right_bounds.max),
        ),
        NodeKind::Leaf { first, count } => (
            TAG_LEAF, first, count, [0.0; 3], [0.0; 3], [0.0; 3], [0.0; 3],
        ),
    };
    PodBvhNode {
        bounds_min: flat_vec3(node.bounds.min),
        bounds_max: flat_vec3(node.bounds.max),
        left_min: lmin,
        left_max: lmax,
        right_min: rmin,
        right_max: rmax,
        a,
        b,
        parent: node.parent.map_or(NO_PARENT, NodeId::index),
        depth: node.depth,
        tag,
        reserved: 0,
    }
}

/// Encodes `bvh` into a self-contained RIPA v2 buffer. Re-encoding a
/// decoded tree is byte-identical (canonical section layout, zeroed
/// unused leaf fields).
pub fn encode(bvh: &Bvh) -> Vec<u8> {
    let (nodes, tri_order, triangles) = bvh.raw_parts();
    let pod_nodes: Vec<PodBvhNode> = nodes.iter().map(flatten_node).collect();
    let meta = BvhMeta {
        node_count: nodes.len() as u32,
        order_count: tri_order.len() as u32,
        tri_count: triangles.len() as u32,
        reserved: 0,
    };
    let mut w = RipaWriter::new(KIND_BVH);
    w.section(SEC_META, std::slice::from_ref(&meta))
        .section(SEC_NODES, &pod_nodes)
        .section(SEC_ORDER, tri_order)
        .section(SEC_TRIS, triangles);
    w.finish()
}

/// Decodes an owned buffer produced by [`encode`] (convenience wrapper:
/// copies into an aligned buffer, then runs [`decode_shared`]).
pub fn decode(bytes: &[u8]) -> Result<Bvh, String> {
    decode_shared(Bytes::copy_from_slice(bytes))
}

/// Decodes a RIPA v2 BVH artifact **in place**: the triangle and
/// leaf-order sections are borrowed out of `bytes` (owned aligned
/// buffer or page mapping alike), the node records are materialized,
/// and the whole structure is validated with integer-only checks.
///
/// Any structural problem is reported as `Err` so the caller can
/// quarantine the artifact and rebuild from geometry instead.
pub fn decode_shared(bytes: Bytes) -> Result<Bvh, String> {
    let file = RipaFile::parse(bytes, KIND_BVH)?;
    let meta: BvhMeta = file.read_one(SEC_META)?;
    if meta.reserved != 0 {
        return Err("reserved meta field is not zero".into());
    }
    let pod_nodes = file.pod_section::<PodBvhNode>(SEC_NODES)?;
    let order = file.pod_section::<u32>(SEC_ORDER)?;
    let triangles = file.pod_section::<Triangle>(SEC_TRIS)?;
    if pod_nodes.len() != meta.node_count as usize
        || order.len() != meta.order_count as usize
        || triangles.len() != meta.tri_count as usize
    {
        return Err(format!(
            "meta promises {}/{}/{} nodes/slots/triangles but sections hold {}/{}/{}",
            meta.node_count,
            meta.order_count,
            meta.tri_count,
            pod_nodes.len(),
            order.len(),
            triangles.len()
        ));
    }
    let nodes = unflatten_nodes(pod_nodes.as_slice(), order.len())?;
    check_leaf_coverage(&nodes, order.as_slice(), triangles.len())?;
    Ok(Bvh::from_parts(nodes, order, triangles))
}

/// Rebuilds the in-memory node array from flat records, validating the
/// structure with integer-only checks (bit integrity is already covered
/// by the container checksums):
///
/// * tags and reserved fields are well formed;
/// * interior children are in range and *after* their parent — the
///   builder allocates parent-before-child, and this ordering doubles
///   as an O(1)-per-edge acyclicity proof;
/// * leaf ranges fit the order section and are non-empty;
/// * every non-root node is referenced as a child exactly once, by the
///   node its `parent` field names, at `depth` parent + 1.
fn unflatten_nodes(pods: &[PodBvhNode], order_count: usize) -> Result<Vec<BvhNode>, String> {
    if pods.is_empty() {
        return Err("tree has no nodes".into());
    }
    let n = pods.len();
    let mut nodes = Vec::with_capacity(n);
    for (idx, pod) in pods.iter().enumerate() {
        if pod.reserved != 0 {
            return Err(format!("node {idx}: reserved field is not zero"));
        }
        let kind = match pod.tag {
            TAG_INTERIOR => {
                let (left, right) = (pod.a as usize, pod.b as usize);
                if left >= n || right >= n {
                    return Err(format!("node {idx}: child out of range ({n} nodes)"));
                }
                if left <= idx || right <= idx || left == right {
                    return Err(format!(
                        "node {idx}: children {left}/{right} violate parent-before-child order"
                    ));
                }
                NodeKind::Interior {
                    left: NodeId::new(pod.a),
                    right: NodeId::new(pod.b),
                    left_bounds: Aabb {
                        min: unflat_vec3(pod.left_min),
                        max: unflat_vec3(pod.left_max),
                    },
                    right_bounds: Aabb {
                        min: unflat_vec3(pod.right_min),
                        max: unflat_vec3(pod.right_max),
                    },
                }
            }
            TAG_LEAF => {
                let (first, count) = (pod.a as u64, pod.b as u64);
                if count == 0 {
                    return Err(format!("node {idx}: empty leaf"));
                }
                if first + count > order_count as u64 {
                    return Err(format!(
                        "node {idx}: leaf range {first}..+{count} exceeds {order_count} slots"
                    ));
                }
                NodeKind::Leaf {
                    first: pod.a,
                    count: pod.b,
                }
            }
            tag => return Err(format!("node {idx}: unknown tag {tag}")),
        };
        let parent = match (idx, pod.parent) {
            (0, NO_PARENT) => None,
            (0, p) => return Err(format!("root claims parent {p}")),
            (_, NO_PARENT) => return Err(format!("node {idx} has no parent")),
            (_, p) if (p as usize) < idx => Some(NodeId::new(p)),
            (_, p) => {
                return Err(format!(
                    "node {idx}: parent {p} violates parent-before-child order"
                ))
            }
        };
        if idx == 0 && pod.depth != 0 {
            return Err(format!("root depth {} is not zero", pod.depth));
        }
        nodes.push(BvhNode {
            bounds: Aabb {
                min: unflat_vec3(pod.bounds_min),
                max: unflat_vec3(pod.bounds_max),
            },
            kind,
            parent,
            depth: pod.depth,
        });
    }
    // Back-link pass: derive each node's parent from the interior child
    // references and demand it matches the recorded parent and depth.
    let mut derived: Vec<u32> = vec![NO_PARENT; n];
    for (idx, node) in nodes.iter().enumerate() {
        if let NodeKind::Interior { left, right, .. } = node.kind {
            for child in [left.index(), right.index()] {
                if derived[child as usize] != NO_PARENT {
                    return Err(format!("node {child} is referenced by two parents"));
                }
                derived[child as usize] = idx as u32;
            }
        }
    }
    for (idx, node) in nodes.iter().enumerate().skip(1) {
        let p = derived[idx];
        if p == NO_PARENT {
            return Err(format!("node {idx} is not referenced by any parent"));
        }
        if node.parent != Some(NodeId::new(p)) {
            return Err(format!("node {idx}: parent link broken"));
        }
        if node.depth != nodes[p as usize].depth + 1 {
            return Err(format!("node {idx}: depth wrong"));
        }
    }
    Ok(nodes)
}

/// Demands the leaf ranges cover every triangle exactly once through
/// the order permutation (the integer half of `Bvh::validate`).
fn check_leaf_coverage(nodes: &[BvhNode], order: &[u32], tri_count: usize) -> Result<(), String> {
    let mut seen = vec![false; tri_count];
    for node in nodes {
        if let NodeKind::Leaf { first, count } = node.kind {
            for &t in &order[first as usize..(first + count) as usize] {
                let slot = seen
                    .get_mut(t as usize)
                    .ok_or_else(|| format!("triangle slot {t} out of range ({tri_count})"))?;
                if *slot {
                    return Err(format!("triangle {t} appears in two leaves"));
                }
                *slot = true;
            }
        }
    }
    if let Some(missing) = seen.iter().position(|&s| !s) {
        return Err(format!("triangle {missing} not referenced by any leaf"));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Wide BVH
// ---------------------------------------------------------------------------

/// Version of the compressed wide-BVH artifact layout.
pub const WIDE_FORMAT_VERSION: u32 = 2;

/// Counts header of the wide artifact.
#[repr(C)]
#[derive(Clone, Copy)]
struct WideMeta {
    node_count: u32,
    group_count: u32,
    reserved: [u32; 2],
}

rip_pod::impl_pod!(WideMeta, size = 16, align = 4);

/// Encodes a compressed wide BVH into a self-contained RIPA v2 buffer.
///
/// The node and group arrays are already flat `#[repr(C)]` records
/// (64 and 180 bytes) with no implicit padding, so the sections are
/// verbatim memory dumps and re-encoding a decoded tree is
/// byte-identical — `rip-testkit` pins that stability with a golden
/// snapshot.
pub fn encode_wide(wide: &WideBvh) -> Vec<u8> {
    let (nodes, groups) = wide.raw_parts();
    let meta = WideMeta {
        node_count: nodes.len() as u32,
        group_count: groups.len() as u32,
        reserved: [0; 2],
    };
    let mut w = RipaWriter::new(KIND_WIDE);
    w.section(SEC_WIDE_META, std::slice::from_ref(&meta))
        .section(SEC_WIDE_NODES, nodes)
        .section(SEC_WIDE_GROUPS, groups);
    w.finish()
}

/// Decodes an owned buffer produced by [`encode_wide`] (copies into an
/// aligned buffer, then runs [`decode_wide_shared`]).
pub fn decode_wide(bytes: &[u8]) -> Result<WideBvh, String> {
    decode_wide_shared(Bytes::copy_from_slice(bytes))
}

/// Decodes a wide-BVH artifact in place: both record sections are
/// borrowed out of `bytes`, and every child reference is range-checked
/// so a corrupt artifact is rejected instead of tripping out-of-bounds
/// indexing during traversal.
pub fn decode_wide_shared(bytes: Bytes) -> Result<WideBvh, String> {
    use crate::node::EMPTY_WIDE_CHILD;

    let file = RipaFile::parse(bytes, KIND_WIDE)?;
    let meta: WideMeta = file.read_one(SEC_WIDE_META)?;
    if meta.reserved != [0; 2] {
        return Err("reserved meta field is not zero".into());
    }
    let nodes = file.pod_section::<CompressedWideNode>(SEC_WIDE_NODES)?;
    let groups = file.pod_section::<TriGroup>(SEC_WIDE_GROUPS)?;
    if nodes.len() != meta.node_count as usize || groups.len() != meta.group_count as usize {
        return Err(format!(
            "meta promises {}/{} nodes/groups but sections hold {}/{}",
            meta.node_count,
            meta.group_count,
            nodes.len(),
            groups.len()
        ));
    }
    // Structural validation: every child reference must land in range.
    for (i, node) in nodes.as_slice().iter().enumerate() {
        for slot in 0..4 {
            if node.counts[slot] > 0 {
                let first = node.children[slot] as usize;
                let needed = (node.counts[slot] as usize).div_ceil(4);
                if first.saturating_add(needed) > groups.len() {
                    return Err(format!(
                        "wide node {i} slot {slot}: leaf groups {first}..+{needed} out of \
                         range ({} groups)",
                        groups.len()
                    ));
                }
            } else if node.children[slot] != EMPTY_WIDE_CHILD
                && node.children[slot] as usize >= nodes.len()
            {
                return Err(format!(
                    "wide node {i} slot {slot}: interior child {} out of range ({} nodes)",
                    node.children[slot],
                    nodes.len()
                ));
            }
        }
    }
    Ok(WideBvh::from_raw_parts(nodes, groups))
}

// ---------------------------------------------------------------------------
// Legacy v1 codec (microbench baseline only)
// ---------------------------------------------------------------------------

const V1_MAGIC: [u8; 4] = *b"RBVH";
const V1_VERSION: u32 = 1;
const V1_TAG_INTERIOR: u8 = 0;
const V1_TAG_LEAF: u8 = 1;

/// Encodes `bvh` in the retired v1 element-wise stream layout.
///
/// Kept (with [`decode_v1`]) only so `artifact_bench` can measure the
/// cold-start cost the zero-copy format replaced; the artifact cache
/// neither writes nor reads this.
pub fn encode_v1(bvh: &Bvh) -> Vec<u8> {
    let (nodes, tri_order, triangles) = bvh.raw_parts();
    let mut out =
        Vec::with_capacity(16 + nodes.len() * 90 + tri_order.len() * 4 + triangles.len() * 36);
    out.extend_from_slice(&V1_MAGIC);
    out.extend_from_slice(&V1_VERSION.to_le_bytes());
    out.extend_from_slice(&(nodes.len() as u32).to_le_bytes());
    out.extend_from_slice(&(tri_order.len() as u32).to_le_bytes());
    out.extend_from_slice(&(triangles.len() as u32).to_le_bytes());
    for node in nodes {
        put_aabb(&mut out, &node.bounds);
        match node.kind {
            NodeKind::Interior {
                left,
                right,
                left_bounds,
                right_bounds,
            } => {
                out.push(V1_TAG_INTERIOR);
                out.extend_from_slice(&left.index().to_le_bytes());
                out.extend_from_slice(&right.index().to_le_bytes());
                put_aabb(&mut out, &left_bounds);
                put_aabb(&mut out, &right_bounds);
            }
            NodeKind::Leaf { first, count } => {
                out.push(V1_TAG_LEAF);
                out.extend_from_slice(&first.to_le_bytes());
                out.extend_from_slice(&count.to_le_bytes());
            }
        }
        out.extend_from_slice(&node.parent.map_or(NO_PARENT, NodeId::index).to_le_bytes());
        out.extend_from_slice(&node.depth.to_le_bytes());
    }
    for &slot in tri_order {
        out.extend_from_slice(&slot.to_le_bytes());
    }
    for tri in triangles {
        put_vec3(&mut out, &tri.a);
        put_vec3(&mut out, &tri.b);
        put_vec3(&mut out, &tri.c);
    }
    out
}

/// Decodes the retired v1 stream layout, element by element, including
/// the full float [`Bvh::validate`] pass v1 relied on — exactly the
/// work the microbench compares the v2 mapped path against.
pub fn decode_v1(bytes: &[u8]) -> Result<Bvh, String> {
    let mut r = Reader { bytes, at: 0 };
    if r.take(4)? != V1_MAGIC {
        return Err("not a BVH artifact (bad magic)".into());
    }
    let version = r.u32()?;
    if version != V1_VERSION {
        return Err(format!(
            "BVH artifact version {version}, expected {V1_VERSION}"
        ));
    }
    let node_count = r.u32()? as usize;
    let order_count = r.u32()? as usize;
    let tri_count = r.u32()? as usize;

    // Guard the allocations below against a corrupt header: the smallest
    // node record (a leaf) is 41 bytes, an order slot 4, a triangle 36, so
    // the counts can never promise more records than the buffer has bytes.
    let promised = node_count
        .saturating_mul(41)
        .saturating_add(order_count.saturating_mul(4))
        .saturating_add(tri_count.saturating_mul(36));
    if promised > bytes.len().saturating_sub(r.at) {
        return Err(format!(
            "truncated BVH artifact: header promises {node_count} nodes, {order_count} \
             slots and {tri_count} triangles but only {} bytes remain",
            bytes.len() - r.at
        ));
    }

    let mut nodes = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        let bounds = r.aabb()?;
        let kind = match r.u8()? {
            V1_TAG_INTERIOR => NodeKind::Interior {
                left: NodeId::new(r.u32()?),
                right: NodeId::new(r.u32()?),
                left_bounds: r.aabb()?,
                right_bounds: r.aabb()?,
            },
            V1_TAG_LEAF => NodeKind::Leaf {
                first: r.u32()?,
                count: r.u32()?,
            },
            tag => return Err(format!("unknown node tag {tag}")),
        };
        let parent = match r.u32()? {
            NO_PARENT => None,
            index => Some(NodeId::new(index)),
        };
        let depth = r.u32()?;
        nodes.push(BvhNode {
            bounds,
            kind,
            parent,
            depth,
        });
    }
    let mut tri_order = Vec::with_capacity(order_count);
    for _ in 0..order_count {
        let slot = r.u32()?;
        if slot as usize >= tri_count {
            return Err(format!(
                "triangle slot {slot} out of range ({tri_count} triangles)"
            ));
        }
        tri_order.push(slot);
    }
    let mut triangles = Vec::with_capacity(tri_count);
    for _ in 0..tri_count {
        triangles.push(Triangle::new(r.vec3()?, r.vec3()?, r.vec3()?));
    }
    if r.at != bytes.len() {
        return Err(format!(
            "{} trailing bytes after BVH artifact",
            bytes.len() - r.at
        ));
    }

    let bvh = Bvh::from_parts(nodes, tri_order, triangles);
    bvh.validate()
        .map_err(|e| format!("decoded BVH failed validation: {e}"))?;
    Ok(bvh)
}

fn put_vec3(out: &mut Vec<u8>, v: &Vec3) {
    out.extend_from_slice(&v.x.to_le_bytes());
    out.extend_from_slice(&v.y.to_le_bytes());
    out.extend_from_slice(&v.z.to_le_bytes());
}

fn put_aabb(out: &mut Vec<u8>, b: &Aabb) {
    put_vec3(out, &b.min);
    put_vec3(out, &b.max);
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.at..end];
                self.at = end;
                Ok(s)
            }
            None => Err("truncated BVH artifact".into()),
        }
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<f32, String> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn vec3(&mut self) -> Result<Vec3, String> {
        Ok(Vec3::new(self.f32()?, self.f32()?, self.f32()?))
    }

    fn aabb(&mut self) -> Result<Aabb, String> {
        Ok(Aabb {
            min: self.vec3()?,
            max: self.vec3()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn sample_bvh(n: usize) -> Bvh {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let tris: Vec<Triangle> = (0..n)
            .map(|_| {
                let base = Vec3::new(
                    rng.gen_range(-8.0f32..8.0),
                    rng.gen_range(-8.0f32..8.0),
                    rng.gen_range(-8.0f32..8.0),
                );
                Triangle::new(
                    base,
                    base + Vec3::new(rng.gen_range(0.1f32..1.0), 0.0, 0.0),
                    base + Vec3::new(0.0, rng.gen_range(0.1f32..1.0), 0.0),
                )
            })
            .collect();
        Bvh::build(&tris)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let bvh = sample_bvh(300);
        let decoded = decode(&encode(&bvh)).unwrap();
        assert_eq!(decoded.node_count(), bvh.node_count());
        assert_eq!(decoded.depth(), bvh.depth());
        assert_eq!(decoded.nodes(), bvh.nodes());
        assert_eq!(decoded.triangle_count(), bvh.triangle_count());
        for i in 0..bvh.triangle_count() as u32 {
            assert_eq!(decoded.tri_order_at(i), bvh.tri_order_at(i));
            assert_eq!(decoded.triangle(i), bvh.triangle(i));
        }
        decoded.validate().unwrap();
        assert!(
            decoded.is_shared(),
            "v2 decode must borrow the flat sections, not copy them"
        );
    }

    #[test]
    fn reencode_is_byte_identical() {
        let bvh = sample_bvh(150);
        let bytes = encode(&bvh);
        assert_eq!(encode(&decode(&bytes).unwrap()), bytes);
    }

    #[test]
    fn v1_roundtrip_still_works_as_bench_baseline() {
        let bvh = sample_bvh(150);
        let bytes = encode_v1(&bvh);
        let decoded = decode_v1(&bytes).unwrap();
        assert_eq!(decoded.nodes(), bvh.nodes());
        assert_eq!(encode_v1(&decoded), bytes);
        assert!(!decoded.is_shared(), "v1 decode is the element-wise copy");
        // The two codecs agree on the tree they describe.
        assert_eq!(encode(&decoded), encode(&bvh));
    }

    #[test]
    fn rejects_bad_magic_version_and_truncation() {
        let bvh = sample_bvh(40);
        let bytes = encode(&bvh);

        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(decode(&bad_magic).unwrap_err().contains("magic"));

        let mut bad_version = bytes.clone();
        bad_version[4] = 0xEE;
        assert!(decode(&bad_version).unwrap_err().contains("version"));

        for cut in [bytes.len() - 3, bytes.len() / 2, 17, 3] {
            assert!(decode(&bytes[..cut]).is_err(), "truncation to {cut} bytes");
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(decode(&trailing).is_err());
    }

    #[test]
    fn rejects_wrong_kind() {
        let bvh = sample_bvh(40);
        let wide = crate::WideBvh::from_binary(&bvh);
        // A wide artifact is a valid RIPA file of the wrong kind.
        assert!(decode(&encode_wide(&wide)).unwrap_err().contains("kind"));
    }

    #[test]
    fn single_byte_flips_never_panic_and_never_pass() {
        let bvh = sample_bvh(25);
        let bytes = encode(&bvh);
        for at in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[at] ^= 0x20;
            assert!(decode(&bad).is_err(), "flip at {at} went undetected");
        }
    }

    #[test]
    fn wide_roundtrip_preserves_traversal_results() {
        use crate::{TraversalKind, WideBvh};
        let bvh = sample_bvh(200);
        let wide = WideBvh::from_binary(&bvh);
        let decoded = decode_wide(&encode_wide(&wide)).unwrap();
        assert_eq!(decoded.node_count(), wide.node_count());
        assert_eq!(decoded.group_count(), wide.group_count());
        assert!(decoded.is_shared(), "wide decode must borrow both sections");
        let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
        for _ in 0..40 {
            let o = Vec3::new(
                rng.gen_range(-9.0f32..9.0),
                rng.gen_range(-9.0f32..9.0),
                -12.0,
            );
            let ray = rip_math::Ray::segment(o, Vec3::Z, 30.0);
            for kind in [TraversalKind::AnyHit, TraversalKind::ClosestHit] {
                let a = wide.intersect(&bvh, &ray, kind);
                let b = decoded.intersect(&bvh, &ray, kind);
                assert_eq!(a, b, "decoded wide tree must traverse identically");
            }
        }
    }

    #[test]
    fn wide_reencode_is_byte_identical() {
        let bvh = sample_bvh(150);
        let wide = crate::WideBvh::from_binary(&bvh);
        let bytes = encode_wide(&wide);
        assert_eq!(encode_wide(&decode_wide(&bytes).unwrap()), bytes);
    }

    #[test]
    fn wide_rejects_bad_magic_version_truncation_and_references() {
        let bvh = sample_bvh(60);
        let wide = crate::WideBvh::from_binary(&bvh);
        let bytes = encode_wide(&wide);

        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(decode_wide(&bad_magic).unwrap_err().contains("magic"));

        let mut bad_version = bytes.clone();
        bad_version[4] = 0xEE;
        assert!(decode_wide(&bad_version).unwrap_err().contains("version"));

        assert!(decode_wide(&bytes[..bytes.len() - 2]).is_err());

        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(decode_wide(&trailing).is_err());

        // Point the first interior child out of range.
        let (nodes, groups) = wide.raw_parts();
        let mut corrupt_nodes = nodes.to_vec();
        let mut poisoned = false;
        'outer: for node in corrupt_nodes.iter_mut() {
            for slot in 0..4 {
                if node.counts[slot] == 0 && node.children[slot] != crate::node::EMPTY_WIDE_CHILD {
                    node.children[slot] = u32::MAX - 1;
                    poisoned = true;
                    break 'outer;
                }
            }
        }
        assert!(poisoned, "tree should have an interior child to poison");
        let corrupt = crate::WideBvh::from_raw_parts(corrupt_nodes, groups.to_vec());
        assert!(decode_wide(&encode_wide(&corrupt))
            .unwrap_err()
            .contains("out of range"));
    }

    #[test]
    fn rejects_corrupt_structure() {
        let bvh = sample_bvh(40);
        // Duplicate a leaf-order slot: the container still parses, but
        // the tree references one triangle twice and misses another,
        // which the coverage check must reject.
        let (nodes, tri_order, triangles) = bvh.raw_parts();
        let mut corrupt_order = tri_order.to_vec();
        corrupt_order[1] = corrupt_order[0];
        let corrupt = Bvh::from_parts(nodes.to_vec(), corrupt_order, triangles.to_vec());
        assert!(decode(&encode(&corrupt))
            .unwrap_err()
            .contains("two leaves"));
    }
}
