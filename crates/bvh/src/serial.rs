//! Compact binary serialization of a built BVH.
//!
//! The artifact cache in `rip-exec` persists built acceleration structures
//! so repeated experiment runs skip BVH construction. The format is a
//! straightforward little-endian dump of the Aila–Laine node buffer, the
//! leaf-order triangle permutation, and the triangle soup — everything
//! [`Bvh::from_parts`] needs to reassemble the tree (depth and memory
//! layout are recomputed on load).
//!
//! The format is versioned by [`FORMAT_VERSION`]; decoding rejects foreign
//! magic/version bytes and validates the reassembled tree, so a stale or
//! corrupt artifact falls back to a rebuild instead of producing garbage.

use crate::bvh::Bvh;
use crate::node::{BvhNode, NodeId, NodeKind};
use crate::wide::WideBvh;
use rip_math::{Aabb, Triangle, Vec3};

/// Bumped whenever the encoded layout changes; part of the header *and*
/// of the artifact cache key in `rip-exec`.
pub const FORMAT_VERSION: u32 = 1;

const MAGIC: [u8; 4] = *b"RBVH";
const TAG_INTERIOR: u8 = 0;
const TAG_LEAF: u8 = 1;
const NO_PARENT: u32 = u32::MAX;

/// Encodes `bvh` into a self-contained byte buffer.
pub fn encode(bvh: &Bvh) -> Vec<u8> {
    let (nodes, tri_order, triangles) = bvh.raw_parts();
    // Node record: bounds (24) + tag (1) + payload (≤56) + parent (4) + depth (4).
    let mut out =
        Vec::with_capacity(16 + nodes.len() * 90 + tri_order.len() * 4 + triangles.len() * 36);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(nodes.len() as u32).to_le_bytes());
    out.extend_from_slice(&(tri_order.len() as u32).to_le_bytes());
    out.extend_from_slice(&(triangles.len() as u32).to_le_bytes());
    for node in nodes {
        put_aabb(&mut out, &node.bounds);
        match node.kind {
            NodeKind::Interior {
                left,
                right,
                left_bounds,
                right_bounds,
            } => {
                out.push(TAG_INTERIOR);
                out.extend_from_slice(&left.index().to_le_bytes());
                out.extend_from_slice(&right.index().to_le_bytes());
                put_aabb(&mut out, &left_bounds);
                put_aabb(&mut out, &right_bounds);
            }
            NodeKind::Leaf { first, count } => {
                out.push(TAG_LEAF);
                out.extend_from_slice(&first.to_le_bytes());
                out.extend_from_slice(&count.to_le_bytes());
            }
        }
        out.extend_from_slice(&node.parent.map_or(NO_PARENT, NodeId::index).to_le_bytes());
        out.extend_from_slice(&node.depth.to_le_bytes());
    }
    for &slot in tri_order {
        out.extend_from_slice(&slot.to_le_bytes());
    }
    for tri in triangles {
        put_vec3(&mut out, &tri.a);
        put_vec3(&mut out, &tri.b);
        put_vec3(&mut out, &tri.c);
    }
    out
}

/// Decodes a buffer produced by [`encode`] and validates the result.
///
/// Any structural problem — wrong magic, foreign version, truncation,
/// or a tree that fails [`Bvh::validate`] — is reported as `Err` so the
/// caller can rebuild from geometry instead.
pub fn decode(bytes: &[u8]) -> Result<Bvh, String> {
    let mut r = Reader { bytes, at: 0 };
    if r.take(4)? != MAGIC {
        return Err("not a BVH artifact (bad magic)".into());
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(format!(
            "BVH artifact version {version}, expected {FORMAT_VERSION}"
        ));
    }
    let node_count = r.u32()? as usize;
    let order_count = r.u32()? as usize;
    let tri_count = r.u32()? as usize;

    // Guard the allocations below against a corrupt header: the smallest
    // node record (a leaf) is 41 bytes, an order slot 4, a triangle 36, so
    // the counts can never promise more records than the buffer has bytes.
    let promised = node_count
        .saturating_mul(41)
        .saturating_add(order_count.saturating_mul(4))
        .saturating_add(tri_count.saturating_mul(36));
    if promised > bytes.len().saturating_sub(r.at) {
        return Err(format!(
            "truncated BVH artifact: header promises {node_count} nodes, {order_count} \
             slots and {tri_count} triangles but only {} bytes remain",
            bytes.len() - r.at
        ));
    }

    let mut nodes = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        let bounds = r.aabb()?;
        let kind = match r.u8()? {
            TAG_INTERIOR => NodeKind::Interior {
                left: NodeId::new(r.u32()?),
                right: NodeId::new(r.u32()?),
                left_bounds: r.aabb()?,
                right_bounds: r.aabb()?,
            },
            TAG_LEAF => NodeKind::Leaf {
                first: r.u32()?,
                count: r.u32()?,
            },
            tag => return Err(format!("unknown node tag {tag}")),
        };
        let parent = match r.u32()? {
            NO_PARENT => None,
            index => Some(NodeId::new(index)),
        };
        let depth = r.u32()?;
        nodes.push(BvhNode {
            bounds,
            kind,
            parent,
            depth,
        });
    }
    let mut tri_order = Vec::with_capacity(order_count);
    for _ in 0..order_count {
        let slot = r.u32()?;
        if slot as usize >= tri_count {
            return Err(format!(
                "triangle slot {slot} out of range ({tri_count} triangles)"
            ));
        }
        tri_order.push(slot);
    }
    let mut triangles = Vec::with_capacity(tri_count);
    for _ in 0..tri_count {
        triangles.push(Triangle::new(r.vec3()?, r.vec3()?, r.vec3()?));
    }
    if r.at != bytes.len() {
        return Err(format!(
            "{} trailing bytes after BVH artifact",
            bytes.len() - r.at
        ));
    }

    let bvh = Bvh::from_parts(nodes, tri_order, triangles);
    bvh.validate()
        .map_err(|e| format!("decoded BVH failed validation: {e}"))?;
    Ok(bvh)
}

/// Version of the compressed wide-BVH artifact layout.
pub const WIDE_FORMAT_VERSION: u32 = 1;

const WIDE_MAGIC: [u8; 4] = *b"RWBV";
/// Bytes per encoded compressed node: origin (12) + exponents (3) +
/// qlo/qhi (24) + children (16) + counts (8).
const WIDE_NODE_BYTES: usize = 63;
/// Bytes per encoded triangle group: 10 lane quads of f32 (160) +
/// 4 triangle indices (16) + leaf id (4).
const WIDE_GROUP_BYTES: usize = 180;

/// Encodes a compressed wide BVH into a self-contained byte buffer.
///
/// The encoding is a deterministic field-order dump of the node and
/// triangle-group arrays, so re-encoding a decoded tree is byte-identical
/// — `rip-testkit` pins that stability with a golden snapshot.
pub fn encode_wide(wide: &WideBvh) -> Vec<u8> {
    let (nodes, groups) = wide.raw_parts();
    let mut out =
        Vec::with_capacity(16 + nodes.len() * WIDE_NODE_BYTES + groups.len() * WIDE_GROUP_BYTES);
    out.extend_from_slice(&WIDE_MAGIC);
    out.extend_from_slice(&WIDE_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(nodes.len() as u32).to_le_bytes());
    out.extend_from_slice(&(groups.len() as u32).to_le_bytes());
    for node in nodes {
        for o in node.origin {
            out.extend_from_slice(&o.to_le_bytes());
        }
        out.extend_from_slice(&node.exponents);
        for axis in 0..3 {
            out.extend_from_slice(&node.qlo[axis]);
        }
        for axis in 0..3 {
            out.extend_from_slice(&node.qhi[axis]);
        }
        for child in node.children {
            out.extend_from_slice(&child.to_le_bytes());
        }
        for count in node.counts {
            out.extend_from_slice(&count.to_le_bytes());
        }
    }
    for group in groups {
        for lanes in [
            &group.ax, &group.ay, &group.az, &group.e1x, &group.e1y, &group.e1z, &group.e2x,
            &group.e2y, &group.e2z, &group.l12,
        ] {
            for v in lanes {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        for idx in group.tri_index {
            out.extend_from_slice(&idx.to_le_bytes());
        }
        out.extend_from_slice(&group.leaf.to_le_bytes());
    }
    out
}

/// Decodes a buffer produced by [`encode_wide`], validating child
/// references so a corrupt artifact is rejected instead of tripping
/// out-of-bounds indexing during traversal.
pub fn decode_wide(bytes: &[u8]) -> Result<WideBvh, String> {
    use crate::node::{CompressedWideNode, EMPTY_WIDE_CHILD};
    use crate::wide::TriGroup;

    let mut r = Reader { bytes, at: 0 };
    if r.take(4)? != WIDE_MAGIC {
        return Err("not a wide-BVH artifact (bad magic)".into());
    }
    let version = r.u32()?;
    if version != WIDE_FORMAT_VERSION {
        return Err(format!(
            "wide-BVH artifact version {version}, expected {WIDE_FORMAT_VERSION}"
        ));
    }
    let node_count = r.u32()? as usize;
    let group_count = r.u32()? as usize;
    let promised = node_count
        .saturating_mul(WIDE_NODE_BYTES)
        .saturating_add(group_count.saturating_mul(WIDE_GROUP_BYTES));
    if promised > bytes.len().saturating_sub(r.at) {
        return Err(format!(
            "truncated wide-BVH artifact: header promises {node_count} nodes and \
             {group_count} groups but only {} bytes remain",
            bytes.len() - r.at
        ));
    }

    let mut nodes = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        let mut node = CompressedWideNode::empty();
        for axis in 0..3 {
            node.origin[axis] = r.f32()?;
        }
        for axis in 0..3 {
            node.exponents[axis] = r.u8()?;
        }
        for axis in 0..3 {
            node.qlo[axis] = r.take(4)?.try_into().unwrap();
        }
        for axis in 0..3 {
            node.qhi[axis] = r.take(4)?.try_into().unwrap();
        }
        for slot in 0..4 {
            node.children[slot] = r.u32()?;
        }
        for slot in 0..4 {
            node.counts[slot] = u16::from_le_bytes(r.take(2)?.try_into().unwrap());
        }
        nodes.push(node);
    }
    let mut groups = Vec::with_capacity(group_count);
    for _ in 0..group_count {
        let mut group = TriGroup::padding(0);
        for lanes in [
            &mut group.ax,
            &mut group.ay,
            &mut group.az,
            &mut group.e1x,
            &mut group.e1y,
            &mut group.e1z,
            &mut group.e2x,
            &mut group.e2y,
            &mut group.e2z,
            &mut group.l12,
        ] {
            for v in lanes.iter_mut() {
                *v = r.f32()?;
            }
        }
        for idx in group.tri_index.iter_mut() {
            *idx = r.u32()?;
        }
        group.leaf = r.u32()?;
        groups.push(group);
    }
    if r.at != bytes.len() {
        return Err(format!(
            "{} trailing bytes after wide-BVH artifact",
            bytes.len() - r.at
        ));
    }

    // Structural validation: every child reference must land in range.
    for (i, node) in nodes.iter().enumerate() {
        for slot in 0..4 {
            if node.counts[slot] > 0 {
                let first = node.children[slot] as usize;
                let needed = (node.counts[slot] as usize).div_ceil(4);
                if first.saturating_add(needed) > groups.len() {
                    return Err(format!(
                        "wide node {i} slot {slot}: leaf groups {first}..+{needed} out of \
                         range ({} groups)",
                        groups.len()
                    ));
                }
            } else if node.children[slot] != EMPTY_WIDE_CHILD
                && node.children[slot] as usize >= nodes.len()
            {
                return Err(format!(
                    "wide node {i} slot {slot}: interior child {} out of range ({} nodes)",
                    node.children[slot],
                    nodes.len()
                ));
            }
        }
    }
    Ok(WideBvh::from_raw_parts(nodes, groups))
}

fn put_vec3(out: &mut Vec<u8>, v: &Vec3) {
    out.extend_from_slice(&v.x.to_le_bytes());
    out.extend_from_slice(&v.y.to_le_bytes());
    out.extend_from_slice(&v.z.to_le_bytes());
}

fn put_aabb(out: &mut Vec<u8>, b: &Aabb) {
    put_vec3(out, &b.min);
    put_vec3(out, &b.max);
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.at..end];
                self.at = end;
                Ok(s)
            }
            None => Err("truncated BVH artifact".into()),
        }
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<f32, String> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn vec3(&mut self) -> Result<Vec3, String> {
        Ok(Vec3::new(self.f32()?, self.f32()?, self.f32()?))
    }

    fn aabb(&mut self) -> Result<Aabb, String> {
        Ok(Aabb {
            min: self.vec3()?,
            max: self.vec3()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn sample_bvh(n: usize) -> Bvh {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let tris: Vec<Triangle> = (0..n)
            .map(|_| {
                let base = Vec3::new(
                    rng.gen_range(-8.0f32..8.0),
                    rng.gen_range(-8.0f32..8.0),
                    rng.gen_range(-8.0f32..8.0),
                );
                Triangle::new(
                    base,
                    base + Vec3::new(rng.gen_range(0.1f32..1.0), 0.0, 0.0),
                    base + Vec3::new(0.0, rng.gen_range(0.1f32..1.0), 0.0),
                )
            })
            .collect();
        Bvh::build(&tris)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let bvh = sample_bvh(300);
        let decoded = decode(&encode(&bvh)).unwrap();
        assert_eq!(decoded.node_count(), bvh.node_count());
        assert_eq!(decoded.depth(), bvh.depth());
        assert_eq!(decoded.nodes(), bvh.nodes());
        assert_eq!(decoded.triangle_count(), bvh.triangle_count());
        for i in 0..bvh.triangle_count() as u32 {
            assert_eq!(decoded.tri_order_at(i), bvh.tri_order_at(i));
            assert_eq!(decoded.triangle(i), bvh.triangle(i));
        }
        decoded.validate().unwrap();
    }

    #[test]
    fn reencode_is_byte_identical() {
        let bvh = sample_bvh(150);
        let bytes = encode(&bvh);
        assert_eq!(encode(&decode(&bytes).unwrap()), bytes);
    }

    #[test]
    fn rejects_bad_magic_version_and_truncation() {
        let bvh = sample_bvh(40);
        let bytes = encode(&bvh);

        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(decode(&bad_magic).unwrap_err().contains("magic"));

        let mut bad_version = bytes.clone();
        bad_version[4] = 0xEE;
        assert!(decode(&bad_version).unwrap_err().contains("version"));

        assert!(decode(&bytes[..bytes.len() - 3])
            .unwrap_err()
            .contains("truncated"));
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(decode(&trailing).unwrap_err().contains("trailing"));
    }

    #[test]
    fn wide_roundtrip_preserves_traversal_results() {
        use crate::{TraversalKind, WideBvh};
        let bvh = sample_bvh(200);
        let wide = WideBvh::from_binary(&bvh);
        let decoded = decode_wide(&encode_wide(&wide)).unwrap();
        assert_eq!(decoded.node_count(), wide.node_count());
        assert_eq!(decoded.group_count(), wide.group_count());
        let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
        for _ in 0..40 {
            let o = Vec3::new(
                rng.gen_range(-9.0f32..9.0),
                rng.gen_range(-9.0f32..9.0),
                -12.0,
            );
            let ray = rip_math::Ray::segment(o, Vec3::Z, 30.0);
            for kind in [TraversalKind::AnyHit, TraversalKind::ClosestHit] {
                let a = wide.intersect(&bvh, &ray, kind);
                let b = decoded.intersect(&bvh, &ray, kind);
                assert_eq!(a, b, "decoded wide tree must traverse identically");
            }
        }
    }

    #[test]
    fn wide_reencode_is_byte_identical() {
        let bvh = sample_bvh(150);
        let wide = crate::WideBvh::from_binary(&bvh);
        let bytes = encode_wide(&wide);
        assert_eq!(encode_wide(&decode_wide(&bytes).unwrap()), bytes);
    }

    #[test]
    fn wide_rejects_bad_magic_version_truncation_and_references() {
        let bvh = sample_bvh(60);
        let wide = crate::WideBvh::from_binary(&bvh);
        let bytes = encode_wide(&wide);

        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(decode_wide(&bad_magic).unwrap_err().contains("magic"));

        let mut bad_version = bytes.clone();
        bad_version[4] = 0xEE;
        assert!(decode_wide(&bad_version).unwrap_err().contains("version"));

        assert!(decode_wide(&bytes[..bytes.len() - 2])
            .unwrap_err()
            .contains("truncated"));

        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(decode_wide(&trailing).unwrap_err().contains("trailing"));

        // Point the first interior child out of range.
        let (nodes, groups) = wide.raw_parts();
        let mut corrupt_nodes = nodes.to_vec();
        let mut poisoned = false;
        'outer: for node in corrupt_nodes.iter_mut() {
            for slot in 0..4 {
                if node.counts[slot] == 0 && node.children[slot] != crate::node::EMPTY_WIDE_CHILD {
                    node.children[slot] = u32::MAX - 1;
                    poisoned = true;
                    break 'outer;
                }
            }
        }
        assert!(poisoned, "tree should have an interior child to poison");
        let corrupt = crate::WideBvh::from_raw_parts(corrupt_nodes, groups.to_vec());
        assert!(decode_wide(&encode_wide(&corrupt))
            .unwrap_err()
            .contains("out of range"));
    }

    #[test]
    fn rejects_corrupt_structure() {
        let bvh = sample_bvh(40);
        // Duplicate a leaf-order slot: the stream still parses, but the
        // reassembled tree references one triangle twice and misses
        // another, which validation must reject.
        let (nodes, tri_order, triangles) = bvh.raw_parts();
        let mut corrupt_order = tri_order.to_vec();
        corrupt_order[1] = corrupt_order[0];
        let corrupt = Bvh::from_parts(nodes.to_vec(), corrupt_order, triangles.to_vec());
        assert!(decode(&encode(&corrupt))
            .unwrap_err()
            .contains("validation"));
    }
}
