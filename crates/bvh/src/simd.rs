//! Four-lane `f32` arithmetic with a bit-identical portable fallback.
//!
//! The vectorized wide traversal ([`wide`](crate::wide)) tests the four
//! child slabs of a compressed wide node — and four leaf triangles — in
//! lockstep. This module provides the lane type it runs on:
//!
//! * with the `simd` cargo feature on an `x86_64` target, [`F32x4`] wraps
//!   an SSE2 `__m128` and every operation lowers to one packed
//!   instruction;
//! * everywhere else it is a plain `[f32; 4]` evaluated lane by lane.
//!
//! **Bit-identity contract.** Both backends perform the *same* IEEE-754
//! single-precision operation per lane: packed add/sub/mul/div/sqrt are
//! correctly rounded exactly like their scalar counterparts, comparisons
//! return false on NaN in both worlds, [`F32x4::min_num`] /
//! [`F32x4::max_num`] reproduce [`f32::min`] / [`f32::max`] NaN semantics
//! (the non-NaN operand wins), and [`F32x4::abs`] clears the sign bit.
//! The one latitude is the sign of a zero result when the operands are
//! `+0.0` and `-0.0` — IEEE minNum/maxNum may return either, and the two
//! backends can disagree there. That cannot leak into results: min/max
//! outputs feed only comparisons and ordering, which treat the two zeros
//! as equal. A build with the feature off therefore produces the same hit
//! bits as a build with it on — `rip-testkit` pins this with a committed
//! hit-digest snapshot verified under both configurations.
//!
//! Comparison results are returned as 4-bit lane masks (`u8`, bit *i* =
//! lane *i*) so mask composition is ordinary integer bit-twiddling that
//! cannot diverge between backends.

/// Which lane backend this build uses: `"sse2"` or `"scalar"`.
///
/// Diagnostic only — results are bit-identical either way.
pub fn backend_name() -> &'static str {
    backend::BACKEND_NAME
}

/// Whether this build vectorizes the wide kernel with explicit SIMD.
pub fn simd_enabled() -> bool {
    backend::BACKEND_NAME != "scalar"
}

pub use backend::F32x4;

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod backend {
    //! SSE2 backend. `x86_64` guarantees SSE2 statically, so every
    //! intrinsic used here is available on any target this module
    //! compiles for.
    use core::arch::x86_64::*;

    pub(super) const BACKEND_NAME: &str = "sse2";

    /// Four `f32` lanes in one SSE register.
    #[derive(Clone, Copy, Debug)]
    pub struct F32x4(__m128);

    impl F32x4 {
        /// Lanes from an array (`v[i]` becomes lane `i`).
        #[inline(always)]
        pub fn new(v: [f32; 4]) -> Self {
            F32x4(unsafe { _mm_set_ps(v[3], v[2], v[1], v[0]) })
        }

        /// All four lanes equal to `v`.
        #[inline(always)]
        pub fn splat(v: f32) -> Self {
            F32x4(unsafe { _mm_set1_ps(v) })
        }

        /// The lanes as an array (lane `i` at index `i`).
        #[inline(always)]
        pub fn to_array(self) -> [f32; 4] {
            let mut out = [0.0f32; 4];
            unsafe { _mm_storeu_ps(out.as_mut_ptr(), self.0) };
            out
        }

        /// Lane-wise `|x|` (sign bit cleared, NaN payload preserved).
        #[inline(always)]
        pub fn abs(self) -> Self {
            F32x4(unsafe { _mm_andnot_ps(_mm_set1_ps(-0.0), self.0) })
        }

        /// Lane-wise square root (correctly rounded, like [`f32::sqrt`]).
        #[inline(always)]
        pub fn sqrt(self) -> Self {
            F32x4(unsafe { _mm_sqrt_ps(self.0) })
        }

        /// Lane-wise minimum with [`f32::min`] NaN semantics: if exactly
        /// one operand is NaN the other wins; NaN only when both are.
        /// The sign of a zero result is unspecified for `(+0.0, -0.0)`
        /// operands (as with [`f32::min`]); callers must not depend on it.
        #[inline(always)]
        pub fn min_num(self, rhs: Self) -> Self {
            unsafe {
                // _mm_min_ps(a, b) = a < b ? a : b, i.e. b whenever a is
                // NaN — but NaN whenever only b is. Patch the latter case
                // back to a with a b-is-NaN blend.
                let raw = _mm_min_ps(self.0, rhs.0);
                let rhs_nan = _mm_cmpunord_ps(rhs.0, rhs.0);
                F32x4(_mm_or_ps(
                    _mm_and_ps(rhs_nan, self.0),
                    _mm_andnot_ps(rhs_nan, raw),
                ))
            }
        }

        /// Lane-wise maximum with [`f32::max`] NaN semantics.
        #[inline(always)]
        pub fn max_num(self, rhs: Self) -> Self {
            unsafe {
                let raw = _mm_max_ps(self.0, rhs.0);
                let rhs_nan = _mm_cmpunord_ps(rhs.0, rhs.0);
                F32x4(_mm_or_ps(
                    _mm_and_ps(rhs_nan, self.0),
                    _mm_andnot_ps(rhs_nan, raw),
                ))
            }
        }

        /// Lane mask of `self <= rhs` (false on NaN, like scalar `<=`).
        #[inline(always)]
        pub fn le(self, rhs: Self) -> u8 {
            unsafe { _mm_movemask_ps(_mm_cmple_ps(self.0, rhs.0)) as u8 }
        }

        /// Lane mask of `self < rhs`.
        #[inline(always)]
        pub fn lt(self, rhs: Self) -> u8 {
            unsafe { _mm_movemask_ps(_mm_cmplt_ps(self.0, rhs.0)) as u8 }
        }

        /// Lane mask of `self >= rhs`.
        #[inline(always)]
        pub fn ge(self, rhs: Self) -> u8 {
            unsafe { _mm_movemask_ps(_mm_cmpge_ps(self.0, rhs.0)) as u8 }
        }

        /// Lane mask of `self > rhs`.
        #[inline(always)]
        pub fn gt(self, rhs: Self) -> u8 {
            unsafe { _mm_movemask_ps(_mm_cmpgt_ps(self.0, rhs.0)) as u8 }
        }

        /// Lane mask of `self == rhs` (false on NaN).
        #[inline(always)]
        pub fn eq_mask(self, rhs: Self) -> u8 {
            unsafe { _mm_movemask_ps(_mm_cmpeq_ps(self.0, rhs.0)) as u8 }
        }
    }

    impl std::ops::Add for F32x4 {
        type Output = F32x4;
        #[inline(always)]
        fn add(self, rhs: F32x4) -> F32x4 {
            F32x4(unsafe { _mm_add_ps(self.0, rhs.0) })
        }
    }

    impl std::ops::Sub for F32x4 {
        type Output = F32x4;
        #[inline(always)]
        fn sub(self, rhs: F32x4) -> F32x4 {
            F32x4(unsafe { _mm_sub_ps(self.0, rhs.0) })
        }
    }

    impl std::ops::Mul for F32x4 {
        type Output = F32x4;
        #[inline(always)]
        fn mul(self, rhs: F32x4) -> F32x4 {
            F32x4(unsafe { _mm_mul_ps(self.0, rhs.0) })
        }
    }

    impl std::ops::Div for F32x4 {
        type Output = F32x4;
        #[inline(always)]
        fn div(self, rhs: F32x4) -> F32x4 {
            F32x4(unsafe { _mm_div_ps(self.0, rhs.0) })
        }
    }
}

#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
mod backend {
    //! Portable backend: the same operations lane by lane. Every method
    //! body is the scalar IEEE-754 definition of its SSE2 counterpart,
    //! which is what makes the two builds bit-identical.

    pub(super) const BACKEND_NAME: &str = "scalar";

    /// Four `f32` lanes in a plain array.
    #[derive(Clone, Copy, Debug)]
    pub struct F32x4([f32; 4]);

    #[inline(always)]
    fn map2(a: [f32; 4], b: [f32; 4], f: impl Fn(f32, f32) -> f32) -> [f32; 4] {
        [f(a[0], b[0]), f(a[1], b[1]), f(a[2], b[2]), f(a[3], b[3])]
    }

    #[inline(always)]
    fn mask2(a: [f32; 4], b: [f32; 4], f: impl Fn(f32, f32) -> bool) -> u8 {
        (0..4).fold(0u8, |m, i| m | (u8::from(f(a[i], b[i])) << i))
    }

    impl F32x4 {
        /// Lanes from an array (`v[i]` becomes lane `i`).
        #[inline(always)]
        pub fn new(v: [f32; 4]) -> Self {
            F32x4(v)
        }

        /// All four lanes equal to `v`.
        #[inline(always)]
        pub fn splat(v: f32) -> Self {
            F32x4([v; 4])
        }

        /// The lanes as an array (lane `i` at index `i`).
        #[inline(always)]
        pub fn to_array(self) -> [f32; 4] {
            self.0
        }

        /// Lane-wise `|x|` (sign bit cleared, NaN payload preserved).
        #[inline(always)]
        pub fn abs(self) -> Self {
            F32x4(self.0.map(f32::abs))
        }

        /// Lane-wise square root (correctly rounded, like [`f32::sqrt`]).
        #[inline(always)]
        pub fn sqrt(self) -> Self {
            F32x4(self.0.map(f32::sqrt))
        }

        /// Lane-wise minimum with [`f32::min`] NaN semantics.
        #[inline(always)]
        pub fn min_num(self, rhs: Self) -> Self {
            F32x4(map2(self.0, rhs.0, f32::min))
        }

        /// Lane-wise maximum with [`f32::max`] NaN semantics.
        #[inline(always)]
        pub fn max_num(self, rhs: Self) -> Self {
            F32x4(map2(self.0, rhs.0, f32::max))
        }

        /// Lane mask of `self <= rhs` (false on NaN, like scalar `<=`).
        #[inline(always)]
        pub fn le(self, rhs: Self) -> u8 {
            mask2(self.0, rhs.0, |a, b| a <= b)
        }

        /// Lane mask of `self < rhs`.
        #[inline(always)]
        pub fn lt(self, rhs: Self) -> u8 {
            mask2(self.0, rhs.0, |a, b| a < b)
        }

        /// Lane mask of `self >= rhs`.
        #[inline(always)]
        pub fn ge(self, rhs: Self) -> u8 {
            mask2(self.0, rhs.0, |a, b| a >= b)
        }

        /// Lane mask of `self > rhs`.
        #[inline(always)]
        pub fn gt(self, rhs: Self) -> u8 {
            mask2(self.0, rhs.0, |a, b| a > b)
        }

        /// Lane mask of `self == rhs` (false on NaN).
        #[inline(always)]
        pub fn eq_mask(self, rhs: Self) -> u8 {
            mask2(self.0, rhs.0, |a, b| a == b)
        }
    }

    impl std::ops::Add for F32x4 {
        type Output = F32x4;
        #[inline(always)]
        fn add(self, rhs: F32x4) -> F32x4 {
            F32x4(map2(self.0, rhs.0, |a, b| a + b))
        }
    }

    impl std::ops::Sub for F32x4 {
        type Output = F32x4;
        #[inline(always)]
        fn sub(self, rhs: F32x4) -> F32x4 {
            F32x4(map2(self.0, rhs.0, |a, b| a - b))
        }
    }

    impl std::ops::Mul for F32x4 {
        type Output = F32x4;
        #[inline(always)]
        fn mul(self, rhs: F32x4) -> F32x4 {
            F32x4(map2(self.0, rhs.0, |a, b| a * b))
        }
    }

    impl std::ops::Div for F32x4 {
        type Output = F32x4;
        #[inline(always)]
        fn div(self, rhs: F32x4) -> F32x4 {
            F32x4(map2(self.0, rhs.0, |a, b| a / b))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_matches_scalar_bits() {
        let a = [1.5f32, -0.0, f32::MIN_POSITIVE, 3.0e38];
        let b = [2.5f32, 7.0, 1.0e-40, 3.0e38];
        let va = F32x4::new(a);
        let vb = F32x4::new(b);
        for (lane, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!((va + vb).to_array()[lane].to_bits(), (x + y).to_bits());
            assert_eq!((va - vb).to_array()[lane].to_bits(), (x - y).to_bits());
            assert_eq!((va * vb).to_array()[lane].to_bits(), (x * y).to_bits());
            assert_eq!((va / vb).to_array()[lane].to_bits(), (x / y).to_bits());
            assert_eq!(va.sqrt().to_array()[lane].to_bits(), x.sqrt().to_bits());
            assert_eq!(va.abs().to_array()[lane].to_bits(), x.abs().to_bits());
        }
    }

    #[test]
    fn min_max_match_f32_nan_semantics() {
        let cases = [
            (1.0f32, 2.0f32),
            (2.0, 1.0),
            (f32::NAN, 5.0),
            (5.0, f32::NAN),
            (f32::NAN, f32::NAN),
            (f32::INFINITY, f32::NEG_INFINITY),
            (-0.0, 0.0),
        ];
        for &(x, y) in &cases {
            let got_min = F32x4::splat(x).min_num(F32x4::splat(y)).to_array()[0];
            let got_max = F32x4::splat(x).max_num(F32x4::splat(y)).to_array()[0];
            // Bits-or-both-NaN, with numeric equality admitting the one
            // permitted divergence: minNum/maxNum of (+0.0, -0.0) may return
            // either zero (see module docs — consumers never see the sign).
            let same =
                |g: f32, w: f32| g.to_bits() == w.to_bits() || (g.is_nan() && w.is_nan()) || g == w;
            assert!(same(got_min, x.min(y)), "min({x}, {y}) -> {got_min}");
            assert!(same(got_max, x.max(y)), "max({x}, {y}) -> {got_max}");
        }
    }

    #[test]
    fn comparisons_are_false_on_nan() {
        let a = F32x4::new([1.0, f32::NAN, 3.0, f32::NAN]);
        let b = F32x4::new([2.0, 2.0, f32::NAN, f32::NAN]);
        assert_eq!(a.le(b), 0b0001);
        assert_eq!(a.lt(b), 0b0001);
        assert_eq!(a.ge(b), 0b0000);
        assert_eq!(b.gt(a), 0b0001);
        assert_eq!(a.eq_mask(a) & 0b0101, 0b0101);
        assert_eq!(a.eq_mask(a) & 0b1010, 0);
    }

    #[test]
    fn backend_name_is_consistent() {
        assert_eq!(simd_enabled(), backend_name() != "scalar");
    }
}
