//! Morton-order ray sorting (the Aila–Laine quicksort baseline of §5.2).
//!
//! The paper's Figure 12 compares the predictor on unsorted and sorted
//! rays: "sorted rays benefit less from the predictor because similar rays
//! are traced close together and do not have an opportunity to train the
//! predictor". Sorting keys combine the quantized ray origin (Morton
//! interleaved) with a quantized direction, as in ray-reordering practice.

use rip_math::{morton, Aabb, Ray, Vec3};

/// Computes the 64-bit sort key for one ray: the origin's 30-bit Morton
/// code in the high bits (normalized by `scene_bounds`) and a 12-bit
/// direction code (Morton over the direction mapped into `[0,1]³`) below it.
pub fn ray_sort_key(ray: &Ray, scene_bounds: &Aabb) -> u64 {
    let origin_code = morton::morton3_30(scene_bounds.normalize_point(ray.origin)) as u64;
    let dir01 = (ray.direction.try_normalized().unwrap_or(Vec3::Z) + Vec3::ONE) * 0.5;
    let dir_code = (morton::morton3_30(dir01) >> 18) as u64; // top 12 bits
    (origin_code << 12) | dir_code
}

/// Sorts rays in place by [`ray_sort_key`].
pub fn sort_rays(rays: &mut [Ray], scene_bounds: &Aabb) {
    rays.sort_by_cached_key(|r| ray_sort_key(r, scene_bounds));
}

/// Returns the permutation that sorts `rays` without moving them (useful
/// when ray identity must be preserved for result write-back, as in the RT
/// unit's ray-ID-indexed buffers).
pub fn sort_permutation(rays: &[Ray], scene_bounds: &Aabb) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..rays.len() as u32).collect();
    perm.sort_by_cached_key(|&i| ray_sort_key(&rays[i as usize], scene_bounds));
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_rays(n: usize, seed: u64) -> (Vec<Ray>, Aabb) {
        let bounds = Aabb::new(Vec3::ZERO, Vec3::splat(10.0));
        let mut rng = SmallRng::seed_from_u64(seed);
        let rays = (0..n)
            .map(|_| {
                let o = Vec3::new(rng.gen(), rng.gen(), rng.gen()) * 10.0;
                let d = rip_math::sampling::uniform_sphere(rng.gen(), rng.gen());
                Ray::segment(o, d, 3.0)
            })
            .collect();
        (rays, bounds)
    }

    #[test]
    fn sorting_reduces_successive_origin_distance() {
        let (mut rays, bounds) = random_rays(2000, 3);
        let dist = |rs: &[Ray]| {
            rs.windows(2)
                .map(|w| (w[0].origin - w[1].origin).length() as f64)
                .sum::<f64>()
        };
        let before = dist(&rays);
        sort_rays(&mut rays, &bounds);
        let after = dist(&rays);
        assert!(
            after < before * 0.5,
            "sorting should at least halve successive distance: {before} -> {after}"
        );
    }

    #[test]
    fn permutation_matches_in_place_sort() {
        let (rays, bounds) = random_rays(500, 9);
        let perm = sort_permutation(&rays, &bounds);
        let mut sorted = rays.clone();
        sort_rays(&mut sorted, &bounds);
        let via_perm: Vec<u64> = perm
            .iter()
            .map(|&i| ray_sort_key(&rays[i as usize], &bounds))
            .collect();
        let direct: Vec<u64> = sorted.iter().map(|r| ray_sort_key(r, &bounds)).collect();
        assert_eq!(via_perm, direct);
    }

    #[test]
    fn permutation_is_a_bijection() {
        let (rays, bounds) = random_rays(300, 4);
        let mut perm = sort_permutation(&rays, &bounds);
        perm.sort_unstable();
        assert!(perm.iter().enumerate().all(|(i, &p)| i as u32 == p));
    }

    #[test]
    fn key_groups_nearby_rays() {
        let bounds = Aabb::new(Vec3::ZERO, Vec3::splat(10.0));
        let a = Ray::new(Vec3::splat(2.0), Vec3::Z);
        let b = Ray::new(Vec3::splat(2.01), Vec3::Z);
        let c = Ray::new(Vec3::splat(9.0), Vec3::Z);
        let (ka, kb, kc) = (
            ray_sort_key(&a, &bounds),
            ray_sort_key(&b, &bounds),
            ray_sort_key(&c, &bounds),
        );
        assert!(ka.abs_diff(kb) < ka.abs_diff(kc));
    }
}
