//! Per-ray traversal stack with hardware-capacity spill accounting.

use crate::node::NodeId;

/// The per-thread traversal stack of Algorithm 1.
///
/// The RT unit allocates an 8-entry hardware stack per ray which
/// "occasionally overflows to thread-local memory" (§5.1.2). This type is
/// functionally unbounded but counts pushes beyond the hardware capacity so
/// the simulator and statistics can charge spill traffic.
///
/// # Examples
///
/// ```
/// use rip_bvh::{NodeId, TraversalStack};
///
/// let mut stack = TraversalStack::new();
/// stack.push(NodeId::new(3));
/// assert_eq!(stack.pop(), Some(NodeId::new(3)));
/// assert_eq!(stack.pop(), None);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TraversalStack {
    entries: Vec<NodeId>,
    hw_capacity: usize,
    spills: u64,
    max_depth: usize,
}

/// Hardware stack entries per ray in the baseline RT unit (§5.1.2).
pub const HW_STACK_CAPACITY: usize = 8;

impl TraversalStack {
    /// Creates an empty stack with the baseline 8-entry hardware capacity.
    pub fn new() -> Self {
        Self::with_hw_capacity(HW_STACK_CAPACITY)
    }

    /// Creates an empty stack with a custom hardware capacity.
    pub fn with_hw_capacity(hw_capacity: usize) -> Self {
        TraversalStack {
            entries: Vec::new(),
            hw_capacity,
            spills: 0,
            max_depth: 0,
        }
    }

    /// Pushes a node, counting a spill when the stack exceeds the hardware
    /// capacity.
    #[inline]
    pub fn push(&mut self, id: NodeId) {
        self.entries.push(id);
        if self.entries.len() > self.hw_capacity {
            self.spills += 1;
        }
        self.max_depth = self.max_depth.max(self.entries.len());
    }

    /// Pops the most recent node.
    #[inline]
    pub fn pop(&mut self) -> Option<NodeId> {
        self.entries.pop()
    }

    /// Current depth.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the stack is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Pushes beyond hardware capacity observed so far.
    pub fn spills(&self) -> u64 {
        self.spills
    }

    /// Deepest the stack has been.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Removes everything (spill/max-depth counters are preserved).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut s = TraversalStack::new();
        s.push(NodeId::new(1));
        s.push(NodeId::new(2));
        assert_eq!(s.pop(), Some(NodeId::new(2)));
        assert_eq!(s.pop(), Some(NodeId::new(1)));
        assert!(s.is_empty());
    }

    #[test]
    fn spills_counted_beyond_hw_capacity() {
        let mut s = TraversalStack::with_hw_capacity(2);
        for i in 0..5 {
            s.push(NodeId::new(i));
        }
        assert_eq!(s.spills(), 3);
        assert_eq!(s.max_depth(), 5);
    }

    #[test]
    fn default_capacity_matches_baseline() {
        let mut s = TraversalStack::new();
        for i in 0..8 {
            s.push(NodeId::new(i));
        }
        assert_eq!(s.spills(), 0);
        s.push(NodeId::new(8));
        assert_eq!(s.spills(), 1);
    }

    #[test]
    fn clear_preserves_counters() {
        let mut s = TraversalStack::with_hw_capacity(1);
        s.push(NodeId::new(0));
        s.push(NodeId::new(1));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.spills(), 1);
        assert_eq!(s.max_depth(), 2);
    }
}
