//! Per-ray traversal stack with hardware-capacity spill accounting.

use crate::node::NodeId;

/// The per-thread traversal stack of Algorithm 1.
///
/// The RT unit allocates an 8-entry hardware stack per ray which
/// "occasionally overflows to thread-local memory" (§5.1.2). This type is
/// functionally unbounded but counts pushes beyond the hardware capacity so
/// the simulator and statistics can charge spill traffic.
///
/// # Examples
///
/// ```
/// use rip_bvh::{NodeId, TraversalStack};
///
/// let mut stack = TraversalStack::new();
/// stack.push(NodeId::new(3));
/// assert_eq!(stack.pop(), Some(NodeId::new(3)));
/// assert_eq!(stack.pop(), None);
/// ```
#[derive(Clone, Debug)]
pub struct TraversalStack {
    /// Entries up to [`INLINE_STACK_CAPACITY`] live in this array — a
    /// fresh stack performs no heap allocation, which matters because
    /// every traversal (predicted probes included) constructs one.
    inline: [NodeId; INLINE_STACK_CAPACITY],
    inline_len: usize,
    /// Entries beyond the inline capacity (deep trees only).
    overflow: Vec<NodeId>,
    hw_capacity: usize,
    spills: u64,
    max_depth: usize,
}

impl Default for TraversalStack {
    fn default() -> Self {
        Self::new()
    }
}

/// Hardware stack entries per ray in the baseline RT unit (§5.1.2).
pub const HW_STACK_CAPACITY: usize = 8;

/// Inline (allocation-free) entries of a [`TraversalStack`]; deeper
/// stacks spill to the heap without losing entries.
pub const INLINE_STACK_CAPACITY: usize = 32;

impl TraversalStack {
    /// Creates an empty stack with the baseline 8-entry hardware capacity.
    pub fn new() -> Self {
        Self::with_hw_capacity(HW_STACK_CAPACITY)
    }

    /// Creates an empty stack with a custom hardware capacity.
    pub fn with_hw_capacity(hw_capacity: usize) -> Self {
        TraversalStack {
            inline: [NodeId::ROOT; INLINE_STACK_CAPACITY],
            inline_len: 0,
            overflow: Vec::new(),
            hw_capacity,
            spills: 0,
            max_depth: 0,
        }
    }

    /// Pushes a node, counting a spill when the stack exceeds the hardware
    /// capacity.
    #[inline]
    pub fn push(&mut self, id: NodeId) {
        if self.inline_len < INLINE_STACK_CAPACITY {
            self.inline[self.inline_len] = id;
            self.inline_len += 1;
        } else {
            self.overflow.push(id);
        }
        let depth = self.inline_len + self.overflow.len();
        if depth > self.hw_capacity {
            self.spills += 1;
        }
        self.max_depth = self.max_depth.max(depth);
    }

    /// Pops the most recent node.
    #[inline]
    pub fn pop(&mut self) -> Option<NodeId> {
        if let Some(id) = self.overflow.pop() {
            return Some(id);
        }
        if self.inline_len == 0 {
            None
        } else {
            self.inline_len -= 1;
            Some(self.inline[self.inline_len])
        }
    }

    /// Current depth.
    #[inline]
    pub fn len(&self) -> usize {
        self.inline_len + self.overflow.len()
    }

    /// Whether the stack is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pushes beyond hardware capacity observed so far.
    pub fn spills(&self) -> u64 {
        self.spills
    }

    /// Deepest the stack has been.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Removes everything (spill/max-depth counters are preserved).
    pub fn clear(&mut self) {
        self.inline_len = 0;
        self.overflow.clear();
    }
}

/// Capacity of the fixed-size [`ShortStack`] used by the wide traversal.
///
/// A 4-wide node pushes at most three siblings per visit, so 32 entries
/// cover any plausible tree; pathological descent (quantized child boxes
/// can overlap heavily) is still *possible*, which is why overflow is a
/// recoverable signal rather than a panic.
pub const SHORT_STACK_CAPACITY: usize = 32;

/// A bounded, allocation-free traversal stack of packed `u64` entries
/// (the `TraversalStack32` idiom of GPU wide-BVH kernels).
///
/// Unlike [`TraversalStack`], which spills to a `Vec`, this stack has a
/// hard capacity: [`ShortStack::push`] returns `false` — and latches
/// [`ShortStack::overflowed`] — instead of growing or panicking. The wide
/// traversal treats that as a recoverable restart signal: it abandons the
/// pass, charges a stack spill, and re-runs the ray on an unbounded stack.
///
/// # Examples
///
/// ```
/// use rip_bvh::ShortStack;
///
/// let mut stack = ShortStack::with_limit(2);
/// assert!(stack.push(1));
/// assert!(stack.push(2));
/// assert!(!stack.push(3)); // full: rejected, not panicking
/// assert!(stack.overflowed());
/// assert_eq!(stack.pop(), Some(2));
/// ```
#[derive(Clone, Debug)]
pub struct ShortStack {
    entries: [u64; SHORT_STACK_CAPACITY],
    len: usize,
    limit: usize,
    overflowed: bool,
    max_depth: usize,
}

impl Default for ShortStack {
    fn default() -> Self {
        Self::new()
    }
}

impl ShortStack {
    /// An empty stack with the full [`SHORT_STACK_CAPACITY`].
    pub fn new() -> Self {
        Self::with_limit(SHORT_STACK_CAPACITY)
    }

    /// An empty stack refusing pushes beyond `limit` entries (clamped to
    /// [`SHORT_STACK_CAPACITY`]); tests use tiny limits to exercise the
    /// overflow-restart path.
    pub fn with_limit(limit: usize) -> Self {
        ShortStack {
            entries: [0; SHORT_STACK_CAPACITY],
            len: 0,
            limit: limit.min(SHORT_STACK_CAPACITY),
            overflowed: false,
            max_depth: 0,
        }
    }

    /// Pushes an entry; returns `false` (and latches the overflow flag)
    /// when the stack is full.
    #[inline]
    #[must_use = "a rejected push means the traversal must restart"]
    pub fn push(&mut self, entry: u64) -> bool {
        if self.len >= self.limit {
            self.overflowed = true;
            return false;
        }
        self.entries[self.len] = entry;
        self.len += 1;
        self.max_depth = self.max_depth.max(self.len);
        true
    }

    /// Pops the most recent entry.
    #[inline]
    pub fn pop(&mut self) -> Option<u64> {
        if self.len == 0 {
            None
        } else {
            self.len -= 1;
            Some(self.entries[self.len])
        }
    }

    /// Current depth.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the stack is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether any push has ever been rejected.
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Deepest the stack has been.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Removes everything (the overflow flag and max-depth are preserved).
    pub fn clear(&mut self) {
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut s = TraversalStack::new();
        s.push(NodeId::new(1));
        s.push(NodeId::new(2));
        assert_eq!(s.pop(), Some(NodeId::new(2)));
        assert_eq!(s.pop(), Some(NodeId::new(1)));
        assert!(s.is_empty());
    }

    #[test]
    fn spills_counted_beyond_hw_capacity() {
        let mut s = TraversalStack::with_hw_capacity(2);
        for i in 0..5 {
            s.push(NodeId::new(i));
        }
        assert_eq!(s.spills(), 3);
        assert_eq!(s.max_depth(), 5);
    }

    #[test]
    fn default_capacity_matches_baseline() {
        let mut s = TraversalStack::new();
        for i in 0..8 {
            s.push(NodeId::new(i));
        }
        assert_eq!(s.spills(), 0);
        s.push(NodeId::new(8));
        assert_eq!(s.spills(), 1);
    }

    #[test]
    fn lifo_order_across_the_inline_overflow_boundary() {
        let mut s = TraversalStack::new();
        let n = INLINE_STACK_CAPACITY + 5;
        for i in 0..n {
            s.push(NodeId::new(i as u32));
        }
        assert_eq!(s.len(), n);
        assert_eq!(s.max_depth(), n);
        for i in (0..n).rev() {
            assert_eq!(s.pop(), Some(NodeId::new(i as u32)));
        }
        assert_eq!(s.pop(), None);
        assert_eq!(
            s.spills(),
            (n - HW_STACK_CAPACITY) as u64,
            "spill accounting is against the hardware capacity, not the inline one"
        );
    }

    #[test]
    fn clear_preserves_counters() {
        let mut s = TraversalStack::with_hw_capacity(1);
        s.push(NodeId::new(0));
        s.push(NodeId::new(1));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.spills(), 1);
        assert_eq!(s.max_depth(), 2);
    }

    #[test]
    fn short_stack_is_lifo_within_capacity() {
        let mut s = ShortStack::new();
        for v in 0..SHORT_STACK_CAPACITY as u64 {
            assert!(s.push(v));
        }
        assert!(!s.overflowed());
        for v in (0..SHORT_STACK_CAPACITY as u64).rev() {
            assert_eq!(s.pop(), Some(v));
        }
        assert_eq!(s.pop(), None);
        assert_eq!(s.max_depth(), SHORT_STACK_CAPACITY);
    }

    #[test]
    fn short_stack_overflow_is_rejected_not_panicking() {
        let mut s = ShortStack::with_limit(3);
        assert!(s.push(10) && s.push(11) && s.push(12));
        assert!(!s.push(13));
        assert!(s.overflowed());
        // Contents are intact: the rejected entry was simply not stored.
        assert_eq!(s.len(), 3);
        assert_eq!(s.pop(), Some(12));
        // The latch survives clear(), like the spill counters above.
        s.clear();
        assert!(s.is_empty());
        assert!(s.overflowed());
    }

    #[test]
    fn short_stack_limit_clamps_to_capacity() {
        let s = ShortStack::with_limit(10_000);
        assert_eq!(s.limit, SHORT_STACK_CAPACITY);
    }
}
