//! Stackless BVH traversal with a restart trail (Laine 2010).
//!
//! §2.4 notes that depth-first traversal "often requires a per-thread
//! traversal stack or potentially a bit trail for binary trees". This
//! module implements that alternative: a 64-bit *trail* encodes, per tree
//! level, whether the near child has already been fully processed. On
//! reaching a dead end the traversal **restarts from the root** and uses
//! the trail to skip directly to the next unvisited subtree — no per-ray
//! stack memory at all, at the cost of re-descending interior nodes.
//!
//! It exists as an ablation partner for the stack-based
//! [`Traversal`](crate::Traversal): identical results, different
//! memory/compute tradeoff (more node fetches, zero stack storage).

use crate::kernel;
use crate::node::{NodeId, NodeKind};
use crate::{Bvh, Hit, TraversalKind, TraversalStats};
use rip_math::{Ray, Vec3};

/// Result of a stackless traversal run.
#[derive(Clone, Debug, PartialEq)]
pub struct StacklessResult {
    /// The intersection found, if any.
    pub hit: Option<Hit>,
    /// Work performed (restarts inflate `interior_fetches`).
    pub stats: TraversalStats,
    /// Number of root restarts performed.
    pub restarts: u64,
}

/// Maximum supported tree depth (bits in the trail word).
pub const MAX_TRAIL_DEPTH: u32 = 63;

/// Runs a restart-trail traversal to completion.
///
/// Produces the same hit/miss answer as the stack-based traversal for
/// any-hit queries, and the same closest distance for closest-hit queries.
///
/// # Panics
///
/// Panics when the BVH is deeper than [`MAX_TRAIL_DEPTH`] levels.
///
/// # Examples
///
/// ```
/// use rip_bvh::{stackless, Bvh, TraversalKind};
/// use rip_math::{Ray, Triangle, Vec3};
///
/// let bvh = Bvh::build(&[Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y)]);
/// let ray = Ray::new(Vec3::new(0.2, 0.2, -1.0), Vec3::Z);
/// let result = stackless::traverse(&bvh, &ray, TraversalKind::AnyHit);
/// assert!(result.hit.is_some());
/// ```
pub fn traverse(bvh: &Bvh, ray: &Ray, kind: TraversalKind) -> StacklessResult {
    traverse_with_inv(bvh, ray, ray.inv_direction(), kind)
}

/// [`traverse`] with the ray's reciprocal direction supplied by the caller
/// (batch pipelines precompute it once per ray; trimming `t_max` between
/// restarts never changes the direction, so one reciprocal serves every
/// restart).
///
/// # Panics
///
/// Panics when the BVH is deeper than [`MAX_TRAIL_DEPTH`] levels.
pub fn traverse_with_inv(
    bvh: &Bvh,
    ray: &Ray,
    inv_dir: Vec3,
    kind: TraversalKind,
) -> StacklessResult {
    assert!(
        bvh.depth() <= MAX_TRAIL_DEPTH,
        "tree depth {} exceeds the {}-bit trail",
        bvh.depth(),
        MAX_TRAIL_DEPTH
    );
    let mut stats = TraversalStats::default();
    let mut best: Option<Hit> = None;
    let mut restarts = 0u64;

    // trail bit at `level`: 0 = take the near child, 1 = near child done,
    // take the far child. `popped` marks levels exhausted entirely.
    let mut trail: u64 = 0;
    'outer: loop {
        let ray_eff = kernel::effective_ray(ray, kind, best);
        let mut node_id = NodeId::ROOT;
        let mut level: u32 = 0;

        loop {
            let node = bvh.node(node_id);
            match node.kind {
                NodeKind::Interior {
                    left,
                    right,
                    left_bounds,
                    right_bounds,
                } => {
                    let (t_left, t_right) = kernel::fetch_interior(
                        &mut stats,
                        &left_bounds,
                        &right_bounds,
                        &ray_eff,
                        inv_dir,
                    );
                    // Near/far ordering must be deterministic per ray so the
                    // trail stays meaningful across restarts.
                    let (near, far, t_near, t_far) = match (t_left, t_right) {
                        (Some(tl), Some(tr)) if tl <= tr => (left, right, Some(tl), Some(tr)),
                        (Some(tl), Some(tr)) => (right, left, Some(tr), Some(tl)),
                        (Some(tl), None) => (left, right, Some(tl), None),
                        (None, Some(tr)) => (right, left, Some(tr), None),
                        (None, None) => (left, right, None, None),
                    };
                    let bit = 1u64 << level;
                    let take_far = trail & bit != 0;
                    let (child, t_child) = if take_far {
                        (far, t_far)
                    } else {
                        (near, t_near)
                    };
                    match t_child {
                        Some(_) => {
                            node_id = child;
                            level += 1;
                            continue;
                        }
                        None => {
                            // Dead end at this level: advance the trail.
                            if !take_far && t_far.is_some() {
                                trail |= bit;
                                node_id = far;
                                level += 1;
                                continue;
                            }
                            if pop_trail(&mut trail, level) {
                                restarts += 1;
                                continue 'outer;
                            }
                            break 'outer;
                        }
                    }
                }
                NodeKind::Leaf { .. } => {
                    let outcome = kernel::test_leaf_triangles(
                        bvh.leaf_triangles(node_id),
                        &mut |_| node_id,
                        kind,
                        &mut best,
                        &ray_eff,
                        &mut stats,
                        None,
                    );
                    if outcome.terminated {
                        break 'outer;
                    }
                    if pop_trail(&mut trail, level) {
                        restarts += 1;
                        continue 'outer;
                    }
                    break 'outer;
                }
            }
        }
    }
    StacklessResult {
        hit: best,
        stats,
        restarts,
    }
}

/// Advances the trail after exhausting the subtree entered at `level`:
/// clears deeper bits, then finds the deepest remaining level still on its
/// near child and flips it to far. Returns `false` when the whole tree is
/// exhausted.
fn pop_trail(trail: &mut u64, level: u32) -> bool {
    // Clear bits at `level` and deeper (they belong to the finished path).
    let keep_mask = (1u64 << level) - 1;
    *trail &= keep_mask;
    // Find the deepest 0-bit among the kept levels and flip it; all deeper
    // state was just cleared. A level whose bit is already 1 is exhausted.
    let mut l = level;
    while l > 0 {
        l -= 1;
        let bit = 1u64 << l;
        if *trail & bit == 0 {
            *trail |= bit;
            // Deeper levels restart fresh.
            *trail &= (bit << 1) - 1;
            return true;
        }
        *trail &= !bit;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use rip_math::{Triangle, Vec3};

    fn soup(n: usize, seed: u64) -> Vec<Triangle> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let base = Vec3::new(
                    rng.gen_range(-5.0..5.0),
                    rng.gen_range(-5.0..5.0),
                    rng.gen_range(-5.0..5.0),
                );
                let e1 = Vec3::new(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                );
                let e2 = Vec3::new(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                );
                Triangle::new(base, base + e1, base + e2)
            })
            .collect()
    }

    #[test]
    fn matches_stack_traversal_on_random_soup() {
        for seed in 0..6 {
            let bvh = Bvh::build(&soup(150, seed));
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xFF);
            for _ in 0..60 {
                let o = Vec3::new(
                    rng.gen_range(-8.0..8.0),
                    rng.gen_range(-8.0..8.0),
                    rng.gen_range(-8.0..8.0),
                );
                let d = rip_math::sampling::uniform_sphere(rng.gen(), rng.gen());
                let ray = Ray::segment(o, d, 20.0);
                for kind in [TraversalKind::AnyHit, TraversalKind::ClosestHit] {
                    let stackless = traverse(&bvh, &ray, kind);
                    let stack = bvh.intersect(&ray, kind);
                    assert_eq!(
                        stackless.hit.is_some(),
                        stack.hit.is_some(),
                        "hit disagreement (seed {seed}, {kind:?})"
                    );
                    if kind == TraversalKind::ClosestHit {
                        if let (Some(a), Some(b)) = (stackless.hit, stack.hit) {
                            assert!(
                                (a.t - b.t).abs() < 1e-3 * (1.0 + b.t),
                                "closest t {} vs {}",
                                a.t,
                                b.t
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn restarts_cost_extra_interior_fetches() {
        let bvh = Bvh::build(&soup(300, 7));
        let mut rng = SmallRng::seed_from_u64(11);
        let mut extra = 0i64;
        let mut restarts = 0u64;
        for _ in 0..100 {
            let o = Vec3::new(rng.gen_range(-8.0..8.0), rng.gen_range(-8.0..8.0), -10.0);
            let ray = Ray::segment(o, Vec3::Z, 25.0);
            let sl = traverse(&bvh, &ray, TraversalKind::ClosestHit);
            let st = bvh.intersect(&ray, TraversalKind::ClosestHit);
            extra += sl.stats.interior_fetches as i64 - st.stats.interior_fetches as i64;
            restarts += sl.restarts;
        }
        assert!(restarts > 0, "closest-hit rays should need restarts");
        assert!(
            extra >= 0,
            "stackless cannot fetch fewer interior nodes overall"
        );
    }

    #[test]
    fn any_hit_miss_terminates() {
        let bvh = Bvh::build(&soup(50, 3));
        let ray = Ray::new(Vec3::new(100.0, 100.0, 100.0), Vec3::Y);
        let r = traverse(&bvh, &ray, TraversalKind::AnyHit);
        assert!(r.hit.is_none());
    }

    #[test]
    fn pop_trail_enumerates_subtrees() {
        // Level-2 complete binary tree: the trail should enumerate near
        // branch first, then flip each level once.
        let mut trail = 0u64;
        assert!(pop_trail(&mut trail, 2)); // finished near/near
        assert_eq!(trail, 0b10);
        assert!(pop_trail(&mut trail, 2)); // finished near/far… pops to far
        assert_eq!(trail, 0b01);
        assert!(pop_trail(&mut trail, 2));
        assert_eq!(trail, 0b11);
        assert!(!pop_trail(&mut trail, 2), "tree exhausted");
    }

    #[test]
    fn single_leaf_tree_works() {
        let bvh = Bvh::build(&[Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y)]);
        let hit = traverse(
            &bvh,
            &Ray::new(Vec3::new(0.2, 0.2, -1.0), Vec3::Z),
            TraversalKind::AnyHit,
        );
        assert!(hit.hit.is_some());
        assert_eq!(hit.restarts, 0);
        let miss = traverse(
            &bvh,
            &Ray::new(Vec3::new(5.0, 5.0, -1.0), Vec3::Z),
            TraversalKind::AnyHit,
        );
        assert!(miss.hit.is_none());
    }
}
