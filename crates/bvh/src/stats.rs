//! Per-traversal statistics.

/// Counters collected by one BVH traversal.
///
/// These feed the paper's accounting: `n`, `m` of Equation 1 are node
/// fetches ([`TraversalStats::node_fetches`]), Figure 1's access
/// distribution splits node vs triangle fetches, and Figure 13 adds
/// predictor overheads on top.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraversalStats {
    /// Interior node records fetched.
    pub interior_fetches: u64,
    /// Leaf node records fetched.
    pub leaf_fetches: u64,
    /// Triangle records fetched (one per triangle tested).
    pub tri_fetches: u64,
    /// Ray-box tests executed (two per interior fetch).
    pub box_tests: u64,
    /// Ray-triangle tests executed.
    pub tri_tests: u64,
    /// Traversal-stack pushes that spilled past the 8-entry hardware stack.
    pub stack_spills: u64,
}

impl TraversalStats {
    /// Total BVH node fetches (interior + leaf) — the per-ray `n`/`m` of
    /// Equation 1.
    pub fn node_fetches(&self) -> u64 {
        self.interior_fetches + self.leaf_fetches
    }

    /// Total memory requests (nodes + triangles).
    pub fn memory_accesses(&self) -> u64 {
        self.node_fetches() + self.tri_fetches
    }

    /// Accumulates another traversal's counters into this one.
    pub fn accumulate(&mut self, other: &TraversalStats) {
        self.interior_fetches += other.interior_fetches;
        self.leaf_fetches += other.leaf_fetches;
        self.tri_fetches += other.tri_fetches;
        self.box_tests += other.box_tests;
        self.tri_tests += other.tri_tests;
        self.stack_spills += other.stack_spills;
    }
}

impl std::ops::AddAssign for TraversalStats {
    fn add_assign(&mut self, rhs: TraversalStats) {
        self.accumulate(&rhs);
    }
}

impl std::iter::Sum for TraversalStats {
    fn sum<I: Iterator<Item = TraversalStats>>(iter: I) -> Self {
        let mut total = TraversalStats::default();
        for s in iter {
            total += s;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_compose() {
        let a = TraversalStats {
            interior_fetches: 3,
            leaf_fetches: 1,
            tri_fetches: 4,
            box_tests: 6,
            tri_tests: 4,
            stack_spills: 0,
        };
        assert_eq!(a.node_fetches(), 4);
        assert_eq!(a.memory_accesses(), 8);
        let mut b = a;
        b += a;
        assert_eq!(b.node_fetches(), 8);
        let summed: TraversalStats = [a, a, a].into_iter().sum();
        assert_eq!(summed.tri_tests, 12);
    }
}
