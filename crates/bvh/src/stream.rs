//! Batched SoA ray streams.
//!
//! The predictor of §3–§4 is evaluated on ray *streams*: Morton-sorted
//! batches whose spatial locality the hash tables exploit (§5.2). This
//! module provides the batch substrate every traversal kernel consumes:
//!
//! * [`RayBatch`] — a structure-of-arrays ray container (origins,
//!   directions, reciprocal directions and parameter intervals in separate
//!   arrays). The reciprocal direction used by the slab test is computed
//!   **once per ray at batch build time** instead of once per traversal
//!   step, hoisting the per-call ray setup the four scalar kernels used to
//!   repeat.
//! * [`StreamPermutation`] — a stable reordering of a batch (Morton order
//!   being the canonical one) that can *un-sort* per-ray results back to
//!   the caller's original ray order, so sorting never leaks into result
//!   indexing.
//!
//! Bit-exactness contract: `batch.ray(i)` reconstructs exactly the ray the
//! batch was built from (`f32` values are stored, never re-derived), and
//! `batch.inv_direction(i)` equals `ray.inv_direction()` bit for bit, so a
//! batched traversal produces the same hits and statistics as the scalar
//! call — the `rip-testkit` differential oracles enforce this.

use crate::sorting;
use std::sync::OnceLock;

use rip_math::{Aabb, Ray, Vec3};

/// A structure-of-arrays batch of rays.
///
/// # Examples
///
/// ```
/// use rip_bvh::RayBatch;
/// use rip_math::{Ray, Vec3};
///
/// let rays = vec![Ray::new(Vec3::ZERO, Vec3::X), Ray::new(Vec3::Y, Vec3::Z)];
/// let batch = RayBatch::from_rays(&rays);
/// assert_eq!(batch.len(), 2);
/// assert_eq!(batch.ray(1), rays[1]);
/// assert_eq!(batch.inv_direction(0), rays[0].inv_direction());
/// ```
#[derive(Clone, Debug, Default)]
pub struct RayBatch {
    origins: Vec<Vec3>,
    directions: Vec<Vec3>,
    inv_directions: Vec<Vec3>,
    t_mins: Vec<f32>,
    t_maxes: Vec<f32>,
    /// Lazily computed [`RayBatch::content_digest`]; any mutation resets
    /// it.
    digest: OnceLock<u64>,
}

/// Equality is over ray content alone — the cached digest is derived
/// state.
impl PartialEq for RayBatch {
    fn eq(&self, other: &Self) -> bool {
        self.origins == other.origins
            && self.directions == other.directions
            && self.inv_directions == other.inv_directions
            && self.t_mins == other.t_mins
            && self.t_maxes == other.t_maxes
    }
}

impl RayBatch {
    /// An empty batch with capacity for `n` rays.
    pub fn with_capacity(n: usize) -> Self {
        RayBatch {
            origins: Vec::with_capacity(n),
            directions: Vec::with_capacity(n),
            inv_directions: Vec::with_capacity(n),
            t_mins: Vec::with_capacity(n),
            t_maxes: Vec::with_capacity(n),
            digest: OnceLock::new(),
        }
    }

    /// Builds a batch from AoS rays, precomputing the reciprocal
    /// directions.
    pub fn from_rays(rays: &[Ray]) -> Self {
        let mut batch = RayBatch::with_capacity(rays.len());
        for ray in rays {
            batch.push(*ray);
        }
        batch
    }

    /// Appends one ray.
    pub fn push(&mut self, ray: Ray) {
        self.digest = OnceLock::new();
        self.origins.push(ray.origin);
        self.directions.push(ray.direction);
        self.inv_directions.push(ray.inv_direction());
        self.t_mins.push(ray.t_min);
        self.t_maxes.push(ray.t_max);
    }

    /// Appends every ray of `other`, preserving its stored values bit
    /// for bit (the coalescing primitive the `rip-serve` front-end uses
    /// to fuse per-tenant submissions into one stream batch).
    pub fn append(&mut self, other: &RayBatch) {
        self.digest = OnceLock::new();
        self.origins.extend_from_slice(&other.origins);
        self.directions.extend_from_slice(&other.directions);
        self.inv_directions.extend_from_slice(&other.inv_directions);
        self.t_mins.extend_from_slice(&other.t_mins);
        self.t_maxes.extend_from_slice(&other.t_maxes);
    }

    /// FNV-1a digest over the ray stream (origin, direction, `t_min`,
    /// `t_max` bit patterns in batch order, folded one 32-bit word at a
    /// time) — the workload identity RIPT traces are bound to. Computed
    /// on first use and cached, so repeated trace attachments over one
    /// batch pay for a single pass.
    pub fn content_digest(&self) -> u64 {
        *self.digest.get_or_init(|| {
            const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            let mut fold = |v: f32| h = (h ^ u64::from(v.to_bits())).wrapping_mul(FNV_PRIME);
            for i in 0..self.origins.len() {
                let (o, d) = (self.origins[i], self.directions[i]);
                for v in [
                    o.x,
                    o.y,
                    o.z,
                    d.x,
                    d.y,
                    d.z,
                    self.t_mins[i],
                    self.t_maxes[i],
                ] {
                    fold(v);
                }
            }
            h
        })
    }

    /// Number of rays in the batch.
    pub fn len(&self) -> usize {
        self.origins.len()
    }

    /// Whether the batch holds no rays.
    pub fn is_empty(&self) -> bool {
        self.origins.is_empty()
    }

    /// Reconstructs ray `i` exactly as it was pushed.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    #[inline]
    pub fn ray(&self, i: usize) -> Ray {
        Ray::with_interval(
            self.origins[i],
            self.directions[i],
            self.t_mins[i],
            self.t_maxes[i],
        )
    }

    /// The precomputed reciprocal direction of ray `i` (identical bits to
    /// `self.ray(i).inv_direction()`).
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    #[inline]
    pub fn inv_direction(&self, i: usize) -> Vec3 {
        self.inv_directions[i]
    }

    /// Iterates the rays in batch order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = Ray> + '_ {
        (0..self.len()).map(move |i| self.ray(i))
    }

    /// Collects the batch back into AoS rays.
    pub fn to_rays(&self) -> Vec<Ray> {
        self.iter().collect()
    }

    /// The stable permutation that puts this batch in Morton stream order
    /// (the Aila–Laine sorted-ray configuration of §5.2), keyed by
    /// [`sorting::ray_sort_key`] over `scene_bounds`.
    pub fn morton_permutation(&self, scene_bounds: &Aabb) -> StreamPermutation {
        let mut gather: Vec<u32> = (0..self.len() as u32).collect();
        gather.sort_by_cached_key(|&i| sorting::ray_sort_key(&self.ray(i as usize), scene_bounds));
        StreamPermutation { gather }
    }

    /// Returns the Morton-sorted copy of this batch together with the
    /// permutation that produced it (use [`StreamPermutation::unsort`] to
    /// map per-ray results back to this batch's order).
    pub fn morton_sorted(&self, scene_bounds: &Aabb) -> (RayBatch, StreamPermutation) {
        let perm = self.morton_permutation(scene_bounds);
        (self.permuted(&perm), perm)
    }

    /// Gathers a reordered copy of the batch: ray `j` of the result is ray
    /// `perm.gather()[j]` of `self`.
    ///
    /// # Panics
    ///
    /// Panics when the permutation length differs from the batch length.
    pub fn permuted(&self, perm: &StreamPermutation) -> RayBatch {
        assert_eq!(
            perm.len(),
            self.len(),
            "permutation length must match the batch"
        );
        let mut out = RayBatch::with_capacity(self.len());
        for &i in perm.gather() {
            out.push(self.ray(i as usize));
        }
        out
    }
}

impl FromIterator<Ray> for RayBatch {
    fn from_iter<T: IntoIterator<Item = Ray>>(iter: T) -> Self {
        let mut batch = RayBatch::default();
        for ray in iter {
            batch.push(ray);
        }
        batch
    }
}

/// A stable reordering of a ray stream, with its inverse.
///
/// `gather()[new_position] = old_index` — the same convention as
/// [`sorting::sort_permutation`]. [`StreamPermutation::apply`] reorders
/// inputs into stream order; [`StreamPermutation::unsort`] scatters
/// per-ray results computed in stream order back to the original order,
/// so callers never observe the sort.
///
/// # Examples
///
/// ```
/// use rip_bvh::{RayBatch, StreamPermutation};
/// use rip_math::{Aabb, Ray, Vec3};
///
/// let bounds = Aabb::new(Vec3::ZERO, Vec3::splat(8.0));
/// let rays = vec![Ray::new(Vec3::splat(7.0), Vec3::X), Ray::new(Vec3::ZERO, Vec3::X)];
/// let batch = RayBatch::from_rays(&rays);
/// let (sorted, perm) = batch.morton_sorted(&bounds);
/// // Results computed on the sorted stream, un-sorted back:
/// let sorted_labels: Vec<u32> = perm.apply(&[10, 20]);
/// assert_eq!(perm.unsort(&sorted_labels), vec![10, 20]);
/// assert_eq!(sorted.ray(0), rays[1]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamPermutation {
    gather: Vec<u32>,
}

impl StreamPermutation {
    /// The identity permutation over `n` elements.
    pub fn identity(n: usize) -> Self {
        StreamPermutation {
            gather: (0..n as u32).collect(),
        }
    }

    /// Wraps an explicit gather map (`gather[new] = old`).
    ///
    /// # Panics
    ///
    /// Panics when `gather` is not a bijection over `0..len`.
    pub fn from_gather(gather: Vec<u32>) -> Self {
        let mut seen = vec![false; gather.len()];
        for &i in &gather {
            let slot = seen
                .get_mut(i as usize)
                .unwrap_or_else(|| panic!("gather index {i} out of range"));
            assert!(!*slot, "gather index {i} repeated");
            *slot = true;
        }
        StreamPermutation { gather }
    }

    /// Number of elements the permutation covers.
    pub fn len(&self) -> usize {
        self.gather.len()
    }

    /// Whether the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.gather.is_empty()
    }

    /// The gather map (`gather[new_position] = old_index`).
    pub fn gather(&self) -> &[u32] {
        &self.gather
    }

    /// Reorders `items` into stream order: `out[j] = items[gather[j]]`.
    ///
    /// # Panics
    ///
    /// Panics when `items` length differs from the permutation length.
    pub fn apply<T: Clone>(&self, items: &[T]) -> Vec<T> {
        assert_eq!(items.len(), self.len(), "item count must match");
        self.gather
            .iter()
            .map(|&i| items[i as usize].clone())
            .collect()
    }

    /// Scatters stream-order `items` back to the original order:
    /// `out[gather[j]] = items[j]`. This is the exact inverse of
    /// [`StreamPermutation::apply`].
    ///
    /// # Panics
    ///
    /// Panics when `items` length differs from the permutation length.
    pub fn unsort<T: Clone>(&self, items: &[T]) -> Vec<T> {
        assert_eq!(items.len(), self.len(), "item count must match");
        let mut out: Vec<Option<T>> = vec![None; items.len()];
        for (j, &old) in self.gather.iter().enumerate() {
            out[old as usize] = Some(items[j].clone());
        }
        out.into_iter()
            .map(|slot| slot.expect("bijection covers every slot"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_rays(n: usize, seed: u64) -> (Vec<Ray>, Aabb) {
        let bounds = Aabb::new(Vec3::ZERO, Vec3::splat(10.0));
        let mut rng = SmallRng::seed_from_u64(seed);
        let rays = (0..n)
            .map(|_| {
                let o = Vec3::new(rng.gen(), rng.gen(), rng.gen()) * 10.0;
                let d = rip_math::sampling::uniform_sphere(rng.gen(), rng.gen());
                Ray::segment(o, d, 3.0)
            })
            .collect();
        (rays, bounds)
    }

    #[test]
    fn batch_round_trips_rays_exactly() {
        let (rays, _) = random_rays(64, 1);
        let batch = RayBatch::from_rays(&rays);
        assert_eq!(batch.len(), rays.len());
        for (i, ray) in rays.iter().enumerate() {
            assert_eq!(batch.ray(i), *ray);
            assert_eq!(batch.inv_direction(i), ray.inv_direction());
        }
        assert_eq!(batch.to_rays(), rays);
    }

    #[test]
    fn append_concatenates_bit_exactly() {
        let (rays, _) = random_rays(48, 7);
        let (front, back) = rays.split_at(20);
        let mut batch = RayBatch::from_rays(front);
        batch.append(&RayBatch::from_rays(back));
        assert_eq!(batch.len(), rays.len());
        assert_eq!(batch, RayBatch::from_rays(&rays));
        batch.append(&RayBatch::default());
        assert_eq!(batch.len(), rays.len(), "appending empty is a no-op");
    }

    #[test]
    fn morton_permutation_matches_sorting_module() {
        let (rays, bounds) = random_rays(300, 2);
        let batch = RayBatch::from_rays(&rays);
        let perm = batch.morton_permutation(&bounds);
        assert_eq!(
            perm.gather(),
            &sorting::sort_permutation(&rays, &bounds)[..]
        );
    }

    #[test]
    fn morton_sorted_orders_keys() {
        let (rays, bounds) = random_rays(200, 3);
        let (sorted, _) = RayBatch::from_rays(&rays).morton_sorted(&bounds);
        let keys: Vec<u64> = sorted
            .iter()
            .map(|r| sorting::ray_sort_key(&r, &bounds))
            .collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn unsort_inverts_apply() {
        let (rays, bounds) = random_rays(150, 4);
        let batch = RayBatch::from_rays(&rays);
        let perm = batch.morton_permutation(&bounds);
        let labels: Vec<usize> = (0..rays.len()).collect();
        assert_eq!(perm.unsort(&perm.apply(&labels)), labels);
        // And the permuted batch un-sorts back to the original rays.
        let sorted = batch.permuted(&perm);
        assert_eq!(perm.unsort(&sorted.to_rays()), rays);
    }

    #[test]
    fn identity_permutation_is_a_no_op() {
        let (rays, _) = random_rays(20, 5);
        let perm = StreamPermutation::identity(rays.len());
        assert_eq!(perm.apply(&rays), rays);
        assert_eq!(perm.unsort(&rays), rays);
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn from_gather_rejects_non_bijections() {
        let _ = StreamPermutation::from_gather(vec![0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn permuted_rejects_length_mismatch() {
        let (rays, _) = random_rays(8, 6);
        let batch = RayBatch::from_rays(&rays);
        let _ = batch.permuted(&StreamPermutation::identity(4));
    }
}
