//! The while-while traversal loop of Algorithm 1, as a steppable state
//! machine.
//!
//! One *step* = fetch one BVH node record and run its intersection tests:
//! exactly one iteration of the RT unit's fetch/decode/test loop (§5.1.2).
//! The cycle-level simulator drives steps one at a time, interleaving rays
//! across warps; functional callers use [`Traversal::run`].

use crate::kernel;
use crate::node::{NodeId, NodeKind};
use crate::stack::TraversalStack;
use crate::stats::TraversalStats;
use crate::Bvh;
use rip_math::{Ray, Vec3};

/// Whether traversal stops at the first intersection (occlusion rays,
/// §2.3) or finds the nearest one.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TraversalKind {
    /// Stop at any intersection — ambient occlusion / shadow rays.
    AnyHit,
    /// Find the closest intersection — primary / reflection / GI rays.
    ClosestHit,
}

/// A found ray-triangle intersection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Hit {
    /// Ray parameter of the intersection.
    pub t: f32,
    /// Original index of the intersected triangle.
    pub tri_index: u32,
    /// The leaf node containing it.
    pub leaf: NodeId,
}

impl Hit {
    /// The shared closest-hit tie-break rule: smaller `t` wins, and an
    /// exactly equal `t` (shared edges/vertices produce these) resolves to
    /// the smaller original triangle index.
    ///
    /// Every closest-hit kernel — the while-while [`Traversal`], the
    /// stackless restart-trail traversal, the wide BVH, and the brute-force
    /// reference — applies this rule, so they agree *exactly* (same `t`
    /// bits, same `tri_index`) regardless of visitation order. That works
    /// because `t_max` trimming is inclusive: a candidate tying the current
    /// best is still tested, and this predicate decides the winner.
    #[inline]
    pub fn closer_than(&self, other: &Hit) -> bool {
        self.t < other.t || (self.t == other.t && self.tri_index < other.tri_index)
    }
}

/// Outcome of a completed traversal.
#[derive(Clone, Debug, PartialEq)]
pub struct TraversalResult {
    /// The intersection, if any.
    pub hit: Option<Hit>,
    /// Work performed.
    pub stats: TraversalStats,
}

/// What one traversal step did.
#[derive(Clone, Debug, PartialEq)]
pub enum StepEvent {
    /// Fetched an interior node and ray-box-tested both children.
    Interior {
        /// The fetched node.
        node: NodeId,
        /// How many of the two children the ray's interval overlaps (0–2).
        child_hits: u8,
    },
    /// Fetched a leaf node and tested triangles until a hit (any-hit) or
    /// exhaustion.
    Leaf {
        /// The fetched node.
        node: NodeId,
        /// Original indices of the triangles actually fetched and tested.
        tris_tested: Vec<u32>,
        /// Intersection found in this leaf, if any.
        found: Option<Hit>,
    },
    /// The traversal had already finished; no work was done.
    Finished,
}

/// What one [`Traversal::step_lean`] did — the allocation-free sibling of
/// [`StepEvent`], reporting only *how many* triangles a leaf tested
/// instead of materializing their indices. Callers that need the count
/// (RIPT trace capture) or nothing at all ([`Traversal::run`]) use this;
/// callers that need the tested indices (cycle-level first-touch
/// classification) pay for [`Traversal::step`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LeanStep {
    /// Fetched an interior node and ray-box-tested both children.
    Interior {
        /// The fetched node.
        node: NodeId,
        /// How many of the two children the ray's interval overlaps (0–2).
        child_hits: u8,
    },
    /// Fetched a leaf node and tested triangles until a hit (any-hit) or
    /// exhaustion.
    Leaf {
        /// The fetched node.
        node: NodeId,
        /// How many triangles were fetched and tested.
        tris_tested: u32,
        /// Intersection found in this leaf, if any.
        found: Option<Hit>,
    },
    /// The traversal had already finished; no work was done.
    Finished,
}

/// Steppable BVH traversal state for one ray.
///
/// # Examples
///
/// ```
/// use rip_bvh::{Bvh, Traversal, TraversalKind};
/// use rip_math::{Ray, Triangle, Vec3};
///
/// let bvh = Bvh::build(&[Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y)]);
/// let ray = Ray::new(Vec3::new(0.2, 0.2, -1.0), Vec3::Z);
/// let mut tr = Traversal::new(TraversalKind::AnyHit);
/// while let Some(_node) = tr.current_request() {
///     tr.step(&bvh, &ray);
/// }
/// assert!(tr.best_hit().is_some());
/// ```
#[derive(Clone, Debug)]
pub struct Traversal {
    kind: TraversalKind,
    stack: TraversalStack,
    current: Option<NodeId>,
    best: Option<Hit>,
    stats: TraversalStats,
    /// The ray's reciprocal direction, computed on the first step and
    /// reused after that: a traversal serves exactly one ray, and `t_max`
    /// trimming never changes the direction, so one reciprocal (three
    /// divides) serves every box test.
    inv_dir: Option<Vec3>,
}

impl Traversal {
    /// Starts a traversal at the root.
    pub fn new(kind: TraversalKind) -> Self {
        Traversal {
            kind,
            stack: TraversalStack::new(),
            current: Some(NodeId::ROOT),
            best: None,
            stats: TraversalStats::default(),
            inv_dir: None,
        }
    }

    /// Starts a traversal from predictor-supplied nodes instead of the root
    /// (§3: "the predicted nodes are pushed to the top of the ray's
    /// Traversal Stack"). Nodes are visited in the order given.
    pub fn from_nodes(kind: TraversalKind, nodes: &[NodeId]) -> Self {
        let mut stack = TraversalStack::new();
        for &n in nodes.iter().rev() {
            stack.push(n);
        }
        let current = stack.pop();
        Traversal {
            kind,
            stack,
            current,
            best: None,
            stats: TraversalStats::default(),
            inv_dir: None,
        }
    }

    /// The node record the traversal needs next, or `None` when finished.
    #[inline]
    pub fn current_request(&self) -> Option<NodeId> {
        self.current
    }

    /// Whether the traversal has finished.
    #[inline]
    pub fn is_done(&self) -> bool {
        self.current.is_none()
    }

    /// The best intersection found so far.
    #[inline]
    pub fn best_hit(&self) -> Option<Hit> {
        self.best
    }

    /// Statistics accumulated so far.
    #[inline]
    pub fn stats(&self) -> TraversalStats {
        let mut s = self.stats;
        s.stack_spills = self.stack.spills();
        s
    }

    /// Processes the current node (its record is assumed to have arrived
    /// from memory) and advances to the next one.
    pub fn step(&mut self, bvh: &Bvh, ray: &Ray) -> StepEvent {
        let mut tris_tested = Vec::new();
        match self.advance(bvh, ray, Some(&mut tris_tested)) {
            LeanStep::Interior { node, child_hits } => StepEvent::Interior { node, child_hits },
            LeanStep::Leaf { node, found, .. } => StepEvent::Leaf {
                node,
                tris_tested,
                found,
            },
            LeanStep::Finished => StepEvent::Finished,
        }
    }

    /// [`Traversal::step`] without materializing the tested-triangle
    /// indices — identical state transitions, stats and hits, but the leaf
    /// arm reports only a count and the hot loop stays allocation-free.
    #[inline]
    pub fn step_lean(&mut self, bvh: &Bvh, ray: &Ray) -> LeanStep {
        self.advance(bvh, ray, None)
    }

    /// The shared step body behind [`Traversal::step`] and
    /// [`Traversal::step_lean`]: `tested`, when present, records every
    /// triangle index the leaf arm fetches.
    fn advance(&mut self, bvh: &Bvh, ray: &Ray, tested: Option<&mut Vec<u32>>) -> LeanStep {
        let Some(node_id) = self.current.take() else {
            return LeanStep::Finished;
        };
        let ray_eff = kernel::effective_ray(ray, self.kind, self.best);
        let inv_dir = *self.inv_dir.get_or_insert_with(|| ray.inv_direction());
        let node = bvh.node(node_id);
        match node.kind {
            NodeKind::Interior {
                left,
                right,
                left_bounds,
                right_bounds,
            } => {
                let (t_left, t_right) = kernel::fetch_interior(
                    &mut self.stats,
                    &left_bounds,
                    &right_bounds,
                    &ray_eff,
                    inv_dir,
                );
                let child_hits = t_left.is_some() as u8 + t_right.is_some() as u8;
                match (t_left, t_right) {
                    (Some(tl), Some(tr)) => {
                        // Visit the closer child first (§2.4).
                        let (near, far) = if tl <= tr {
                            (left, right)
                        } else {
                            (right, left)
                        };
                        self.stack.push(far);
                        self.current = Some(near);
                    }
                    (Some(_), None) => self.current = Some(left),
                    (None, Some(_)) => self.current = Some(right),
                    (None, None) => self.current = self.stack.pop(),
                }
                LeanStep::Interior {
                    node: node_id,
                    child_hits,
                }
            }
            NodeKind::Leaf { .. } => {
                let before = self.stats.tri_tests;
                let outcome = kernel::test_leaf_triangles(
                    bvh.leaf_triangles(node_id),
                    &mut |_| node_id,
                    self.kind,
                    &mut self.best,
                    &ray_eff,
                    &mut self.stats,
                    tested,
                );
                self.current = match (self.kind, self.best) {
                    (TraversalKind::AnyHit, Some(_)) => None, // Algorithm 1 line 15
                    _ => self.stack.pop(),
                };
                LeanStep::Leaf {
                    node: node_id,
                    tris_tested: (self.stats.tri_tests - before) as u32,
                    found: outcome.found,
                }
            }
        }
    }

    /// Runs the traversal to completion.
    pub fn run(&mut self, bvh: &Bvh, ray: &Ray) -> TraversalResult {
        while self.current.is_some() {
            self.advance(bvh, ray, None);
        }
        TraversalResult {
            hit: self.best,
            stats: self.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_math::{Triangle, Vec3};

    /// Two parallel quads at z = 1 and z = 2 spanning x,y ∈ [0, 4].
    fn two_walls() -> Bvh {
        let mut tris = Vec::new();
        for z in [1.0f32, 2.0] {
            for i in 0..4 {
                for j in 0..4 {
                    let o = Vec3::new(i as f32, j as f32, z);
                    tris.push(Triangle::new(o, o + Vec3::X, o + Vec3::Y));
                    tris.push(Triangle::new(
                        o + Vec3::X,
                        o + Vec3::X + Vec3::Y,
                        o + Vec3::Y,
                    ));
                }
            }
        }
        Bvh::build(&tris)
    }

    #[test]
    fn closest_hit_finds_near_wall() {
        let bvh = two_walls();
        let ray = Ray::new(Vec3::new(2.2, 2.2, 0.0), Vec3::Z);
        let r = bvh.intersect(&ray, TraversalKind::ClosestHit);
        let hit = r.hit.expect("must hit the near wall");
        assert!((hit.t - 1.0).abs() < 1e-4, "t = {}", hit.t);
    }

    #[test]
    fn any_hit_terminates_early() {
        let bvh = two_walls();
        let ray = Ray::new(Vec3::new(2.2, 2.2, 0.0), Vec3::Z);
        let any = bvh.intersect(&ray, TraversalKind::AnyHit);
        let closest = bvh.intersect(&ray, TraversalKind::ClosestHit);
        assert!(any.hit.is_some());
        assert!(
            any.stats.node_fetches() <= closest.stats.node_fetches(),
            "any-hit ({}) must not out-fetch closest-hit ({})",
            any.stats.node_fetches(),
            closest.stats.node_fetches()
        );
    }

    #[test]
    fn from_nodes_visits_leaf_directly() {
        let bvh = two_walls();
        let ray = Ray::new(Vec3::new(2.2, 2.2, 0.0), Vec3::Z);
        // Find the leaf that the full traversal hits, then verify a seeded
        // traversal from that leaf touches only that one node.
        let full = bvh.intersect(&ray, TraversalKind::AnyHit);
        let leaf = full.hit.unwrap().leaf;
        let mut seeded = Traversal::from_nodes(TraversalKind::AnyHit, &[leaf]);
        let r = seeded.run(&bvh, &ray);
        assert!(r.hit.is_some());
        assert_eq!(
            r.stats.node_fetches(),
            1,
            "prediction should skip interior nodes"
        );
        assert!(r.stats.node_fetches() < full.stats.node_fetches());
    }

    #[test]
    fn from_nodes_miss_leaves_state_reusable() {
        let bvh = two_walls();
        // A ray that misses everything.
        let ray = Ray::new(Vec3::new(2.2, 2.2, 0.0), -Vec3::Z);
        let some_leaf = bvh.leaf_of_triangle(0).unwrap();
        let mut seeded = Traversal::from_nodes(TraversalKind::AnyHit, &[some_leaf]);
        let r = seeded.run(&bvh, &ray);
        assert!(r.hit.is_none());
        assert!(r.stats.node_fetches() >= 1);
    }

    #[test]
    fn step_events_expose_tested_triangles() {
        let bvh = Bvh::build(&[Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y)]);
        let ray = Ray::new(Vec3::new(0.2, 0.2, -1.0), Vec3::Z);
        let mut tr = Traversal::new(TraversalKind::AnyHit);
        match tr.step(&bvh, &ray) {
            StepEvent::Leaf {
                tris_tested, found, ..
            } => {
                assert_eq!(tris_tested, vec![0]);
                assert!(found.is_some());
            }
            other => panic!("expected leaf step, got {other:?}"),
        }
        assert!(tr.is_done());
        assert_eq!(tr.step(&bvh, &ray), StepEvent::Finished);
    }

    #[test]
    fn step_lean_matches_step_exactly() {
        let bvh = two_walls();
        for kind in [TraversalKind::AnyHit, TraversalKind::ClosestHit] {
            for (ox, oy) in [(0.5f32, 0.5), (2.2, 2.2), (3.7, 1.1), (5.0, 5.0)] {
                let ray = Ray::new(Vec3::new(ox, oy, 0.0), Vec3::Z);
                let mut fat = Traversal::new(kind);
                let mut lean = Traversal::new(kind);
                loop {
                    let fe = fat.step(&bvh, &ray);
                    let le = lean.step_lean(&bvh, &ray);
                    match (&fe, &le) {
                        (
                            StepEvent::Interior {
                                node: a,
                                child_hits: ha,
                            },
                            LeanStep::Interior {
                                node: b,
                                child_hits: hb,
                            },
                        ) => {
                            assert_eq!((a, ha), (b, hb));
                        }
                        (
                            StepEvent::Leaf {
                                node: a,
                                tris_tested,
                                found: fa,
                            },
                            LeanStep::Leaf {
                                node: b,
                                tris_tested: count,
                                found: fb,
                            },
                        ) => {
                            assert_eq!((a, fa), (b, fb));
                            assert_eq!(tris_tested.len() as u32, *count);
                            // The count-only encoding assumes tested
                            // triangles are a prefix of the leaf order.
                            let prefix: Vec<u32> = bvh
                                .leaf_triangles(*a)
                                .take(tris_tested.len())
                                .map(|(t, _)| t)
                                .collect();
                            assert_eq!(tris_tested, &prefix);
                        }
                        (StepEvent::Finished, LeanStep::Finished) => break,
                        other => panic!("divergent steps: {other:?}"),
                    }
                }
                assert_eq!(fat.best_hit(), lean.best_hit());
                assert_eq!(fat.stats(), lean.stats());
            }
        }
    }

    #[test]
    fn closest_hit_prunes_far_boxes() {
        // A ray hitting the near wall should not descend into the far wall's
        // subtree once its best-t bound excludes it... at minimum it must
        // never fetch more nodes than exist.
        let bvh = two_walls();
        let ray = Ray::new(Vec3::new(2.2, 2.2, 0.0), Vec3::Z);
        let r = bvh.intersect(&ray, TraversalKind::ClosestHit);
        assert!(r.stats.node_fetches() < bvh.node_count() as u64);
        assert_eq!(r.hit.unwrap().t.round(), 1.0);
    }

    #[test]
    fn stats_spills_propagate() {
        let bvh = two_walls();
        let ray = Ray::new(
            Vec3::new(2.0, 2.0, 0.0),
            Vec3::new(0.1, 0.1, 1.0).normalized(),
        );
        let r = bvh.intersect(&ray, TraversalKind::ClosestHit);
        // Not asserting a specific number — just that the plumbed counter
        // matches the stack's own.
        assert_eq!(r.stats.stack_spills, r.stats.stack_spills);
    }
}
