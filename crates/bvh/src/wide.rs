//! Four-wide BVH: the SIMD-friendly acceleration structure of the wide-BVH
//! line of work the paper cites in §7 ("Ylitie et al. explored wide BVH
//! trees to increase SIMD utilization… these techniques should also work
//! in parallel with our proposed ray intersection predictor").
//!
//! [`WideBvh`] collapses a binary [`Bvh`] bottom-up: each wide node absorbs
//! up to four binary grandchildren, so one node fetch funds four ray-box
//! tests. The conversion preserves leaf contents exactly, and the traversal
//! produces the same hits as the binary tree — asserted by tests — while
//! fetching roughly half the interior nodes.

use crate::kernel;
use crate::node::{NodeId, NodeKind};
use crate::{Bvh, Hit, TraversalKind, TraversalStats};
use rip_math::{Aabb, Ray, Vec3};

/// Maximum children per wide node.
pub const WIDE_ARITY: usize = 4;

/// A child slot of a wide node.
#[derive(Clone, Copy, Debug, PartialEq)]
enum WideChild {
    /// Unused slot.
    Empty,
    /// Another wide node (index into the wide node array).
    Interior(u32),
    /// A leaf: range in the shared triangle-order array.
    Leaf {
        /// First triangle-order slot.
        first: u32,
        /// Triangle count.
        count: u32,
    },
}

/// One 4-wide node: child bounds and references, fetched as a unit.
#[derive(Clone, Debug)]
struct WideNode {
    bounds: [Aabb; WIDE_ARITY],
    children: [WideChild; WIDE_ARITY],
}

/// Result of a wide-BVH traversal.
#[derive(Clone, Debug, PartialEq)]
pub struct WideResult {
    /// The intersection, if any.
    pub hit: Option<Hit>,
    /// Work performed. `interior_fetches` counts wide-node fetches;
    /// `box_tests` counts the (up to four) per-fetch slab tests.
    pub stats: TraversalStats,
}

/// A four-wide bounding volume hierarchy collapsed from a binary [`Bvh`].
///
/// # Examples
///
/// ```
/// use rip_bvh::{Bvh, TraversalKind, WideBvh};
/// use rip_math::{Ray, Triangle, Vec3};
///
/// let tris = vec![Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y)];
/// let binary = Bvh::build(&tris);
/// let wide = WideBvh::from_binary(&binary);
/// let ray = Ray::new(Vec3::new(0.2, 0.2, -1.0), Vec3::Z);
/// assert!(wide.intersect(&binary, &ray, TraversalKind::AnyHit).hit.is_some());
/// ```
#[derive(Clone, Debug)]
pub struct WideBvh {
    nodes: Vec<WideNode>,
}

impl WideBvh {
    /// Collapses a binary BVH into 4-wide nodes.
    ///
    /// Each wide node takes a binary node's children; any interior child is
    /// expanded once more into its own two children while slots remain, so
    /// most wide nodes carry three or four slots.
    pub fn from_binary(bvh: &Bvh) -> Self {
        let mut nodes: Vec<WideNode> = Vec::new();
        // Reserve slot 0 for the root, then fill recursively.
        nodes.push(WideNode {
            bounds: [Aabb::empty(); WIDE_ARITY],
            children: [WideChild::Empty; WIDE_ARITY],
        });
        build_wide(bvh, NodeId::ROOT, 0, &mut nodes);
        WideBvh { nodes }
    }

    /// Number of wide nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Traverses the wide tree. The binary `bvh` supplies the shared
    /// triangle storage (leaf ranges are identical by construction).
    pub fn intersect(&self, bvh: &Bvh, ray: &Ray, kind: TraversalKind) -> WideResult {
        self.intersect_with_inv(bvh, ray, ray.inv_direction(), kind)
    }

    /// [`WideBvh::intersect`] with the ray's reciprocal direction supplied
    /// by the caller (batch pipelines precompute it once per ray; trimming
    /// `t_max` never changes the direction).
    pub fn intersect_with_inv(
        &self,
        bvh: &Bvh,
        ray: &Ray,
        inv_dir: Vec3,
        kind: TraversalKind,
    ) -> WideResult {
        let mut stats = TraversalStats::default();
        let mut best: Option<Hit> = None;
        let mut stack: Vec<WideChild> = vec![WideChild::Interior(0)];
        'outer: while let Some(entry) = stack.pop() {
            let ray_eff = kernel::effective_ray(ray, kind, best);
            match entry {
                WideChild::Empty => {}
                WideChild::Interior(idx) => {
                    stats.interior_fetches += 1;
                    let node = &self.nodes[idx as usize];
                    // Test all occupied slots, push hits far-to-near so the
                    // nearest pops first.
                    let mut hits: Vec<(f32, WideChild)> = Vec::with_capacity(WIDE_ARITY);
                    for slot in 0..WIDE_ARITY {
                        if node.children[slot] == WideChild::Empty {
                            continue;
                        }
                        stats.box_tests += 1;
                        if let Some(t) = node.bounds[slot].intersect_with_inv(&ray_eff, inv_dir) {
                            hits.push((t, node.children[slot]));
                        }
                    }
                    hits.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
                    for (_, child) in hits {
                        stack.push(child);
                    }
                }
                WideChild::Leaf { first, count } => {
                    // Leaf ids are not meaningful in the wide tree; report
                    // the binary leaf for interoperability. The wide leaf
                    // covers exactly one binary leaf's range, so one lookup
                    // serves every hit in it.
                    let mut cached: Option<NodeId> = None;
                    let outcome = kernel::test_leaf_triangles(
                        (first..first + count).map(|slot| {
                            let tri_index = bvh.tri_order_at(slot);
                            (tri_index, bvh.triangle(tri_index))
                        }),
                        &mut |tri_index| {
                            *cached.get_or_insert_with(|| {
                                bvh.leaf_of_triangle(tri_index).unwrap_or(NodeId::ROOT)
                            })
                        },
                        kind,
                        &mut best,
                        &ray_eff,
                        &mut stats,
                        None,
                    );
                    if outcome.terminated {
                        break 'outer;
                    }
                }
            }
        }
        WideResult { hit: best, stats }
    }
}

/// Converts a binary child reference into a wide child + bounds, expanding
/// interiors lazily via `pending`.
fn build_wide(bvh: &Bvh, binary: NodeId, slot: usize, nodes: &mut Vec<WideNode>) {
    // Gather up to WIDE_ARITY binary descendants by splitting interior
    // children breadth-first.
    let mut members: Vec<NodeId> = vec![binary];
    // Expand the first interior member while its two children still fit.
    while let Some(pos) = members
        .iter()
        .position(|&m| !bvh.node(m).is_leaf() && members.len() < WIDE_ARITY)
    {
        let node = bvh.node(members[pos]);
        let NodeKind::Interior { left, right, .. } = node.kind else {
            unreachable!()
        };
        members.remove(pos);
        members.push(left);
        members.push(right);
    }

    let mut bounds = [Aabb::empty(); WIDE_ARITY];
    let mut children = [WideChild::Empty; WIDE_ARITY];
    // First pass: fill slots; interiors allocate their wide node index.
    let mut allocations: Vec<(NodeId, usize, u32)> = Vec::new();
    for (i, &member) in members.iter().enumerate() {
        bounds[i] = bvh.node(member).bounds;
        match bvh.node(member).kind {
            NodeKind::Leaf { first, count } => {
                children[i] = WideChild::Leaf { first, count };
            }
            NodeKind::Interior { .. } => {
                let idx = nodes.len() as u32;
                nodes.push(WideNode {
                    bounds: [Aabb::empty(); WIDE_ARITY],
                    children: [WideChild::Empty; WIDE_ARITY],
                });
                children[i] = WideChild::Interior(idx);
                allocations.push((member, i, idx));
            }
        }
    }
    nodes[slot] = WideNode { bounds, children };
    for (member, _, idx) in allocations {
        build_wide(bvh, member, idx as usize, nodes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use rip_math::{Triangle, Vec3};

    fn soup(n: usize, seed: u64) -> Vec<Triangle> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let base = Vec3::new(
                    rng.gen_range(-5.0..5.0),
                    rng.gen_range(-5.0..5.0),
                    rng.gen_range(-5.0..5.0),
                );
                let e1 = Vec3::new(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                );
                let e2 = Vec3::new(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                );
                Triangle::new(base, base + e1, base + e2)
            })
            .collect()
    }

    #[test]
    fn wide_matches_binary_results() {
        for seed in 0..5 {
            let binary = Bvh::build(&soup(200, seed));
            let wide = WideBvh::from_binary(&binary);
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xAB);
            for _ in 0..60 {
                let o = Vec3::new(
                    rng.gen_range(-8.0..8.0),
                    rng.gen_range(-8.0..8.0),
                    rng.gen_range(-8.0..8.0),
                );
                let d = rip_math::sampling::uniform_sphere(rng.gen(), rng.gen());
                let ray = Ray::segment(o, d, 20.0);
                for kind in [TraversalKind::AnyHit, TraversalKind::ClosestHit] {
                    let w = wide.intersect(&binary, &ray, kind);
                    let b = binary.intersect(&ray, kind);
                    assert_eq!(w.hit.is_some(), b.hit.is_some(), "seed {seed} {kind:?}");
                    if let (Some(wh), Some(bh)) = (w.hit, b.hit) {
                        if kind == TraversalKind::ClosestHit {
                            assert!((wh.t - bh.t).abs() < 1e-3 * (1.0 + bh.t));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn wide_tree_is_smaller_and_fetches_fewer_interior_nodes() {
        let binary = Bvh::build(&soup(400, 9));
        let wide = WideBvh::from_binary(&binary);
        assert!(
            wide.node_count() * 2 < binary.node_count(),
            "4-wide tree should have well under half the nodes: {} vs {}",
            wide.node_count(),
            binary.node_count()
        );
        let mut rng = SmallRng::seed_from_u64(17);
        let mut wide_fetches = 0u64;
        let mut binary_fetches = 0u64;
        for _ in 0..100 {
            let o = Vec3::new(rng.gen_range(-8.0..8.0), rng.gen_range(-8.0..8.0), -10.0);
            let ray = Ray::segment(o, Vec3::Z, 25.0);
            wide_fetches += wide
                .intersect(&binary, &ray, TraversalKind::ClosestHit)
                .stats
                .interior_fetches;
            binary_fetches += binary
                .intersect(&ray, TraversalKind::ClosestHit)
                .stats
                .interior_fetches;
        }
        assert!(
            wide_fetches * 3 < binary_fetches * 2,
            "wide traversal should fetch well under 2/3 of the interior nodes: {wide_fetches} vs {binary_fetches}"
        );
    }

    #[test]
    fn single_triangle_collapses_to_one_node() {
        let binary = Bvh::build(&soup(1, 1));
        let wide = WideBvh::from_binary(&binary);
        assert_eq!(wide.node_count(), 1);
    }
}
