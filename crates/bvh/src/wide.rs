//! Four-wide BVH: the SIMD-friendly acceleration structure of the wide-BVH
//! line of work the paper cites in §7 ("Ylitie et al. explored wide BVH
//! trees to increase SIMD utilization… these techniques should also work
//! in parallel with our proposed ray intersection predictor").
//!
//! [`WideBvh`] collapses a binary [`Bvh`] bottom-up into compressed
//! [`CompressedWideNode`] records: each 64-byte node absorbs up to four
//! binary descendants and stores their bounds as 8-bit quantized slabs in
//! a per-node [`QuantFrame`], so one node fetch funds four *lockstep*
//! ray-box tests over the four-lane [`F32x4`](crate::simd::F32x4) layer
//! (SSE2 when the `simd` feature is on, a bit-identical scalar fallback
//! otherwise). Leaf triangles are packed at build time into
//! structure-of-arrays groups of four with precomputed Möller–Trumbore
//! edges, so leaf visits are batched four-lane triangle tests.
//!
//! Correctness contract, enforced by `rip-testkit`'s differential oracles:
//!
//! * quantized child boxes are **conservative** supersets of the exact
//!   bounds (see [`QuantFrame::encode_box`]), so the traversal visits a
//!   superset of the exact-box visits — and because every kernel shares
//!   the order-independent [`Hit::closer_than`] tie-break, closest hits
//!   stay **bit-exact** with the binary tree and the brute-force
//!   reference;
//! * the lane arithmetic replicates [`rip_math::Triangle::intersect`]
//!   operation for operation, so a lane's `t` equals the scalar `t` bit
//!   for bit, with or without the `simd` feature.
//!
//! Traversal runs on a bounded [`ShortStack`]; overflow (possible under
//! pathological quantized-overlap descent) is recoverable: the pass is
//! abandoned, one stack spill is charged, and the ray re-runs on an
//! unbounded stack.

use crate::node::{CompressedWideNode, NodeId, NodeKind, QuantFrame, EMPTY_WIDE_CHILD};
use crate::simd::F32x4;
use crate::stack::{ShortStack, SHORT_STACK_CAPACITY};
use crate::{Bvh, Hit, TraversalKind, TraversalStats};
use rip_math::{Ray, Vec3};
use rip_pod::PodBuf;

/// Maximum children per wide node.
pub const WIDE_ARITY: usize = 4;

/// One structure-of-arrays group of up to four leaf triangles with the
/// Möller–Trumbore setup precomputed: vertex `a`, edges `e1 = b − a` and
/// `e2 = c − a`, and the degeneracy scale `‖e1‖·‖e2‖` — each computed
/// with exactly the arithmetic [`rip_math::Triangle::intersect`] uses, so
/// lane results match the scalar test bit for bit.
///
/// Padding lanes carry `tri_index == u32::MAX` and all-zero geometry,
/// whose zero scale fails the degeneracy test in every backend.
#[derive(Clone, Copy, Debug, PartialEq)]
#[repr(C)]
pub(crate) struct TriGroup {
    pub(crate) ax: [f32; 4],
    pub(crate) ay: [f32; 4],
    pub(crate) az: [f32; 4],
    pub(crate) e1x: [f32; 4],
    pub(crate) e1y: [f32; 4],
    pub(crate) e1z: [f32; 4],
    pub(crate) e2x: [f32; 4],
    pub(crate) e2y: [f32; 4],
    pub(crate) e2z: [f32; 4],
    pub(crate) l12: [f32; 4],
    pub(crate) tri_index: [u32; 4],
    pub(crate) leaf: u32,
}

// 40 f32 lanes + 4 indices + the leaf id: 180 packed bytes, stored
// verbatim in the wide artifact's group section.
rip_pod::impl_pod!(TriGroup, size = 180, align = 4);

impl TriGroup {
    pub(crate) fn padding(leaf: u32) -> Self {
        TriGroup {
            ax: [0.0; 4],
            ay: [0.0; 4],
            az: [0.0; 4],
            e1x: [0.0; 4],
            e1y: [0.0; 4],
            e1z: [0.0; 4],
            e2x: [0.0; 4],
            e2y: [0.0; 4],
            e2z: [0.0; 4],
            l12: [0.0; 4],
            tri_index: [u32::MAX; 4],
            leaf,
        }
    }

    fn set_lane(&mut self, lane: usize, tri_index: u32, tri: &rip_math::Triangle) {
        let e1 = tri.b - tri.a;
        let e2 = tri.c - tri.a;
        self.ax[lane] = tri.a.x;
        self.ay[lane] = tri.a.y;
        self.az[lane] = tri.a.z;
        self.e1x[lane] = e1.x;
        self.e1y[lane] = e1.y;
        self.e1z[lane] = e1.z;
        self.e2x[lane] = e2.x;
        self.e2y[lane] = e2.y;
        self.e2z[lane] = e2.z;
        self.l12[lane] = e1.length() * e2.length();
        self.tri_index[lane] = tri_index;
    }
}

/// Result of a wide-BVH traversal.
#[derive(Clone, Debug, PartialEq)]
pub struct WideResult {
    /// The intersection, if any.
    pub hit: Option<Hit>,
    /// Work performed. `interior_fetches` counts wide-node fetches,
    /// `box_tests` the per-fetch lockstep slab tests (one per occupied
    /// slot), `tri_*` the lanes of batched triangle tests, and
    /// `stack_spills` the short-stack overflow restarts.
    pub stats: TraversalStats,
}

/// A four-wide bounding volume hierarchy of compressed, quantized nodes,
/// collapsed from a binary [`Bvh`].
///
/// The structure is self-contained: leaf triangles are re-packed into
/// SIMD-friendly groups at build time, so traversal touches no binary-BVH
/// storage.
///
/// # Examples
///
/// ```
/// use rip_bvh::{Bvh, TraversalKind, WideBvh};
/// use rip_math::{Ray, Triangle, Vec3};
///
/// let tris = vec![Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y)];
/// let binary = Bvh::build(&tris);
/// let wide = WideBvh::from_binary(&binary);
/// let ray = Ray::new(Vec3::new(0.2, 0.2, -1.0), Vec3::Z);
/// assert!(wide.intersect(&binary, &ray, TraversalKind::AnyHit).hit.is_some());
/// ```
#[derive(Clone, Debug)]
pub struct WideBvh {
    nodes: PodBuf<CompressedWideNode>,
    groups: PodBuf<TriGroup>,
}

/// A packed traversal-stack entry: child reference in the low half,
/// triangle count in the high half (zero marks an interior child).
#[inline]
fn pack_entry(count: u16, child: u32) -> u64 {
    ((count as u64) << 32) | child as u64
}

/// Stack abstraction for the two traversal passes: the bounded
/// [`ShortStack`] fast path and the unbounded restart path.
trait EntryStack {
    /// Pushes an entry; `false` signals overflow.
    fn push_entry(&mut self, e: u64) -> bool;
    fn pop_entry(&mut self) -> Option<u64>;
}

impl EntryStack for ShortStack {
    #[inline]
    fn push_entry(&mut self, e: u64) -> bool {
        self.push(e)
    }
    #[inline]
    fn pop_entry(&mut self) -> Option<u64> {
        self.pop()
    }
}

impl EntryStack for Vec<u64> {
    #[inline]
    fn push_entry(&mut self, e: u64) -> bool {
        self.push(e);
        true
    }
    #[inline]
    fn pop_entry(&mut self) -> Option<u64> {
        self.pop()
    }
}

/// Per-ray lane-splatted traversal setup, computed once per ray.
struct RayCtx {
    ox: F32x4,
    oy: F32x4,
    oz: F32x4,
    dx: F32x4,
    dy: F32x4,
    dz: F32x4,
    ix: F32x4,
    iy: F32x4,
    iz: F32x4,
    tmin: F32x4,
    /// `ray.direction.length()`, for the scalar test's degeneracy scale.
    dir_len: f32,
    /// Ize padding factors of the conservative slab acceptance.
    pad_mul: F32x4,
    pad_add: F32x4,
}

impl RayCtx {
    fn new(ray: &Ray, inv_dir: Vec3) -> Self {
        RayCtx {
            ox: F32x4::splat(ray.origin.x),
            oy: F32x4::splat(ray.origin.y),
            oz: F32x4::splat(ray.origin.z),
            dx: F32x4::splat(ray.direction.x),
            dy: F32x4::splat(ray.direction.y),
            dz: F32x4::splat(ray.direction.z),
            ix: F32x4::splat(inv_dir.x),
            iy: F32x4::splat(inv_dir.y),
            iz: F32x4::splat(inv_dir.z),
            tmin: F32x4::splat(ray.t_min),
            dir_len: ray.direction.length(),
            pad_mul: F32x4::splat(1.0 + 1e-6),
            pad_add: F32x4::splat(1e-7),
        }
    }
}

/// The still-interesting `t_max`: trimmed (inclusively) to the best hit
/// for closest-hit queries, mirroring [`crate::kernel::effective_ray`].
#[inline]
fn bound_t_max(ray: &Ray, kind: TraversalKind, best: &Option<Hit>) -> f32 {
    match (kind, best) {
        (TraversalKind::ClosestHit, Some(h)) => ray.t_max.min(h.t),
        _ => ray.t_max,
    }
}

/// Lockstep slab test of a node's four quantized child boxes: lane `i`
/// answers for slot `i`. Returns the hit mask (for occupied slots — the
/// caller must mask out empties, whose inverted sentinels decode to
/// misleading slabs) and the per-lane entry distances for near-first
/// ordering.
///
/// Per lane this is exactly [`rip_math::Aabb::intersect_with_inv`] — same
/// minNum/maxNum fold order, same conservative Ize acceptance — applied
/// to the dequantized (conservative) child bounds.
#[inline]
fn slab4(node: &CompressedWideNode, ctx: &RayCtx, t_max: f32) -> (u8, [f32; 4]) {
    #[inline]
    fn axis(
        qlo: [u8; 4],
        qhi: [u8; 4],
        origin: f32,
        scale: f32,
        o: F32x4,
        inv: F32x4,
    ) -> (F32x4, F32x4) {
        let og = F32x4::splat(origin);
        let sc = F32x4::splat(scale);
        let lo = og + F32x4::new(qlo.map(|q| q as f32)) * sc;
        let hi = og + F32x4::new(qhi.map(|q| q as f32)) * sc;
        let t0 = (lo - o) * inv;
        let t1 = (hi - o) * inv;
        (t0.min_num(t1), t0.max_num(t1))
    }

    let (nx, fx) = axis(
        node.qlo[0],
        node.qhi[0],
        node.origin[0],
        QuantFrame::scale_for_exponent(node.exponents[0]),
        ctx.ox,
        ctx.ix,
    );
    let (ny, fy) = axis(
        node.qlo[1],
        node.qhi[1],
        node.origin[1],
        QuantFrame::scale_for_exponent(node.exponents[1]),
        ctx.oy,
        ctx.iy,
    );
    let (nz, fz) = axis(
        node.qlo[2],
        node.qhi[2],
        node.origin[2],
        QuantFrame::scale_for_exponent(node.exponents[2]),
        ctx.oz,
        ctx.iz,
    );
    let t_enter = nx.max_num(ny).max_num(nz).max_num(ctx.tmin);
    let t_exit = fx.min_num(fy).min_num(fz).min_num(F32x4::splat(t_max));
    let hit = t_enter.le(t_exit * ctx.pad_mul + ctx.pad_add);
    (hit, t_enter.to_array())
}

/// Batched Möller–Trumbore over one triangle group: lane `i` tests
/// triangle `i` against the ray, replicating the scalar
/// [`rip_math::Triangle::intersect`] operation for operation (same
/// products, same left-associated dot folds, same rejection predicates
/// with their NaN behavior), so accepted lanes carry bit-identical `t`.
#[inline]
fn mt4(group: &TriGroup, ctx: &RayCtx, t_max: f32, lane_mask: u8) -> (u8, [f32; 4]) {
    let zero = F32x4::splat(0.0);
    let one = F32x4::splat(1.0);

    let e1x = F32x4::new(group.e1x);
    let e1y = F32x4::new(group.e1y);
    let e1z = F32x4::new(group.e1z);
    let e2x = F32x4::new(group.e2x);
    let e2y = F32x4::new(group.e2y);
    let e2z = F32x4::new(group.e2z);

    // p = d × e2
    let px = ctx.dy * e2z - ctx.dz * e2y;
    let py = ctx.dz * e2x - ctx.dx * e2z;
    let pz = ctx.dx * e2y - ctx.dy * e2x;
    let det = e1x * px + e1y * py + e1z * pz;
    let scale = F32x4::new(group.l12) * F32x4::splat(ctx.dir_len);
    let degenerate = det.abs().le(F32x4::splat(1e-8) * scale) | scale.eq_mask(zero);

    let inv_det = one / det;
    // s = o − a
    let sx = ctx.ox - F32x4::new(group.ax);
    let sy = ctx.oy - F32x4::new(group.ay);
    let sz = ctx.oz - F32x4::new(group.az);
    let u = (sx * px + sy * py + sz * pz) * inv_det;
    let u_ok = u.ge(zero) & u.le(one);

    // q = s × e1
    let qx = sy * e1z - sz * e1y;
    let qy = sz * e1x - sx * e1z;
    let qz = sx * e1y - sy * e1x;
    let v = (ctx.dx * qx + ctx.dy * qy + ctx.dz * qz) * inv_det;
    let v_bad = v.lt(zero) | (u + v).gt(one);

    let t = (e2x * qx + e2y * qy + e2z * qz) * inv_det;
    let t_ok = t.ge(ctx.tmin) & t.le(F32x4::splat(t_max));

    let accept = lane_mask & !degenerate & u_ok & !v_bad & t_ok;
    (accept, t.to_array())
}

/// Outcome of one bounded traversal pass.
enum PassOutcome {
    Complete,
    Overflow,
}

impl WideBvh {
    /// Collapses a binary BVH into compressed 4-wide nodes and packs each
    /// leaf's triangles into SIMD groups.
    ///
    /// Each wide node takes a binary node's children; any interior child
    /// is expanded once more into its own two children while slots remain,
    /// so most wide nodes carry three or four slots. Leaf contents (and
    /// the binary leaf ids reported in hits) are preserved exactly.
    pub fn from_binary(bvh: &Bvh) -> Self {
        let mut wide = WideBvh {
            nodes: PodBuf::from(vec![CompressedWideNode::empty()]),
            groups: PodBuf::default(),
        };
        wide.build_node(bvh, NodeId::ROOT, 0);
        wide
    }

    /// Number of wide nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of packed four-triangle leaf groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The compressed node records (for serialization and inspection).
    pub(crate) fn raw_parts(&self) -> (&[CompressedWideNode], &[TriGroup]) {
        (&self.nodes, &self.groups)
    }

    /// Reassembles a tree from decoded parts (serialization support).
    /// The buffers may be owned or borrow shared artifact memory —
    /// traversal reads slices either way.
    pub(crate) fn from_raw_parts(
        nodes: impl Into<PodBuf<CompressedWideNode>>,
        groups: impl Into<PodBuf<TriGroup>>,
    ) -> Self {
        WideBvh {
            nodes: nodes.into(),
            groups: groups.into(),
        }
    }

    /// Whether any buffer borrows shared artifact memory (diagnostics).
    pub fn is_shared(&self) -> bool {
        self.nodes.is_shared() || self.groups.is_shared()
    }

    fn build_node(&mut self, bvh: &Bvh, binary: NodeId, slot: usize) {
        // Gather up to WIDE_ARITY binary descendants by splitting interior
        // children breadth-first.
        let mut members: Vec<NodeId> = vec![binary];
        while let Some(pos) = members
            .iter()
            .position(|&m| !bvh.node(m).is_leaf() && members.len() < WIDE_ARITY)
        {
            let node = bvh.node(members[pos]);
            let NodeKind::Interior { left, right, .. } = node.kind else {
                unreachable!()
            };
            members.remove(pos);
            members.push(left);
            members.push(right);
        }

        let union = members.iter().fold(rip_math::Aabb::empty(), |u, &m| {
            u.union(&bvh.node(m).bounds)
        });
        let frame = QuantFrame::for_bounds(&union);
        let mut node = CompressedWideNode::empty();
        node.origin = [frame.origin.x, frame.origin.y, frame.origin.z];
        node.exponents = frame.exponents;

        let mut recurse: Vec<(NodeId, u32)> = Vec::new();
        for (i, &member) in members.iter().enumerate() {
            let (qlo, qhi) = frame.encode_box(&bvh.node(member).bounds);
            for axis in 0..3 {
                node.qlo[axis][i] = qlo[axis];
                node.qhi[axis][i] = qhi[axis];
            }
            match bvh.node(member).kind {
                NodeKind::Leaf { count: 0, .. } => {
                    // A triangle-less leaf carries nothing: leave the slot
                    // empty so traversal never visits it.
                    node.children[i] = EMPTY_WIDE_CHILD;
                }
                NodeKind::Leaf { first, count } => {
                    assert!(
                        count <= u16::MAX as u32,
                        "leaf of {count} triangles exceeds the wide node's 16-bit count"
                    );
                    node.children[i] = self.pack_leaf(bvh, member, first, count);
                    node.counts[i] = count as u16;
                }
                NodeKind::Interior { .. } => {
                    let idx = self.nodes.len() as u32;
                    self.nodes.to_mut().push(CompressedWideNode::empty());
                    node.children[i] = idx;
                    recurse.push((member, idx));
                }
            }
        }
        self.nodes.to_mut()[slot] = node;
        for (member, idx) in recurse {
            self.build_node(bvh, member, idx as usize);
        }
    }

    /// Packs one binary leaf's triangles into groups of four; returns the
    /// first group index.
    fn pack_leaf(&mut self, bvh: &Bvh, leaf: NodeId, first: u32, count: u32) -> u32 {
        let start = self.groups.len() as u32;
        let mut slot = first;
        let end = first + count;
        while slot < end {
            let mut group = TriGroup::padding(leaf.index());
            for lane in 0..WIDE_ARITY {
                if slot >= end {
                    break;
                }
                let tri_index = bvh.tri_order_at(slot);
                group.set_lane(lane, tri_index, bvh.triangle(tri_index));
                slot += 1;
            }
            self.groups.to_mut().push(group);
        }
        start
    }

    /// Traverses the wide tree. The `bvh` parameter is kept for API
    /// compatibility (the compressed tree is self-contained and does not
    /// read it).
    pub fn intersect(&self, bvh: &Bvh, ray: &Ray, kind: TraversalKind) -> WideResult {
        self.intersect_with_inv(bvh, ray, ray.inv_direction(), kind)
    }

    /// [`WideBvh::intersect`] with the ray's reciprocal direction supplied
    /// by the caller (batch pipelines precompute it once per ray; trimming
    /// `t_max` never changes the direction).
    pub fn intersect_with_inv(
        &self,
        bvh: &Bvh,
        ray: &Ray,
        inv_dir: Vec3,
        kind: TraversalKind,
    ) -> WideResult {
        let _ = bvh;
        self.intersect_with_stack_limit(ray, inv_dir, kind, SHORT_STACK_CAPACITY)
    }

    /// Traversal with an explicit short-stack depth limit, exposed so
    /// tests can force the overflow-restart path deterministically.
    ///
    /// Overflow is recoverable, never a panic: the bounded pass is
    /// abandoned, one [`TraversalStats::stack_spills`] is charged, and the
    /// ray re-runs from the root on an unbounded stack (keeping the best
    /// hit found so far, which can only prune work — the shared inclusive
    /// trim and tie-break make the final hit independent of the restart).
    pub fn intersect_with_stack_limit(
        &self,
        ray: &Ray,
        inv_dir: Vec3,
        kind: TraversalKind,
        stack_limit: usize,
    ) -> WideResult {
        let ctx = RayCtx::new(ray, inv_dir);
        let mut stats = TraversalStats::default();
        let mut best: Option<Hit> = None;
        let mut short = ShortStack::with_limit(stack_limit);
        if let PassOutcome::Overflow =
            self.run_pass(ray, &ctx, kind, &mut best, &mut stats, &mut short)
        {
            stats.stack_spills += 1;
            let mut unbounded: Vec<u64> = Vec::with_capacity(4 * SHORT_STACK_CAPACITY);
            let outcome = self.run_pass(ray, &ctx, kind, &mut best, &mut stats, &mut unbounded);
            debug_assert!(
                matches!(outcome, PassOutcome::Complete),
                "the unbounded restart pass cannot overflow"
            );
        }
        WideResult { hit: best, stats }
    }

    /// One traversal pass over the given stack, from the root. Returns
    /// [`PassOutcome::Overflow`] the moment a push is rejected.
    fn run_pass<S: EntryStack>(
        &self,
        ray: &Ray,
        ctx: &RayCtx,
        kind: TraversalKind,
        best: &mut Option<Hit>,
        stats: &mut TraversalStats,
        stack: &mut S,
    ) -> PassOutcome {
        // The root is wide node 0; an interior entry has a zero count.
        let mut entry: u64 = pack_entry(0, 0);
        loop {
            let count = (entry >> 32) as u16;
            let index = entry as u32;
            if count == 0 {
                let node = &self.nodes[index as usize];
                stats.interior_fetches += 1;
                let occupied = node.occupied_mask();
                stats.box_tests += u64::from(occupied.count_ones());
                let t_max = bound_t_max(ray, kind, best);
                let (hit, t_enter) = slab4(node, ctx, t_max);
                let mut m = hit & occupied;

                // Order the hit slots near-first (stable on ties, so both
                // backends and both stack passes agree).
                let mut order: [(f32, usize); WIDE_ARITY] = [(0.0, 0); WIDE_ARITY];
                let mut n = 0;
                while m != 0 {
                    let lane = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let te = t_enter[lane];
                    let mut i = n;
                    while i > 0 && te < order[i - 1].0 {
                        order[i] = order[i - 1];
                        i -= 1;
                    }
                    order[i] = (te, lane);
                    n += 1;
                }
                if n == 0 {
                    match stack.pop_entry() {
                        Some(e) => entry = e,
                        None => return PassOutcome::Complete,
                    }
                    continue;
                }
                // Push the far slots (far-to-near) and descend the nearest.
                for &(_, lane) in order[1..n].iter().rev() {
                    if !stack.push_entry(pack_entry(node.counts[lane], node.children[lane])) {
                        return PassOutcome::Overflow;
                    }
                }
                let lane = order[0].1;
                entry = pack_entry(node.counts[lane], node.children[lane]);
            } else {
                if self.test_leaf(index, count, kind, best, ray, ctx, stats) {
                    return PassOutcome::Complete; // any-hit termination
                }
                match stack.pop_entry() {
                    Some(e) => entry = e,
                    None => return PassOutcome::Complete,
                }
            }
        }
    }

    /// Visits one leaf child: batched four-lane triangle tests over its
    /// packed groups, with the shared inclusive best-hit trim (refreshed
    /// per group) and [`Hit::closer_than`] tie-break. Returns `true` when
    /// an any-hit query terminates here.
    #[allow(clippy::too_many_arguments)]
    fn test_leaf(
        &self,
        first_group: u32,
        count: u16,
        kind: TraversalKind,
        best: &mut Option<Hit>,
        ray: &Ray,
        ctx: &RayCtx,
        stats: &mut TraversalStats,
    ) -> bool {
        stats.leaf_fetches += 1;
        let mut remaining = count as usize;
        let mut g = first_group as usize;
        while remaining > 0 {
            let lanes = remaining.min(WIDE_ARITY);
            let group = &self.groups[g];
            stats.tri_fetches += lanes as u64;
            stats.tri_tests += lanes as u64;
            let lane_mask = ((1u16 << lanes) - 1) as u8;
            let t_max = bound_t_max(ray, kind, best);
            let (accept, t) = mt4(group, ctx, t_max, lane_mask);
            let mut m = accept;
            while m != 0 {
                let lane = m.trailing_zeros() as usize;
                m &= m - 1;
                let hit = Hit {
                    t: t[lane],
                    tri_index: group.tri_index[lane],
                    leaf: NodeId::new(group.leaf),
                };
                if best.is_none_or(|b| hit.closer_than(&b)) {
                    *best = Some(hit);
                }
                if kind == TraversalKind::AnyHit {
                    return true; // Algorithm 1 line 13
                }
            }
            remaining -= lanes;
            g += 1;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::TraversalKernel;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use rip_math::{Triangle, Vec3};

    fn soup(n: usize, seed: u64) -> Vec<Triangle> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let base = Vec3::new(
                    rng.gen_range(-5.0..5.0),
                    rng.gen_range(-5.0..5.0),
                    rng.gen_range(-5.0..5.0),
                );
                let e1 = Vec3::new(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                );
                let e2 = Vec3::new(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                );
                Triangle::new(base, base + e1, base + e2)
            })
            .collect()
    }

    fn sample_rays(n: usize, seed: u64) -> Vec<Ray> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let o = Vec3::new(
                    rng.gen_range(-8.0..8.0),
                    rng.gen_range(-8.0..8.0),
                    rng.gen_range(-8.0..8.0),
                );
                let d = rip_math::sampling::uniform_sphere(rng.gen(), rng.gen());
                Ray::segment(o, d, 20.0)
            })
            .collect()
    }

    #[test]
    fn wide_matches_binary_results_bit_exactly() {
        for seed in 0..5 {
            let binary = Bvh::build(&soup(200, seed));
            let wide = WideBvh::from_binary(&binary);
            for ray in sample_rays(60, seed ^ 0xAB) {
                let w = wide.intersect(&binary, &ray, TraversalKind::ClosestHit);
                let b = binary.intersect(&ray, TraversalKind::ClosestHit);
                assert_eq!(
                    w.hit.map(|h| (h.tri_index, h.leaf, h.t.to_bits())),
                    b.hit.map(|h| (h.tri_index, h.leaf, h.t.to_bits())),
                    "closest-hit divergence (seed {seed}, {ray:?})"
                );
                let w = wide.intersect(&binary, &ray, TraversalKind::AnyHit);
                let b = binary.intersect(&ray, TraversalKind::AnyHit);
                assert_eq!(
                    w.hit.is_some(),
                    b.hit.is_some(),
                    "any-hit divergence (seed {seed}, {ray:?})"
                );
            }
        }
    }

    #[test]
    fn wide_tree_is_smaller_and_fetches_fewer_interior_nodes() {
        let binary = Bvh::build(&soup(400, 9));
        let wide = WideBvh::from_binary(&binary);
        assert!(
            wide.node_count() * 2 < binary.node_count(),
            "4-wide tree should have well under half the nodes: {} vs {}",
            wide.node_count(),
            binary.node_count()
        );
        let mut rng = SmallRng::seed_from_u64(17);
        let mut wide_fetches = 0u64;
        let mut binary_fetches = 0u64;
        for _ in 0..100 {
            let o = Vec3::new(rng.gen_range(-8.0..8.0), rng.gen_range(-8.0..8.0), -10.0);
            let ray = Ray::segment(o, Vec3::Z, 25.0);
            wide_fetches += wide
                .intersect(&binary, &ray, TraversalKind::ClosestHit)
                .stats
                .interior_fetches;
            binary_fetches += binary
                .intersect(&ray, TraversalKind::ClosestHit)
                .stats
                .interior_fetches;
        }
        assert!(
            wide_fetches * 3 < binary_fetches * 2,
            "wide traversal should fetch well under 2/3 of the interior nodes: {wide_fetches} vs {binary_fetches}"
        );
    }

    #[test]
    fn single_triangle_collapses_to_one_node() {
        let binary = Bvh::build(&soup(1, 1));
        let wide = WideBvh::from_binary(&binary);
        assert_eq!(wide.node_count(), 1);
        assert_eq!(wide.group_count(), 1);
    }

    #[test]
    fn quantized_leaf_boxes_contain_their_triangles() {
        // Conservatism end to end: every triangle packed under a leaf slot
        // must lie inside that slot's *decoded* (quantized) box, so the
        // slab test can never cull a box holding a reportable hit.
        let binary = Bvh::build(&soup(300, 21));
        let wide = WideBvh::from_binary(&binary);
        let mut leaf_slots = 0;
        for node in wide.nodes.as_slice() {
            for i in 0..WIDE_ARITY {
                if node.counts[i] == 0 {
                    continue;
                }
                leaf_slots += 1;
                let decoded = node.child_bounds(i);
                let leaf = NodeId::new(wide.groups[node.children[i] as usize].leaf);
                let exact = binary.node(leaf).bounds;
                assert!(
                    decoded.contains_box(&exact),
                    "quantized leaf box {decoded:?} must contain exact bounds {exact:?}"
                );
            }
        }
        assert!(leaf_slots > 0, "scene must produce leaf slots");
    }

    #[test]
    fn overflow_restart_matches_unbounded_traversal() {
        let binary = Bvh::build(&soup(500, 33));
        let wide = WideBvh::from_binary(&binary);
        for (i, ray) in sample_rays(80, 77).iter().enumerate() {
            for kind in [TraversalKind::AnyHit, TraversalKind::ClosestHit] {
                let full = wide.intersect(&binary, ray, kind);
                // A two-entry stack overflows on almost every ray; the
                // restart must recover the identical hit.
                let tiny = wide.intersect_with_stack_limit(ray, ray.inv_direction(), kind, 2);
                assert_eq!(
                    tiny.hit.map(|h| (h.tri_index, h.leaf, h.t.to_bits())),
                    full.hit.map(|h| (h.tri_index, h.leaf, h.t.to_bits())),
                    "ray {i} ({kind:?}): overflow restart changed the hit"
                );
                if tiny.stats.stack_spills > 0 {
                    assert!(
                        tiny.stats.interior_fetches >= full.stats.interior_fetches,
                        "restart re-does work, never less"
                    );
                }
            }
        }
        // The tiny stack must actually have overflowed somewhere, or the
        // test proves nothing.
        let spilled: u64 = sample_rays(80, 77)
            .iter()
            .map(|r| {
                wide.intersect_with_stack_limit(r, r.inv_direction(), TraversalKind::ClosestHit, 2)
                    .stats
                    .stack_spills
            })
            .sum();
        assert!(
            spilled > 0,
            "stack limit 2 should trigger at least one restart"
        );
    }

    #[test]
    fn kernel_name_is_stable() {
        let binary = Bvh::build(&soup(10, 3));
        let wide = WideBvh::from_binary(&binary);
        assert_eq!(crate::WideKernel::new(&wide, &binary).name(), "wide4");
    }
}
