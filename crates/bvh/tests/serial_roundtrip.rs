//! Round-trip guarantees for the BVH artifact format: decode(encode(b))
//! reproduces the tree and re-encodes byte-identically, and damaged
//! buffers always come back as `Err`, never a panic.
//!
//! The empty-tree case is deliberately absent: `Bvh::build` requires at
//! least one triangle, so an empty artifact can only describe a scene
//! (covered by `rip-scene`'s round-trip suite).

use rip_bvh::{serial, Bvh};
use rip_math::{Triangle, Vec3};

/// A small deterministic soup with enough spread to force a multi-level
/// tree (interior + leaf nodes, non-trivial triangle reorder).
fn soup(n: usize) -> Vec<Triangle> {
    (0..n)
        .map(|i| {
            let f = i as f32;
            let base = Vec3::new(
                (f * 3.7).sin() * 40.0,
                (f * 1.3).cos() * 25.0,
                (f * 2.1).sin() * 40.0,
            );
            Triangle::new(
                base,
                base + Vec3::new(1.5, 0.2, 0.1),
                base + Vec3::new(0.3, 1.4, 0.6),
            )
        })
        .collect()
}

fn assert_byte_stable(bvh: &Bvh) {
    let first = serial::encode(bvh);
    let decoded = serial::decode(&first).expect("decode of a fresh encode");
    decoded.validate().unwrap();
    assert_eq!(decoded.triangle_count(), bvh.triangle_count());
    let second = serial::encode(&decoded);
    assert_eq!(first, second, "re-encode must be byte-identical");
}

#[test]
fn single_triangle_tree_round_trips() {
    assert_byte_stable(&Bvh::build(&soup(1)));
}

#[test]
fn multi_level_tree_round_trips_byte_identically() {
    for n in [2, 3, 17, 200] {
        assert_byte_stable(&Bvh::build(&soup(n)));
    }
}

#[test]
fn every_truncation_prefix_errors_without_panicking() {
    let bytes = serial::encode(&Bvh::build(&soup(9)));
    for len in 0..bytes.len() {
        assert!(
            serial::decode(&bytes[..len]).is_err(),
            "prefix of {len}/{} bytes must not decode",
            bytes.len()
        );
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut bytes = serial::encode(&Bvh::build(&soup(5)));
    bytes.extend_from_slice(&[0, 0, 0, 0]);
    assert!(serial::decode(&bytes).is_err());
}

#[test]
fn single_byte_flips_never_panic() {
    // Every single-byte corruption must either fail decoding or decode to
    // a tree that still passes validation (flips inside float payloads can
    // be structurally harmless) — but never panic. Structural fields are
    // additionally guarded by `Bvh::validate` inside `decode`.
    let bytes = serial::encode(&Bvh::build(&soup(12)));
    for at in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[at] ^= 0x40;
        if let Ok(bvh) = serial::decode(&bad) {
            bvh.validate().unwrap();
        }
    }
}

#[test]
fn header_bomb_is_rejected_before_allocation() {
    let mut bytes = serial::encode(&Bvh::build(&soup(5)));
    // node_count lives at bytes 8..12; promise ~4 billion nodes.
    bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    let err = serial::decode(&bytes).unwrap_err();
    assert!(err.contains("truncated"), "got: {err}");
}

#[test]
fn wrong_magic_and_version_are_rejected() {
    let good = serial::encode(&Bvh::build(&soup(4)));

    let mut bad_magic = good.clone();
    bad_magic[0] = b'Q';
    assert!(serial::decode(&bad_magic).unwrap_err().contains("magic"));

    let mut bad_version = good;
    bad_version[4..8].copy_from_slice(&(serial::FORMAT_VERSION + 7).to_le_bytes());
    assert!(serial::decode(&bad_version)
        .unwrap_err()
        .contains("version"));
}

#[test]
fn out_of_range_triangle_slot_is_rejected() {
    let bvh = Bvh::build(&soup(3));
    let mut bytes = serial::encode(&bvh);
    // Node records are variable-size, so locate tri_order from the back:
    // triangles occupy the last tri_count * 36 bytes, tri_order the
    // order_count * 4 bytes before them.
    let order_count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let tri_count = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
    assert_eq!(order_count, tri_count);
    let order_at = bytes.len() - tri_count * 36 - order_count * 4;
    bytes[order_at..order_at + 4].copy_from_slice(&(tri_count as u32).to_le_bytes());
    let err = serial::decode(&bytes).unwrap_err();
    assert!(err.contains("out of range"), "got: {err}");
}
