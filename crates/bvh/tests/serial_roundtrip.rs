//! Round-trip guarantees for the BVH artifact format: decode(encode(b))
//! reproduces the tree and re-encodes byte-identically, and damaged
//! buffers always come back as `Err`, never a panic.
//!
//! Since format v2 the artifact is a RIPA container, so bit integrity
//! is enforced by the container checksums and these tests focus on the
//! *structural* layer: tree invariants a checksummed-but-hostile
//! artifact could still violate.
//!
//! The empty-tree case is deliberately absent: `Bvh::build` requires at
//! least one triangle, so an empty artifact can only describe a scene
//! (covered by `rip-scene`'s round-trip suite).

use rip_bvh::{serial, Bvh};
use rip_math::{Triangle, Vec3};
use rip_pod::ripa::{RipaFile, RipaWriter};
use rip_pod::Bytes;

/// A small deterministic soup with enough spread to force a multi-level
/// tree (interior + leaf nodes, non-trivial triangle reorder).
fn soup(n: usize) -> Vec<Triangle> {
    (0..n)
        .map(|i| {
            let f = i as f32;
            let base = Vec3::new(
                (f * 3.7).sin() * 40.0,
                (f * 1.3).cos() * 25.0,
                (f * 2.1).sin() * 40.0,
            );
            Triangle::new(
                base,
                base + Vec3::new(1.5, 0.2, 0.1),
                base + Vec3::new(0.3, 1.4, 0.6),
            )
        })
        .collect()
}

fn assert_byte_stable(bvh: &Bvh) {
    let first = serial::encode(bvh);
    let decoded = serial::decode(&first).expect("decode of a fresh encode");
    decoded.validate().unwrap();
    assert_eq!(decoded.triangle_count(), bvh.triangle_count());
    let second = serial::encode(&decoded);
    assert_eq!(first, second, "re-encode must be byte-identical");
}

#[test]
fn single_triangle_tree_round_trips() {
    assert_byte_stable(&Bvh::build(&soup(1)));
}

#[test]
fn multi_level_tree_round_trips_byte_identically() {
    for n in [2, 3, 17, 200] {
        assert_byte_stable(&Bvh::build(&soup(n)));
    }
}

#[test]
fn every_truncation_prefix_errors_without_panicking() {
    let bytes = serial::encode(&Bvh::build(&soup(9)));
    for len in 0..bytes.len() {
        assert!(
            serial::decode(&bytes[..len]).is_err(),
            "prefix of {len}/{} bytes must not decode",
            bytes.len()
        );
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut bytes = serial::encode(&Bvh::build(&soup(5)));
    bytes.extend_from_slice(&[0, 0, 0, 0]);
    assert!(serial::decode(&bytes).is_err());
}

#[test]
fn single_byte_flips_are_always_detected() {
    // Stronger than the v1 guarantee: the RIPA container checksums the
    // header, section table, and every payload, so *any* single-byte
    // corruption — float payloads included — must fail decoding. No
    // silently-accepted damage, and of course no panics.
    let bytes = serial::encode(&Bvh::build(&soup(12)));
    for at in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[at] ^= 0x40;
        assert!(
            serial::decode(&bad).is_err(),
            "flip at byte {at} went undetected"
        );
    }
}

#[test]
fn header_bomb_is_rejected_before_allocation() {
    let mut bytes = serial::encode(&Bvh::build(&soup(5)));
    // The section count lives at bytes 8..12; promise ~4 billion
    // sections. The parser must refuse before allocating for them.
    bytes[8..12].copy_from_slice(&u32::MAX.to_ne_bytes());
    let err = serial::decode(&bytes).unwrap_err();
    assert!(err.contains("section count"), "got: {err}");
}

#[test]
fn wrong_magic_and_version_are_rejected() {
    let good = serial::encode(&Bvh::build(&soup(4)));

    let mut bad_magic = good.clone();
    bad_magic[0] = b'Q';
    assert!(serial::decode(&bad_magic).unwrap_err().contains("magic"));

    let mut bad_version = good;
    bad_version[4..8].copy_from_slice(&(rip_pod::ripa::CONTAINER_VERSION + 7).to_ne_bytes());
    assert!(serial::decode(&bad_version)
        .unwrap_err()
        .contains("version"));
}

#[test]
fn out_of_range_triangle_slot_is_rejected() {
    // A hostile artifact with intact checksums but a leaf-order slot
    // pointing past the triangle section. Rebuild the container from
    // the parsed sections of a good artifact so all checksums are
    // recomputed over the poisoned payload.
    let bvh = Bvh::build(&soup(3));
    let bytes = serial::encode(&bvh);
    let file = RipaFile::parse(Bytes::copy_from_slice(&bytes), serial::KIND_BVH).unwrap();

    let meta = file.section(1).unwrap();
    let nodes = file.section(2).unwrap();
    let mut order = file.pod_section::<u32>(3).unwrap().to_vec();
    let tris = file.section(4).unwrap();
    let tri_count = tris.len() / std::mem::size_of::<Triangle>();
    order[0] = tri_count as u32;

    let mut w = RipaWriter::new(serial::KIND_BVH);
    w.raw_section(1, 4, meta.as_slice())
        .raw_section(2, 4, nodes.as_slice())
        .section(3, &order)
        .raw_section(4, 4, tris.as_slice());
    let err = serial::decode(&w.finish()).unwrap_err();
    assert!(err.contains("out of range"), "got: {err}");
}
