//! Property tests: BVH traversal must agree with brute-force intersection
//! over every triangle, for both query kinds and both split methods.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rip_bvh::{Bvh, BvhBuilder, SplitMethod, TraversalKind};
use rip_math::{Ray, Triangle, Vec3};

fn random_soup(n: usize, seed: u64) -> Vec<Triangle> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let base = Vec3::new(
                rng.gen_range(-5.0..5.0),
                rng.gen_range(-5.0..5.0),
                rng.gen_range(-5.0..5.0),
            );
            let e1 = Vec3::new(
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
            );
            let e2 = Vec3::new(
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
            );
            Triangle::new(base, base + e1, base + e2)
        })
        .collect()
}

fn random_ray(rng: &mut SmallRng) -> Ray {
    let o = Vec3::new(
        rng.gen_range(-8.0..8.0),
        rng.gen_range(-8.0..8.0),
        rng.gen_range(-8.0..8.0),
    );
    let d = rip_math::sampling::uniform_sphere(rng.gen(), rng.gen());
    Ray::segment(o, d, rng.gen_range(1.0..20.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn closest_hit_matches_brute_force(
        scene_seed in 0u64..500,
        ray_seed in 0u64..500,
        n in 1usize..120,
    ) {
        let tris = random_soup(n, scene_seed);
        let bvh = Bvh::build(&tris);
        bvh.validate().unwrap();
        let mut rng = SmallRng::seed_from_u64(ray_seed);
        for _ in 0..24 {
            let ray = random_ray(&mut rng);
            let fast = bvh.intersect(&ray, TraversalKind::ClosestHit);
            let brute = bvh.intersect_brute_force(&ray, TraversalKind::ClosestHit);
            match (fast.hit, brute) {
                (None, None) => {}
                (Some(h), Some((_, bt))) => {
                    // t must match; the triangle index may differ on exact
                    // ties or coplanar overlaps.
                    prop_assert!((h.t - bt).abs() < 1e-3 * (1.0 + bt),
                        "closest t mismatch: bvh {} vs brute {}", h.t, bt);
                }
                (f, b) => prop_assert!(false, "hit disagreement: bvh {f:?} vs brute {b:?}"),
            }
        }
    }

    #[test]
    fn any_hit_matches_brute_force_predicate(
        scene_seed in 500u64..1000,
        ray_seed in 0u64..500,
        n in 1usize..120,
    ) {
        let tris = random_soup(n, scene_seed);
        let bvh = Bvh::build(&tris);
        let mut rng = SmallRng::seed_from_u64(ray_seed);
        for _ in 0..24 {
            let ray = random_ray(&mut rng);
            let fast = bvh.intersect(&ray, TraversalKind::AnyHit).hit.is_some();
            let brute = bvh.intersect_brute_force(&ray, TraversalKind::AnyHit).is_some();
            prop_assert_eq!(fast, brute, "any-hit disagreement");
        }
    }

    #[test]
    fn split_methods_agree_on_results(
        scene_seed in 0u64..200,
        n in 2usize..80,
    ) {
        let tris = random_soup(n, scene_seed);
        let sah = BvhBuilder::new().split_method(SplitMethod::BinnedSah).build(&tris);
        let median = BvhBuilder::new().split_method(SplitMethod::Median).build(&tris);
        sah.validate().unwrap();
        median.validate().unwrap();
        let mut rng = SmallRng::seed_from_u64(scene_seed ^ 0xF00D);
        for _ in 0..16 {
            let ray = random_ray(&mut rng);
            let a = sah.intersect(&ray, TraversalKind::ClosestHit).hit.map(|h| h.t);
            let b = median.intersect(&ray, TraversalKind::ClosestHit).hit.map(|h| h.t);
            match (a, b) {
                (None, None) => {}
                (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-3 * (1.0 + x)),
                other => prop_assert!(false, "split methods disagree: {other:?}"),
            }
        }
    }

    #[test]
    fn seeded_traversal_from_true_leaf_always_verifies(
        scene_seed in 0u64..300,
        ray_seed in 0u64..300,
        n in 4usize..100,
    ) {
        // The core predictor guarantee: starting traversal from the leaf
        // that actually contains a hit triangle must find an intersection.
        let tris = random_soup(n, scene_seed);
        let bvh = Bvh::build(&tris);
        let mut rng = SmallRng::seed_from_u64(ray_seed);
        for _ in 0..16 {
            let ray = random_ray(&mut rng);
            if let Some(hit) = bvh.intersect(&ray, TraversalKind::AnyHit).hit {
                let mut seeded =
                    rip_bvh::Traversal::from_nodes(TraversalKind::AnyHit, &[hit.leaf]);
                let r = seeded.run(&bvh, &ray);
                prop_assert!(r.hit.is_some(), "true-leaf prediction failed to verify");
                prop_assert!(r.stats.node_fetches() <= bvh.depth() as u64 + 2);
            }
        }
    }
}

#[test]
fn scene_suite_bvh_depths_are_plausible() {
    use rip_scene::{SceneScale, SCENE_IDS};
    for id in SCENE_IDS {
        let mesh = id.build_mesh(SceneScale::Tiny);
        let tris: Vec<Triangle> = mesh.triangles().collect();
        let bvh = Bvh::build(&tris);
        bvh.validate().unwrap();
        let log2n = (tris.len() as f32).log2();
        assert!(
            (bvh.depth() as f32) >= log2n * 0.5 && (bvh.depth() as f32) <= log2n * 4.0 + 8.0,
            "{id}: depth {} implausible for {} tris",
            bvh.depth(),
            tris.len()
        );
    }
}
