//! Extension (§4.2 future work): adaptive hash-function selection.
//!
//! The paper leaves "combining multiple hash functions or adaptively
//! selecting the number of bits" to future work. This module implements a
//! tournament predictor in the spirit of combining branch predictors
//! (McFarling, whose gshare fold §4.1 already borrows): two half-size
//! predictor tables — one keyed by Grid Spherical, one by Two Point — and
//! a saturating selector counter that routes each ray's prediction to the
//! currently better-performing hash. Both tables train on every hit, so
//! the loser keeps learning and can win back the selector.
//!
//! The total storage matches the baseline budget: two 512-entry tables
//! cost the same 5.5 KB as the paper's single 1024-entry table.

use crate::{trace_occlusion, PredictedTrace, Predictor, PredictorConfig, RayOutcome};
use rip_bvh::Bvh;
use rip_math::{Aabb, Ray};

/// Selector saturation bound (±).
const SELECTOR_MAX: i32 = 8;

/// A two-way tournament over hash functions at constant storage budget.
///
/// # Examples
///
/// ```
/// use rip_bvh::Bvh;
/// use rip_core::AdaptivePredictor;
/// use rip_math::{Ray, Triangle, Vec3};
///
/// let bvh = Bvh::build(&[Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y)]);
/// let mut adaptive = AdaptivePredictor::paper_budget(bvh.bounds());
/// let ray = Ray::new(Vec3::new(0.2, 0.2, -1.0), Vec3::Z);
/// let trace = adaptive.trace_occlusion(&bvh, &ray);
/// assert!(trace.hit.is_some());
/// ```
#[derive(Clone, Debug)]
pub struct AdaptivePredictor {
    grid: Predictor,
    two_point: Predictor,
    /// Positive favors the Grid Spherical table, negative Two Point.
    selector: i32,
    switches: u64,
}

impl AdaptivePredictor {
    /// Builds the tournament from two explicit configurations.
    ///
    /// # Panics
    ///
    /// Panics when either configuration is invalid.
    pub fn new(grid: PredictorConfig, two_point: PredictorConfig, scene_bounds: Aabb) -> Self {
        AdaptivePredictor {
            grid: Predictor::new(grid, scene_bounds),
            two_point: Predictor::new(two_point, scene_bounds),
            selector: 1, // mild initial bias toward the paper's default hash
            switches: 0,
        }
    }

    /// Two half-size (512-entry) tables within the paper's 5.5 KB budget:
    /// Grid Spherical 5/3 and Two Point 4 bits / ratio 0.15 (the two best
    /// configurations of Table 8).
    pub fn paper_budget(scene_bounds: Aabb) -> Self {
        let grid = PredictorConfig {
            entries: 512,
            ..PredictorConfig::paper_default()
        };
        let two_point = PredictorConfig {
            entries: 512,
            hash: crate::HashFunction::TwoPoint {
                origin_bits: 4,
                length_ratio: 0.15,
            },
            ..PredictorConfig::paper_default()
        };
        Self::new(grid, two_point, scene_bounds)
    }

    /// Which table the selector currently favors.
    pub fn favors_grid(&self) -> bool {
        self.selector >= 0
    }

    /// How many times the selector has flipped preference.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Combined outcome statistics (the favored table records each ray).
    pub fn stats(&self) -> crate::PredictionStats {
        let mut s = self.grid.stats();
        s.accumulate(&self.two_point.stats());
        s
    }

    /// Traces one occlusion ray through the favored table (full §3 flow),
    /// trains **both** tables from the result, and nudges the selector by
    /// the outcome: a verification reinforces the favored hash, a
    /// misprediction weakens it.
    pub fn trace_occlusion(&mut self, bvh: &Bvh, ray: &Ray) -> PredictedTrace {
        let favored_grid = self.favors_grid();
        let trace = if favored_grid {
            let t = trace_occlusion(&mut self.grid, bvh, ray);
            // Keep the loser learning: mirror the training (its own hash).
            self.two_point.begin_ray();
            if let Some(hit) = t.hit {
                let hash = self.two_point.hash_ray(ray);
                self.two_point.train(bvh, hash, hit.leaf);
            }
            t
        } else {
            let t = trace_occlusion(&mut self.two_point, bvh, ray);
            self.grid.begin_ray();
            if let Some(hit) = t.hit {
                let hash = self.grid.hash_ray(ray);
                self.grid.train(bvh, hash, hit.leaf);
            }
            t
        };
        let delta = match trace.outcome {
            RayOutcome::Verified => 1,
            RayOutcome::Mispredicted => -1,
            RayOutcome::NotPredicted => 0,
        };
        // Reinforce toward the favored side, weaken away from it.
        let signed = if favored_grid { delta } else { -delta };
        let updated = (self.selector + signed).clamp(-SELECTOR_MAX, SELECTOR_MAX);
        if (updated >= 0) != (self.selector >= 0) {
            self.switches += 1;
        }
        self.selector = updated;
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_math::{Triangle, Vec3};

    fn ceiling_bvh() -> Bvh {
        let mut tris = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                if (i + j) % 4 == 0 {
                    continue;
                }
                let o = Vec3::new(i as f32, 2.0, j as f32);
                tris.push(Triangle::new(o, o + Vec3::X, o + Vec3::Z));
            }
        }
        Bvh::build(&tris)
    }

    fn rays(n: usize) -> Vec<Ray> {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(5);
        (0..n)
            .map(|_| {
                let o = Vec3::new(rng.gen_range(2.0..8.0), 0.1, rng.gen_range(2.0..8.0));
                let d = rip_math::sampling::cosine_hemisphere_around(Vec3::Y, rng.gen(), rng.gen());
                Ray::segment(o, d, 6.0)
            })
            .collect()
    }

    #[test]
    fn adaptive_is_exact() {
        let bvh = ceiling_bvh();
        let mut adaptive = AdaptivePredictor::paper_budget(bvh.bounds());
        for ray in rays(800) {
            let reference = bvh
                .intersect(&ray, rip_bvh::TraversalKind::AnyHit)
                .hit
                .is_some();
            let trace = adaptive.trace_occlusion(&bvh, &ray);
            assert_eq!(reference, trace.hit.is_some());
        }
        let s = adaptive.stats();
        assert_eq!(s.rays, 800);
        assert!(s.verified <= s.predicted);
    }

    #[test]
    fn selector_saturates_and_can_switch() {
        let bvh = ceiling_bvh();
        let mut adaptive = AdaptivePredictor::paper_budget(bvh.bounds());
        for ray in rays(2000) {
            adaptive.trace_occlusion(&bvh, &ray);
        }
        // The tournament ran; whichever side won, the counter stayed in
        // bounds and at least kept a consistent preference.
        assert!(adaptive.selector.abs() <= SELECTOR_MAX);
    }

    #[test]
    fn both_tables_learn() {
        let bvh = ceiling_bvh();
        let mut adaptive = AdaptivePredictor::paper_budget(bvh.bounds());
        for ray in rays(500) {
            adaptive.trace_occlusion(&bvh, &ray);
        }
        // The non-favored table must have been trained too (its table
        // stats show insertions even when it answered no lookups).
        let grid_inserts = adaptive.grid.table_stats().insertions;
        let tp_inserts = adaptive.two_point.table_stats().insertions;
        assert!(grid_inserts > 0, "grid table never trained");
        assert!(tp_inserts > 0, "two-point table never trained");
    }
}
