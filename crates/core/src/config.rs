//! Predictor configuration (Table 3 defaults).

use crate::{HashFunction, NodeReplacement, OracleMode};

/// Full configuration of the ray intersection predictor.
///
/// Defaults reproduce Table 3: 1024 entries, 4-way set-associative, one
/// node per entry, Grid Spherical hash with 5 origin / 3 direction bits,
/// LRU placement and node replacement, Go Up Level 3.
///
/// # Examples
///
/// ```
/// use rip_core::PredictorConfig;
///
/// let config = PredictorConfig::paper_default();
/// assert_eq!(config.entries, 1024);
/// assert_eq!(config.ways, 4);
/// // 1024 × (1 valid + 15 tag + 27 node) bits = 5.5 KB (§6.1.1).
/// assert_eq!(config.table_bytes(), 5504);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PredictorConfig {
    /// Total table entries (Table 6 sweeps 512–2048).
    pub entries: usize,
    /// Set associativity; 1 = direct-mapped (Table 7).
    pub ways: usize,
    /// Predicted nodes stored per entry (Table 6 sweeps 1–4).
    pub nodes_per_entry: usize,
    /// The ray hash function (Table 8).
    pub hash: HashFunction,
    /// Node replacement policy within an entry (§6.1.3).
    pub node_replacement: NodeReplacement,
    /// BVH levels above the intersected leaf to predict (§4.3; Figure 14
    /// sweeps 0–5, best is 3).
    pub go_up_level: u32,
    /// Limit-study oracle mode (§6.3); `OracleMode::None` is the real
    /// predictor.
    pub oracle: OracleMode,
    /// Training visibility delay in rays: updates from a ray become visible
    /// only after this many subsequent rays have issued, modelling
    /// in-flight traversal latency. The OU oracle forces this to zero.
    pub update_delay: usize,
}

impl PredictorConfig {
    /// The Table 3 configuration used for the headline results.
    pub fn paper_default() -> Self {
        PredictorConfig {
            entries: 1024,
            ways: 4,
            nodes_per_entry: 1,
            hash: HashFunction::default(),
            node_replacement: NodeReplacement::Lru,
            go_up_level: 3,
            oracle: OracleMode::None,
            update_delay: 256,
        }
    }

    /// Number of sets (`entries / ways`).
    pub fn sets(&self) -> usize {
        self.entries / self.ways
    }

    /// Bits used to index the table (`log2(sets)`).
    pub fn index_bits(&self) -> u32 {
        self.sets().trailing_zeros()
    }

    /// Storage cost of the table in bytes: per entry, 1 valid bit + tag +
    /// 27 bits per node slot (§6.1.1).
    pub fn table_bytes(&self) -> usize {
        let bits_per_entry = 1 + self.hash.bits() as usize + 27 * self.nodes_per_entry;
        self.entries * bits_per_entry / 8
    }

    /// Validates structural constraints.
    ///
    /// # Errors
    ///
    /// Returns a message when entries/ways are zero or not compatible
    /// (entries must be a multiple of ways and sets a power of two), when
    /// there are no node slots, or when the hash is invalid.
    pub fn validate(&self) -> Result<(), String> {
        if self.entries == 0 || self.ways == 0 || self.nodes_per_entry == 0 {
            return Err("entries, ways and nodes_per_entry must be positive".into());
        }
        if !self.entries.is_multiple_of(self.ways) {
            return Err(format!(
                "{} entries not divisible by {} ways",
                self.entries, self.ways
            ));
        }
        if !self.sets().is_power_of_two() {
            return Err(format!("{} sets is not a power of two", self.sets()));
        }
        self.hash.validate()
    }

    /// Returns a copy with a different oracle mode.
    pub fn with_oracle(mut self, oracle: OracleMode) -> Self {
        self.oracle = oracle;
        if oracle == OracleMode::ImmediateUpdates {
            self.update_delay = 0;
        }
        self
    }
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_5_5_kb() {
        let c = PredictorConfig::paper_default();
        c.validate().unwrap();
        assert_eq!(c.table_bytes(), 5504); // ≈ 5.5 KB as stated in §6.1.1
        assert_eq!(c.sets(), 256);
        assert_eq!(c.index_bits(), 8);
    }

    #[test]
    fn table_bytes_scales_with_nodes() {
        let mut c = PredictorConfig::paper_default();
        c.nodes_per_entry = 4;
        assert_eq!(c.table_bytes(), 1024 * (1 + 15 + 27 * 4) / 8);
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        let mut c = PredictorConfig::paper_default();
        c.ways = 3;
        assert!(c.validate().is_err());
        c = PredictorConfig::paper_default();
        c.entries = 0;
        assert!(c.validate().is_err());
        c = PredictorConfig::paper_default();
        c.entries = 768; // 192 sets: not a power of two
        assert!(c.validate().is_err());
    }

    #[test]
    fn direct_mapped_is_valid() {
        let mut c = PredictorConfig::paper_default();
        c.ways = 1;
        c.validate().unwrap();
        assert_eq!(c.sets(), 1024);
    }

    #[test]
    fn with_oracle_immediate_zeroes_delay() {
        let c = PredictorConfig::paper_default().with_oracle(OracleMode::ImmediateUpdates);
        assert_eq!(c.update_delay, 0);
    }
}
