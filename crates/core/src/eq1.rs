//! The analytic node-skip model of Equation 1 (§3).

/// Equation 1's parameters and predictions.
///
/// With `p`/`v` the predicted/verified ray fractions, `n` the mean nodes of
/// a full traversal, `k` predictions per entry and `m` nodes per prediction
/// evaluation, the mean nodes per ray under the predictor is
/// `N = n + p·k·m − v·n`, so the expected saving is `n − N = v·n − p·k·m`.
/// Table 5 compares this estimate against the measured reduction.
///
/// # Examples
///
/// ```
/// use rip_core::Eq1Model;
///
/// // Table 5's measured averages.
/// let m = Eq1Model { p: 0.955, v: 0.246, n: 28.382, k: 1.0, m: 2.810 };
/// assert!((m.estimated_nodes_skipped() - 4.298).abs() < 0.01);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Eq1Model {
    /// Fraction of rays predicted.
    pub p: f64,
    /// Fraction of rays verified.
    pub v: f64,
    /// Mean node fetches of a full traversal.
    pub n: f64,
    /// Mean predictions evaluated per predicted ray.
    pub k: f64,
    /// Mean node fetches per prediction evaluation.
    pub m: f64,
}

impl Eq1Model {
    /// `n − N = v·n − p·k·m`: expected node fetches saved per ray.
    pub fn estimated_nodes_skipped(&self) -> f64 {
        self.v * self.n - self.p * self.k * self.m
    }

    /// `N = n + p·k·m − v·n`: expected node fetches per ray with the
    /// predictor.
    pub fn estimated_nodes_per_ray(&self) -> f64 {
        self.n + self.p * self.k * self.m - self.v * self.n
    }

    /// Expected fractional node-fetch saving (`(n − N)/n`).
    pub fn estimated_savings_fraction(&self) -> f64 {
        if self.n == 0.0 {
            0.0
        } else {
            self.estimated_nodes_skipped() / self.n
        }
    }

    /// Whether the configuration is profitable at all (positive skip).
    pub fn is_profitable(&self) -> bool {
        self.estimated_nodes_skipped() > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skipped_plus_per_ray_equals_n() {
        let m = Eq1Model {
            p: 0.9,
            v: 0.3,
            n: 30.0,
            k: 1.0,
            m: 3.0,
        };
        assert!((m.estimated_nodes_skipped() + m.estimated_nodes_per_ray() - m.n).abs() < 1e-12);
    }

    #[test]
    fn overprediction_hurts() {
        let base = Eq1Model {
            p: 0.5,
            v: 0.3,
            n: 30.0,
            k: 1.0,
            m: 3.0,
        };
        let over = Eq1Model { p: 0.9, ..base };
        assert!(over.estimated_nodes_skipped() < base.estimated_nodes_skipped());
    }

    #[test]
    fn higher_verification_helps() {
        let base = Eq1Model {
            p: 0.9,
            v: 0.2,
            n: 30.0,
            k: 1.0,
            m: 3.0,
        };
        let better = Eq1Model { v: 0.4, ..base };
        assert!(better.estimated_nodes_skipped() > base.estimated_nodes_skipped());
    }

    #[test]
    fn table5_numbers_reproduce() {
        let m = Eq1Model {
            p: 0.955,
            v: 0.246,
            n: 28.382,
            k: 1.0,
            m: 2.810,
        };
        assert!((m.estimated_nodes_skipped() - 4.298).abs() < 0.01);
        assert!(m.is_profitable());
    }

    #[test]
    fn unprofitable_when_mispredictions_dominate() {
        let m = Eq1Model {
            p: 1.0,
            v: 0.01,
            n: 10.0,
            k: 4.0,
            m: 5.0,
        };
        assert!(!m.is_profitable());
    }
}
