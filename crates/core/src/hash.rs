//! Ray hashing (§4.2).
//!
//! The hash must "maximize predictor table collisions between similar rays
//! while minimizing collisions between different rays". Both functions
//! quantize the ray origin on a grid over the scene bounding box (the *Grid
//! Hash block* of Figure 6a) and mix in a quantized encoding of where the
//! ray is going — spherical direction angles (Grid Spherical) or an
//! estimated target point (Two Point).

use rip_math::{spherical, Aabb, Ray, Vec3};

/// Quantizes each origin component to `[0, 2ⁿ)` using the scene bounding
/// box and concatenates the three values — the Grid Hash block (Figure 6a).
fn grid_hash(p: Vec3, scene_bounds: &Aabb, n_bits: u32) -> u32 {
    debug_assert!(n_bits >= 1 && 3 * n_bits <= 30);
    let q = scene_bounds.normalize_point(p);
    let levels = (1u32 << n_bits) as f32;
    let quant = |v: f32| ((v * levels) as u32).min((1 << n_bits) - 1);
    (quant(q.x) << (2 * n_bits)) | (quant(q.y) << n_bits) | quant(q.z)
}

/// A ray hash function (§4.2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum HashFunction {
    /// Figure 6a: quantized cartesian origin XOR quantized spherical
    /// direction. Paper default: 5 origin bits, 3 direction bits → 15-bit
    /// hash.
    GridSpherical {
        /// Bits per origin component (`n`).
        origin_bits: u32,
        /// Bits for θ (`m`); φ gets `m + 1` bits.
        direction_bits: u32,
    },
    /// Figure 6b: quantized origin XOR quantized estimated target point
    /// `t = o + r·l·d` where `l` is the scene's maximum extent.
    TwoPoint {
        /// Bits per origin/target component (`n`).
        origin_bits: u32,
        /// Estimated length ratio `r` (Table 8b sweeps 0.05–0.35).
        length_ratio: f32,
    },
}

impl Default for HashFunction {
    /// The paper's best configuration: Grid Spherical with 5 origin bits
    /// and 3 direction bits (Table 3).
    fn default() -> Self {
        HashFunction::GridSpherical {
            origin_bits: 5,
            direction_bits: 3,
        }
    }
}

impl HashFunction {
    /// Width of the produced hash in bits (also the predictor tag width).
    pub fn bits(&self) -> u32 {
        match *self {
            HashFunction::GridSpherical {
                origin_bits,
                direction_bits,
            } => (3 * origin_bits).max(2 * direction_bits + 1),
            HashFunction::TwoPoint { origin_bits, .. } => 3 * origin_bits,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a message when bit widths are zero or too large, or the
    /// length ratio is not in `(0, 1]`.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            HashFunction::GridSpherical {
                origin_bits,
                direction_bits,
            } => {
                if origin_bits == 0 || 3 * origin_bits > 30 {
                    return Err(format!("origin_bits {origin_bits} out of range [1, 10]"));
                }
                if direction_bits == 0 || direction_bits > 8 {
                    return Err(format!(
                        "direction_bits {direction_bits} out of range [1, 8]"
                    ));
                }
            }
            HashFunction::TwoPoint {
                origin_bits,
                length_ratio,
            } => {
                if origin_bits == 0 || 3 * origin_bits > 30 {
                    return Err(format!("origin_bits {origin_bits} out of range [1, 10]"));
                }
                if !(length_ratio > 0.0 && length_ratio <= 1.0) {
                    return Err(format!("length_ratio {length_ratio} must be in (0, 1]"));
                }
            }
        }
        Ok(())
    }
}

/// A hasher bound to a scene bounding box.
///
/// # Examples
///
/// ```
/// use rip_core::{HashFunction, RayHasher};
/// use rip_math::{Aabb, Ray, Vec3};
///
/// let bounds = Aabb::new(Vec3::ZERO, Vec3::splat(10.0));
/// let hasher = RayHasher::new(HashFunction::default(), bounds);
/// let a = hasher.hash(&Ray::new(Vec3::splat(1.0), Vec3::Z));
/// let b = hasher.hash(&Ray::new(Vec3::splat(1.01), Vec3::Z));
/// assert_eq!(a, b, "nearby rays should collide");
/// ```
#[derive(Clone, Copy, Debug)]
pub struct RayHasher {
    function: HashFunction,
    scene_bounds: Aabb,
}

impl RayHasher {
    /// Creates a hasher over the given scene bounds.
    ///
    /// # Panics
    ///
    /// Panics when the hash parameters are invalid (see
    /// [`HashFunction::validate`]).
    pub fn new(function: HashFunction, scene_bounds: Aabb) -> Self {
        function
            .validate()
            .expect("invalid hash function parameters");
        RayHasher {
            function,
            scene_bounds,
        }
    }

    /// The configured hash function.
    pub fn function(&self) -> HashFunction {
        self.function
    }

    /// A stable identity for this hasher: two hashers with equal
    /// fingerprints produce equal hashes for every ray. Batch drivers key
    /// precomputed per-workload hash streams on this (plus the batch's
    /// own content digest).
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u32| {
            h = (h ^ u64::from(v)).wrapping_mul(0x0000_0100_0000_01b3);
        };
        match self.function {
            HashFunction::GridSpherical {
                origin_bits,
                direction_bits,
            } => {
                mix(1);
                mix(origin_bits);
                mix(direction_bits);
            }
            HashFunction::TwoPoint {
                origin_bits,
                length_ratio,
            } => {
                mix(2);
                mix(origin_bits);
                mix(length_ratio.to_bits());
            }
        }
        for v in [self.scene_bounds.min, self.scene_bounds.max] {
            mix(v.x.to_bits());
            mix(v.y.to_bits());
            mix(v.z.to_bits());
        }
        h
    }

    /// Hashes a ray to `bits()` bits.
    pub fn hash(&self, ray: &Ray) -> u32 {
        match self.function {
            HashFunction::GridSpherical {
                origin_bits,
                direction_bits,
            } => {
                let origin = grid_hash(ray.origin, &self.scene_bounds, origin_bits);
                let s = spherical::to_spherical_deg(ray.direction);
                // θ ∈ [0,180) as an 8-bit integer; take the top m bits.
                let theta_int = (s.theta as u32).min(179);
                let theta_bits = (theta_int << 1) >> (9 - direction_bits.min(8));
                // φ ∈ [0,360) as a 9-bit integer; take the top m+1 bits.
                let phi_int = (s.phi as u32).min(359);
                let phi_bits = phi_int >> (9 - (direction_bits + 1).min(9));
                let dir = (theta_bits << (direction_bits + 1)) | phi_bits;
                origin ^ dir
            }
            HashFunction::TwoPoint {
                origin_bits,
                length_ratio,
            } => {
                let origin = grid_hash(ray.origin, &self.scene_bounds, origin_bits);
                let l = self.scene_bounds.max_extent();
                let d = ray.direction.try_normalized().unwrap_or(Vec3::Z);
                let target = ray.origin + d * (length_ratio * l);
                let target_hash = grid_hash(target, &self.scene_bounds, origin_bits);
                origin ^ target_hash
            }
        }
    }
}

/// Folds an `n_bits`-wide hash down to `m_bits` by XOR-ing ⌈n/m⌉
/// components — the gshare-style fold of §4.1 used to index the table.
///
/// # Examples
///
/// ```
/// // 15-bit hash folded to 8 bits: low byte XOR high 7 bits.
/// let idx = rip_core::fold_hash(0b101_0101_0000_1111, 15, 8);
/// assert_eq!(idx, 0b0000_1111 ^ 0b0101_0101);
/// ```
pub fn fold_hash(hash: u32, n_bits: u32, m_bits: u32) -> u32 {
    if m_bits == 0 {
        return 0;
    }
    if m_bits >= n_bits {
        return if n_bits >= 32 {
            hash
        } else {
            hash & ((1u32 << n_bits) - 1)
        };
    }
    let mask = (1u32 << m_bits) - 1;
    let mut acc = 0u32;
    let mut rest = hash & (((1u64 << n_bits) - 1) as u32);
    while rest != 0 {
        acc ^= rest & mask;
        rest >>= m_bits;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds() -> Aabb {
        Aabb::new(Vec3::ZERO, Vec3::splat(32.0))
    }

    #[test]
    fn default_is_paper_config_with_15_bits() {
        let f = HashFunction::default();
        assert_eq!(f.bits(), 15);
    }

    #[test]
    fn similar_rays_collide_distant_rays_do_not() {
        let h = RayHasher::new(HashFunction::default(), bounds());
        let a = h.hash(&Ray::new(Vec3::new(4.0, 4.0, 4.0), Vec3::Z));
        let b = h.hash(&Ray::new(Vec3::new(4.2, 4.1, 4.05), Vec3::Z));
        let c = h.hash(&Ray::new(Vec3::new(28.0, 28.0, 28.0), -Vec3::X));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn direction_affects_hash() {
        let h = RayHasher::new(HashFunction::default(), bounds());
        let o = Vec3::new(4.0, 4.0, 4.0);
        let a = h.hash(&Ray::new(o, Vec3::Z));
        let b = h.hash(&Ray::new(o, -Vec3::Z));
        assert_ne!(a, b, "opposite directions must differ");
    }

    #[test]
    fn hash_fits_in_declared_bits() {
        for f in [
            HashFunction::GridSpherical {
                origin_bits: 5,
                direction_bits: 3,
            },
            HashFunction::GridSpherical {
                origin_bits: 3,
                direction_bits: 5,
            },
            HashFunction::TwoPoint {
                origin_bits: 5,
                length_ratio: 0.15,
            },
        ] {
            let h = RayHasher::new(f, bounds());
            for i in 0..200 {
                let o = Vec3::new(i as f32 * 0.16, (i * 7 % 32) as f32, (i * 13 % 32) as f32);
                let d = rip_math::sampling::uniform_sphere(
                    (i as f32 * 0.017) % 1.0,
                    (i as f32 * 0.031) % 1.0,
                );
                let v = h.hash(&Ray::new(o, d));
                assert!(v < (1 << f.bits()), "{f:?} overflowed: {v:#x}");
            }
        }
    }

    #[test]
    fn two_point_ratio_changes_collisions() {
        let near = RayHasher::new(
            HashFunction::TwoPoint {
                origin_bits: 5,
                length_ratio: 0.05,
            },
            bounds(),
        );
        let far = RayHasher::new(
            HashFunction::TwoPoint {
                origin_bits: 5,
                length_ratio: 0.35,
            },
            bounds(),
        );
        // Two rays from the same cell diverging slightly: with a short
        // target they collide, with a long target they eventually differ.
        let o = Vec3::new(4.5, 4.5, 4.5); // cell centre so small target offsets stay in-cell
        let d1 = Vec3::new(0.0, 0.08, 1.0).normalized();
        let d2 = Vec3::new(0.0, -0.08, 1.0).normalized();
        let n = (near.hash(&Ray::new(o, d1)), near.hash(&Ray::new(o, d2)));
        let f = (far.hash(&Ray::new(o, d1)), far.hash(&Ray::new(o, d2)));
        assert_eq!(n.0, n.1, "short ratio should merge similar rays");
        assert_ne!(f.0, f.1, "long ratio should separate them");
    }

    #[test]
    fn fold_reduces_width() {
        for hash in [0u32, 0x7FFF, 0x5A5A, 12345] {
            let idx = fold_hash(hash, 15, 8);
            assert!(idx < 256);
        }
        assert_eq!(fold_hash(0xFF, 15, 8), 0xFF);
    }

    #[test]
    fn fold_identity_when_wide_enough() {
        assert_eq!(fold_hash(0x1234, 15, 15), 0x1234);
    }

    #[test]
    fn fold_distributes() {
        // Hashes differing only above the index width must still spread
        // across sets (gshare property).
        let a = fold_hash(0b000_0001_0000_0000, 15, 8);
        let b = fold_hash(0b000_0010_0000_0000, 15, 8);
        assert_ne!(a, b);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(HashFunction::GridSpherical {
            origin_bits: 0,
            direction_bits: 3
        }
        .validate()
        .is_err());
        assert!(HashFunction::GridSpherical {
            origin_bits: 11,
            direction_bits: 3
        }
        .validate()
        .is_err());
        assert!(HashFunction::TwoPoint {
            origin_bits: 5,
            length_ratio: 0.0
        }
        .validate()
        .is_err());
        assert!(HashFunction::TwoPoint {
            origin_bits: 5,
            length_ratio: 1.5
        }
        .validate()
        .is_err());
    }

    #[test]
    #[should_panic(expected = "invalid hash")]
    fn hasher_panics_on_invalid_function() {
        let _ = RayHasher::new(
            HashFunction::GridSpherical {
                origin_bits: 0,
                direction_bits: 1,
            },
            bounds(),
        );
    }

    #[test]
    fn origin_quantization_respects_bounds() {
        // Rays outside the scene bounds clamp instead of wrapping.
        let h = RayHasher::new(HashFunction::default(), bounds());
        let inside = h.hash(&Ray::new(Vec3::splat(31.9), Vec3::Z));
        let outside = h.hash(&Ray::new(Vec3::splat(50.0), Vec3::Z));
        assert_eq!(inside, outside);
    }
}
