//! The ray intersection predictor — the primary contribution of
//! *Intersection Prediction for Accelerated GPU Ray Tracing* (MICRO 2021).
//!
//! The predictor (§3–§4) memoizes which BVH node previous, spatially
//! similar rays intersected, keyed by a lossy ray hash. A future ray whose
//! hash collides is *predicted*: traversal starts directly at the stored
//! node instead of the root. If the ray finds an intersection there it is
//! *verified* and the entire interior traversal was skipped; otherwise it is
//! *mispredicted* and must restart from the root.
//!
//! This crate provides:
//!
//! * [`RayHasher`] — the Grid Spherical and Two Point hash functions
//!   (§4.2) plus gshare-style folding,
//! * [`PredictorTable`] — the set-associative table of Figure 5 with
//!   configurable entries, ways, nodes-per-entry and node replacement
//!   policies (§4.1, §6.1),
//! * [`Predictor`] — table + hash + Go Up Level (§4.3) + training,
//! * [`trace_occlusion`] / [`trace_closest`] — the full §3 prediction /
//!   verification / fallback flow for occlusion and closest-hit (GI, §6.4)
//!   rays, generic over the fallback kernel (`*_with` variants),
//! * [`Predicted`] — the predictor as a composable wrapper kernel: wraps
//!   any [`rip_bvh::TraversalKernel`] (while-while, stackless, wide) with
//!   the prediction flow, itself implementing the kernel trait,
//! * [`FunctionalSim`] — a trace-level simulator producing the
//!   memory-access and rate metrics of Figures 1, 2, 14 and Tables 5–8,
//!   including the oracle modes of the §6.3 limit study,
//! * [`Eq1Model`] — the analytic node-skip model of Equation 1.
//!
//! # Examples
//!
//! ```
//! use rip_bvh::Bvh;
//! use rip_core::{Predictor, PredictorConfig};
//! use rip_math::{Ray, Triangle, Vec3};
//!
//! let bvh = Bvh::build(&[Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y)]);
//! let mut predictor = Predictor::new(PredictorConfig::paper_default(), bvh.bounds());
//! let ray = Ray::new(Vec3::new(0.2, 0.2, -1.0), Vec3::Z);
//! let outcome = rip_core::trace_occlusion(&mut predictor, &bvh, &ray);
//! assert!(outcome.hit.is_some());
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod adaptive;
mod config;
mod eq1;
mod hash;
mod oracle;
mod policies;
mod predicted;
mod predictor;
mod shared;
mod sim;
mod stats;
mod table;
mod traverse;

pub use adaptive::AdaptivePredictor;
pub use config::PredictorConfig;
pub use eq1::Eq1Model;
pub use hash::{fold_hash, HashFunction, RayHasher};
pub use oracle::OracleMode;
pub use policies::NodeReplacement;
pub use predicted::Predicted;
pub use predictor::{Prediction, Predictor};
pub use shared::{ConcurrentPredictorTable, SharedTable};
pub use sim::{FunctionalReport, FunctionalSim, SimOptions};
pub use stats::PredictionStats;
pub use table::{NodeCandidates, PredictorTable, TableStats, INLINE_CANDIDATES};
pub use traverse::{
    eval_probe, trace_closest, trace_closest_with, trace_closest_with_hash,
    trace_closest_with_probe, trace_occlusion, trace_occlusion_with, trace_occlusion_with_hash,
    trace_occlusion_with_probe, PredictedTrace, RayOutcome,
};
