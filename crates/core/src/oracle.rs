//! Oracle modes for the §6.3 limit study.

/// Degree of idealization applied to the predictor.
///
/// Figure 2 evaluates a ladder of oracles on top of the real design; each
/// step isolates one source of lost predictions:
///
/// | Mode | Paper label | What is idealized |
/// |---|---|---|
/// | [`None`](OracleMode::None) | *Predictor* | nothing — the proposed design |
/// | [`Lookup`](OracleMode::Lookup) | *OL* | the lookup always finds a verifying entry if one exists in the finite table |
/// | [`UnboundedTraining`](OracleMode::UnboundedTraining) | *OT* | OL over an unbounded table that never evicts |
/// | [`ImmediateUpdates`](OracleMode::ImmediateUpdates) | *OU* | OT plus zero-latency training updates |
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum OracleMode {
    /// The implementable predictor (hashed lookup, finite table).
    #[default]
    None,
    /// Oracle lookup (OL): a prediction is returned iff some node currently
    /// stored anywhere in the finite table would verify for this ray, and
    /// the oracle always picks that node. Mispredictions disappear.
    Lookup,
    /// Oracle training (OT): oracle lookup over an unbounded node store —
    /// every node ever trained remains available.
    UnboundedTraining,
    /// Oracle updates (OU): OT with training results visible immediately
    /// (no in-flight delay).
    ImmediateUpdates,
}

impl OracleMode {
    /// Whether lookups bypass the hash and always find a verifying node
    /// when one is stored.
    pub fn oracle_lookup(self) -> bool {
        self != OracleMode::None
    }

    /// Whether the training store is unbounded.
    pub fn unbounded(self) -> bool {
        matches!(
            self,
            OracleMode::UnboundedTraining | OracleMode::ImmediateUpdates
        )
    }

    /// Short label used in the limit-study figure.
    pub fn label(self) -> &'static str {
        match self {
            OracleMode::None => "Predictor",
            OracleMode::Lookup => "OL",
            OracleMode::UnboundedTraining => "OT",
            OracleMode::ImmediateUpdates => "OU",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_properties() {
        assert!(!OracleMode::None.oracle_lookup());
        assert!(OracleMode::Lookup.oracle_lookup());
        assert!(!OracleMode::Lookup.unbounded());
        assert!(OracleMode::UnboundedTraining.unbounded());
        assert!(OracleMode::ImmediateUpdates.unbounded());
    }

    #[test]
    fn labels_match_figure_2() {
        assert_eq!(OracleMode::None.label(), "Predictor");
        assert_eq!(OracleMode::ImmediateUpdates.label(), "OU");
    }
}
