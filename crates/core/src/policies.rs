//! Node replacement policies for multi-node predictor entries (§6.1.3).

/// Policy used to choose which node slot to evict when an entry holding
/// multiple predictions is full.
///
/// The paper compares LFU, LRU and LRU-K and "finds that the differences
/// between them are insignificant" — the ablation bench reproduces that.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum NodeReplacement {
    /// Evict the least recently used node.
    #[default]
    Lru,
    /// Evict the least frequently used node.
    Lfu,
    /// LRU-K: evict the node with the oldest K-th most recent reference
    /// (O'Neil et al.); nodes with fewer than K references are preferred
    /// victims.
    LruK(
        /// The `K` history depth (must be ≥ 1).
        u8,
    ),
}

/// Per-slot usage bookkeeping consumed by the policies.
#[derive(Clone, Debug, Default, PartialEq)]
pub(crate) struct SlotUsage {
    /// Recent reference timestamps, newest last (bounded to the largest K).
    pub history: Vec<u64>,
    /// Total reference count.
    pub frequency: u64,
}

impl SlotUsage {
    /// Records a reference at `now`.
    pub fn touch(&mut self, now: u64) {
        self.history.push(now);
        if self.history.len() > 8 {
            self.history.remove(0);
        }
        self.frequency += 1;
    }

    /// Most recent reference time (0 when never referenced).
    pub fn last_use(&self) -> u64 {
        self.history.last().copied().unwrap_or(0)
    }

    /// K-th most recent reference time, or `None` with fewer than K refs.
    pub fn kth_last_use(&self, k: u8) -> Option<u64> {
        let k = k.max(1) as usize;
        if self.history.len() < k {
            None
        } else {
            Some(self.history[self.history.len() - k])
        }
    }
}

impl NodeReplacement {
    /// Picks the victim slot index among `usages`.
    ///
    /// # Panics
    ///
    /// Panics when `usages` is empty.
    pub(crate) fn pick_victim(&self, usages: &[SlotUsage]) -> usize {
        assert!(!usages.is_empty(), "no slots to evict from");
        match *self {
            NodeReplacement::Lru => usages
                .iter()
                .enumerate()
                .min_by_key(|(_, u)| u.last_use())
                .map(|(i, _)| i)
                .expect("nonempty"),
            NodeReplacement::Lfu => usages
                .iter()
                .enumerate()
                .min_by_key(|(_, u)| (u.frequency, u.last_use()))
                .map(|(i, _)| i)
                .expect("nonempty"),
            NodeReplacement::LruK(k) => usages
                .iter()
                .enumerate()
                // Slots without K references sort first (backward distance
                // ∞), tie-broken by plain LRU.
                .min_by_key(|(_, u)| (u.kth_last_use(k).unwrap_or(0), u.last_use()))
                .map(|(i, _)| i)
                .expect("nonempty"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usage(times: &[u64]) -> SlotUsage {
        let mut u = SlotUsage::default();
        for &t in times {
            u.touch(t);
        }
        u
    }

    #[test]
    fn lru_evicts_oldest() {
        let slots = [usage(&[5]), usage(&[1]), usage(&[9])];
        assert_eq!(NodeReplacement::Lru.pick_victim(&slots), 1);
    }

    #[test]
    fn lfu_evicts_least_frequent() {
        let slots = [usage(&[1, 2, 3]), usage(&[9]), usage(&[4, 5])];
        assert_eq!(NodeReplacement::Lfu.pick_victim(&slots), 1);
    }

    #[test]
    fn lfu_breaks_ties_by_recency() {
        let slots = [usage(&[8]), usage(&[2])];
        assert_eq!(NodeReplacement::Lfu.pick_victim(&slots), 1);
    }

    #[test]
    fn lru_k_prefers_slots_without_k_references() {
        let k2 = NodeReplacement::LruK(2);
        let slots = [usage(&[1, 10]), usage(&[9])]; // second has only 1 ref
        assert_eq!(k2.pick_victim(&slots), 1);
    }

    #[test]
    fn lru_k_uses_kth_reference_age() {
        let k2 = NodeReplacement::LruK(2);
        // kth-last (2nd newest): slot0 = 1, slot1 = 6 → evict slot0.
        let slots = [usage(&[1, 12]), usage(&[6, 8])];
        assert_eq!(k2.pick_victim(&slots), 0);
    }

    #[test]
    fn history_is_bounded() {
        let mut u = SlotUsage::default();
        for t in 0..100 {
            u.touch(t);
        }
        assert!(u.history.len() <= 8);
        assert_eq!(u.frequency, 100);
        assert_eq!(u.last_use(), 99);
    }

    #[test]
    #[should_panic(expected = "no slots")]
    fn empty_usages_panics() {
        let _ = NodeReplacement::Lru.pick_victim(&[]);
    }
}
