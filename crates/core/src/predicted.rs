//! The predictor as a composable wrapper kernel.
//!
//! [`Predicted<K>`] wraps any [`TraversalKernel`] with the §3 prediction /
//! verification / fallback flow: lookups and verification probes run the
//! seeded stack traversal (the hardware mechanism), while the full root
//! traversal paid by not-predicted and mispredicted rays is delegated to
//! the wrapped kernel. That composes Grid-Spherical / Two-Point prediction
//! with while-while, stackless and wide traversal alike — the wide-BVH ×
//! predictor cross experiment the paper's §7 anticipates ("these
//! techniques should also work in parallel with our proposed ray
//! intersection predictor").
//!
//! Because the wrapper implements [`TraversalKernel`] itself, a
//! `Predicted<K>` drops into any batch pipeline; transparency (same hits
//! as the bare kernel, bit for bit) is enforced by `rip-testkit`'s
//! invariants for all three BVH kernels.

use crate::traverse::{trace_closest_with, trace_occlusion_with, PredictedTrace};
use crate::{PredictionStats, Predictor, PredictorConfig};
use rip_bvh::{Bvh, TraversalKernel, TraversalKind, TraversalResult};
use rip_math::Ray;
use std::sync::Arc;

/// A traversal kernel accelerated by the intersection predictor.
///
/// # Examples
///
/// ```
/// use rip_bvh::{Bvh, RayBatch, StacklessKernel, TraversalKernel};
/// use rip_core::{Predicted, PredictorConfig};
/// use rip_math::{Ray, Triangle, Vec3};
///
/// let bvh = Bvh::build(&[Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y)]);
/// let config = PredictorConfig { update_delay: 0, ..PredictorConfig::paper_default() };
/// let mut kernel = Predicted::new(&bvh, config, StacklessKernel::new(&bvh));
/// let batch = RayBatch::from_rays(&[Ray::new(Vec3::new(0.2, 0.2, -1.0), Vec3::Z)]);
/// // First pass trains, second pass verifies — hits identical throughout.
/// let cold = kernel.any_hit_batch(&batch);
/// let warm = kernel.any_hit_batch(&batch);
/// assert_eq!(cold[0].hit, warm[0].hit);
/// assert!(warm[0].stats.node_fetches() <= cold[0].stats.node_fetches());
/// ```
#[derive(Clone, Debug)]
pub struct Predicted<'a, K> {
    bvh: &'a Bvh,
    predictor: Predictor,
    kernel: K,
    obs: Arc<rip_obs::Obs>,
    /// Predictor stats already mirrored into the registry, so each
    /// trace adds exactly its own delta (registry == stats always).
    mirrored: PredictionStats,
}

impl<'a, K: TraversalKernel> Predicted<'a, K> {
    /// Wraps `kernel` with a fresh predictor configured by `config`. The
    /// `bvh` is the tree predictions are trained on and probed against —
    /// for the wide kernel, the binary tree it was collapsed from.
    pub fn new(bvh: &'a Bvh, config: PredictorConfig, kernel: K) -> Self {
        Predicted::with_predictor(bvh, Predictor::new(config, bvh.bounds()), kernel)
    }

    /// Wraps `kernel` with a predictor that learns into `table`, a
    /// [`SharedTable`](crate::SharedTable) concurrently driven by other
    /// predictors — the `rip-serve` shape, where in-flight requests from
    /// different tenants train one sharded table and benefit from each
    /// other's ray locality.
    pub fn with_shared_table(
        bvh: &'a Bvh,
        config: PredictorConfig,
        table: std::sync::Arc<dyn crate::SharedTable>,
        kernel: K,
    ) -> Self {
        Predicted::with_predictor(
            bvh,
            Predictor::with_shared_table(config, bvh.bounds(), table),
            kernel,
        )
    }

    /// Wraps `kernel` around an existing (possibly pre-trained) predictor.
    pub fn with_predictor(bvh: &'a Bvh, predictor: Predictor, kernel: K) -> Self {
        let mirrored = predictor.stats();
        Predicted {
            predictor,
            bvh,
            kernel,
            obs: Arc::clone(rip_obs::Obs::global()),
            mirrored,
        }
    }

    /// Routes this kernel's `predictor.*` counters to `obs` instead of
    /// the process-wide default instance.
    pub fn with_obs(mut self, obs: Arc<rip_obs::Obs>) -> Self {
        self.obs = obs;
        self
    }

    /// Traces one ray, returning the full per-ray predictor accounting
    /// (outcome, split prediction/fallback stats, `k`).
    ///
    /// After every trace the predictor's cumulative
    /// [`PredictionStats`] are mirrored field-for-field into the
    /// attached [`Obs`](rip_obs::Obs) registry under `predictor.*`.
    pub fn trace_detailed(&mut self, ray: &Ray, kind: TraversalKind) -> PredictedTrace {
        let trace = match kind {
            TraversalKind::AnyHit => {
                trace_occlusion_with(&mut self.predictor, self.bvh, &mut self.kernel, ray)
            }
            TraversalKind::ClosestHit => {
                trace_closest_with(&mut self.predictor, self.bvh, &mut self.kernel, ray)
            }
        };
        self.mirror_stats();
        trace
    }

    /// Adds the not-yet-mirrored slice of the predictor's stats to the
    /// registry (saturating, so a caller resetting stats via
    /// [`Predicted::predictor_mut`] re-baselines instead of panicking).
    fn mirror_stats(&mut self) {
        let now = self.predictor.stats();
        let last = self.mirrored;
        let obs = &self.obs;
        obs.add("predictor.rays", now.rays.saturating_sub(last.rays));
        obs.add("predictor.hits", now.hits.saturating_sub(last.hits));
        obs.add(
            "predictor.predicted",
            now.predicted.saturating_sub(last.predicted),
        );
        obs.add(
            "predictor.verified",
            now.verified.saturating_sub(last.verified),
        );
        obs.add(
            "predictor.predicted_nodes_evaluated",
            now.predicted_nodes_evaluated
                .saturating_sub(last.predicted_nodes_evaluated),
        );
        obs.add(
            "predictor.prediction_eval_fetches",
            now.prediction_eval_fetches
                .saturating_sub(last.prediction_eval_fetches),
        );
        self.mirrored = now;
    }

    /// The predictor state (tables, prediction statistics).
    pub fn predictor(&self) -> &Predictor {
        &self.predictor
    }

    /// Mutable predictor access (for pre-training or stat resets).
    pub fn predictor_mut(&mut self) -> &mut Predictor {
        &mut self.predictor
    }

    /// Unwraps into the predictor, discarding the kernel.
    pub fn into_predictor(self) -> Predictor {
        self.predictor
    }

    /// The wrapped kernel.
    pub fn kernel(&self) -> &K {
        &self.kernel
    }

    /// The BVH predictions are trained on.
    pub fn bvh(&self) -> &'a Bvh {
        self.bvh
    }
}

impl<K: TraversalKernel> TraversalKernel for Predicted<'_, K> {
    fn name(&self) -> String {
        format!("predicted({})", self.kernel.name())
    }

    fn trace(&mut self, ray: &Ray, kind: TraversalKind) -> TraversalResult {
        let trace = self.trace_detailed(ray, kind);
        let mut stats = trace.prediction_stats;
        stats += trace.fallback_stats;
        TraversalResult {
            hit: trace.hit,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RayOutcome;
    use rip_bvh::{RayBatch, StacklessKernel, WhileWhileKernel, WideBvh, WideKernel};
    use rip_math::{Triangle, Vec3};

    fn floor() -> Vec<Triangle> {
        let mut tris = Vec::new();
        for i in 0..12 {
            for j in 0..12 {
                let o = Vec3::new(i as f32, 0.0, j as f32);
                tris.push(Triangle::new(o, o + Vec3::X, o + Vec3::Z));
                tris.push(Triangle::new(
                    o + Vec3::X,
                    o + Vec3::X + Vec3::Z,
                    o + Vec3::Z,
                ));
            }
        }
        tris
    }

    fn down_rays(n: usize) -> Vec<Ray> {
        (0..n)
            .map(|i| {
                let x = 0.3 + (i % 11) as f32;
                let z = 0.7 + (i % 7) as f32;
                Ray::new(Vec3::new(x, 2.0, z), -Vec3::Y)
            })
            .collect()
    }

    fn eager() -> PredictorConfig {
        PredictorConfig {
            update_delay: 0,
            ..PredictorConfig::paper_default()
        }
    }

    #[test]
    fn composes_with_all_three_bvh_kernels() {
        let tris = floor();
        let bvh = Bvh::build(&tris);
        let wide = WideBvh::from_binary(&bvh);
        let batch = RayBatch::from_rays(&down_rays(80));

        let mut reference = WhileWhileKernel::new(&bvh);
        let plain = reference.any_hit_batch(&batch);

        let mut ww = Predicted::new(&bvh, eager(), WhileWhileKernel::new(&bvh));
        let mut sl = Predicted::new(&bvh, eager(), StacklessKernel::new(&bvh));
        let mut wd = Predicted::new(&bvh, eager(), WideKernel::new(&wide, &bvh));
        for (name, kernel) in [
            ("ww", &mut ww as &mut dyn TraversalKernel),
            ("sl", &mut sl),
            ("wd", &mut wd),
        ] {
            // Two passes: train, then verify. Hits must match the bare
            // kernel on both.
            for pass in 0..2 {
                let got = kernel.any_hit_batch(&batch);
                for (i, (g, p)) in got.iter().zip(&plain).enumerate() {
                    assert_eq!(
                        g.hit.map(|h| h.tri_index.min(1)),
                        p.hit.map(|h| h.tri_index.min(1)),
                        "{name} pass {pass} ray {i}: occlusion answer changed"
                    );
                }
            }
        }
        for wrapped in [
            ww.predictor().stats().verified,
            sl.predictor().stats().verified,
            wd.predictor().stats().verified,
        ] {
            assert!(wrapped > 0, "second pass should verify rays");
        }
    }

    #[test]
    fn verified_rays_elide_fallback() {
        let bvh = Bvh::build(&floor());
        let mut k = Predicted::new(&bvh, eager(), WhileWhileKernel::new(&bvh));
        let ray = Ray::new(Vec3::new(5.3, 2.0, 5.3), -Vec3::Y);
        let first = k.trace_detailed(&ray, TraversalKind::AnyHit);
        assert_eq!(first.outcome, RayOutcome::NotPredicted);
        let second = k.trace_detailed(&ray, TraversalKind::AnyHit);
        assert_eq!(second.outcome, RayOutcome::Verified);
        assert_eq!(second.fallback_stats.node_fetches(), 0);
    }

    #[test]
    fn name_reflects_composition() {
        let bvh = Bvh::build(&floor());
        let k = Predicted::new(&bvh, eager(), StacklessKernel::new(&bvh));
        assert_eq!(k.name(), "predicted(stackless)");
    }

    #[test]
    fn closest_hit_stays_exact_under_wide_composition() {
        let tris = floor();
        let bvh = Bvh::build(&tris);
        let wide = WideBvh::from_binary(&bvh);
        let rays = down_rays(60);
        let mut k = Predicted::new(&bvh, eager(), WideKernel::new(&wide, &bvh));
        for pass in 0..2 {
            for (i, ray) in rays.iter().enumerate() {
                let got = k.trace(ray, TraversalKind::ClosestHit);
                let want = bvh.intersect(ray, TraversalKind::ClosestHit);
                assert_eq!(
                    got.hit.map(|h| (h.t.to_bits(), h.tri_index)),
                    want.hit.map(|h| (h.t.to_bits(), h.tri_index)),
                    "pass {pass} ray {i}: closest hit drifted"
                );
            }
        }
    }
}
