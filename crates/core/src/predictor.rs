//! The predictor module: table + hash + Go Up Level + training pipeline.

#[cfg(test)]
use crate::OracleMode;
use crate::{
    NodeCandidates, PredictionStats, PredictorConfig, PredictorTable, RayHasher, SharedTable,
};
use rip_bvh::{Bvh, NodeId};
use rip_math::{Aabb, Ray};
use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

/// A prediction returned by a table lookup: the ray hash that matched and
/// the node(s) to verify, in slot order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Prediction {
    /// The full ray hash (also the tag that matched).
    pub hash: u32,
    /// Predicted BVH nodes to start traversal from.
    pub nodes: NodeCandidates,
}

/// The table a predictor drives: its own single-owner [`PredictorTable`]
/// (the simulator's per-SM shape) or a [`SharedTable`] learned into by
/// many predictors at once (the service shape).
#[derive(Clone, Debug)]
enum TableBackend {
    Owned(PredictorTable),
    Shared(Arc<dyn SharedTable>),
}

impl TableBackend {
    fn lookup(&mut self, hash: u32) -> Option<NodeCandidates> {
        match self {
            TableBackend::Owned(t) => t.lookup(hash),
            TableBackend::Shared(t) => t.lookup(hash),
        }
    }

    fn insert(&mut self, hash: u32, node: NodeId) {
        match self {
            TableBackend::Owned(t) => t.insert(hash, node),
            TableBackend::Shared(t) => t.insert(hash, node),
        }
    }

    fn reward(&mut self, hash: u32, node: NodeId) {
        match self {
            TableBackend::Owned(t) => t.reward(hash, node),
            TableBackend::Shared(t) => t.reward(hash, node),
        }
    }

    fn stats(&self) -> crate::TableStats {
        match self {
            TableBackend::Owned(t) => t.stats(),
            TableBackend::Shared(t) => t.stats(),
        }
    }

    fn stored_nodes(&self) -> Vec<NodeId> {
        match self {
            TableBackend::Owned(t) => t.stored_nodes().collect(),
            TableBackend::Shared(t) => t.stored_nodes(),
        }
    }

    fn clear(&mut self) {
        match self {
            TableBackend::Owned(t) => t.clear(),
            TableBackend::Shared(t) => t.clear(),
        }
    }
}

/// The per-SM ray intersection predictor (§4).
///
/// Owns the predictor table, the ray hasher, the Go Up Level policy and the
/// training pipeline, including the in-flight update delay that models the
/// latency between a ray issuing and its traversal result becoming
/// available for training (removed by the OU oracle, §6.3).
///
/// # Examples
///
/// ```
/// use rip_bvh::Bvh;
/// use rip_core::{Predictor, PredictorConfig};
/// use rip_math::{Ray, Triangle, Vec3};
///
/// let bvh = Bvh::build(&[Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y)]);
/// let mut p = Predictor::new(PredictorConfig::paper_default(), bvh.bounds());
/// let ray = Ray::new(Vec3::new(0.2, 0.2, -1.0), Vec3::Z);
/// assert!(p.lookup(&ray).is_none(), "cold table has no predictions");
/// ```
#[derive(Clone, Debug)]
pub struct Predictor {
    config: PredictorConfig,
    hasher: RayHasher,
    table: TableBackend,
    /// Unbounded training store for the OT/OU oracles.
    unbounded_store: HashSet<NodeId>,
    /// Delayed training updates: `(apply_at_ray, hash, node)`.
    pending: VecDeque<(u64, u32, NodeId)>,
    ray_clock: u64,
    stats: PredictionStats,
}

impl Predictor {
    /// Creates a predictor for a scene with the given bounding box.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid.
    pub fn new(config: PredictorConfig, scene_bounds: Aabb) -> Self {
        let hasher = RayHasher::new(config.hash, scene_bounds);
        let table = TableBackend::Owned(PredictorTable::new(config));
        Predictor {
            config,
            hasher,
            table,
            unbounded_store: HashSet::new(),
            pending: VecDeque::new(),
            ray_clock: 0,
            stats: PredictionStats::default(),
        }
    }

    /// Creates a predictor whose table is a [`SharedTable`] learned into
    /// by many predictors at once (the `rip-serve` shape). Per-ray state
    /// — the training pipeline, in-flight update delay and outcome
    /// statistics — stays local to this predictor; only table lookups,
    /// insertions and rewards route through the shared backend.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid.
    pub fn with_shared_table(
        config: PredictorConfig,
        scene_bounds: Aabb,
        table: Arc<dyn SharedTable>,
    ) -> Self {
        config.validate().expect("invalid predictor configuration");
        let hasher = RayHasher::new(config.hash, scene_bounds);
        Predictor {
            config,
            hasher,
            table: TableBackend::Shared(table),
            unbounded_store: HashSet::new(),
            pending: VecDeque::new(),
            ray_clock: 0,
            stats: PredictionStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &PredictorConfig {
        &self.config
    }

    /// The bound hasher.
    pub fn hasher(&self) -> &RayHasher {
        &self.hasher
    }

    /// Outcome statistics accumulated by the trace functions.
    pub fn stats(&self) -> PredictionStats {
        self.stats
    }

    /// Mutable access for the trace functions in this crate and the timing
    /// simulator.
    pub fn stats_mut(&mut self) -> &mut PredictionStats {
        &mut self.stats
    }

    /// Table-level statistics (lookups, evictions, …).
    pub fn table_stats(&self) -> crate::TableStats {
        self.table.stats()
    }

    /// Advances the per-ray clock and applies training updates whose delay
    /// has elapsed. Call once per ray before [`Predictor::lookup`].
    pub fn begin_ray(&mut self) {
        self.ray_clock += 1;
        while let Some(&(due, hash, node)) = self.pending.front() {
            if due > self.ray_clock {
                break;
            }
            self.pending.pop_front();
            self.apply_update(hash, node);
        }
    }

    fn apply_update(&mut self, hash: u32, node: NodeId) {
        if self.config.oracle.unbounded() {
            self.unbounded_store.insert(node);
        } else {
            self.table.insert(hash, node);
        }
    }

    /// Hashes a ray with the configured function.
    pub fn hash_ray(&self, ray: &Ray) -> u32 {
        self.hasher.hash(ray)
    }

    /// Performs the realistic (hashed) predictor lookup.
    ///
    /// Oracle modes do not use this path — see
    /// [`Predictor::oracle_lookup`].
    pub fn lookup(&mut self, ray: &Ray) -> Option<Prediction> {
        let hash = self.hash_ray(ray);
        self.lookup_hashed(hash)
    }

    /// [`Predictor::lookup`] for an already-computed ray hash. The
    /// spherical hash costs real trigonometry, so the per-ray flow
    /// hashes once and shares the value between lookup and training —
    /// exactly as the hardware unit computes it a single time per ray.
    pub fn lookup_hashed(&mut self, hash: u32) -> Option<Prediction> {
        self.table
            .lookup(hash)
            .map(|nodes| Prediction { hash, nodes })
    }

    /// Oracle lookup (§6.3): returns the deepest stored node lying on the
    /// given root-ward `ancestor_chain` of the ray's true hit leaf
    /// (`chain[0]` = leaf, ascending). Approximates "always identify the
    /// correct entry if one exists" — see DESIGN.md for why ancestors of
    /// the verified hit leaf are the verifying candidates.
    pub fn oracle_lookup(&mut self, ray: &Ray, ancestor_chain: &[NodeId]) -> Option<Prediction> {
        let hash = self.hash_ray(ray);
        if self.config.oracle.unbounded() {
            ancestor_chain
                .iter()
                .find(|n| self.unbounded_store.contains(n))
                .map(|&n| Prediction {
                    hash,
                    nodes: NodeCandidates::single(n),
                })
        } else {
            let stored: HashSet<NodeId> = self.table.stored_nodes().into_iter().collect();
            ancestor_chain
                .iter()
                .find(|n| stored.contains(n))
                .map(|&n| Prediction {
                    hash,
                    nodes: NodeCandidates::single(n),
                })
        }
    }

    /// Trains the predictor from a verified or fully-traversed hit: stores
    /// the Go-Up-Level ancestor of the intersected leaf under the ray's
    /// hash, after the configured in-flight delay.
    pub fn train(&mut self, bvh: &Bvh, hash: u32, hit_leaf: NodeId) {
        let node = bvh.ancestor(hit_leaf, self.config.go_up_level);
        if self.config.update_delay == 0 {
            self.apply_update(hash, node);
        } else {
            let due = self.ray_clock + self.config.update_delay as u64;
            self.pending.push_back((due, hash, node));
        }
    }

    /// Rewards the node that verified a prediction (feeds LFU/LRU-K).
    pub fn reward(&mut self, hash: u32, node: NodeId) {
        self.table.reward(hash, node);
    }

    /// Discards all learned state (table contents, unbounded store and
    /// in-flight updates), keeping statistics. Used between frames by the
    /// dynamic-scene study to model a predictor that is flushed on every
    /// acceleration-structure update, versus one whose state persists
    /// across refits (§8 future work).
    pub fn clear_learned_state(&mut self) {
        self.table.clear();
        self.unbounded_store.clear();
        self.pending.clear();
    }

    /// Number of nodes in the oracle's unbounded store (0 for realistic
    /// configurations).
    pub fn unbounded_store_len(&self) -> usize {
        self.unbounded_store.len()
    }

    /// Training updates still in flight.
    pub fn pending_updates(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_math::{Triangle, Vec3};

    fn test_bvh() -> Bvh {
        let mut tris = Vec::new();
        for i in 0..32 {
            let o = Vec3::new((i % 8) as f32, 0.0, (i / 8) as f32);
            tris.push(Triangle::new(o, o + Vec3::X, o + Vec3::Z));
        }
        Bvh::build(&tris)
    }

    fn immediate_config() -> PredictorConfig {
        PredictorConfig {
            update_delay: 0,
            ..PredictorConfig::paper_default()
        }
    }

    #[test]
    fn train_then_lookup_same_hash() {
        let bvh = test_bvh();
        let mut p = Predictor::new(immediate_config(), bvh.bounds());
        let ray = Ray::new(Vec3::new(2.5, 3.0, 2.5), -Vec3::Y);
        let hash = p.hash_ray(&ray);
        let leaf = bvh.leaf_of_triangle(0).unwrap();
        p.begin_ray();
        p.train(&bvh, hash, leaf);
        let pred = p.lookup(&ray).expect("trained entry must be found");
        assert_eq!(pred.hash, hash);
        assert_eq!(pred.nodes, vec![bvh.ancestor(leaf, 3)]);
    }

    #[test]
    fn update_delay_defers_visibility() {
        let bvh = test_bvh();
        let config = PredictorConfig {
            update_delay: 3,
            ..PredictorConfig::paper_default()
        };
        let mut p = Predictor::new(config, bvh.bounds());
        let ray = Ray::new(Vec3::new(2.5, 3.0, 2.5), -Vec3::Y);
        let hash = p.hash_ray(&ray);
        let leaf = bvh.leaf_of_triangle(0).unwrap();
        p.begin_ray();
        p.train(&bvh, hash, leaf);
        for _ in 0..2 {
            p.begin_ray();
            assert!(p.lookup(&ray).is_none(), "update visible too early");
        }
        p.begin_ray();
        p.begin_ray();
        assert!(
            p.lookup(&ray).is_some(),
            "update should be visible after the delay"
        );
    }

    #[test]
    fn go_up_level_zero_stores_leaf_itself() {
        let bvh = test_bvh();
        let config = PredictorConfig {
            go_up_level: 0,
            update_delay: 0,
            ..Default::default()
        };
        let mut p = Predictor::new(config, bvh.bounds());
        let ray = Ray::new(Vec3::new(0.2, 3.0, 0.2), -Vec3::Y);
        let hash = p.hash_ray(&ray);
        let leaf = bvh.leaf_of_triangle(0).unwrap();
        p.train(&bvh, hash, leaf);
        assert_eq!(p.lookup(&ray).unwrap().nodes, vec![leaf]);
    }

    #[test]
    fn oracle_lookup_finds_stored_ancestor() {
        let bvh = test_bvh();
        let config = immediate_config().with_oracle(OracleMode::UnboundedTraining);
        let mut p = Predictor::new(config, bvh.bounds());
        let ray = Ray::new(Vec3::new(0.2, 3.0, 0.2), -Vec3::Y);
        let hash = p.hash_ray(&ray);
        let leaf = bvh.leaf_of_triangle(0).unwrap();
        p.train(&bvh, hash, leaf);
        assert_eq!(p.unbounded_store_len(), 1);
        // Build the chain leaf → root.
        let mut chain = vec![leaf];
        while let Some(parent) = bvh.node(*chain.last().unwrap()).parent {
            chain.push(parent);
        }
        let pred = p
            .oracle_lookup(&ray, &chain)
            .expect("stored ancestor on chain");
        assert_eq!(pred.nodes, vec![bvh.ancestor(leaf, 3)]);
        // A chain that avoids the stored node yields no prediction.
        assert!(p.oracle_lookup(&ray, &[]).is_none());
    }

    #[test]
    fn oracle_finite_lookup_searches_table() {
        let bvh = test_bvh();
        let config = immediate_config().with_oracle(OracleMode::Lookup);
        let mut p = Predictor::new(config, bvh.bounds());
        // OracleMode::Lookup is not unbounded: training goes to the table.
        let ray = Ray::new(Vec3::new(0.2, 3.0, 0.2), -Vec3::Y);
        let hash = p.hash_ray(&ray);
        let leaf = bvh.leaf_of_triangle(0).unwrap();
        p.train(&bvh, hash, leaf);
        let stored = bvh.ancestor(leaf, 3);
        let pred = p.oracle_lookup(&ray, &[stored]).unwrap();
        assert_eq!(pred.nodes, vec![stored]);
    }

    #[test]
    fn cold_lookup_misses() {
        let bvh = test_bvh();
        let mut p = Predictor::new(immediate_config(), bvh.bounds());
        assert!(p.lookup(&Ray::new(Vec3::ONE, Vec3::Z)).is_none());
    }
}
