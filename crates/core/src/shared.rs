//! Shared predictor tables for concurrent front-ends.
//!
//! The per-SM [`PredictorTable`] is single-owner: every operation takes
//! `&mut self`, which is the right shape for the paper's simulator but
//! not for a service that traces many tenants' rays on a thread pool.
//! This module adds:
//!
//! * [`SharedTable`] — the object-safe trait a predictor backend must
//!   implement to be driven through a shared reference, and
//! * [`ConcurrentPredictorTable`] — a lock-striped implementation that
//!   splits one logical table into `shards` independent
//!   [`PredictorTable`]s, each behind its own mutex, selected by a
//!   multiplicative hash of the ray-hash tag.
//!
//! With `shards == 1` the concurrent table is literally a mutex around
//! today's table: the single shard receives every operation in program
//! order, so its behaviour (stats, LRU aging, evictions) is
//! bit-identical to the single-owner path. That equivalence is what the
//! differential tests in `tests/concurrent_table.rs` pin down.

use crate::{NodeCandidates, PredictorConfig, PredictorTable, TableStats};
use rip_bvh::NodeId;
use std::sync::Mutex;

/// An object-safe predictor-table backend usable through `&self` from
/// many threads at once.
///
/// Semantics mirror the single-owner [`PredictorTable`] methods of the
/// same name; implementations supply their own interior mutability.
pub trait SharedTable: Send + Sync + std::fmt::Debug {
    /// Full lookup: accounts the access and returns the stored
    /// candidates on a tag match (see [`PredictorTable::lookup`]).
    fn lookup(&self, hash: u32) -> Option<NodeCandidates>;

    /// Read-only probe that leaves statistics and aging untouched (see
    /// [`PredictorTable::peek`]).
    fn peek(&self, hash: u32) -> Option<NodeCandidates>;

    /// Stores a trained `(hash, node)` pair (see
    /// [`PredictorTable::insert`]).
    fn insert(&self, hash: u32, node: NodeId);

    /// Rewards a node that verified a prediction (see
    /// [`PredictorTable::reward`]).
    fn reward(&self, hash: u32, node: NodeId);

    /// Aggregate statistics over the whole logical table.
    fn stats(&self) -> TableStats;

    /// Valid entries currently stored across the whole logical table.
    fn occupancy(&self) -> usize;

    /// Every node currently stored (order unspecified across shards).
    fn stored_nodes(&self) -> Vec<NodeId>;

    /// Removes all entries, keeping statistics.
    fn clear(&self);
}

/// Golden-ratio multiplicative constant used to spread ray hashes over
/// shards independently of the per-shard set-index bits.
const SHARD_MIX: u32 = 0x9E37_79B9;

/// A lock-striped concurrent predictor table: `shards` independent
/// [`PredictorTable`]s, each guarded by its own [`Mutex`], with a ray
/// hash routed to a shard by the *top* bits of a multiplicative mix so
/// shard choice stays independent of each shard's set-index bits (which
/// use the low bits via `fold_hash`).
///
/// The configured `entries` budget is divided evenly across shards, so
/// the total capacity matches a single-owner table of the same
/// configuration and `shards == 1` reproduces it exactly.
///
/// # Examples
///
/// ```
/// use rip_bvh::NodeId;
/// use rip_core::{ConcurrentPredictorTable, PredictorConfig, SharedTable};
///
/// let table = ConcurrentPredictorTable::new(PredictorConfig::paper_default(), 4);
/// table.insert(0xBEEF, NodeId::new(7));
/// assert_eq!(table.lookup(0xBEEF).as_deref(), Some(&[NodeId::new(7)][..]));
/// assert_eq!(table.stats().tag_hits, 1);
/// ```
#[derive(Debug)]
pub struct ConcurrentPredictorTable {
    shards: Vec<Mutex<PredictorTable>>,
    shard_bits: u32,
}

impl ConcurrentPredictorTable {
    /// Creates a table with `shards` lock stripes (rounded up to a
    /// power of two), dividing the configured entry budget evenly.
    ///
    /// # Panics
    ///
    /// Panics when the per-shard configuration is invalid — e.g. the
    /// entry budget does not divide into `shards` tables with at least
    /// one set each.
    pub fn new(config: PredictorConfig, shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        assert!(
            config.entries.is_multiple_of(shards),
            "entry budget {} does not divide across {} shards",
            config.entries,
            shards
        );
        let shard_config = PredictorConfig {
            entries: config.entries / shards,
            ..config
        };
        let stripes = (0..shards)
            .map(|_| Mutex::new(PredictorTable::new(shard_config)))
            .collect();
        ConcurrentPredictorTable {
            shards: stripes,
            shard_bits: shards.trailing_zeros(),
        }
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a ray hash routes to.
    pub fn shard_of(&self, hash: u32) -> usize {
        if self.shard_bits == 0 {
            return 0;
        }
        (hash.wrapping_mul(SHARD_MIX) >> (32 - self.shard_bits)) as usize
    }

    fn shard(&self, hash: u32) -> std::sync::MutexGuard<'_, PredictorTable> {
        // A poisoned mutex means another worker panicked mid-operation;
        // the table itself is plain data, so keep serving.
        self.shards[self.shard_of(hash)]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }
}

impl SharedTable for ConcurrentPredictorTable {
    fn lookup(&self, hash: u32) -> Option<NodeCandidates> {
        self.shard(hash).lookup(hash)
    }

    fn peek(&self, hash: u32) -> Option<NodeCandidates> {
        self.shard(hash).peek(hash)
    }

    fn insert(&self, hash: u32, node: NodeId) {
        self.shard(hash).insert(hash, node);
    }

    fn reward(&self, hash: u32, node: NodeId) {
        self.shard(hash).reward(hash, node);
    }

    fn stats(&self) -> TableStats {
        let mut total = TableStats::default();
        for shard in &self.shards {
            let s = shard.lock().unwrap_or_else(|e| e.into_inner()).stats();
            total.lookups += s.lookups;
            total.tag_hits += s.tag_hits;
            total.insertions += s.insertions;
            total.entry_evictions += s.entry_evictions;
            total.node_evictions += s.node_evictions;
        }
        total
    }

    fn occupancy(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).occupancy())
            .sum()
    }

    fn stored_nodes(&self) -> Vec<NodeId> {
        self.shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .stored_nodes()
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> PredictorConfig {
        PredictorConfig::paper_default()
    }

    #[test]
    fn single_shard_matches_owned_table() {
        let shared = ConcurrentPredictorTable::new(config(), 1);
        let mut owned = PredictorTable::new(config());
        let hashes: Vec<u32> = (0..512)
            .map(|i| (i * 2654435761u64 % 65536) as u32)
            .collect();
        for (i, &h) in hashes.iter().enumerate() {
            let node = NodeId::new((i % 97) as u32);
            shared.insert(h, node);
            owned.insert(h, node);
            let a = shared.lookup(h);
            let b = owned.lookup(h);
            assert_eq!(a, b, "lookup diverged at op {i}");
        }
        assert_eq!(shared.stats(), owned.stats());
        assert_eq!(shared.occupancy(), owned.occupancy());
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let t = ConcurrentPredictorTable::new(config(), 3);
        assert_eq!(t.shard_count(), 4);
        let t = ConcurrentPredictorTable::new(config(), 0);
        assert_eq!(t.shard_count(), 1);
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        let t = ConcurrentPredictorTable::new(config(), 8);
        for h in 0..10_000u32 {
            let s = t.shard_of(h);
            assert!(s < 8);
            assert_eq!(s, t.shard_of(h));
        }
    }

    #[test]
    fn clear_keeps_stats() {
        let t = ConcurrentPredictorTable::new(config(), 4);
        t.insert(1, NodeId::new(1));
        t.insert(2, NodeId::new(2));
        assert!(t.occupancy() > 0);
        t.clear();
        assert_eq!(t.occupancy(), 0);
        assert_eq!(t.stats().insertions, 2);
        assert!(t.stored_nodes().is_empty());
    }

    #[test]
    fn peek_does_not_perturb_stats() {
        let t = ConcurrentPredictorTable::new(config(), 2);
        t.insert(42, NodeId::new(5));
        let before = t.stats();
        assert!(t.peek(42).is_some());
        assert!(t.peek(43).is_none());
        assert_eq!(t.stats(), before);
    }
}
