//! Trace-level (functional) simulation of a whole ray workload.
//!
//! Where the paper reports *memory-access* and *rate* metrics (Figures
//! 1-left, 2, 14; Tables 5–8 rates) it does not need cycle timing — only
//! faithful counting of traversal work with and without the predictor.
//! [`FunctionalSim`] provides exactly that; the cycle-level model lives in
//! `rip-gpusim`.

use crate::{
    eval_probe, trace_closest_with_hash, trace_closest_with_probe, trace_occlusion_with_hash,
    trace_occlusion_with_probe, Eq1Model, PredictionStats, Predictor, PredictorConfig, RayHasher,
    RayOutcome,
};
use rip_bvh::ript::{RayTraceSet, RecordedKernel};
use rip_bvh::{
    Bvh, NodeId, NodeKind, RayBatch, Traversal, TraversalKind, TraversalStats, WhileWhileKernel,
};
use rip_math::Ray;

/// Options orthogonal to the predictor configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimOptions {
    /// Independent predictors (one per SM, §6.2.5); warps are distributed
    /// round-robin across them.
    pub num_predictors: usize,
    /// Rays per warp (Table 2).
    pub warp_size: usize,
    /// Classify baseline accesses into first-touch vs repeated (Figure 1
    /// left). Costs one bit per node/triangle.
    pub classify_accesses: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            num_predictors: 1,
            warp_size: 32,
            classify_accesses: true,
        }
    }
}

/// Aggregate results of a functional simulation.
#[derive(Clone, Debug, Default)]
pub struct FunctionalReport {
    /// Rays traced.
    pub rays: u64,
    /// Prediction outcome statistics (p, v, k, m, …).
    pub prediction: PredictionStats,
    /// Total cost of full traversals for every ray (the baseline).
    pub baseline: TraversalStats,
    /// Total cost actually paid under the predictor
    /// (prediction evaluation + fallbacks).
    pub with_predictor: TraversalStats,
    /// Prediction-evaluation cost alone (the `p·k·m` term).
    pub prediction_eval: TraversalStats,
    /// Prediction-evaluation cost of mispredicted rays (wasteful accesses,
    /// Figure 13).
    pub wasted_prediction_eval: TraversalStats,
    /// Baseline node fetches touching a node for the first time in the
    /// render.
    pub first_touch_node_fetches: u64,
    /// Baseline node fetches to already-touched nodes ("Repeated BVH Node
    /// Accesses", ~88% in Figure 1).
    pub repeated_node_fetches: u64,
    /// Baseline triangle fetches touching a triangle for the first time.
    pub first_touch_tri_fetches: u64,
    /// Baseline triangle fetches to already-touched triangles.
    pub repeated_tri_fetches: u64,
}

impl FunctionalReport {
    /// Fractional reduction of total memory accesses
    /// (`1 − with/baseline`); ~13% in §6.
    pub fn memory_savings(&self) -> f64 {
        savings(
            self.with_predictor.memory_accesses(),
            self.baseline.memory_accesses(),
        )
    }

    /// Fractional reduction of BVH node fetches.
    pub fn node_savings(&self) -> f64 {
        savings(
            self.with_predictor.node_fetches(),
            self.baseline.node_fetches(),
        )
    }

    /// Fractional reduction of triangle fetches.
    pub fn tri_savings(&self) -> f64 {
        savings(self.with_predictor.tri_fetches, self.baseline.tri_fetches)
    }

    /// Measured node fetches skipped per ray (the "Actual" column of
    /// Table 5).
    pub fn actual_nodes_skipped_per_ray(&self) -> f64 {
        if self.rays == 0 {
            return 0.0;
        }
        (self.baseline.node_fetches() as f64 - self.with_predictor.node_fetches() as f64)
            / self.rays as f64
    }

    /// The Equation 1 model instantiated from this run's measured averages
    /// (the "Estimated" column of Table 5).
    pub fn eq1_model(&self) -> Eq1Model {
        Eq1Model {
            p: self.prediction.predicted_rate(),
            v: self.prediction.verified_rate(),
            n: if self.rays == 0 {
                0.0
            } else {
                self.baseline.node_fetches() as f64 / self.rays as f64
            },
            k: self.prediction.mean_k(),
            m: self.prediction.mean_m(),
        }
    }

    /// Extra accesses introduced by the predictor as a fraction of the
    /// baseline (the "+9%" of §6).
    pub fn prediction_overhead_fraction(&self) -> f64 {
        if self.baseline.memory_accesses() == 0 {
            0.0
        } else {
            self.prediction_eval.memory_accesses() as f64 / self.baseline.memory_accesses() as f64
        }
    }

    /// Wasteful (mispredicted) accesses as a fraction of the baseline
    /// (the "5.5%" of §6).
    pub fn wasted_fraction(&self) -> f64 {
        if self.baseline.memory_accesses() == 0 {
            0.0
        } else {
            self.wasted_prediction_eval.memory_accesses() as f64
                / self.baseline.memory_accesses() as f64
        }
    }

    /// Fraction of baseline memory accesses that are repeated BVH node
    /// fetches (Figure 1 left, ~88%).
    pub fn repeated_node_access_fraction(&self) -> f64 {
        let total = self.first_touch_node_fetches
            + self.repeated_node_fetches
            + self.first_touch_tri_fetches
            + self.repeated_tri_fetches;
        if total == 0 {
            0.0
        } else {
            self.repeated_node_fetches as f64 / total as f64
        }
    }
}

fn savings(with: u64, without: u64) -> f64 {
    if without == 0 {
        0.0
    } else {
        1.0 - with as f64 / without as f64
    }
}

/// Functional (trace-level) simulator.
#[derive(Clone, Debug)]
pub struct FunctionalSim {
    config: PredictorConfig,
    options: SimOptions,
}

impl FunctionalSim {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics when the predictor configuration is invalid or
    /// `num_predictors`/`warp_size` is zero.
    pub fn new(config: PredictorConfig, options: SimOptions) -> Self {
        config.validate().expect("invalid predictor configuration");
        assert!(options.num_predictors > 0, "need at least one predictor");
        assert!(options.warp_size > 0, "warp size must be positive");
        FunctionalSim { config, options }
    }

    /// Runs an occlusion (any-hit) workload; the paper's primary AO
    /// experiment. Convenience wrapper over [`FunctionalSim::run_batch`].
    pub fn run(&self, bvh: &Bvh, rays: &[Ray]) -> FunctionalReport {
        self.run_batch(bvh, &RayBatch::from_rays(rays))
    }

    /// Runs an occlusion (any-hit) workload over an SoA ray batch.
    pub fn run_batch(&self, bvh: &Bvh, batch: &RayBatch) -> FunctionalReport {
        self.run_kind(bvh, batch, TraversalKind::AnyHit, None, None)
    }

    /// The ray hasher this simulator's predictors use over `bvh`'s scene
    /// bounds. Exposed so batch drivers can precompute and memoize a
    /// workload's hash stream (see [`FunctionalSim::hash_batch`]) keyed
    /// by [`RayHasher::fingerprint`].
    pub fn hasher(&self, bvh: &Bvh) -> RayHasher {
        RayHasher::new(self.config.hash, bvh.bounds())
    }

    /// Hashes every ray of `batch` with this simulator's hasher — the
    /// stream accepted by the `*_hashed` run entry points. The hash is a
    /// pure per-ray function, so one stream serves every run of the same
    /// workload under the same hash configuration (a parameter sweep
    /// re-hashes nothing).
    pub fn hash_batch(&self, bvh: &Bvh, batch: &RayBatch) -> Vec<u32> {
        let hasher = self.hasher(bvh);
        (0..batch.len())
            .map(|i| hasher.hash(&batch.ray(i)))
            .collect()
    }

    /// [`FunctionalSim::run_batch`] with a precomputed hash stream from
    /// [`FunctionalSim::hash_batch`]. The report is byte-identical to the
    /// unhashed run.
    ///
    /// # Panics
    ///
    /// Panics when `hashes` does not cover the batch.
    pub fn run_batch_hashed(
        &self,
        bvh: &Bvh,
        batch: &RayBatch,
        hashes: &[u32],
    ) -> FunctionalReport {
        self.check_hashes(bvh, batch, hashes);
        self.run_kind(bvh, batch, TraversalKind::AnyHit, None, Some(hashes))
    }

    fn check_hashes(&self, bvh: &Bvh, batch: &RayBatch, hashes: &[u32]) {
        assert_eq!(
            hashes.len(),
            batch.len(),
            "hash stream does not cover the batch"
        );
        // Spot-check the stream against this simulator's hasher; a full
        // check would cost what the precomputation saved.
        if let Some(first) = hashes.first() {
            debug_assert_eq!(
                *first,
                self.hasher(bvh).hash(&batch.ray(0)),
                "hash stream was computed by a different hasher"
            );
        }
    }

    /// [`FunctionalSim::run_batch`] with every full traversal — the
    /// baseline and the not-predicted / mispredicted fallbacks — replayed
    /// from a recorded [`RayTraceSet`] instead of stepping the BVH. The
    /// report is byte-identical to the live run (the trace records the
    /// exact node/triangle streams); only prediction probes and trimmed
    /// legs, which depend on live predictor state, still traverse.
    ///
    /// # Errors
    ///
    /// Returns the mismatch when `trace` was not captured for any-hit
    /// over exactly this BVH and batch.
    pub fn run_batch_replay(
        &self,
        bvh: &Bvh,
        batch: &RayBatch,
        trace: &RayTraceSet,
    ) -> Result<FunctionalReport, String> {
        self.check_trace(bvh, batch, trace, TraversalKind::AnyHit)?;
        Ok(self.run_kind(bvh, batch, TraversalKind::AnyHit, Some(trace), None))
    }

    /// [`FunctionalSim::run_batch_replay`] with a precomputed hash stream
    /// (see [`FunctionalSim::run_batch_hashed`]).
    ///
    /// # Errors
    ///
    /// Returns the mismatch when `trace` was not captured for any-hit
    /// over exactly this BVH and batch.
    ///
    /// # Panics
    ///
    /// Panics when `hashes` does not cover the batch.
    pub fn run_batch_replay_hashed(
        &self,
        bvh: &Bvh,
        batch: &RayBatch,
        trace: &RayTraceSet,
        hashes: &[u32],
    ) -> Result<FunctionalReport, String> {
        self.check_hashes(bvh, batch, hashes);
        self.check_trace(bvh, batch, trace, TraversalKind::AnyHit)?;
        Ok(self.run_kind(bvh, batch, TraversalKind::AnyHit, Some(trace), Some(hashes)))
    }

    /// Runs a closest-hit workload with prediction-based ray trimming
    /// (GI, §6.4). Convenience wrapper over
    /// [`FunctionalSim::run_closest_batch`].
    pub fn run_closest(&self, bvh: &Bvh, rays: &[Ray]) -> FunctionalReport {
        self.run_closest_batch(bvh, &RayBatch::from_rays(rays))
    }

    /// Runs a closest-hit workload over an SoA ray batch.
    pub fn run_closest_batch(&self, bvh: &Bvh, batch: &RayBatch) -> FunctionalReport {
        self.run_kind(bvh, batch, TraversalKind::ClosestHit, None, None)
    }

    /// [`FunctionalSim::run_closest_batch`] replaying full traversals
    /// from a recorded closest-hit [`RayTraceSet`] (see
    /// [`FunctionalSim::run_batch_replay`]). Trimmed verified legs carry
    /// a live-state-dependent `t_max` no trace can record; they fall back
    /// to live traversal inside the kernel, keeping the report
    /// byte-identical.
    ///
    /// # Errors
    ///
    /// Returns the mismatch when `trace` was not captured for closest-hit
    /// over exactly this BVH and batch.
    pub fn run_closest_batch_replay(
        &self,
        bvh: &Bvh,
        batch: &RayBatch,
        trace: &RayTraceSet,
    ) -> Result<FunctionalReport, String> {
        self.check_trace(bvh, batch, trace, TraversalKind::ClosestHit)?;
        Ok(self.run_kind(bvh, batch, TraversalKind::ClosestHit, Some(trace), None))
    }

    fn check_trace(
        &self,
        bvh: &Bvh,
        batch: &RayBatch,
        trace: &RayTraceSet,
        kind: TraversalKind,
    ) -> Result<(), String> {
        if trace.kind() != kind {
            return Err(format!(
                "trace records {:?} but the workload is {kind:?}",
                trace.kind()
            ));
        }
        trace.attach(bvh, batch)
    }

    fn run_kind(
        &self,
        bvh: &Bvh,
        batch: &RayBatch,
        kind: TraversalKind,
        replay: Option<&RayTraceSet>,
        hashes: Option<&[u32]>,
    ) -> FunctionalReport {
        let mut predictors: Vec<Predictor> = (0..self.options.num_predictors)
            .map(|_| Predictor::new(self.config, bvh.bounds()))
            .collect();
        let mut report = FunctionalReport {
            rays: batch.len() as u64,
            ..Default::default()
        };
        // First-touch tracking is only consulted when classification is
        // on; skip zeroing scene-sized buffers otherwise.
        let (mut node_seen, mut tri_seen) = if self.options.classify_accesses {
            (
                vec![false; bvh.node_count()],
                vec![false; bvh.triangle_count()],
            )
        } else {
            (Vec::new(), Vec::new())
        };

        for i in 0..batch.len() {
            let ray = &batch.ray(i);
            let warp = i / self.options.warp_size;
            let predictor = &mut predictors[warp % self.options.num_predictors];

            let hash = match hashes {
                Some(h) => h[i],
                None => predictor.hash_ray(ray),
            };
            let trace = match (kind, replay) {
                (TraversalKind::AnyHit, None) => {
                    let mut kernel = WhileWhileKernel::new(bvh);
                    trace_occlusion_with_hash(predictor, bvh, &mut kernel, ray, hash)
                }
                (TraversalKind::ClosestHit, None) => {
                    let mut kernel = WhileWhileKernel::new(bvh);
                    trace_closest_with_hash(predictor, bvh, &mut kernel, ray, hash)
                }
                (TraversalKind::AnyHit, Some(set)) => {
                    let mut kernel = RecordedKernel::new(bvh, set, i, ray);
                    trace_occlusion_with_probe(predictor, bvh, &mut kernel, ray, hash, &mut |n| {
                        memoized_probe(set, i, bvh, ray, n)
                    })
                }
                (TraversalKind::ClosestHit, Some(set)) => {
                    let mut kernel = RecordedKernel::new(bvh, set, i, ray);
                    trace_closest_with_probe(predictor, bvh, &mut kernel, ray, hash, &mut |n| {
                        memoized_probe(set, i, bvh, ray, n)
                    })
                }
            };
            report.with_predictor += trace.prediction_stats;
            report.with_predictor += trace.fallback_stats;
            report.prediction_eval += trace.prediction_stats;
            if trace.outcome == RayOutcome::Mispredicted {
                report.wasted_prediction_eval += trace.prediction_stats;
            }

            // Baseline: the full traversal this ray would have done alone.
            // For non-verified occlusion rays the fallback *is* the full
            // traversal; verified rays (and all closest-hit rays, whose
            // fallback was trimmed) need a separate baseline run.
            let baseline_stats = if kind == TraversalKind::AnyHit
                && trace.outcome != RayOutcome::Verified
                && !self.options.classify_accesses
            {
                trace.fallback_stats
            } else if let Some(set) = replay {
                // The recorded streams are the baseline traversal: walk
                // them for first-touch classification without re-stepping.
                if self.options.classify_accesses {
                    let mut leaf_visit = 0usize;
                    let counts = set.leaf_prefix_counts(i);
                    for &raw in set.node_steps(i) {
                        let node_id = NodeId::new(raw);
                        let idx = node_id.index() as usize;
                        if node_seen[idx] {
                            report.repeated_node_fetches += 1;
                        } else {
                            node_seen[idx] = true;
                            report.first_touch_node_fetches += 1;
                        }
                        if matches!(bvh.node(node_id).kind, NodeKind::Leaf { .. }) {
                            let tested = counts[leaf_visit] as usize;
                            leaf_visit += 1;
                            for (t, _) in bvh.leaf_triangles(node_id).take(tested) {
                                if tri_seen[t as usize] {
                                    report.repeated_tri_fetches += 1;
                                } else {
                                    tri_seen[t as usize] = true;
                                    report.first_touch_tri_fetches += 1;
                                }
                            }
                        }
                    }
                }
                set.full_result(i).stats
            } else {
                let mut traversal = Traversal::new(kind);
                if self.options.classify_accesses {
                    while let Some(node_id) = traversal.current_request() {
                        let idx = node_id.index() as usize;
                        let is_leaf = matches!(bvh.node(node_id).kind, NodeKind::Leaf { .. });
                        if node_seen[idx] {
                            report.repeated_node_fetches += 1;
                        } else {
                            node_seen[idx] = true;
                            report.first_touch_node_fetches += 1;
                        }
                        let event = traversal.step(bvh, ray);
                        if is_leaf {
                            if let rip_bvh::StepEvent::Leaf { tris_tested, .. } = event {
                                for t in tris_tested {
                                    if tri_seen[t as usize] {
                                        report.repeated_tri_fetches += 1;
                                    } else {
                                        tri_seen[t as usize] = true;
                                        report.first_touch_tri_fetches += 1;
                                    }
                                }
                            }
                        }
                    }
                    traversal.stats()
                } else {
                    traversal.run(bvh, ray).stats
                }
            };
            report.baseline += baseline_stats;
        }

        for p in predictors {
            report.prediction += p.stats();
        }
        report
    }
}

/// The replay-path probe evaluator: single-seed-node probes (the common
/// shape — training stores one Go-Up-Level ancestor) are memoized on the
/// trace set, because across a sweep the same ray is almost always handed
/// the same predicted node. Multi-node candidate sets evaluate directly.
/// Either way the returned result is exactly [`eval_probe`]'s, so
/// replayed reports stay byte-identical to live runs.
fn memoized_probe(
    set: &RayTraceSet,
    ray_index: usize,
    bvh: &Bvh,
    ray: &Ray,
    nodes: &[NodeId],
) -> rip_bvh::TraversalResult {
    match nodes {
        [node] => set.probe_cached(ray_index as u32, *node, || eval_probe(bvh, ray, nodes)),
        _ => eval_probe(bvh, ray, nodes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use rip_math::{Triangle, Vec3};

    fn floor_bvh() -> Bvh {
        let mut tris = Vec::new();
        for i in 0..24 {
            for j in 0..24 {
                let o = Vec3::new(i as f32, 0.0, j as f32);
                tris.push(Triangle::new(o, o + Vec3::X, o + Vec3::Z));
                tris.push(Triangle::new(
                    o + Vec3::X,
                    o + Vec3::X + Vec3::Z,
                    o + Vec3::Z,
                ));
            }
        }
        Bvh::build(&tris)
    }

    /// AO-like workload: 4 hemisphere rays per hit point, hit points packed
    /// into a region small enough that the 15-bit hash space is densely
    /// trained (the paper achieves density with 4.2M rays; tests shrink the
    /// region instead).
    fn ao_like_rays(n: usize, seed: u64) -> Vec<Ray> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut rays = Vec::with_capacity(n);
        while rays.len() < n {
            let o = Vec3::new(
                rng.gen_range(4.0..10.0),
                rng.gen_range(0.3..0.8),
                rng.gen_range(4.0..10.0),
            );
            for _ in 0..4 {
                // Downward AO rays from a virtual surface above the floor.
                let d =
                    rip_math::sampling::cosine_hemisphere_around(-Vec3::Y, rng.gen(), rng.gen());
                rays.push(Ray::segment(o, d, 6.0));
                if rays.len() == n {
                    break;
                }
            }
        }
        rays
    }

    fn quick_config() -> PredictorConfig {
        PredictorConfig {
            update_delay: 8,
            ..PredictorConfig::paper_default()
        }
    }

    #[test]
    fn predictor_saves_node_fetches_on_coherent_ao() {
        let bvh = floor_bvh();
        let rays = ao_like_rays(3000, 7);
        let sim = FunctionalSim::new(quick_config(), SimOptions::default());
        let report = sim.run(&bvh, &rays);
        assert!(
            report.prediction.verified_rate() > 0.1,
            "v = {}",
            report.prediction.verified_rate()
        );
        assert!(
            report.node_savings() > 0.0,
            "node savings {}",
            report.node_savings()
        );
        assert!(report.with_predictor.node_fetches() < report.baseline.node_fetches());
    }

    #[test]
    fn repeated_accesses_dominate_baseline() {
        // The Figure-1 observation: most accesses are to already-seen nodes.
        let bvh = floor_bvh();
        let rays = ao_like_rays(3000, 11);
        let sim = FunctionalSim::new(quick_config(), SimOptions::default());
        let report = sim.run(&bvh, &rays);
        assert!(
            report.repeated_node_access_fraction() > 0.5,
            "repeated fraction {}",
            report.repeated_node_access_fraction()
        );
    }

    #[test]
    fn eq1_estimate_tracks_actual() {
        let bvh = floor_bvh();
        let rays = ao_like_rays(4000, 13);
        let sim = FunctionalSim::new(quick_config(), SimOptions::default());
        let report = sim.run(&bvh, &rays);
        let est = report.eq1_model().estimated_nodes_skipped();
        let actual = report.actual_nodes_skipped_per_ray();
        assert!(
            (est - actual).abs() < 0.5 * actual.abs().max(1.0),
            "Equation 1 estimate {est} too far from actual {actual}"
        );
    }

    #[test]
    fn oracle_ladder_is_monotone() {
        let bvh = floor_bvh();
        let rays = ao_like_rays(2500, 17);
        let mut savings = Vec::new();
        for oracle in [
            crate::OracleMode::None,
            crate::OracleMode::Lookup,
            crate::OracleMode::UnboundedTraining,
            crate::OracleMode::ImmediateUpdates,
        ] {
            let sim = FunctionalSim::new(quick_config().with_oracle(oracle), SimOptions::default());
            let report = sim.run(&bvh, &rays);
            savings.push(report.memory_savings());
        }
        // Each idealization step should not hurt (allow small noise).
        for w in savings.windows(2) {
            assert!(
                w[1] >= w[0] - 0.02,
                "oracle ladder not monotone: {savings:?}"
            );
        }
    }

    #[test]
    fn more_predictors_reduce_sharing() {
        // §6.2.5: segregating rays across more per-SM predictors reduces
        // prediction opportunities.
        let bvh = floor_bvh();
        let rays = ao_like_rays(4000, 23);
        let one = FunctionalSim::new(quick_config(), SimOptions::default()).run(&bvh, &rays);
        let many = FunctionalSim::new(
            quick_config(),
            SimOptions {
                num_predictors: 8,
                ..SimOptions::default()
            },
        )
        .run(&bvh, &rays);
        assert!(
            many.prediction.verified_rate() <= one.prediction.verified_rate() + 0.02,
            "8 SMs ({}) should not verify more than 1 SM ({})",
            many.prediction.verified_rate(),
            one.prediction.verified_rate()
        );
    }

    #[test]
    fn replay_report_is_byte_identical_to_live() {
        let bvh = floor_bvh();
        let rays = ao_like_rays(2000, 31);
        let batch = RayBatch::from_rays(&rays);
        for classify in [false, true] {
            let sim = FunctionalSim::new(
                quick_config(),
                SimOptions {
                    classify_accesses: classify,
                    ..SimOptions::default()
                },
            );
            let live = sim.run_batch(&bvh, &batch);
            let set = RayTraceSet::capture(&bvh, &batch, TraversalKind::AnyHit);
            let replayed = sim.run_batch_replay(&bvh, &batch, &set).unwrap();
            assert_eq!(
                format!("{live:?}"),
                format!("{replayed:?}"),
                "replay diverged (classify_accesses: {classify})"
            );

            let live_closest = sim.run_closest_batch(&bvh, &batch);
            let set = RayTraceSet::capture(&bvh, &batch, TraversalKind::ClosestHit);
            let replayed = sim.run_closest_batch_replay(&bvh, &batch, &set).unwrap();
            assert_eq!(
                format!("{live_closest:?}"),
                format!("{replayed:?}"),
                "closest-hit replay diverged (classify_accesses: {classify})"
            );
        }
    }

    #[test]
    fn replay_rejects_mismatched_trace() {
        let bvh = floor_bvh();
        let batch = RayBatch::from_rays(&ao_like_rays(256, 37));
        let other = RayBatch::from_rays(&ao_like_rays(256, 38));
        let sim = FunctionalSim::new(quick_config(), SimOptions::default());
        let wrong_rays = RayTraceSet::capture(&bvh, &other, TraversalKind::AnyHit);
        assert!(sim.run_batch_replay(&bvh, &batch, &wrong_rays).is_err());
        let wrong_kind = RayTraceSet::capture(&bvh, &batch, TraversalKind::ClosestHit);
        let err = sim.run_batch_replay(&bvh, &batch, &wrong_kind).unwrap_err();
        assert!(err.contains("ClosestHit"), "{err}");
    }

    #[test]
    fn closest_hit_workload_stays_exact() {
        let bvh = floor_bvh();
        let rays = ao_like_rays(500, 29);
        let sim = FunctionalSim::new(quick_config(), SimOptions::default());
        let report = sim.run_closest(&bvh, &rays);
        assert_eq!(report.rays, 500);
        // Trimming may only reduce work, never change hit counts vs
        // baseline hit counting (checked via rates being sane).
        assert!(report.prediction.hit_rate() > 0.5);
    }
}
