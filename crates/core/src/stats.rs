//! Prediction outcome statistics (§3 terminology).

/// Counters over a set of traced rays using the paper's §3 definitions:
/// a ray **hits** if it intersects the scene at all, is **predicted** if the
/// table lookup returned an entry, **verified** if traversal from the
/// prediction found an intersection, and **mispredicted** if predicted but
/// not verified.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PredictionStats {
    /// Rays traced.
    pub rays: u64,
    /// Rays that intersect the scene (with or without prediction).
    pub hits: u64,
    /// Rays for which the lookup returned a prediction.
    pub predicted: u64,
    /// Predicted rays that found an intersection from the prediction.
    pub verified: u64,
    /// Total predicted nodes evaluated (Σk over predicted rays).
    pub predicted_nodes_evaluated: u64,
    /// Total node fetches spent evaluating predictions (Σ km).
    pub prediction_eval_fetches: u64,
}

impl PredictionStats {
    /// Mispredicted rays (`predicted − verified`).
    pub fn mispredicted(&self) -> u64 {
        self.predicted - self.verified
    }

    /// Fraction of rays predicted (`p` of Equation 1).
    pub fn predicted_rate(&self) -> f64 {
        ratio(self.predicted, self.rays)
    }

    /// Fraction of rays verified (`v` of Equation 1).
    pub fn verified_rate(&self) -> f64 {
        ratio(self.verified, self.rays)
    }

    /// Fraction of rays that hit the scene.
    pub fn hit_rate(&self) -> f64 {
        ratio(self.hits, self.rays)
    }

    /// Mean predictions evaluated per predicted ray (`k` of Equation 1).
    pub fn mean_k(&self) -> f64 {
        ratio(self.predicted_nodes_evaluated, self.predicted)
    }

    /// Mean node fetches per evaluated prediction (`m` of Equation 1).
    pub fn mean_m(&self) -> f64 {
        ratio(self.prediction_eval_fetches, self.predicted_nodes_evaluated)
    }

    /// Accumulates another sample.
    pub fn accumulate(&mut self, other: &PredictionStats) {
        self.rays += other.rays;
        self.hits += other.hits;
        self.predicted += other.predicted;
        self.verified += other.verified;
        self.predicted_nodes_evaluated += other.predicted_nodes_evaluated;
        self.prediction_eval_fetches += other.prediction_eval_fetches;
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl std::ops::AddAssign for PredictionStats {
    fn add_assign(&mut self, rhs: PredictionStats) {
        self.accumulate(&rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_and_misprediction() {
        let s = PredictionStats {
            rays: 100,
            hits: 60,
            predicted: 50,
            verified: 30,
            predicted_nodes_evaluated: 50,
            prediction_eval_fetches: 150,
        };
        assert_eq!(s.mispredicted(), 20);
        assert!((s.predicted_rate() - 0.5).abs() < 1e-12);
        assert!((s.verified_rate() - 0.3).abs() < 1e-12);
        assert!((s.hit_rate() - 0.6).abs() < 1e-12);
        assert!((s.mean_k() - 1.0).abs() < 1e-12);
        assert!((s.mean_m() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_rays_yield_zero_rates() {
        let s = PredictionStats::default();
        assert_eq!(s.predicted_rate(), 0.0);
        assert_eq!(s.mean_k(), 0.0);
    }

    #[test]
    fn accumulation() {
        let mut a = PredictionStats {
            rays: 10,
            hits: 5,
            predicted: 4,
            verified: 2,
            ..Default::default()
        };
        let b = a;
        a += b;
        assert_eq!(a.rays, 20);
        assert_eq!(a.verified, 4);
    }
}
