//! The set-associative predictor table (Figure 5).

use crate::policies::SlotUsage;
use crate::{fold_hash, NodeReplacement, PredictorConfig};
use rip_bvh::NodeId;

/// Node slots held inline by [`NodeCandidates`] before spilling to the
/// heap (Table 6 sweeps 1–4 nodes per entry, so the paper's whole
/// design space stays allocation-free).
pub const INLINE_CANDIDATES: usize = 4;

#[derive(Clone, Debug)]
enum CandidateRepr {
    Inline {
        buf: [NodeId; INLINE_CANDIDATES],
        len: u8,
    },
    Heap(Vec<NodeId>),
}

/// The predicted nodes returned by a table lookup, in slot order.
///
/// A small-vector: up to [`INLINE_CANDIDATES`] nodes live inline (no
/// allocation on the lookup hot path), larger entries spill to the
/// heap. Dereferences to a `[NodeId]` slice.
///
/// # Examples
///
/// ```
/// use rip_bvh::NodeId;
/// use rip_core::NodeCandidates;
///
/// let nodes = NodeCandidates::from_slice(&[NodeId::new(4), NodeId::new(9)]);
/// assert_eq!(nodes.len(), 2);
/// assert_eq!(&nodes[..], &[NodeId::new(4), NodeId::new(9)]);
/// ```
#[derive(Clone, Debug)]
pub struct NodeCandidates(CandidateRepr);

impl NodeCandidates {
    /// Candidates copied from a slice (inline when it fits).
    pub fn from_slice(nodes: &[NodeId]) -> Self {
        if nodes.len() <= INLINE_CANDIDATES {
            let mut buf = [NodeId::ROOT; INLINE_CANDIDATES];
            buf[..nodes.len()].copy_from_slice(nodes);
            NodeCandidates(CandidateRepr::Inline {
                buf,
                len: nodes.len() as u8,
            })
        } else {
            NodeCandidates(CandidateRepr::Heap(nodes.to_vec()))
        }
    }

    /// A single predicted node (the common `nodes_per_entry = 1` case).
    pub fn single(node: NodeId) -> Self {
        NodeCandidates::from_slice(std::slice::from_ref(&node))
    }

    /// The candidates as a slice, in slot order.
    pub fn as_slice(&self) -> &[NodeId] {
        match &self.0 {
            CandidateRepr::Inline { buf, len } => &buf[..*len as usize],
            CandidateRepr::Heap(v) => v,
        }
    }

    /// Consumes the candidates into a `Vec` (allocates only when the
    /// nodes were inline).
    pub fn into_vec(self) -> Vec<NodeId> {
        match self.0 {
            CandidateRepr::Inline { buf, len } => buf[..len as usize].to_vec(),
            CandidateRepr::Heap(v) => v,
        }
    }
}

impl std::ops::Deref for NodeCandidates {
    type Target = [NodeId];

    fn deref(&self) -> &[NodeId] {
        self.as_slice()
    }
}

impl From<Vec<NodeId>> for NodeCandidates {
    fn from(nodes: Vec<NodeId>) -> Self {
        if nodes.len() <= INLINE_CANDIDATES {
            NodeCandidates::from_slice(&nodes)
        } else {
            NodeCandidates(CandidateRepr::Heap(nodes))
        }
    }
}

impl FromIterator<NodeId> for NodeCandidates {
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        iter.into_iter().collect::<Vec<_>>().into()
    }
}

impl PartialEq for NodeCandidates {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for NodeCandidates {}

impl PartialEq<[NodeId]> for NodeCandidates {
    fn eq(&self, other: &[NodeId]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<NodeId>> for NodeCandidates {
    fn eq(&self, other: &Vec<NodeId>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<'a> IntoIterator for &'a NodeCandidates {
    type Item = &'a NodeId;
    type IntoIter = std::slice::Iter<'a, NodeId>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl IntoIterator for NodeCandidates {
    type Item = NodeId;
    type IntoIter = std::vec::IntoIter<NodeId>;

    fn into_iter(self) -> Self::IntoIter {
        self.into_vec().into_iter()
    }
}

/// Aggregate counters for table behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Lookups performed.
    pub lookups: u64,
    /// Lookups that found a tag match.
    pub tag_hits: u64,
    /// Node insertions.
    pub insertions: u64,
    /// Entry allocations that evicted a valid entry.
    pub entry_evictions: u64,
    /// Node slot replacements inside full entries.
    pub node_evictions: u64,
}

/// One valid entry: tag plus up to `nodes_per_entry` predicted nodes.
#[derive(Clone, Debug)]
struct Entry {
    tag: u32,
    nodes: Vec<NodeId>,
    usage: Vec<SlotUsage>,
    last_use: u64,
}

/// The per-SM predictor table (§4.1): rows of set-associative ways, each
/// entry holding a valid bit, a ray-hash tag, and one or more node slots.
///
/// The table stores *addresses* (node indices), not node data — it is not a
/// cache, and a lookup is not guaranteed to find a matching entry even when
/// a useful node is present (that gap is what the §6.3 OL oracle measures).
///
/// # Examples
///
/// ```
/// use rip_bvh::NodeId;
/// use rip_core::{PredictorConfig, PredictorTable};
///
/// let mut table = PredictorTable::new(PredictorConfig::paper_default());
/// table.insert(0x1ABC, NodeId::new(42));
/// assert_eq!(table.lookup(0x1ABC).as_deref(), Some(&[NodeId::new(42)][..]));
/// assert!(table.lookup(0x1ABD).is_none());
/// ```
#[derive(Clone, Debug)]
pub struct PredictorTable {
    config: PredictorConfig,
    sets: Vec<Vec<Option<Entry>>>,
    clock: u64,
    stats: TableStats,
}

impl PredictorTable {
    /// Creates an empty table.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid (see
    /// [`PredictorConfig::validate`]).
    pub fn new(config: PredictorConfig) -> Self {
        config.validate().expect("invalid predictor configuration");
        let sets = (0..config.sets())
            .map(|_| vec![None; config.ways])
            .collect();
        PredictorTable {
            config,
            sets,
            clock: 0,
            stats: TableStats::default(),
        }
    }

    /// The configuration this table was built with.
    pub fn config(&self) -> &PredictorConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TableStats {
        self.stats
    }

    /// Number of valid entries currently stored.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().flatten().filter(|e| e.is_some()).count()
    }

    fn set_index(&self, hash: u32) -> usize {
        fold_hash(hash, self.config.hash.bits(), self.config.index_bits()) as usize
    }

    /// The pure read half of a lookup: returns the candidates stored
    /// under `hash` without touching statistics, the LRU clock, or any
    /// aging state. Safe to serve through a shared reference — this is
    /// the path concurrent front-ends take before deciding whether to
    /// account the access via [`PredictorTable::record_lookup`].
    pub fn peek(&self, hash: u32) -> Option<NodeCandidates> {
        let idx = self.set_index(hash);
        self.sets[idx]
            .iter()
            .flatten()
            .find(|way| way.tag == hash)
            .map(|way| NodeCandidates::from_slice(&way.nodes))
    }

    /// The mutation half of a lookup: advances the clock, accounts the
    /// access, and refreshes entry LRU on a tag match. Returns whether
    /// the tag matched.
    pub fn record_lookup(&mut self, hash: u32) -> bool {
        self.stats.lookups += 1;
        self.clock += 1;
        let idx = self.set_index(hash);
        let clock = self.clock;
        if let Some(way) = self.sets[idx]
            .iter_mut()
            .flatten()
            .find(|way| way.tag == hash)
        {
            way.last_use = clock;
            self.stats.tag_hits += 1;
            true
        } else {
            false
        }
    }

    /// Looks up the predicted nodes for a ray hash, updating entry LRU on a
    /// tag match. Returns the entry's nodes in slot order. Composed from
    /// [`PredictorTable::record_lookup`] and [`PredictorTable::peek`] —
    /// behaviour (stats, aging, results) is identical to the historical
    /// fused implementation.
    pub fn lookup(&mut self, hash: u32) -> Option<NodeCandidates> {
        if self.record_lookup(hash) {
            self.peek(hash)
        } else {
            None
        }
    }

    /// Records that `node` (previously returned by [`lookup`]) verified a
    /// ray, feeding the node replacement policy's usage statistics.
    ///
    /// [`lookup`]: PredictorTable::lookup
    pub fn reward(&mut self, hash: u32, node: NodeId) {
        self.clock += 1;
        let idx = self.set_index(hash);
        let clock = self.clock;
        if let Some(entry) = self.sets[idx].iter_mut().flatten().find(|e| e.tag == hash) {
            if let Some(pos) = entry.nodes.iter().position(|&n| n == node) {
                entry.usage[pos].touch(clock);
            }
        }
    }

    /// Inserts a trained `(hash, node)` pair: extends an existing entry for
    /// the tag (replacing a node slot when full), or allocates a way in the
    /// indexed set (evicting the LRU entry when the set is full).
    pub fn insert(&mut self, hash: u32, node: NodeId) {
        debug_assert!(node.fits_predictor_slot(), "{node} exceeds 27 bits");
        self.clock += 1;
        self.stats.insertions += 1;
        let idx = self.set_index(hash);
        let clock = self.clock;
        let nodes_per_entry = self.config.nodes_per_entry;
        let policy: NodeReplacement = self.config.node_replacement;

        let set = &mut self.sets[idx];
        // Case 1: entry with this tag exists.
        if let Some(entry) = set.iter_mut().flatten().find(|e| e.tag == hash) {
            entry.last_use = clock;
            if let Some(pos) = entry.nodes.iter().position(|&n| n == node) {
                entry.usage[pos].touch(clock);
                return;
            }
            if entry.nodes.len() < nodes_per_entry {
                entry.nodes.push(node);
                let mut usage = SlotUsage::default();
                usage.touch(clock);
                entry.usage.push(usage);
            } else {
                let victim = policy.pick_victim(&entry.usage);
                entry.nodes[victim] = node;
                entry.usage[victim] = SlotUsage::default();
                entry.usage[victim].touch(clock);
                self.stats.node_evictions += 1;
            }
            return;
        }
        // Case 2: allocate a way (prefer an invalid one, else evict LRU).
        let mut usage = SlotUsage::default();
        usage.touch(clock);
        let fresh = Entry {
            tag: hash,
            nodes: vec![node],
            usage: vec![usage],
            last_use: clock,
        };
        if let Some(slot) = set.iter_mut().find(|w| w.is_none()) {
            *slot = Some(fresh);
            return;
        }
        let victim = set
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| w.as_ref().map(|e| e.last_use).unwrap_or(0))
            .map(|(i, _)| i)
            .expect("set has ways");
        set[victim] = Some(fresh);
        self.stats.entry_evictions += 1;
    }

    /// Iterates over every node currently stored anywhere in the table
    /// (used by the OL oracle of §6.3).
    pub fn stored_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.sets
            .iter()
            .flatten()
            .flatten()
            .flat_map(|e| e.nodes.iter().copied())
    }

    /// Removes every entry, keeping statistics.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            for way in set.iter_mut() {
                *way = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(ways: usize, nodes_per_entry: usize) -> PredictorConfig {
        PredictorConfig {
            entries: 16 * ways.max(1),
            ways,
            nodes_per_entry,
            ..PredictorConfig::paper_default()
        }
    }

    #[test]
    fn insert_then_lookup_round_trips() {
        let mut t = PredictorTable::new(PredictorConfig::paper_default());
        t.insert(0x7001, NodeId::new(9));
        assert_eq!(t.lookup(0x7001).as_deref(), Some(&[NodeId::new(9)][..]));
        assert_eq!(t.occupancy(), 1);
        assert_eq!(t.stats().tag_hits, 1);
    }

    #[test]
    fn different_tags_in_same_set_coexist_up_to_ways() {
        // Hashes chosen to fold to the same 2-set index... use sets=16:
        // hashes 0x0010 and 0x0020 fold differently; instead use same low
        // bits with differing high bits that XOR-fold equal.
        let mut t = PredictorTable::new(small_config(4, 1));
        // sets = 16 → index_bits 4. hash bits 15. Construct hashes with
        // identical folded index but distinct tags.
        let base = 0b000_0000_0000_0001u32;
        let h2 = base ^ (0b0011u32 << 4) ^ (0b0011u32 << 8); // fold cancels
        assert_eq!(
            fold_hash(base, 15, 4),
            fold_hash(h2, 15, 4),
            "test construction: same set"
        );
        t.insert(base, NodeId::new(1));
        t.insert(h2, NodeId::new(2));
        assert_eq!(t.lookup(base).as_deref(), Some(&[NodeId::new(1)][..]));
        assert_eq!(t.lookup(h2).as_deref(), Some(&[NodeId::new(2)][..]));
    }

    #[test]
    fn set_eviction_is_lru() {
        let mut t = PredictorTable::new(small_config(2, 1));
        // Three tags mapping to the same set (entries=32, ways=2 → 16 sets,
        // index_bits 4): find three 15-bit hashes with equal fold by search.
        let target = fold_hash(0x11, 15, 4);
        let same: Vec<u32> = (0u32..1 << 15)
            .filter(|&h| fold_hash(h, 15, 4) == target)
            .take(3)
            .collect();
        let (a, b, c) = (same[0], same[1], same[2]);
        t.insert(a, NodeId::new(1));
        t.insert(b, NodeId::new(2));
        let _ = t.lookup(a); // a is now MRU
        t.insert(c, NodeId::new(3)); // evicts b
        assert!(t.lookup(a).is_some());
        assert!(t.lookup(b).is_none(), "b should have been evicted (LRU)");
        assert!(t.lookup(c).is_some());
        assert_eq!(t.stats().entry_evictions, 1);
    }

    #[test]
    fn multi_node_entries_fill_then_replace() {
        let mut t = PredictorTable::new(small_config(1, 2));
        t.insert(0x42, NodeId::new(1));
        t.insert(0x42, NodeId::new(2));
        assert_eq!(t.lookup(0x42).unwrap().len(), 2);
        t.insert(0x42, NodeId::new(3)); // replaces the LRU node (1)
        let nodes = t.lookup(0x42).unwrap();
        assert_eq!(nodes.len(), 2);
        assert!(nodes.contains(&NodeId::new(3)));
        assert!(!nodes.contains(&NodeId::new(1)));
        assert_eq!(t.stats().node_evictions, 1);
    }

    #[test]
    fn reward_protects_verified_node_under_lfu() {
        let mut cfg = small_config(1, 2);
        cfg.node_replacement = NodeReplacement::Lfu;
        let mut t = PredictorTable::new(cfg);
        t.insert(0x42, NodeId::new(1));
        t.insert(0x42, NodeId::new(2));
        // Node 1 verifies twice → higher frequency.
        t.reward(0x42, NodeId::new(1));
        t.reward(0x42, NodeId::new(1));
        t.insert(0x42, NodeId::new(3)); // LFU victim is node 2
        let nodes = t.lookup(0x42).unwrap();
        assert!(nodes.contains(&NodeId::new(1)));
        assert!(nodes.contains(&NodeId::new(3)));
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut t = PredictorTable::new(small_config(2, 2));
        t.insert(0x7, NodeId::new(5));
        t.insert(0x7, NodeId::new(5));
        assert_eq!(t.lookup(0x7).unwrap(), vec![NodeId::new(5)]);
    }

    #[test]
    fn stored_nodes_enumerates_everything() {
        let mut t = PredictorTable::new(small_config(4, 1));
        for i in 0..10u32 {
            t.insert(i * 97, NodeId::new(i));
        }
        let mut nodes: Vec<u32> = t.stored_nodes().map(|n| n.index()).collect();
        nodes.sort_unstable();
        assert_eq!(nodes.len(), 10);
    }

    #[test]
    fn clear_empties_table() {
        let mut t = PredictorTable::new(small_config(2, 1));
        t.insert(1, NodeId::new(1));
        t.clear();
        assert_eq!(t.occupancy(), 0);
        assert!(t.lookup(1).is_none());
    }

    #[test]
    fn direct_mapped_uses_tags() {
        // §6.1.2: "In the direct-mapped predictor table, a tag is still
        // used so that rays with the same index but different hashes will
        // not use the same entry."
        let mut t = PredictorTable::new(small_config(1, 1));
        let target = fold_hash(0x5, 15, 4);
        let same: Vec<u32> = (0u32..1 << 15)
            .filter(|&h| fold_hash(h, 15, 4) == target)
            .take(2)
            .collect();
        t.insert(same[0], NodeId::new(1));
        assert!(
            t.lookup(same[1]).is_none(),
            "conflicting hash must miss, not alias"
        );
    }
}
