//! The §3 prediction / verification / fallback flow for a single ray.
//!
//! The flow is generic over the fallback [`TraversalKernel`]: prediction
//! probes always run on the steppable [`Traversal`] seeded via
//! `Traversal::from_nodes` (that *is* the hardware mechanism — predicted
//! nodes are pushed onto the ray's traversal stack, §3), while the full
//! root traversal paid by not-predicted and mispredicted rays goes through
//! whichever kernel the caller composes with — while-while, stackless or
//! wide. [`trace_occlusion`] and [`trace_closest`] keep the historical
//! while-while binding.

use crate::{OracleMode, Predictor};
use rip_bvh::{
    Bvh, Hit, NodeId, Traversal, TraversalKernel, TraversalKind, TraversalResult, TraversalStats,
    WhileWhileKernel,
};
use rip_math::Ray;

/// Per-ray predictor outcome (§3 terminology).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RayOutcome {
    /// No table entry matched; the ray performed the full traversal.
    NotPredicted,
    /// The ray found an intersection starting from the predicted nodes —
    /// the interior traversal was elided.
    Verified,
    /// A prediction existed but did not verify; the ray paid the prediction
    /// evaluation *and* the full traversal.
    Mispredicted,
}

/// Result of tracing one ray through the predictor flow.
#[derive(Clone, Debug)]
pub struct PredictedTrace {
    /// Prediction outcome.
    pub outcome: RayOutcome,
    /// The final intersection (from the prediction or the fallback).
    pub hit: Option<Hit>,
    /// Work spent evaluating the prediction (the `k·m` term of Equation 1).
    pub prediction_stats: TraversalStats,
    /// Work spent on the full traversal (not-predicted and mispredicted
    /// rays; zero for verified rays).
    pub fallback_stats: TraversalStats,
    /// Number of predicted nodes evaluated (`k`).
    pub k: u32,
}

impl PredictedTrace {
    /// Total node fetches paid by this ray under the predictor.
    pub fn total_node_fetches(&self) -> u64 {
        self.prediction_stats.node_fetches() + self.fallback_stats.node_fetches()
    }

    /// Total memory accesses (nodes + triangles) paid by this ray.
    pub fn total_memory_accesses(&self) -> u64 {
        self.prediction_stats.memory_accesses() + self.fallback_stats.memory_accesses()
    }
}

/// Evaluates a predicted probe: a seeded any-hit traversal of the
/// predicted nodes (the hardware mechanism of §3 — predicted nodes are
/// pushed onto the ray's traversal stack). Pure in `(bvh, ray, nodes)`;
/// the replay path memoizes it per trace set.
pub fn eval_probe(bvh: &Bvh, ray: &Ray, nodes: &[NodeId]) -> TraversalResult {
    let mut ptrav = Traversal::from_nodes(TraversalKind::AnyHit, nodes);
    ptrav.run(bvh, ray)
}

/// Builds the leaf-to-root ancestor chain (`chain[0]` = the leaf).
pub(crate) fn ancestor_chain(bvh: &Bvh, leaf: NodeId) -> Vec<NodeId> {
    let mut chain = vec![leaf];
    while let Some(p) = bvh.node(*chain.last().expect("nonempty")).parent {
        chain.push(p);
    }
    chain
}

/// Traces one **occlusion ray** (ambient occlusion / shadow) through the
/// predictor flow of Figure 4:
///
/// 1. hash + table lookup;
/// 2. if predicted, traverse from the predicted nodes — an intersection
///    verifies the ray and elides the interior traversal;
/// 3. otherwise (or on a misprediction) run the full root traversal;
/// 4. on any intersection, train the table with the hit leaf's Go-Up-Level
///    ancestor.
///
/// Under an [`OracleMode`] other than `None` the lookup is idealized as
/// described in §6.3 (the ground-truth traversal used to drive the oracle
/// is not charged to the ray).
///
/// # Examples
///
/// ```
/// use rip_bvh::Bvh;
/// use rip_core::{trace_occlusion, Predictor, PredictorConfig, RayOutcome};
/// use rip_math::{Ray, Triangle, Vec3};
///
/// let bvh = Bvh::build(&[Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y)]);
/// let config = PredictorConfig { update_delay: 0, ..PredictorConfig::paper_default() };
/// let mut p = Predictor::new(config, bvh.bounds());
/// let ray = Ray::new(Vec3::new(0.2, 0.2, -1.0), Vec3::Z);
/// let first = trace_occlusion(&mut p, &bvh, &ray);
/// assert_eq!(first.outcome, RayOutcome::NotPredicted);
/// let second = trace_occlusion(&mut p, &bvh, &ray);
/// assert_eq!(second.outcome, RayOutcome::Verified);
/// ```
pub fn trace_occlusion(predictor: &mut Predictor, bvh: &Bvh, ray: &Ray) -> PredictedTrace {
    trace_occlusion_with(predictor, bvh, &mut WhileWhileKernel::new(bvh), ray)
}

/// [`trace_occlusion`] with an explicit fallback kernel: the full root
/// traversal of not-predicted and mispredicted rays runs through `kernel`
/// instead of the default while-while loop. The prediction probe itself
/// still uses the seeded stack traversal (the hardware mechanism of §3).
pub fn trace_occlusion_with(
    predictor: &mut Predictor,
    bvh: &Bvh,
    kernel: &mut dyn TraversalKernel,
    ray: &Ray,
) -> PredictedTrace {
    // One hash per ray, shared between lookup and training (the
    // spherical hash pays real trigonometry).
    let hash = predictor.hash_ray(ray);
    trace_occlusion_with_hash(predictor, bvh, kernel, ray, hash)
}

/// [`trace_occlusion_with`] for an already-computed ray hash. The hash is
/// a pure function of the hasher configuration, the scene bounds and the
/// ray, so batch drivers can compute a workload's hash stream once and
/// share it across every configuration of a parameter sweep (the sweep
/// varies table shape or SM count, not the hash function).
pub fn trace_occlusion_with_hash(
    predictor: &mut Predictor,
    bvh: &Bvh,
    kernel: &mut dyn TraversalKernel,
    ray: &Ray,
    hash: u32,
) -> PredictedTrace {
    trace_occlusion_with_probe(predictor, bvh, kernel, ray, hash, &mut |nodes| {
        eval_probe(bvh, ray, nodes)
    })
}

/// [`trace_occlusion_with_hash`] with an explicit probe evaluator. The
/// evaluator must return exactly what [`eval_probe`] would — replay
/// drivers pass a memoizing wrapper, which keeps reports byte-identical
/// because the probe is pure.
pub fn trace_occlusion_with_probe(
    predictor: &mut Predictor,
    bvh: &Bvh,
    kernel: &mut dyn TraversalKernel,
    ray: &Ray,
    hash: u32,
    probe: &mut dyn FnMut(&[NodeId]) -> TraversalResult,
) -> PredictedTrace {
    predictor.begin_ray();
    let oracle = predictor.config().oracle;
    let trace = if oracle == OracleMode::None {
        trace_occlusion_real(predictor, bvh, kernel, ray, hash, probe)
    } else {
        trace_occlusion_oracle(predictor, bvh, kernel, ray)
    };
    record(predictor, &trace);
    if let Some(hit) = trace.hit {
        predictor.train(bvh, hash, hit.leaf);
    }
    trace
}

fn trace_occlusion_real(
    predictor: &mut Predictor,
    _bvh: &Bvh,
    kernel: &mut dyn TraversalKernel,
    ray: &Ray,
    hash: u32,
    probe: &mut dyn FnMut(&[NodeId]) -> TraversalResult,
) -> PredictedTrace {
    match predictor.lookup_hashed(hash) {
        Some(pred) => {
            let k = pred.nodes.len() as u32;
            let presult = probe(&pred.nodes);
            if let Some(hit) = presult.hit {
                predictor.reward(pred.hash, hit.leaf);
                PredictedTrace {
                    outcome: RayOutcome::Verified,
                    hit: Some(hit),
                    prediction_stats: presult.stats,
                    fallback_stats: TraversalStats::default(),
                    k,
                }
            } else {
                let full = kernel.trace(ray, TraversalKind::AnyHit);
                PredictedTrace {
                    outcome: RayOutcome::Mispredicted,
                    hit: full.hit,
                    prediction_stats: presult.stats,
                    fallback_stats: full.stats,
                    k,
                }
            }
        }
        None => {
            let full = kernel.trace(ray, TraversalKind::AnyHit);
            PredictedTrace {
                outcome: RayOutcome::NotPredicted,
                hit: full.hit,
                prediction_stats: TraversalStats::default(),
                fallback_stats: full.stats,
                k: 0,
            }
        }
    }
}

fn trace_occlusion_oracle(
    predictor: &mut Predictor,
    bvh: &Bvh,
    kernel: &mut dyn TraversalKernel,
    ray: &Ray,
) -> PredictedTrace {
    // Ground truth (not charged to the ray when a prediction verifies —
    // this is oracle knowledge — but it *is* the full traversal a
    // not-predicted ray pays, so it runs on the composed kernel).
    let truth = kernel.trace(ray, TraversalKind::AnyHit);
    let prediction = truth
        .hit
        .and_then(|hit| predictor.oracle_lookup(ray, &ancestor_chain(bvh, hit.leaf)));
    match prediction {
        Some(pred) => {
            let k = pred.nodes.len() as u32;
            let mut ptrav = Traversal::from_nodes(TraversalKind::AnyHit, &pred.nodes);
            let presult = ptrav.run(bvh, ray);
            debug_assert!(presult.hit.is_some(), "oracle prediction must verify");
            PredictedTrace {
                outcome: RayOutcome::Verified,
                hit: presult.hit.or(truth.hit),
                prediction_stats: presult.stats,
                fallback_stats: TraversalStats::default(),
                k,
            }
        }
        None => PredictedTrace {
            outcome: RayOutcome::NotPredicted,
            hit: truth.hit,
            prediction_stats: TraversalStats::default(),
            fallback_stats: truth.stats,
            k: 0,
        },
    }
}

/// Traces one **closest-hit ray** (global illumination, §6.4). Predicted
/// intersections *trim the ray's maximum length* before the full traversal
/// rather than replacing it: the prediction supplies a conservative `t`
/// bound that lets the full traversal cull far subtrees.
pub fn trace_closest(predictor: &mut Predictor, bvh: &Bvh, ray: &Ray) -> PredictedTrace {
    trace_closest_with(predictor, bvh, &mut WhileWhileKernel::new(bvh), ray)
}

/// [`trace_closest`] with an explicit fallback kernel (see
/// [`trace_occlusion_with`]): the trimmed authoritative traversal runs
/// through `kernel`; the conservative any-hit probe stays on the seeded
/// stack traversal.
pub fn trace_closest_with(
    predictor: &mut Predictor,
    bvh: &Bvh,
    kernel: &mut dyn TraversalKernel,
    ray: &Ray,
) -> PredictedTrace {
    // One hash per ray, shared between lookup and training.
    let hash = predictor.hash_ray(ray);
    trace_closest_with_hash(predictor, bvh, kernel, ray, hash)
}

/// [`trace_closest_with`] for an already-computed ray hash (see
/// [`trace_occlusion_with_hash`]).
pub fn trace_closest_with_hash(
    predictor: &mut Predictor,
    bvh: &Bvh,
    kernel: &mut dyn TraversalKernel,
    ray: &Ray,
    hash: u32,
) -> PredictedTrace {
    trace_closest_with_probe(predictor, bvh, kernel, ray, hash, &mut |nodes| {
        eval_probe(bvh, ray, nodes)
    })
}

/// [`trace_closest_with_hash`] with an explicit probe evaluator (see
/// [`trace_occlusion_with_probe`]).
pub fn trace_closest_with_probe(
    predictor: &mut Predictor,
    bvh: &Bvh,
    kernel: &mut dyn TraversalKernel,
    ray: &Ray,
    hash: u32,
    probe: &mut dyn FnMut(&[NodeId]) -> TraversalResult,
) -> PredictedTrace {
    predictor.begin_ray();
    let trace = match predictor.lookup_hashed(hash) {
        Some(pred) => {
            let k = pred.nodes.len() as u32;
            // Cheap any-hit probe of the predicted subtree: any intersection
            // at parameter t upper-bounds the closest hit, so it is a valid
            // (conservative) trim for the authoritative traversal — the
            // paper trims "the ray's maximum length before traversal rather
            // than predicting the final hit point" (§6.4).
            let presult = probe(&pred.nodes);
            match presult.hit {
                Some(phit) => {
                    predictor.reward(pred.hash, phit.leaf);
                    // Trim and run the authoritative traversal.
                    let trimmed = ray.trimmed(phit.t * (1.0 + 1e-5));
                    let full = kernel.trace(&trimmed, TraversalKind::ClosestHit);
                    let best = match full.hit {
                        Some(fhit) if fhit.t <= phit.t => Some(fhit),
                        _ => Some(phit),
                    };
                    PredictedTrace {
                        outcome: RayOutcome::Verified,
                        hit: best,
                        prediction_stats: presult.stats,
                        fallback_stats: full.stats,
                        k,
                    }
                }
                None => {
                    let full = kernel.trace(ray, TraversalKind::ClosestHit);
                    PredictedTrace {
                        outcome: RayOutcome::Mispredicted,
                        hit: full.hit,
                        prediction_stats: presult.stats,
                        fallback_stats: full.stats,
                        k,
                    }
                }
            }
        }
        None => {
            let full = kernel.trace(ray, TraversalKind::ClosestHit);
            PredictedTrace {
                outcome: RayOutcome::NotPredicted,
                hit: full.hit,
                prediction_stats: TraversalStats::default(),
                fallback_stats: full.stats,
                k: 0,
            }
        }
    };
    record(predictor, &trace);
    if let Some(hit) = trace.hit {
        predictor.train(bvh, hash, hit.leaf);
    }
    trace
}

fn record(predictor: &mut Predictor, trace: &PredictedTrace) {
    let stats = predictor.stats_mut();
    stats.rays += 1;
    if trace.hit.is_some() {
        stats.hits += 1;
    }
    match trace.outcome {
        RayOutcome::NotPredicted => {}
        RayOutcome::Verified => {
            stats.predicted += 1;
            stats.verified += 1;
        }
        RayOutcome::Mispredicted => {
            stats.predicted += 1;
        }
    }
    stats.predicted_nodes_evaluated += trace.k as u64;
    stats.prediction_eval_fetches += trace.prediction_stats.node_fetches();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PredictorConfig;
    use rip_math::{Triangle, Vec3};

    fn floor_bvh() -> Bvh {
        let mut tris = Vec::new();
        for i in 0..16 {
            for j in 0..16 {
                let o = Vec3::new(i as f32, 0.0, j as f32);
                tris.push(Triangle::new(o, o + Vec3::X, o + Vec3::Z));
                tris.push(Triangle::new(
                    o + Vec3::X,
                    o + Vec3::X + Vec3::Z,
                    o + Vec3::Z,
                ));
            }
        }
        Bvh::build(&tris)
    }

    fn immediate() -> PredictorConfig {
        PredictorConfig {
            update_delay: 0,
            ..PredictorConfig::paper_default()
        }
    }

    #[test]
    fn verified_ray_skips_interior_nodes() {
        let bvh = floor_bvh();
        let mut p = Predictor::new(immediate(), bvh.bounds());
        let ray = Ray::new(Vec3::new(7.3, 2.0, 7.3), -Vec3::Y);
        let first = trace_occlusion(&mut p, &bvh, &ray);
        assert_eq!(first.outcome, RayOutcome::NotPredicted);
        let n_full = first.fallback_stats.node_fetches();
        let second = trace_occlusion(&mut p, &bvh, &ray);
        assert_eq!(second.outcome, RayOutcome::Verified);
        assert!(
            second.total_node_fetches() < n_full,
            "verified ray ({}) must beat full traversal ({n_full})",
            second.total_node_fetches()
        );
        assert_eq!(second.fallback_stats, TraversalStats::default());
    }

    #[test]
    fn similar_ray_reuses_training() {
        let bvh = floor_bvh();
        let mut p = Predictor::new(immediate(), bvh.bounds());
        let a = Ray::new(Vec3::new(7.30, 2.0, 7.30), -Vec3::Y);
        let b = Ray::new(Vec3::new(7.35, 2.0, 7.32), -Vec3::Y);
        trace_occlusion(&mut p, &bvh, &a);
        let tb = trace_occlusion(&mut p, &bvh, &b);
        assert_eq!(
            tb.outcome,
            RayOutcome::Verified,
            "similar ray should verify"
        );
    }

    #[test]
    fn mispredicted_ray_pays_both_costs() {
        let bvh = floor_bvh();
        let mut p = Predictor::new(immediate(), bvh.bounds());
        // Train with a downward ray, then query a similar-origin ray with a
        // direction that misses everything. To force a tag collision we use
        // the same hash cell but an upward direction may hash differently —
        // so instead query a *horizontal* ray above the floor from the same
        // cell after manually inserting its hash.
        let down = Ray::new(Vec3::new(7.3, 2.0, 7.3), -Vec3::Y);
        let t = trace_occlusion(&mut p, &bvh, &down);
        let leaf = t.hit.unwrap().leaf;
        // A ray that misses: same origin, pointing up and away.
        let up = Ray::new(Vec3::new(7.3, 2.0, 7.3), Vec3::Y);
        let hash_up = p.hash_ray(&up);
        p.train(&bvh, hash_up, leaf); // poison the entry for the up-ray hash
        let tu = trace_occlusion(&mut p, &bvh, &up);
        assert_eq!(tu.outcome, RayOutcome::Mispredicted);
        assert!(tu.prediction_stats.node_fetches() > 0);
        assert!(tu.fallback_stats.node_fetches() > 0);
        assert!(tu.hit.is_none());
    }

    #[test]
    fn oracle_lookup_never_mispredicts() {
        let bvh = floor_bvh();
        let config = immediate().with_oracle(OracleMode::UnboundedTraining);
        let mut p = Predictor::new(config, bvh.bounds());
        let mut rng_phase = 0.0f32;
        let mut verified = 0;
        for i in 0..200 {
            rng_phase += 0.37;
            let o = Vec3::new(
                (i % 13) as f32 + rng_phase.fract(),
                1.5,
                (i % 11) as f32 + (rng_phase * 2.0).fract(),
            );
            let t = trace_occlusion(&mut p, &bvh, &Ray::new(o, -Vec3::Y));
            assert_ne!(
                t.outcome,
                RayOutcome::Mispredicted,
                "oracle cannot mispredict"
            );
            if t.outcome == RayOutcome::Verified {
                verified += 1;
            }
        }
        assert!(verified > 50, "oracle should verify many rays: {verified}");
    }

    #[test]
    fn closest_hit_with_prediction_matches_plain_traversal() {
        let bvh = floor_bvh();
        let mut p = Predictor::new(immediate(), bvh.bounds());
        let ray = Ray::new(Vec3::new(5.2, 3.0, 5.2), -Vec3::Y);
        let reference = bvh.intersect(&ray, TraversalKind::ClosestHit).hit.unwrap();
        let first = trace_closest(&mut p, &bvh, &ray);
        assert!((first.hit.unwrap().t - reference.t).abs() < 1e-4);
        let second = trace_closest(&mut p, &bvh, &ray);
        assert_eq!(second.outcome, RayOutcome::Verified);
        assert!(
            (second.hit.unwrap().t - reference.t).abs() < 1e-4,
            "prediction-trimmed result must stay exact"
        );
    }

    #[test]
    fn stats_accumulate_across_rays() {
        let bvh = floor_bvh();
        let mut p = Predictor::new(immediate(), bvh.bounds());
        let ray = Ray::new(Vec3::new(7.3, 2.0, 7.3), -Vec3::Y);
        trace_occlusion(&mut p, &bvh, &ray);
        trace_occlusion(&mut p, &bvh, &ray);
        let s = p.stats();
        assert_eq!(s.rays, 2);
        assert_eq!(s.hits, 2);
        assert_eq!(s.predicted, 1);
        assert_eq!(s.verified, 1);
        assert!(s.prediction_eval_fetches >= 1);
    }
}
