//! Property-based tests for the predictor's data structures and the §3
//! trace flow invariants.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rip_bvh::{Bvh, NodeId, TraversalKind};
use rip_core::{
    fold_hash, trace_occlusion, HashFunction, NodeReplacement, PredictorConfig, PredictorTable,
    RayHasher,
};
use rip_math::{Ray, Triangle, Vec3};

fn table_config(entries: usize, ways: usize, nodes: usize) -> PredictorConfig {
    PredictorConfig {
        entries,
        ways,
        nodes_per_entry: nodes,
        ..PredictorConfig::paper_default()
    }
}

proptest! {
    #[test]
    fn fold_output_always_fits(hash in 0u32..(1 << 15), m in 1u32..15) {
        let folded = fold_hash(hash, 15, m);
        prop_assert!(folded < (1 << m), "{folded:#x} exceeds {m} bits");
    }

    #[test]
    fn fold_is_deterministic_and_total(hash in any::<u32>(), n in 1u32..31, m in 1u32..31) {
        let a = fold_hash(hash, n, m);
        let b = fold_hash(hash, n, m);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn table_lookup_returns_only_inserted_nodes(
        inserts in prop::collection::vec((0u32..(1 << 15), 0u32..100_000), 1..200),
        probe in 0u32..(1 << 15),
    ) {
        let mut table = PredictorTable::new(table_config(64, 4, 2));
        let mut inserted_nodes = std::collections::HashSet::new();
        for &(hash, node) in &inserts {
            table.insert(hash, NodeId::new(node));
            inserted_nodes.insert(NodeId::new(node));
        }
        if let Some(nodes) = table.lookup(probe) {
            for n in nodes {
                prop_assert!(inserted_nodes.contains(&n), "phantom node {n}");
            }
            // A tag hit implies the probe hash was actually inserted.
            prop_assert!(inserts.iter().any(|&(h, _)| h == probe));
        }
    }

    #[test]
    fn table_occupancy_never_exceeds_capacity(
        inserts in prop::collection::vec((0u32..(1 << 15), 0u32..1000), 0..500),
        ways in 1usize..8,
    ) {
        let ways = [1usize, 2, 4, 8][ways % 4];
        let entries = 32 * ways;
        let mut table = PredictorTable::new(table_config(entries, ways, 1));
        for &(hash, node) in &inserts {
            table.insert(hash, NodeId::new(node));
        }
        prop_assert!(table.occupancy() <= entries);
        prop_assert!(table.stored_nodes().count() <= entries);
    }

    #[test]
    fn most_recent_insert_for_a_hash_is_always_found(
        hashes in prop::collection::vec(0u32..(1 << 15), 1..60),
    ) {
        // Within one set there are `ways` entries; the most recent insert
        // must be resident immediately afterwards regardless of history.
        let mut table = PredictorTable::new(table_config(64, 4, 1));
        for (i, &hash) in hashes.iter().enumerate() {
            table.insert(hash, NodeId::new(i as u32));
            let nodes = table.lookup(hash);
            prop_assert_eq!(nodes.as_deref(), Some(&[NodeId::new(i as u32)][..]),
                "freshly inserted entry missing");
        }
    }

    #[test]
    fn node_replacement_policies_keep_entry_size_bounded(
        nodes in prop::collection::vec(0u32..50, 1..80),
        policy_idx in 0usize..4,
    ) {
        let policy = [
            NodeReplacement::Lru,
            NodeReplacement::Lfu,
            NodeReplacement::LruK(2),
            NodeReplacement::LruK(4),
        ][policy_idx];
        let mut config = table_config(16, 1, 3);
        config.node_replacement = policy;
        let mut table = PredictorTable::new(config);
        for &n in &nodes {
            table.insert(0x1234, NodeId::new(n));
            let stored = table.lookup(0x1234).expect("entry resident");
            prop_assert!(stored.len() <= 3, "{policy:?} overgrew: {}", stored.len());
        }
    }

    #[test]
    fn hash_is_translation_consistent(
        ox in -10.0f32..10.0, oy in -10.0f32..10.0, oz in -10.0f32..10.0,
        dx in -1.0f32..1.0, dy in -1.0f32..1.0, dz in -1.0f32..1.0,
    ) {
        // Hashing the same ray twice gives the same value; hashing a far
        // away ray (different grid cell) gives a different origin code.
        let d = Vec3::new(dx, dy, dz);
        prop_assume!(d.length() > 1e-2);
        let bounds = rip_math::Aabb::new(Vec3::splat(-16.0), Vec3::splat(16.0));
        let hasher = RayHasher::new(HashFunction::default(), bounds);
        let ray = Ray::new(Vec3::new(ox, oy, oz), d.normalized());
        prop_assert_eq!(hasher.hash(&ray), hasher.hash(&ray));
    }
}

/// A deterministic porous scene for flow-level properties.
fn porous_scene() -> Bvh {
    let mut tris = Vec::new();
    for i in 0..12 {
        for j in 0..12 {
            if (i + j) % 3 == 0 {
                continue;
            }
            let o = Vec3::new(i as f32, 1.5, j as f32);
            tris.push(Triangle::new(o, o + Vec3::X, o + Vec3::Z));
        }
    }
    Bvh::build(&tris)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn trace_flow_is_exact_under_any_config(
        seed in 0u64..1000,
        go_up_level in 0u32..6,
        ways in 0usize..3,
        update_delay in 0usize..64,
    ) {
        let bvh = porous_scene();
        let config = PredictorConfig {
            go_up_level,
            ways: [1, 2, 4][ways],
            entries: 256 * [1, 2, 4][ways],
            update_delay,
            ..PredictorConfig::paper_default()
        };
        let mut predictor = rip_core::Predictor::new(config, bvh.bounds());
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..200 {
            let o = Vec3::new(rng.gen_range(0.0..12.0), 0.1, rng.gen_range(0.0..12.0));
            let d = rip_math::sampling::cosine_hemisphere_around(
                Vec3::Y, rng.gen(), rng.gen());
            let ray = Ray::segment(o, d, rng.gen_range(2.0..9.0));
            let reference = bvh.intersect(&ray, TraversalKind::AnyHit).hit.is_some();
            let trace = trace_occlusion(&mut predictor, &bvh, &ray);
            prop_assert_eq!(reference, trace.hit.is_some(),
                "visibility diverged under {:?}", config);
        }
        // Bookkeeping invariants hold for any configuration.
        let stats = predictor.stats();
        prop_assert!(stats.verified <= stats.predicted);
        prop_assert!(stats.predicted <= stats.rays);
        prop_assert!(stats.hits <= stats.rays);
    }

    #[test]
    fn verified_rays_are_always_hits(seed in 0u64..500) {
        let bvh = porous_scene();
        let config = PredictorConfig { update_delay: 0, ..PredictorConfig::paper_default() };
        let mut predictor = rip_core::Predictor::new(config, bvh.bounds());
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..150 {
            let o = Vec3::new(rng.gen_range(2.0..8.0), 0.2, rng.gen_range(2.0..8.0));
            let d = rip_math::sampling::cosine_hemisphere_around(
                Vec3::Y, rng.gen(), rng.gen());
            let ray = Ray::segment(o, d, 6.0);
            let trace = trace_occlusion(&mut predictor, &bvh, &ray);
            if trace.outcome == rip_core::RayOutcome::Verified {
                prop_assert!(trace.hit.is_some(), "verified ray without a hit");
                prop_assert_eq!(trace.fallback_stats, rip_bvh::TraversalStats::default(),
                    "verified ray paid a fallback traversal");
            }
        }
    }
}
