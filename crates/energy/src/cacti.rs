//! Analytic SRAM access-energy estimates standing in for CACTI 7.
//!
//! CACTI is a large standalone C++ tool; the paper only consumes a handful
//! of numbers from it (per-access energy of small RT-unit SRAMs at 45 nm).
//! We replace it with a calibrated power-law model: published CACTI 7
//! outputs for 45 nm arrays show read energy growing roughly with the
//! square root of capacity, anchored at ≈2 pJ for a 1 KB array and ≈20 pJ
//! for a 64 KB array. Associativity adds comparator/way overhead.
//!
//! The substitution is documented in `DESIGN.md` §2; absolute picojoules
//! are not the point — Table 4 reproduces the *relative* breakdown and the
//! DRAM-dominance conclusion.

/// Estimated energy in picojoules for one read of an SRAM array.
///
/// `size_bytes` is capacity; `ways` models tag-comparator overhead
/// (1 for direct/plain arrays).
///
/// # Examples
///
/// ```
/// use rip_energy::cacti::sram_read_pj;
///
/// let small = sram_read_pj(1024, 1);
/// let large = sram_read_pj(64 * 1024, 1);
/// assert!(large > small);
/// assert!(large / small < 64.0, "sub-linear growth");
/// ```
pub fn sram_read_pj(size_bytes: usize, ways: usize) -> f64 {
    let kb = (size_bytes as f64 / 1024.0).max(0.03125);
    // Anchored power law: 2 pJ at 1 KB, ~16 pJ at 64 KB (exponent 0.5).
    let base = 2.0 * kb.sqrt();
    // Each extra way adds ~6% comparator/mux energy.
    base * (1.0 + 0.06 * (ways.saturating_sub(1)) as f64)
}

/// Estimated energy for one write (≈90% of a read for small arrays).
pub fn sram_write_pj(size_bytes: usize, ways: usize) -> f64 {
    sram_read_pj(size_bytes, ways) * 0.9
}

/// Estimated silicon area in mm² for an SRAM array at 45 nm.
///
/// A 45 nm 6T SRAM cell is ≈0.35 µm²; arrays pay roughly 2× cell area in
/// periphery (decoders, sense amps) for small structures, shrinking toward
/// 1.3× for large ones. §6.1.1 sizes the predictor table at 5.5 KB per SM —
/// this model puts that at well under 0.01 mm², negligible against a
/// mobile SM.
///
/// # Examples
///
/// ```
/// use rip_energy::cacti::sram_area_mm2;
///
/// let predictor_table = sram_area_mm2(5504, 4);
/// assert!(predictor_table < 0.05, "5.5KB must be tiny: {predictor_table} mm²");
/// ```
pub fn sram_area_mm2(size_bytes: usize, ways: usize) -> f64 {
    const CELL_UM2: f64 = 0.35;
    let bits = size_bytes as f64 * 8.0;
    let cell_area_mm2 = bits * CELL_UM2 * 1e-6;
    // Periphery overhead decays with size; ways add comparator area.
    let kb = (size_bytes as f64 / 1024.0).max(0.03125);
    let periphery = 1.3 + 0.7 / (1.0 + kb / 8.0);
    let way_overhead = 1.0 + 0.02 * ways.saturating_sub(1) as f64;
    cell_area_mm2 * periphery * way_overhead
}

/// DRAM access energy per 128-byte transaction in picojoules.
///
/// GDDR-class devices cost ≈20–30 pJ/bit including I/O at 45-nm-era
/// processes; 128 B × 8 bits × 25 pJ/bit ≈ 25.6 nJ. This constant makes
/// DRAM dominate the Table 4 budget, as the paper observes.
pub const DRAM_ACCESS_PJ: f64 = 25_600.0;

/// L2 access energy per 128-byte transaction (1 MB, 16-way).
pub fn l2_access_pj() -> f64 {
    sram_read_pj(1024 * 1024, 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_in_size() {
        let mut prev = 0.0;
        for kb in [1usize, 4, 16, 64, 256, 1024] {
            let e = sram_read_pj(kb * 1024, 1);
            assert!(e > prev, "energy must grow with capacity");
            prev = e;
        }
    }

    #[test]
    fn associativity_overhead() {
        assert!(sram_read_pj(8192, 4) > sram_read_pj(8192, 1));
    }

    #[test]
    fn writes_cheaper_than_reads() {
        assert!(sram_write_pj(4096, 1) < sram_read_pj(4096, 1));
    }

    #[test]
    fn calibration_anchors() {
        let one_kb = sram_read_pj(1024, 1);
        assert!((one_kb - 2.0).abs() < 0.1, "1KB anchor: {one_kb}");
        let sixty_four = sram_read_pj(64 * 1024, 1);
        assert!(
            (10.0..25.0).contains(&sixty_four),
            "64KB anchor: {sixty_four}"
        );
    }

    #[test]
    fn dram_dominates_sram() {
        assert!(DRAM_ACCESS_PJ > 100.0 * l2_access_pj());
    }

    #[test]
    fn tiny_arrays_do_not_underflow() {
        assert!(sram_read_pj(16, 1) > 0.0);
    }

    #[test]
    fn area_grows_roughly_linearly_with_capacity() {
        let a = sram_area_mm2(8 * 1024, 1);
        let b = sram_area_mm2(64 * 1024, 1);
        let ratio = b / a;
        assert!(
            (6.0..9.0).contains(&ratio),
            "8x capacity → ~{ratio:.1}x area"
        );
    }

    #[test]
    fn predictor_table_area_is_negligible() {
        // The paper's 5.5 KB/SM table.
        let area = sram_area_mm2(5504, 4);
        assert!(area < 0.05, "predictor area {area} mm²");
        assert!(area > 1e-4, "area must be physical");
    }
}
