//! Activity-based energy model reproducing the paper's Table 4.
//!
//! The paper estimates energy with GPUWattch (GPU core, caches, DRAM) plus
//! CACTI 7 at 45 nm for the RT-unit SRAMs (predictor table, traversal
//! stacks, ray buffer, partial warp collector) and adder/multiplier models
//! for the intersection units. We rebuild that pipeline as an analytic
//! model: [`cacti`] supplies per-access SRAM energies from array geometry,
//! and [`EnergyModel`] multiplies the timing simulator's
//! [`rip_gpusim::ActivityCounts`] by per-event energies to produce a
//! per-ray breakdown in nJ (Table 4's unit).
//!
//! # Examples
//!
//! ```
//! use rip_energy::EnergyModel;
//! use rip_gpusim::{ActivityCounts, SimReport};
//!
//! let model = EnergyModel::paper_45nm();
//! let report = SimReport {
//!     completed_rays: 100,
//!     activity: ActivityCounts { l1_accesses: 1000, dram_accesses: 50, ..Default::default() },
//!     ..Default::default()
//! };
//! let breakdown = model.breakdown(&report);
//! assert!(breakdown.total_nj_per_ray() > 0.0);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod cacti;
mod model;

pub use model::{EnergyBreakdown, EnergyModel};
