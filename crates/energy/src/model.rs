//! Per-component energy accounting (Table 4).

use crate::cacti;
use rip_gpusim::SimReport;

/// Per-ray energy breakdown in nanojoules, mirroring Table 4's rows.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Base GPU: core pipeline + caches + DRAM.
    pub base_gpu: f64,
    /// Predictor table lookups and updates.
    pub predictor_table: f64,
    /// Warp repacking: partial warp collector plus the extra ray-buffer
    /// index updates.
    pub warp_repacking: f64,
    /// Traversal stack pushes/pops.
    pub traversal_stack: f64,
    /// Ray buffer reads/writes.
    pub ray_buffer: f64,
    /// Ray-box and ray-triangle intersection tests.
    pub ray_intersections: f64,
}

impl EnergyBreakdown {
    /// Total energy per ray in nanojoules.
    pub fn total_nj_per_ray(&self) -> f64 {
        self.base_gpu
            + self.predictor_table
            + self.warp_repacking
            + self.traversal_stack
            + self.ray_buffer
            + self.ray_intersections
    }

    /// Component-wise difference (`self − baseline`), the "Change from
    /// Predictor" column of Table 4.
    pub fn delta(&self, baseline: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            base_gpu: self.base_gpu - baseline.base_gpu,
            predictor_table: self.predictor_table - baseline.predictor_table,
            warp_repacking: self.warp_repacking - baseline.warp_repacking,
            traversal_stack: self.traversal_stack - baseline.traversal_stack,
            ray_buffer: self.ray_buffer - baseline.ray_buffer,
            ray_intersections: self.ray_intersections - baseline.ray_intersections,
        }
    }
}

/// Activity-based energy model with CACTI-like per-event energies.
///
/// # Examples
///
/// ```
/// use rip_energy::EnergyModel;
///
/// let model = EnergyModel::paper_45nm();
/// assert!(model.dram_access_nj > model.l1_access_nj);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    /// Energy per L1 access (nJ).
    pub l1_access_nj: f64,
    /// Energy per L2 access (nJ).
    pub l2_access_nj: f64,
    /// Energy per DRAM transaction (nJ).
    pub dram_access_nj: f64,
    /// Static + core pipeline energy per cycle, whole GPU (nJ).
    pub core_nj_per_cycle: f64,
    /// Energy per predictor table access (nJ).
    pub predictor_access_nj: f64,
    /// Energy per partial-warp-collector operation (nJ).
    pub collector_op_nj: f64,
    /// Energy per traversal-stack operation (nJ).
    pub stack_op_nj: f64,
    /// Energy per ray-buffer access (nJ).
    pub ray_buffer_access_nj: f64,
    /// Energy per ray-box test (nJ).
    pub box_test_nj: f64,
    /// Energy per ray-triangle test (nJ).
    pub tri_test_nj: f64,
}

impl EnergyModel {
    /// The 45 nm model used for Table 4: SRAM energies from the
    /// [`cacti`](crate::cacti) estimator applied to the RT-unit array
    /// geometries (5.5 KB 4-way predictor table, 8 KB stack SRAM,
    /// 16 KB ray buffer, 0.25 KB collector), GDDR-class DRAM energy, and
    /// adder/multiplier intersection tests.
    pub fn paper_45nm() -> Self {
        EnergyModel {
            l1_access_nj: cacti::sram_read_pj(64 * 1024, 1) / 1000.0,
            l2_access_nj: cacti::l2_access_pj() / 1000.0,
            dram_access_nj: cacti::DRAM_ACCESS_PJ / 1000.0,
            // Mobile-class GPU: ~1.5 W core+leakage at the 1365 MHz Table 2
            // clock ≈ 1.1 nJ per cycle.
            core_nj_per_cycle: 1.1,
            predictor_access_nj: cacti::sram_read_pj(5504, 4) / 1000.0,
            collector_op_nj: cacti::sram_write_pj(256, 1) / 1000.0,
            stack_op_nj: cacti::sram_read_pj(8 * 1024, 1) / 1000.0,
            ray_buffer_access_nj: cacti::sram_read_pj(16 * 1024, 1) / 1000.0,
            // Woop-style box test: ~6 FMAs + comparators; tri test: ~2×.
            box_test_nj: 0.004,
            tri_test_nj: 0.009,
        }
    }

    /// Computes the Table 4 per-ray breakdown from a timing-simulation
    /// report.
    ///
    /// # Panics
    ///
    /// Panics when the report completed zero rays.
    pub fn breakdown(&self, report: &SimReport) -> EnergyBreakdown {
        assert!(report.completed_rays > 0, "report has no completed rays");
        let rays = report.completed_rays as f64;
        let a = &report.activity;
        EnergyBreakdown {
            base_gpu: (a.l1_accesses as f64 * self.l1_access_nj
                + a.l2_accesses as f64 * self.l2_access_nj
                + a.dram_accesses as f64 * self.dram_access_nj
                + report.cycles as f64 * self.core_nj_per_cycle)
                / rays,
            predictor_table: (a.predictor_lookups + a.predictor_updates) as f64
                * self.predictor_access_nj
                / rays,
            warp_repacking: a.collector_ops as f64
                * (self.collector_op_nj + self.ray_buffer_access_nj)
                / rays,
            traversal_stack: a.stack_ops as f64 * self.stack_op_nj / rays,
            ray_buffer: a.ray_buffer_accesses as f64 * self.ray_buffer_access_nj / rays,
            ray_intersections: (a.box_tests as f64 * self.box_test_nj
                + a.tri_tests as f64 * self.tri_test_nj)
                / rays,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::paper_45nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_gpusim::ActivityCounts;

    fn report(cycles: u64, rays: u64, activity: ActivityCounts) -> SimReport {
        SimReport {
            cycles,
            completed_rays: rays,
            activity,
            ..Default::default()
        }
    }

    #[test]
    fn dram_dominates_like_table_4() {
        let model = EnergyModel::paper_45nm();
        // A ray profile similar to the paper: ~30 L1 accesses, 2 DRAM
        // transactions, ~60 tests, ~100 cycles per ray.
        let r = report(
            100_000,
            1_000,
            ActivityCounts {
                l1_accesses: 30_000,
                l2_accesses: 5_000,
                dram_accesses: 2_000,
                box_tests: 50_000,
                tri_tests: 10_000,
                stack_ops: 60_000,
                ray_buffer_accesses: 30_000,
                ..Default::default()
            },
        );
        let b = model.breakdown(&r);
        assert!(
            b.base_gpu > 0.8 * b.total_nj_per_ray(),
            "base GPU (DRAM+core) must dominate: {b:?}"
        );
        assert!(b.ray_buffer > b.traversal_stack * 0.5);
    }

    #[test]
    fn predictor_components_scale_with_activity() {
        let model = EnergyModel::paper_45nm();
        let quiet = report(1_000, 100, ActivityCounts::default());
        let busy = report(
            1_000,
            100,
            ActivityCounts {
                predictor_lookups: 100,
                predictor_updates: 60,
                collector_ops: 80,
                ..Default::default()
            },
        );
        let qb = model.breakdown(&quiet);
        let bb = model.breakdown(&busy);
        assert_eq!(qb.predictor_table, 0.0);
        assert!(bb.predictor_table > 0.0);
        assert!(bb.warp_repacking > 0.0);
        let delta = bb.delta(&qb);
        assert!(delta.predictor_table > 0.0);
        assert_eq!(delta.base_gpu, 0.0);
    }

    #[test]
    fn fewer_dram_accesses_save_energy() {
        let model = EnergyModel::paper_45nm();
        let mk = |dram| {
            report(
                10_000,
                1_000,
                ActivityCounts {
                    l1_accesses: 30_000,
                    dram_accesses: dram,
                    ..Default::default()
                },
            )
        };
        let high = model.breakdown(&mk(5_000));
        let low = model.breakdown(&mk(4_000));
        assert!(low.total_nj_per_ray() < high.total_nj_per_ray());
        // Reproduces the Table 4 conclusion: the saving shows up in the
        // base GPU row.
        assert!(low.delta(&high).base_gpu < 0.0);
    }

    #[test]
    #[should_panic(expected = "no completed rays")]
    fn zero_ray_report_panics() {
        let _ = EnergyModel::paper_45nm().breakdown(&SimReport::default());
    }

    #[test]
    fn table4_shape_predictor_overhead_is_tiny() {
        // The predictor table row must be orders of magnitude below the
        // base GPU row (paper: +0.02 vs 293 nJ/ray).
        let model = EnergyModel::paper_45nm();
        let r = report(
            100_000,
            1_000,
            ActivityCounts {
                l1_accesses: 30_000,
                dram_accesses: 2_000,
                predictor_lookups: 1_000,
                predictor_updates: 600,
                ..Default::default()
            },
        );
        let b = model.breakdown(&r);
        assert!(b.predictor_table < 0.01 * b.base_gpu);
    }
}
