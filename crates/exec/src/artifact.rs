//! Artifact mapping: filesystem bytes → shared [`Bytes`] views.
//!
//! The cache decodes RIPA v2 artifacts *in place* (see
//! `rip_scene::serial::decode_shared` / `rip_bvh::serial::decode_shared`),
//! so the bytes backing a decoded case must stay alive and immutable for
//! the case's whole lifetime. [`MappedArtifact`] owns that guarantee
//! behind two backends:
//!
//! - **owned** (default): the file is streamed into an
//!   [`AlignedBuf`](rip_pod::AlignedBuf) with `read_exact`, after a
//!   length sanity check against [`MAX_ARTIFACT_BYTES`] — a corrupt
//!   or malicious length can no longer trigger a multi-gigabyte
//!   allocation before the container checksums ever run.
//! - **mmap** (the `mmap` cargo feature): the file is page-mapped
//!   read-only, so the kernel faults pages in lazily and cold-start
//!   load cost is (almost) independent of artifact size. The mapping
//!   syscalls live in [`mmap_backend`], the only unsafe module in this
//!   crate; any mapping failure falls back to the owned backend, whose
//!   bytes are bit-identical.
//!
//! Failures are classified into the existing [`CacheError`] taxonomy:
//! an absent file is a plain [`CacheError::Miss`], an unreadable one is
//! [`CacheError::Io`], and an implausible length is
//! [`CacheError::Corrupt`] so the cache quarantines it like any other
//! damaged artifact.

use crate::cache::CacheError;
use rip_pod::{AlignedBuf, Bytes};
use std::io::Read;
use std::path::Path;
use std::sync::Arc;

/// Hard ceiling on a single artifact file. The largest real artifact
/// (LostEmpire at paper scale) is tens of megabytes; anything beyond
/// this is a corrupt length field or the wrong file, not data.
pub const MAX_ARTIFACT_BYTES: u64 = 1 << 30;

/// An artifact file mapped into memory as an immutable, shareable byte
/// view. Dropping the `MappedArtifact` is fine while decoded cases are
/// alive: the backing storage is reference-counted through [`Bytes`].
pub struct MappedArtifact {
    bytes: Bytes,
}

impl MappedArtifact {
    /// Maps (or reads) the artifact at `path`.
    ///
    /// With the `mmap` feature the page-mapping backend is tried first
    /// and the owned read is the fallback; without it the owned read is
    /// the only path. Both produce bit-identical bytes.
    pub fn open(path: &Path) -> Result<MappedArtifact, CacheError> {
        let file = std::fs::File::open(path).map_err(|e| classify_io(path, e))?;
        let len = file.metadata().map_err(|e| classify_io(path, e))?.len();
        if len > MAX_ARTIFACT_BYTES {
            return Err(CacheError::Corrupt {
                path: path.to_path_buf(),
                detail: format!("file is {len} bytes, past the {MAX_ARTIFACT_BYTES}-byte cap"),
            });
        }
        #[cfg(feature = "mmap")]
        if let Some(region) = mmap_backend::map(&file, len as usize) {
            return Ok(MappedArtifact {
                bytes: Bytes::new(Arc::new(region)),
            });
        }
        Self::read_owned(path, file, len as usize)
    }

    /// The owned-buffer backend: stream the file into an aligned buffer
    /// with `read_exact` (never `read_to_end`, whose growth is driven
    /// by file contents rather than the validated length).
    fn read_owned(
        path: &Path,
        mut file: std::fs::File,
        len: usize,
    ) -> Result<MappedArtifact, CacheError> {
        let mut buf = AlignedBuf::zeroed(len);
        file.read_exact(buf.as_mut_slice())
            .map_err(|e| classify_io(path, e))?;
        Ok(MappedArtifact {
            bytes: Bytes::new(Arc::new(buf)),
        })
    }

    /// The mapped bytes, shareable into decoded cases.
    pub fn bytes(&self) -> Bytes {
        self.bytes.clone()
    }

    /// File length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the file was empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Which backend holds the bytes (`"owned"` or `"mmap"`), for
    /// telemetry and the cross-backend equivalence tests.
    pub fn backend(&self) -> &'static str {
        self.bytes.backend()
    }
}

impl std::fmt::Debug for MappedArtifact {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedArtifact")
            .field("len", &self.len())
            .field("backend", &self.backend())
            .finish()
    }
}

fn classify_io(path: &Path, e: std::io::Error) -> CacheError {
    if e.kind() == std::io::ErrorKind::NotFound {
        CacheError::Miss
    } else {
        CacheError::Io {
            path: path.to_path_buf(),
            detail: e.to_string(),
        }
    }
}

/// Read-only page mapping via direct `mmap(2)`/`munmap(2)` syscall
/// declarations (the container ships no libc crate). This is the one
/// unsafe module in `rip-exec`; everything it exposes is a safe,
/// immutable byte view whose lifetime is tied to the mapping.
#[cfg(feature = "mmap")]
mod mmap_backend {
    use std::os::fd::AsRawFd;

    const PROT_READ: i32 = 0x1;
    const MAP_PRIVATE: i32 = 0x2;

    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }

    /// An owned read-only `MAP_PRIVATE` mapping of a whole file.
    pub(super) struct MmapRegion {
        ptr: *const u8,
        len: usize,
    }

    // SAFETY: the mapping is private and read-only for its entire
    // lifetime — no writer exists, so shared references from any thread
    // are sound, exactly as for a `Vec<u8>` behind an `Arc`.
    unsafe impl Send for MmapRegion {}
    unsafe impl Sync for MmapRegion {}

    impl rip_pod::ByteSource for MmapRegion {
        fn bytes(&self) -> &[u8] {
            // SAFETY: `ptr` is a live mapping of exactly `len` readable
            // bytes, released only in `Drop`.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }

        fn backend(&self) -> &'static str {
            "mmap"
        }
    }

    impl Drop for MmapRegion {
        fn drop(&mut self) {
            // SAFETY: `ptr`/`len` came from a successful `mmap` and are
            // unmapped exactly once.
            unsafe {
                munmap(self.ptr as *mut core::ffi::c_void, self.len);
            }
        }
    }

    /// Maps `file` read-only, or `None` when the kernel refuses (the
    /// caller falls back to the owned backend). A zero-length file is
    /// never mapped: `mmap` rejects empty ranges, and an empty owned
    /// buffer is free anyway.
    pub(super) fn map(file: &std::fs::File, len: usize) -> Option<MmapRegion> {
        if len == 0 {
            return None;
        }
        // SAFETY: the fd is valid for the duration of the call, and a
        // failed mapping returns MAP_FAILED (-1), which is checked.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return None;
        }
        Some(MmapRegion {
            ptr: ptr as *const u8,
            len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file(tag: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("rip-exec-artifact-{tag}-{}", std::process::id()));
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn missing_file_is_a_plain_miss() {
        let path = std::env::temp_dir().join("rip-exec-artifact-definitely-absent");
        assert_eq!(MappedArtifact::open(&path).unwrap_err(), CacheError::Miss);
    }

    #[test]
    fn mapped_bytes_match_the_file() {
        let payload: Vec<u8> = (0..=255).cycle().take(10_000).collect();
        let path = temp_file("roundtrip", &payload);
        let map = MappedArtifact::open(&path).unwrap();
        assert_eq!(map.bytes().as_slice(), &payload[..]);
        assert_eq!(map.len(), payload.len());
        // The view must survive the MappedArtifact itself.
        let view = map.bytes();
        drop(map);
        assert_eq!(view.as_slice(), &payload[..]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_file_maps_to_empty_bytes() {
        let path = temp_file("empty", &[]);
        let map = MappedArtifact::open(&path).unwrap();
        assert!(map.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(feature = "mmap")]
    #[test]
    fn mmap_backend_is_used_and_bit_identical() {
        let payload: Vec<u8> = (0..50_000u32).flat_map(|v| v.to_le_bytes()).collect();
        let path = temp_file("mmap", &payload);
        let map = MappedArtifact::open(&path).unwrap();
        assert_eq!(map.backend(), "mmap");
        assert_eq!(map.bytes().as_slice(), &payload[..]);
        let _ = std::fs::remove_file(&path);
    }
}
