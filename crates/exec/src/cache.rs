//! Build-once case cache with an on-disk artifact store.
//!
//! Two tiers:
//!
//! 1. **In-process**: a `(scene, scale, viewport) → Arc<Case>` map shared
//!    by every experiment in the run. Concurrent requests for the same
//!    key block on one build (via `OnceLock`) instead of duplicating it.
//! 2. **On-disk**: serialized scene and BVH artifacts (see
//!    `rip_scene::serial` / `rip_bvh::serial`), so *subsequent processes*
//!    skip procedural synthesis and BVH construction entirely. Artifacts
//!    are keyed by scene/scale/viewport and both format versions; stale
//!    or corrupt files fail decoding and fall back to a rebuild.
//!
//! The store lives in `$RIP_CACHE_DIR` when set (an **empty** value
//! disables the disk tier), else `<system temp dir>/rip-artifacts`.
//! Clearing it is always safe: artifacts are pure derived data.
//!
//! Telemetry (hits, builds, timings) goes to **stderr** so experiment
//! tables on stdout stay byte-deterministic.

use crate::case::{Case, CaseKey};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Counters describing how a [`CaseCache`] served its requests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from the in-process map.
    pub memory_hits: u64,
    /// Requests served by decoding on-disk artifacts.
    pub disk_hits: u64,
    /// Requests that built the case from scratch.
    pub builds: u64,
}

/// Process-wide build-once cache of benchmark cases.
pub struct CaseCache {
    cases: Mutex<HashMap<CaseKey, Arc<OnceLock<Arc<Case>>>>>,
    disk_dir: Option<PathBuf>,
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    builds: AtomicU64,
}

impl CaseCache {
    /// A cache whose disk tier honors `$RIP_CACHE_DIR` (empty value =
    /// disabled; unset = `<system temp dir>/rip-artifacts`).
    pub fn new() -> Self {
        let disk_dir = match std::env::var("RIP_CACHE_DIR") {
            Ok(dir) if dir.is_empty() => None,
            Ok(dir) => Some(PathBuf::from(dir)),
            Err(_) => Some(std::env::temp_dir().join("rip-artifacts")),
        };
        CaseCache::with_disk_dir(disk_dir)
    }

    /// A cache with an explicit disk tier (`None` = in-memory only).
    pub fn with_disk_dir(disk_dir: Option<PathBuf>) -> Self {
        CaseCache {
            cases: Mutex::new(HashMap::new()),
            disk_dir,
            memory_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            builds: AtomicU64::new(0),
        }
    }

    /// A cache with no disk tier.
    pub fn in_memory_only() -> Self {
        CaseCache::with_disk_dir(None)
    }

    /// Where this cache persists artifacts, when it does.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk_dir.as_deref()
    }

    /// Counters since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            builds: self.builds.load(Ordering::Relaxed),
        }
    }

    /// Returns the case for `key`, building it at most once per process
    /// and consulting the artifact store before building.
    pub fn get_or_build(&self, key: CaseKey) -> Arc<Case> {
        let cell = {
            let mut cases = self.cases.lock().expect("case map poisoned");
            Arc::clone(
                cases
                    .entry(key)
                    .or_insert_with(|| Arc::new(OnceLock::new())),
            )
        };
        if let Some(case) = cell.get() {
            self.memory_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(case);
        }
        let mut initialized_here = false;
        let case = cell.get_or_init(|| {
            initialized_here = true;
            Arc::new(self.load_or_build(key))
        });
        if !initialized_here {
            // Another thread raced us to the build; for this request it
            // behaved like an in-memory hit.
            self.memory_hits.fetch_add(1, Ordering::Relaxed);
        }
        Arc::clone(case)
    }

    fn load_or_build(&self, key: CaseKey) -> Case {
        if let Some(case) = self.try_load(key) {
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            return case;
        }
        self.builds.fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();
        let case = Case::build(key);
        let built_ms = start.elapsed().as_millis();
        match self.store(key, &case) {
            Some(dir) => eprintln!(
                "[rip-exec] built case {} in {built_ms} ms (artifacts cached to {})",
                key.label(),
                dir.display(),
            ),
            None => eprintln!(
                "[rip-exec] built case {} in {built_ms} ms (disk cache disabled)",
                key.label(),
            ),
        }
        case
    }

    /// Attempts to serve `key` from the artifact store. Any failure —
    /// missing files, version skew, corruption — returns `None` and the
    /// caller rebuilds.
    fn try_load(&self, key: CaseKey) -> Option<Case> {
        let (scene_path, bvh_path) = self.artifact_paths(key)?;
        let scene_bytes = std::fs::read(&scene_path).ok()?;
        let bvh_bytes = std::fs::read(&bvh_path).ok()?;
        let start = Instant::now();
        let scene = match rip_scene::serial::decode(&scene_bytes) {
            Ok(scene) => scene,
            Err(e) => {
                eprintln!(
                    "[rip-exec] discarding stale artifact {}: {e}",
                    scene_path.display()
                );
                return None;
            }
        };
        let bvh = match rip_bvh::serial::decode(&bvh_bytes) {
            Ok(bvh) => bvh,
            Err(e) => {
                eprintln!(
                    "[rip-exec] discarding stale artifact {}: {e}",
                    bvh_path.display()
                );
                return None;
            }
        };
        if scene.id != key.id
            || scene.camera.width() != key.width
            || scene.camera.height() != key.height
            || bvh.triangle_count() != scene.mesh.triangle_count()
        {
            eprintln!(
                "[rip-exec] artifact {} does not match its key; rebuilding",
                key.label()
            );
            return None;
        }
        eprintln!(
            "[rip-exec] artifact cache hit: {} (scene+BVH loaded in {} ms, 0 rebuilds)",
            key.label(),
            start.elapsed().as_millis(),
        );
        let id = scene.id;
        Some(Case { id, scene, bvh })
    }

    /// Persists both artifacts; returns the store directory on success.
    fn store(&self, key: CaseKey, case: &Case) -> Option<&Path> {
        let (scene_path, bvh_path) = self.artifact_paths(key)?;
        let dir = self.disk_dir.as_deref()?;
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!(
                "[rip-exec] cannot create artifact dir {}: {e}",
                dir.display()
            );
            return None;
        }
        let ok = write_atomic(&scene_path, &rip_scene::serial::encode(&case.scene))
            && write_atomic(&bvh_path, &rip_bvh::serial::encode(&case.bvh));
        ok.then_some(dir)
    }

    fn artifact_paths(&self, key: CaseKey) -> Option<(PathBuf, PathBuf)> {
        let dir = self.disk_dir.as_deref()?;
        let stem = format!(
            "{}_s{}b{}",
            key.label(),
            rip_scene::serial::FORMAT_VERSION,
            rip_bvh::serial::FORMAT_VERSION,
        );
        Some((
            dir.join(format!("{stem}.scene")),
            dir.join(format!("{stem}.bvh")),
        ))
    }
}

impl Default for CaseCache {
    fn default() -> Self {
        CaseCache::new()
    }
}

/// Writes via a temp file + rename so concurrent processes never observe
/// a torn artifact.
fn write_atomic(path: &Path, bytes: &[u8]) -> bool {
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let result = std::fs::write(&tmp, bytes).and_then(|()| std::fs::rename(&tmp, path));
    if let Err(e) = result {
        eprintln!("[rip-exec] cannot persist artifact {}: {e}", path.display());
        let _ = std::fs::remove_file(&tmp);
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::JobPool;
    use rip_scene::{SceneId, SceneScale};

    fn tiny_key(viewport: u32) -> CaseKey {
        CaseKey::square(SceneId::Sibenik, SceneScale::Tiny, viewport)
    }

    fn temp_store(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rip-exec-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_tier_shares_one_build() {
        let cache = CaseCache::in_memory_only();
        let a = cache.get_or_build(tiny_key(16));
        let b = cache.get_or_build(tiny_key(16));
        assert!(
            Arc::ptr_eq(&a, &b),
            "second request must reuse the built case"
        );
        assert_eq!(
            cache.stats(),
            CacheStats {
                memory_hits: 1,
                disk_hits: 0,
                builds: 1
            }
        );
    }

    #[test]
    fn concurrent_requests_build_once() {
        let cache = CaseCache::in_memory_only();
        let pool = JobPool::new(4);
        let keys = [tiny_key(18); 8];
        let cases = pool.map(&keys, |&key| cache.get_or_build(key));
        for case in &cases[1..] {
            assert!(Arc::ptr_eq(&cases[0], case));
        }
        assert_eq!(cache.stats().builds, 1);
        assert_eq!(cache.stats().memory_hits, 7);
    }

    #[test]
    fn disk_tier_round_trips_and_validates() {
        let dir = temp_store("roundtrip");
        let built = {
            let cache = CaseCache::with_disk_dir(Some(dir.clone()));
            cache.get_or_build(tiny_key(20))
        };
        // A fresh cache (fresh process stand-in) must hit the disk tier.
        let cache = CaseCache::with_disk_dir(Some(dir.clone()));
        let loaded = cache.get_or_build(tiny_key(20));
        assert_eq!(
            cache.stats(),
            CacheStats {
                memory_hits: 0,
                disk_hits: 1,
                builds: 0
            }
        );
        loaded.bvh.validate().unwrap();
        assert_eq!(
            rip_bvh::serial::encode(&loaded.bvh),
            rip_bvh::serial::encode(&built.bvh),
            "cached BVH must match the fresh build byte-for-byte",
        );
        assert_eq!(loaded.scene.mesh.positions(), built.scene.mesh.positions());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_artifacts_fall_back_to_rebuild() {
        let dir = temp_store("corrupt");
        {
            let cache = CaseCache::with_disk_dir(Some(dir.clone()));
            cache.get_or_build(tiny_key(22));
        }
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path.extension().is_some_and(|e| e == "bvh") {
                let mut bytes = std::fs::read(&path).unwrap();
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0xA5;
                std::fs::write(&path, bytes).unwrap();
            }
        }
        let cache = CaseCache::with_disk_dir(Some(dir.clone()));
        let case = cache.get_or_build(tiny_key(22));
        assert_eq!(cache.stats().builds, 1, "corruption must force a rebuild");
        case.bvh.validate().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = CaseCache::in_memory_only();
        let a = cache.get_or_build(tiny_key(16));
        let b = cache.get_or_build(CaseKey::square(SceneId::Sibenik, SceneScale::Tiny, 24));
        assert_eq!(cache.stats().builds, 2);
        assert_ne!(a.scene.camera.width(), b.scene.camera.width());
    }
}
