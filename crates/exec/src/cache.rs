//! Build-once case cache with an on-disk artifact store.
//!
//! Two tiers:
//!
//! 1. **In-process**: a `(scene, scale, viewport) → Arc<Case>` map shared
//!    by every experiment in the run. Concurrent requests for the same
//!    key block on one build (via `OnceLock`) instead of duplicating it.
//! 2. **On-disk**: RIPA v2 scene and BVH artifacts (see
//!    `rip_scene::serial` / `rip_bvh::serial`), so *subsequent processes*
//!    skip procedural synthesis and BVH construction entirely. Artifacts
//!    are mapped through [`MappedArtifact`] and decoded **in place** —
//!    the buffer sections are borrowed out of the mapping, not copied —
//!    and are keyed by scene/scale/viewport and both format versions;
//!    stale or corrupt files fail decoding and fall back to a rebuild
//!    (v1 artifacts are simply invisible under the v2 key).
//!
//! The store lives in `$RIP_CACHE_DIR` when set (an **empty** value
//! disables the disk tier), else `<system temp dir>/rip-artifacts`.
//! Clearing it is always safe: artifacts are pure derived data.
//!
//! **Fault handling.** Artifact IO never aborts a run: every failure is
//! classified as a typed [`CacheError`] and degrades to a rebuild from
//! source. Corrupt or key-mismatched artifacts are additionally
//! *quarantined* — renamed to `<name>.quarantine` — so a bad file is
//! preserved for diagnosis, never re-decoded on the next run, and never
//! silently overwritten until a fresh build replaces it. Writes go
//! through a temp file plus atomic rename, so a killed process can never
//! leave a truncated artifact under the final name.
//!
//! Telemetry (hits, builds, timings) goes to **stderr** so experiment
//! tables on stdout stay byte-deterministic. Every diagnostic is a
//! structured [`rip_obs`] event that prints its stderr line verbatim
//! and mirrors into the `exec.cache.*` counters of the attached
//! [`Obs`] instance ([`CaseCache::with_obs`]).

use crate::artifact::MappedArtifact;
use crate::case::{Case, CaseKey};
use crate::fault::Fault;
use rip_obs::Obs;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Why an artifact could not be served from the disk tier.
///
/// Every variant degrades to a rebuild; the distinction drives telemetry,
/// quarantine, and the [`Fault`] taxonomy ([`CacheError::into_fault`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CacheError {
    /// No artifact on disk (a plain miss — the expected cold-start path).
    Miss,
    /// The disk tier is disabled for this cache.
    Disabled,
    /// The artifact exists but cannot be read (permissions, transient IO).
    Io {
        /// Offending file.
        path: PathBuf,
        /// OS-level error description.
        detail: String,
    },
    /// The artifact fails decoding or post-decode validation.
    Corrupt {
        /// Offending file.
        path: PathBuf,
        /// Decoder diagnostic.
        detail: String,
    },
    /// The artifact decodes but describes a different case than its key.
    KeyMismatch {
        /// The key whose lookup found the imposter.
        label: String,
    },
}

impl CacheError {
    /// Folds this error into the structured fault taxonomy.
    pub fn into_fault(self) -> Fault {
        match self {
            CacheError::Miss | CacheError::Disabled => {
                Fault::retryable("artifact unavailable (cache miss)")
            }
            CacheError::Io { path, detail } => {
                Fault::io(format!("cannot read artifact {}: {detail}", path.display()))
            }
            CacheError::Corrupt { path, detail } => {
                Fault::cache_corrupt(format!("corrupt artifact {}: {detail}", path.display()))
            }
            CacheError::KeyMismatch { label } => {
                Fault::cache_corrupt(format!("artifact for {label} does not match its key"))
            }
        }
    }
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::Miss => f.write_str("artifact not present"),
            CacheError::Disabled => f.write_str("disk tier disabled"),
            CacheError::Io { path, detail } => {
                write!(f, "cannot read {}: {detail}", path.display())
            }
            CacheError::Corrupt { path, detail } => {
                write!(f, "corrupt artifact {}: {detail}", path.display())
            }
            CacheError::KeyMismatch { label } => {
                write!(f, "artifact does not match key {label}")
            }
        }
    }
}

impl std::error::Error for CacheError {}

/// Counters describing how a [`CaseCache`] served its requests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from the in-process map.
    pub memory_hits: u64,
    /// Requests served by decoding on-disk artifacts.
    pub disk_hits: u64,
    /// Requests that built the case from scratch.
    pub builds: u64,
    /// Artifacts quarantined after failing decode or key validation.
    pub quarantines: u64,
}

/// Process-wide build-once cache of benchmark cases.
pub struct CaseCache {
    cases: Mutex<HashMap<CaseKey, Arc<OnceLock<Arc<Case>>>>>,
    disk_dir: Option<PathBuf>,
    obs: Arc<Obs>,
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    builds: AtomicU64,
    quarantines: AtomicU64,
}

impl CaseCache {
    /// A cache whose disk tier honors `$RIP_CACHE_DIR` (empty value =
    /// disabled; unset = `<system temp dir>/rip-artifacts`).
    pub fn new() -> Self {
        let disk_dir = match std::env::var("RIP_CACHE_DIR") {
            Ok(dir) if dir.is_empty() => None,
            Ok(dir) => Some(PathBuf::from(dir)),
            Err(_) => Some(std::env::temp_dir().join("rip-artifacts")),
        };
        CaseCache::with_disk_dir(disk_dir)
    }

    /// A cache with an explicit disk tier (`None` = in-memory only).
    pub fn with_disk_dir(disk_dir: Option<PathBuf>) -> Self {
        CaseCache {
            cases: Mutex::new(HashMap::new()),
            disk_dir,
            obs: Arc::clone(Obs::global()),
            memory_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            builds: AtomicU64::new(0),
            quarantines: AtomicU64::new(0),
        }
    }

    /// A cache with no disk tier.
    pub fn in_memory_only() -> Self {
        CaseCache::with_disk_dir(None)
    }

    /// Routes this cache's `exec.cache.*` counters and events to `obs`
    /// instead of the process-wide default instance.
    pub fn with_obs(mut self, obs: Arc<Obs>) -> Self {
        self.obs = obs;
        self
    }

    /// Where this cache persists artifacts, when it does.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk_dir.as_deref()
    }

    /// Counters since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            builds: self.builds.load(Ordering::Relaxed),
            quarantines: self.quarantines.load(Ordering::Relaxed),
        }
    }

    /// Returns the case for `key`, building it at most once per process
    /// and consulting the artifact store before building.
    ///
    /// This never fails: a missing, unreadable, corrupt, or mismatched
    /// artifact is quarantined as needed and the case is rebuilt from
    /// source. (A panic inside the scene/BVH build itself still unwinds —
    /// that is the caller's unit boundary, isolated by
    /// [`ShardedRunner::try_run`](crate::runner::ShardedRunner::try_run).)
    pub fn get_or_build(&self, key: CaseKey) -> Arc<Case> {
        let cell = {
            // A poisoned map just means some other thread panicked while
            // inserting; the map itself is still structurally sound.
            let mut cases = self.cases.lock().unwrap_or_else(|p| p.into_inner());
            Arc::clone(
                cases
                    .entry(key)
                    .or_insert_with(|| Arc::new(OnceLock::new())),
            )
        };
        if let Some(case) = cell.get() {
            self.memory_hits.fetch_add(1, Ordering::Relaxed);
            self.obs.add("exec.cache.memory_hit", 1);
            return Arc::clone(case);
        }
        let mut initialized_here = false;
        let case = cell.get_or_init(|| {
            initialized_here = true;
            Arc::new(self.load_or_build(key))
        });
        if !initialized_here {
            // Another thread raced us to the build; for this request it
            // behaved like an in-memory hit.
            self.memory_hits.fetch_add(1, Ordering::Relaxed);
            self.obs.add("exec.cache.memory_hit", 1);
        }
        Arc::clone(case)
    }

    /// Drops the in-process entry for `key`, so the next
    /// [`CaseCache::get_or_build`] re-resolves it (from the artifact
    /// store if present, else a fresh build). Returns whether an entry
    /// was dropped. On-disk artifacts are untouched — they are pure
    /// derived data and stay valid across epochs.
    ///
    /// This is the hook behind `rip-serve`'s epoch-based registry
    /// reload: the registry invalidates, rebuilds via `get_or_build`,
    /// and bumps its epoch; requests already holding the old `Arc`'d
    /// case keep tracing against it unperturbed.
    pub fn invalidate(&self, key: CaseKey) -> bool {
        let mut cases = self.cases.lock().unwrap_or_else(|p| p.into_inner());
        cases.remove(&key).is_some()
    }

    /// The already-built case for `key`, if any — a pure read: never
    /// builds, never touches hit counters. Service layers use this to
    /// snapshot the current epoch before attempting a risky rebuild.
    pub fn peek(&self, key: CaseKey) -> Option<Arc<Case>> {
        let cases = self.cases.lock().unwrap_or_else(|p| p.into_inner());
        cases.get(&key).and_then(|cell| cell.get().cloned())
    }

    /// Re-registers `case` as the in-process entry for `key`, replacing
    /// whatever is there. This is the reload circuit breaker's undo
    /// path: when a rebuild fails after [`CaseCache::invalidate`], the
    /// previous case goes back so readers keep being served the last
    /// good epoch instead of re-attempting the failing build.
    pub fn restore(&self, key: CaseKey, case: Arc<Case>) {
        let cell = OnceLock::new();
        let _ = cell.set(case);
        let mut cases = self.cases.lock().unwrap_or_else(|p| p.into_inner());
        cases.insert(key, Arc::new(cell));
    }

    fn load_or_build(&self, key: CaseKey) -> Case {
        match self.try_load(key) {
            Ok(case) => {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                self.obs.add("exec.cache.disk_hit", 1);
                return case;
            }
            Err(CacheError::Miss | CacheError::Disabled) => {}
            Err(error @ (CacheError::Corrupt { .. } | CacheError::KeyMismatch { .. })) => {
                self.obs
                    .event("exec.cache", "artifact_rejected")
                    .arg("case", key.label())
                    .arg("error", error.to_string())
                    .stderr(format!(
                        "[rip-exec] {error}; quarantining and rebuilding from source"
                    ))
                    .emit();
                self.quarantine(key, &error);
            }
            Err(error @ CacheError::Io { .. }) => {
                self.obs
                    .event("exec.cache", "artifact_io_error")
                    .arg("case", key.label())
                    .stderr(format!("[rip-exec] {error}; rebuilding from source"))
                    .emit();
            }
        }
        self.builds.fetch_add(1, Ordering::Relaxed);
        self.obs.add("exec.cache.build", 1);
        let span = self
            .obs
            .span("exec.cache", "build")
            .arg("case", key.label());
        let start = Instant::now();
        let case = Case::build(key);
        let built_ms = start.elapsed().as_millis() as u64;
        drop(span);
        let event = self
            .obs
            .event("exec.cache", "build")
            .arg("case", key.label())
            .arg_u64("built_ms", built_ms);
        match self.store(key, &case) {
            Some(dir) => event
                .arg("store", "disk")
                .stderr(format!(
                    "[rip-exec] built case {} in {built_ms} ms (artifacts cached to {})",
                    key.label(),
                    dir.display(),
                ))
                .emit(),
            None => event
                .arg("store", "none")
                .stderr(format!(
                    "[rip-exec] built case {} in {built_ms} ms (disk cache disabled)",
                    key.label(),
                ))
                .emit(),
        }
        case
    }

    /// Attempts to serve `key` from the artifact store, classifying every
    /// failure so the caller can log, quarantine, and rebuild.
    ///
    /// Artifacts are RIPA v2 containers decoded **in place** through
    /// [`MappedArtifact`]: the mesh and BVH buffer sections stay borrowed
    /// from the mapping (owned aligned buffer by default, a page mapping
    /// under the `mmap` feature) for the case's whole lifetime, so a disk
    /// hit validates checksums and structure but copies almost nothing.
    fn try_load(&self, key: CaseKey) -> Result<Case, CacheError> {
        let Some((scene_path, bvh_path)) = self.artifact_paths(key) else {
            return Err(CacheError::Disabled);
        };
        let scene_map = MappedArtifact::open(&scene_path)?;
        let bvh_map = MappedArtifact::open(&bvh_path)?;
        let backend = scene_map.backend();
        if backend == "mmap" {
            self.obs.add("exec.cache.mmap_load", 1);
        }
        let start = Instant::now();
        let scene = rip_scene::serial::decode_shared(scene_map.bytes()).map_err(|e| {
            CacheError::Corrupt {
                path: scene_path.clone(),
                detail: e,
            }
        })?;
        let bvh =
            rip_bvh::serial::decode_shared(bvh_map.bytes()).map_err(|e| CacheError::Corrupt {
                path: bvh_path.clone(),
                detail: e,
            })?;
        if scene.id != key.id
            || scene.camera.width() != key.width
            || scene.camera.height() != key.height
            || bvh.triangle_count() != scene.mesh.triangle_count()
        {
            return Err(CacheError::KeyMismatch { label: key.label() });
        }
        let load_ms = start.elapsed().as_millis() as u64;
        self.obs
            .event("exec.cache", "artifact_hit")
            .arg("case", key.label())
            .arg("backend", backend)
            .arg_u64("load_ms", load_ms)
            .stderr(format!(
                "[rip-exec] artifact cache hit: {} (scene+BVH loaded in {load_ms} ms via {backend}, 0 rebuilds)",
                key.label(),
            ))
            .emit();
        let id = scene.id;
        Ok(Case::from_parts(id, scene, bvh))
    }

    /// Moves the artifact(s) implicated by `error` aside as
    /// `<name>.quarantine`, preserving the bad bytes for diagnosis while
    /// guaranteeing they are never decoded again. A key mismatch
    /// quarantines both halves of the pair (either could be the imposter).
    fn quarantine(&self, key: CaseKey, error: &CacheError) {
        let Some((scene_path, bvh_path)) = self.artifact_paths(key) else {
            return;
        };
        let targets: Vec<&Path> = match error {
            CacheError::Corrupt { path, .. } => vec![path.as_path()],
            CacheError::KeyMismatch { .. } => vec![scene_path.as_path(), bvh_path.as_path()],
            _ => return,
        };
        for path in targets {
            let mut quarantined = path.as_os_str().to_owned();
            quarantined.push(".quarantine");
            match std::fs::rename(path, &quarantined) {
                Ok(()) => {
                    self.quarantines.fetch_add(1, Ordering::Relaxed);
                    self.obs.add("exec.cache.quarantine", 1);
                    self.obs
                        .event("exec.cache", "quarantine")
                        .arg("case", key.label())
                        .arg("path", path.display().to_string())
                        .stderr(format!(
                            "[rip-exec] quarantined {} -> {}",
                            path.display(),
                            Path::new(&quarantined).display()
                        ))
                        .emit();
                }
                Err(e) => {
                    // Last resort: make sure the bad bytes cannot be
                    // decoded again even if we cannot preserve them.
                    self.obs
                        .event("exec.cache", "quarantine_failed")
                        .arg("case", key.label())
                        .arg("path", path.display().to_string())
                        .stderr(format!(
                            "[rip-exec] cannot quarantine {} ({e}); removing instead",
                            path.display()
                        ))
                        .emit();
                    let _ = std::fs::remove_file(path);
                }
            }
        }
    }

    /// Persists both artifacts; returns the store directory on success.
    fn store(&self, key: CaseKey, case: &Case) -> Option<&Path> {
        let (scene_path, bvh_path) = self.artifact_paths(key)?;
        let dir = self.disk_dir.as_deref()?;
        if let Err(e) = std::fs::create_dir_all(dir) {
            self.obs
                .event("exec.cache", "store_failed")
                .arg("path", dir.display().to_string())
                .stderr(format!(
                    "[rip-exec] cannot create artifact dir {}: {e}",
                    dir.display()
                ))
                .emit();
            return None;
        }
        let ok = write_atomic(
            &self.obs,
            &scene_path,
            &rip_scene::serial::encode(&case.scene),
        ) && write_atomic(&self.obs, &bvh_path, &rip_bvh::serial::encode(&case.bvh));
        ok.then_some(dir)
    }

    fn artifact_paths(&self, key: CaseKey) -> Option<(PathBuf, PathBuf)> {
        let dir = self.disk_dir.as_deref()?;
        let stem = format!(
            "{}_s{}b{}",
            key.label(),
            rip_scene::serial::FORMAT_VERSION,
            rip_bvh::serial::FORMAT_VERSION,
        );
        Some((
            dir.join(format!("{stem}.scene")),
            dir.join(format!("{stem}.bvh")),
        ))
    }
}

impl Default for CaseCache {
    fn default() -> Self {
        CaseCache::new()
    }
}

impl std::fmt::Debug for CaseCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CaseCache")
            .field("disk_dir", &self.disk_dir)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

/// Writes via a temp file + atomic rename so a killed process (or a
/// concurrent one) can never leave a truncated artifact under the final
/// name — readers see either the old complete file or the new one.
pub(crate) fn write_atomic(obs: &Obs, path: &Path, bytes: &[u8]) -> bool {
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let result = std::fs::write(&tmp, bytes).and_then(|()| std::fs::rename(&tmp, path));
    if let Err(e) = result {
        obs.event("exec.cache", "store_failed")
            .arg("path", path.display().to_string())
            .stderr(format!(
                "[rip-exec] cannot persist artifact {}: {e}",
                path.display()
            ))
            .emit();
        let _ = std::fs::remove_file(&tmp);
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::JobPool;
    use rip_scene::{SceneId, SceneScale};

    fn tiny_key(viewport: u32) -> CaseKey {
        CaseKey::square(SceneId::Sibenik, SceneScale::Tiny, viewport)
    }

    fn temp_store(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rip-exec-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_tier_shares_one_build() {
        let cache = CaseCache::in_memory_only();
        let a = cache.get_or_build(tiny_key(16));
        let b = cache.get_or_build(tiny_key(16));
        assert!(
            Arc::ptr_eq(&a, &b),
            "second request must reuse the built case"
        );
        assert_eq!(
            cache.stats(),
            CacheStats {
                memory_hits: 1,
                disk_hits: 0,
                builds: 1,
                quarantines: 0
            }
        );
    }

    #[test]
    fn concurrent_requests_build_once() {
        let cache = CaseCache::in_memory_only();
        let pool = JobPool::new(4);
        let keys = [tiny_key(18); 8];
        let cases = pool.map(&keys, |&key| cache.get_or_build(key));
        for case in &cases[1..] {
            assert!(Arc::ptr_eq(&cases[0], case));
        }
        assert_eq!(cache.stats().builds, 1);
        assert_eq!(cache.stats().memory_hits, 7);
    }

    #[test]
    fn disk_tier_round_trips_and_validates() {
        let dir = temp_store("roundtrip");
        let built = {
            let cache = CaseCache::with_disk_dir(Some(dir.clone()));
            cache.get_or_build(tiny_key(20))
        };
        // A fresh cache (fresh process stand-in) must hit the disk tier.
        let cache = CaseCache::with_disk_dir(Some(dir.clone()));
        let loaded = cache.get_or_build(tiny_key(20));
        assert_eq!(
            cache.stats(),
            CacheStats {
                memory_hits: 0,
                disk_hits: 1,
                builds: 0,
                quarantines: 0
            }
        );
        loaded.bvh.validate().unwrap();
        assert_eq!(
            rip_bvh::serial::encode(&loaded.bvh),
            rip_bvh::serial::encode(&built.bvh),
            "cached BVH must match the fresh build byte-for-byte",
        );
        assert_eq!(loaded.scene.mesh.positions(), built.scene.mesh.positions());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_artifacts_fall_back_to_rebuild() {
        let dir = temp_store("corrupt");
        {
            let cache = CaseCache::with_disk_dir(Some(dir.clone()));
            cache.get_or_build(tiny_key(22));
        }
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path.extension().is_some_and(|e| e == "bvh") {
                let mut bytes = std::fs::read(&path).unwrap();
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0xA5;
                std::fs::write(&path, bytes).unwrap();
            }
        }
        let cache = CaseCache::with_disk_dir(Some(dir.clone()));
        let case = cache.get_or_build(tiny_key(22));
        assert_eq!(cache.stats().builds, 1, "corruption must force a rebuild");
        assert_eq!(
            cache.stats().quarantines,
            1,
            "the corrupt artifact must be quarantined"
        );
        case.bvh.validate().unwrap();
        let quarantined: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "quarantine"))
            .collect();
        assert_eq!(quarantined.len(), 1, "expected one .quarantine file");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = CaseCache::in_memory_only();
        let a = cache.get_or_build(tiny_key(16));
        let b = cache.get_or_build(CaseKey::square(SceneId::Sibenik, SceneScale::Tiny, 24));
        assert_eq!(cache.stats().builds, 2);
        assert_ne!(a.scene.camera.width(), b.scene.camera.width());
    }
}
