//! Benchmark cases: a scene plus its acceleration structure.
//!
//! `Case` used to live in the `rip-bench` harness; it moved here so the
//! [`CaseCache`](crate::cache::CaseCache) can build, persist, and share
//! cases across experiments without depending on the bench crate.

use std::sync::{Arc, OnceLock};

use rip_bvh::{Bvh, RayBatch};
use rip_math::Triangle;
use rip_render::{AoConfig, AoWorkload};
use rip_scene::{Scene, SceneId, SceneScale};

/// Identity of a built case: everything that determines its bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CaseKey {
    /// Which benchmark scene.
    pub id: SceneId,
    /// Geometry scale.
    pub scale: SceneScale,
    /// Viewport width in pixels.
    pub width: u32,
    /// Viewport height in pixels.
    pub height: u32,
}

impl CaseKey {
    /// Key for a square viewport.
    pub fn square(id: SceneId, scale: SceneScale, viewport: u32) -> Self {
        CaseKey {
            id,
            scale,
            width: viewport,
            height: viewport,
        }
    }

    /// Stable lowercase label for file names and telemetry, e.g.
    /// `sb_tiny_48x48`.
    pub fn label(&self) -> String {
        let scale = match self.scale {
            SceneScale::Tiny => "tiny",
            SceneScale::Quick => "quick",
            SceneScale::Paper => "paper",
        };
        format!(
            "{}_{}_{}x{}",
            self.id.code().to_lowercase(),
            scale,
            self.width,
            self.height
        )
    }
}

/// A built benchmark case.
#[derive(Clone, Debug)]
pub struct Case {
    /// Which scene.
    pub id: SceneId,
    /// Scene geometry and camera.
    pub scene: Scene,
    /// The acceleration structure.
    pub bvh: Bvh,
    /// Lazily generated AO batch, shared across clones: the workload is a
    /// pure function of the case, so a sweep running many configurations
    /// over one case pays for ray generation once.
    ao_batch: Arc<OnceLock<Arc<RayBatch>>>,
}

impl Case {
    /// Builds the case for `key` from scratch: procedural scene synthesis
    /// followed by BVH construction.
    pub fn build(key: CaseKey) -> Self {
        let scene = key.id.build_with_viewport(key.scale, key.width, key.height);
        Case::from_scene(scene)
    }

    /// Builds the BVH for an already-synthesized scene.
    pub fn from_scene(scene: Scene) -> Self {
        let tris: Vec<Triangle> = scene.mesh.triangles().collect();
        let bvh = Bvh::build(&tris);
        Case::from_parts(scene.id, scene, bvh)
    }

    /// Assembles a case from an already-built scene and BVH (the artifact
    /// cache's load path).
    pub fn from_parts(id: SceneId, scene: Scene, bvh: Bvh) -> Self {
        Case {
            id,
            scene,
            bvh,
            ao_batch: Arc::new(OnceLock::new()),
        }
    }

    /// Generates this case's AO workload with the §5.2 parameters.
    pub fn ao_workload(&self) -> AoWorkload {
        AoWorkload::generate(&self.scene, &self.bvh, &AoConfig::default())
    }

    /// The AO workload as a SoA [`RayBatch`], ready for the batched
    /// simulator and kernel entry points. Generated on first call and
    /// shared (including across clones of this case) after that.
    pub fn ao_batch(&self) -> Arc<RayBatch> {
        Arc::clone(
            self.ao_batch
                .get_or_init(|| Arc::new(self.ao_workload().batch())),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_consistent_case() {
        let case = Case::build(CaseKey::square(SceneId::Sibenik, SceneScale::Tiny, 16));
        assert_eq!(case.id, SceneId::Sibenik);
        assert_eq!(case.bvh.triangle_count(), case.scene.mesh.triangle_count());
        case.bvh.validate().unwrap();
    }

    #[test]
    fn key_labels_are_stable() {
        let key = CaseKey::square(SceneId::CrytekSponza, SceneScale::Quick, 256);
        assert_eq!(key.label(), "sp_quick_256x256");
        let rect = CaseKey {
            id: SceneId::Sibenik,
            scale: SceneScale::Tiny,
            width: 32,
            height: 24,
        };
        assert_eq!(rect.label(), "sb_tiny_32x24");
    }
}
