//! Structured fault taxonomy, retry policy, and fault-injection hooks.
//!
//! Everything that can go wrong inside a work unit is folded into a
//! [`Fault`]: a [`FaultKind`] plus a human-readable message. Faults are
//! plain data — they travel through result slots, journals, and failure
//! reports instead of unwinding the whole sweep.
//!
//! Three environment hooks live here so every layer agrees on them:
//!
//! - `RIP_UNIT_TIMEOUT` — per-unit watchdog deadline in (fractional)
//!   seconds, parsed by [`unit_timeout_from_env`]. Unset/empty = off.
//! - `RIP_FAULT_INJECT` — deterministic fault injection for tests and CI,
//!   parsed by [`InjectionPlan::from_env`] and applied by
//!   [`apply_injections`]. Unset = no-op.
//! - Retry pacing is deterministic: [`RetryPolicy::backoff`] derives its
//!   jitter from the unit index and attempt number, never from a clock or
//!   RNG, so a retried sweep behaves identically run-to-run.

use std::time::Duration;

/// What class of failure a work unit hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The unit panicked; the panic was caught at the unit boundary.
    Panic,
    /// The unit exceeded its watchdog deadline.
    Timeout,
    /// An on-disk artifact failed decoding or key validation.
    CacheCorrupt,
    /// A non-transient filesystem error.
    Io,
    /// A transient failure worth retrying (cache read race, flaky IO).
    Retryable,
    /// The work's deadline passed before (or while) it ran; the result
    /// would be dead on arrival. Service layers use this to attribute
    /// requests expired in a queue or completed too late.
    DeadlineExceeded,
}

impl FaultKind {
    /// Every kind, in stable report order (indexable by
    /// [`FaultKind::index`]).
    pub const ALL: [FaultKind; 6] = [
        FaultKind::Panic,
        FaultKind::Timeout,
        FaultKind::CacheCorrupt,
        FaultKind::Io,
        FaultKind::Retryable,
        FaultKind::DeadlineExceeded,
    ];

    /// Stable label used in failure reports and telemetry.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Panic => "Panic",
            FaultKind::Timeout => "Timeout",
            FaultKind::CacheCorrupt => "CacheCorrupt",
            FaultKind::Io => "Io",
            FaultKind::Retryable => "Retryable",
            FaultKind::DeadlineExceeded => "DeadlineExceeded",
        }
    }

    /// Stable snake_case slug for counter paths and JSON keys.
    pub fn slug(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Timeout => "timeout",
            FaultKind::CacheCorrupt => "cache_corrupt",
            FaultKind::Io => "io",
            FaultKind::Retryable => "retryable",
            FaultKind::DeadlineExceeded => "deadline_exceeded",
        }
    }

    /// Stable index into per-kind arrays (matches [`FaultKind::ALL`]).
    pub fn index(self) -> usize {
        match self {
            FaultKind::Panic => 0,
            FaultKind::Timeout => 1,
            FaultKind::CacheCorrupt => 2,
            FaultKind::Io => 3,
            FaultKind::Retryable => 4,
            FaultKind::DeadlineExceeded => 5,
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A structured work-unit failure: kind plus diagnostic message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fault {
    /// Failure class.
    pub kind: FaultKind,
    /// Human-readable diagnostic.
    pub message: String,
}

impl Fault {
    /// A fault of `kind` with a diagnostic message.
    pub fn new(kind: FaultKind, message: impl Into<String>) -> Self {
        Fault {
            kind,
            message: message.into(),
        }
    }

    /// A caught panic.
    pub fn panic(message: impl Into<String>) -> Self {
        Fault::new(FaultKind::Panic, message)
    }

    /// A watchdog expiry after `deadline`.
    pub fn timeout(deadline: Duration) -> Self {
        Fault::new(
            FaultKind::Timeout,
            format!("unit exceeded its {} ms deadline", deadline.as_millis()),
        )
    }

    /// A corrupt or mismatched cache artifact.
    pub fn cache_corrupt(message: impl Into<String>) -> Self {
        Fault::new(FaultKind::CacheCorrupt, message)
    }

    /// A non-transient IO failure.
    pub fn io(message: impl Into<String>) -> Self {
        Fault::new(FaultKind::Io, message)
    }

    /// A transient failure eligible for retry.
    pub fn retryable(message: impl Into<String>) -> Self {
        Fault::new(FaultKind::Retryable, message)
    }

    /// Work whose deadline passed before it could (usefully) run.
    pub fn deadline_exceeded(message: impl Into<String>) -> Self {
        Fault::new(FaultKind::DeadlineExceeded, message)
    }

    /// Whether the retry machinery should re-attempt this fault.
    pub fn is_retryable(&self) -> bool {
        self.kind == FaultKind::Retryable
    }

    /// Runs `f` with panic isolation: a panic becomes `Err(Fault::panic)`
    /// carrying the payload message instead of unwinding the caller.
    pub fn catch<U>(f: impl FnOnce() -> Result<U, Fault>) -> Result<U, Fault> {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
            Ok(result) => result,
            Err(payload) => Err(Fault::panic(panic_message(&*payload))),
        }
    }
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

impl std::error::Error for Fault {}

/// Extracts the human-readable message from a panic payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Bounded retry with deterministic jittered exponential backoff.
///
/// Only faults whose [`Fault::is_retryable`] holds are re-attempted;
/// panics, timeouts, and hard IO errors fail the unit immediately.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per unit (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before attempt 2; doubles each further attempt.
    pub base_backoff: Duration,
}

impl RetryPolicy {
    /// No retries: every fault is final.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
        }
    }

    /// The sweep default: three attempts, 10 ms base backoff.
    pub fn standard() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(10),
        }
    }

    /// The pause before re-attempting unit `salt` as attempt number
    /// `next_attempt` (2-based). Deterministic: exponential in the attempt
    /// with jitter hashed from `(salt, next_attempt)`, capped at 2 s, so
    /// retried sweeps are reproducible and retries of distinct units
    /// de-synchronize instead of stampeding.
    pub fn backoff(&self, next_attempt: u32, salt: u64) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let exp = next_attempt.saturating_sub(2).min(16);
        let base_ms = self.base_backoff.as_millis() as u64;
        let scaled = base_ms.saturating_mul(1 << exp);
        let jitter = fnv64(&[salt.to_le_bytes(), u64::from(next_attempt).to_le_bytes()].concat())
            % base_ms.max(1);
        Duration::from_millis((scaled + jitter).min(2_000))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// FNV-1a 64-bit hash (journal checksums, backoff jitter).
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Parses `RIP_UNIT_TIMEOUT` (fractional seconds) into a watchdog
/// deadline. Unset, empty, zero, or malformed values mean "no watchdog"
/// (malformed values also warn on stderr).
pub fn unit_timeout_from_env() -> Option<Duration> {
    let raw = std::env::var("RIP_UNIT_TIMEOUT").ok()?;
    if raw.is_empty() {
        return None;
    }
    match raw.parse::<f64>() {
        Ok(secs) if secs > 0.0 && secs.is_finite() => Some(Duration::from_secs_f64(secs)),
        _ => {
            eprintln!("warning: ignoring invalid RIP_UNIT_TIMEOUT='{raw}' (expected seconds > 0)");
            None
        }
    }
}

/// One fault-injection directive aimed at a labelled work unit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Injection {
    /// Panic when the unit starts.
    Panic,
    /// Sleep this long before running the unit (trips the watchdog).
    SlowMs(u64),
    /// Fail with a [`FaultKind::Retryable`] fault on the first `n` attempts.
    FlakyAttempts(u32),
    /// Fail with a [`FaultKind::CacheCorrupt`] fault (an unrecoverable
    /// artifact, as if quarantine + rebuild had also failed).
    Corrupt,
    /// Hard-exit the process (simulated `kill -9`) when the unit starts.
    Kill,
}

/// The parsed `RIP_FAULT_INJECT` plan: `(unit label, directive)` pairs.
///
/// Spec grammar: directives separated by `;`, each one of
/// `panic:<label>`, `slow:<label>=<ms>`, `flaky:<label>=<attempts>`,
/// `corrupt:<label>`, `kill:<label>`. Unknown or malformed directives
/// warn and are skipped — an injection spec must never crash the harness
/// it is testing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InjectionPlan {
    directives: Vec<(String, Injection)>,
}

impl InjectionPlan {
    /// Parses a spec string (see type docs for the grammar).
    pub fn parse(spec: &str) -> Self {
        let mut directives = Vec::new();
        for raw in spec.split(';') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            let Some((verb, rest)) = raw.split_once(':') else {
                eprintln!("warning: ignoring malformed fault injection '{raw}'");
                continue;
            };
            let (label, arg) = match rest.split_once('=') {
                Some((label, arg)) => (label, Some(arg)),
                None => (rest, None),
            };
            let directive = match (verb, arg) {
                ("panic", None) => Some(Injection::Panic),
                ("kill", None) => Some(Injection::Kill),
                ("corrupt", None) => Some(Injection::Corrupt),
                ("slow", Some(ms)) => ms.parse().ok().map(Injection::SlowMs),
                ("flaky", Some(n)) => n.parse().ok().map(Injection::FlakyAttempts),
                _ => None,
            };
            match directive {
                Some(directive) => directives.push((label.to_string(), directive)),
                None => eprintln!("warning: ignoring malformed fault injection '{raw}'"),
            }
        }
        InjectionPlan { directives }
    }

    /// The plan from `RIP_FAULT_INJECT` (empty plan when unset).
    pub fn from_env() -> Self {
        match std::env::var("RIP_FAULT_INJECT") {
            Ok(spec) => InjectionPlan::parse(&spec),
            Err(_) => InjectionPlan::default(),
        }
    }

    /// Whether the plan contains no directives.
    pub fn is_empty(&self) -> bool {
        self.directives.is_empty()
    }

    /// Directives aimed at `label`.
    pub fn for_label<'a>(&'a self, label: &'a str) -> impl Iterator<Item = &'a Injection> {
        self.directives
            .iter()
            .filter(move |(l, _)| l == label)
            .map(|(_, d)| d)
    }

    /// Applies every directive aimed at `label` for attempt number
    /// `attempt` (1-based). Returns `Err` for injected retryable faults,
    /// panics for `panic:` directives, sleeps for `slow:` directives, and
    /// exits the process (status 9) for `kill:` directives.
    pub fn apply(&self, label: &str, attempt: u32) -> Result<(), Fault> {
        for directive in self.for_label(label) {
            match *directive {
                Injection::Kill => {
                    eprintln!("[rip-exec] fault injection: killing process at unit {label}");
                    std::process::exit(9);
                }
                Injection::Panic => {
                    panic!("injected panic in unit {label}");
                }
                Injection::SlowMs(ms) => {
                    std::thread::sleep(Duration::from_millis(ms));
                }
                Injection::Corrupt => {
                    return Err(Fault::cache_corrupt(format!(
                        "injected unrecoverable artifact corruption in unit {label}"
                    )));
                }
                Injection::FlakyAttempts(n) => {
                    if attempt <= n {
                        return Err(Fault::retryable(format!(
                            "injected transient fault in unit {label} (attempt {attempt} of {n} injected failures)"
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Applies the `RIP_FAULT_INJECT` plan to `label` (no-op when unset).
///
/// Fault-isolated runners call this at the top of every unit attempt so
/// tests and CI can exercise each degradation path of a real sweep.
pub fn apply_injections(label: &str, attempt: u32) -> Result<(), Fault> {
    InjectionPlan::from_env().apply(label, attempt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_display_names_kind() {
        let fault = Fault::timeout(Duration::from_millis(250));
        assert_eq!(fault.kind, FaultKind::Timeout);
        assert!(fault.to_string().starts_with("Timeout: "));
        assert!(fault.to_string().contains("250 ms"));
    }

    #[test]
    fn catch_converts_panics_to_faults() {
        let ok: Result<u32, Fault> = Fault::catch(|| Ok(7));
        assert_eq!(ok.unwrap(), 7);
        let caught: Result<u32, Fault> = Fault::catch(|| panic!("kaboom {}", 42));
        let fault = caught.unwrap_err();
        assert_eq!(fault.kind, FaultKind::Panic);
        assert!(fault.message.contains("kaboom 42"));
        let typed: Result<u32, Fault> = Fault::catch(|| Err(Fault::io("disk gone")));
        assert_eq!(typed.unwrap_err().kind, FaultKind::Io);
    }

    #[test]
    fn only_retryable_faults_retry() {
        assert!(Fault::retryable("x").is_retryable());
        for fault in [
            Fault::panic("x"),
            Fault::timeout(Duration::from_secs(1)),
            Fault::cache_corrupt("x"),
            Fault::io("x"),
            Fault::deadline_exceeded("x"),
        ] {
            assert!(!fault.is_retryable(), "{fault} must not retry");
        }
    }

    #[test]
    fn kind_indices_match_all_order() {
        for (i, kind) in FaultKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
        assert_eq!(FaultKind::DeadlineExceeded.label(), "DeadlineExceeded");
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let policy = RetryPolicy::standard();
        let a = policy.backoff(2, 5);
        let b = policy.backoff(2, 5);
        assert_eq!(a, b, "same unit+attempt must back off identically");
        assert_ne!(
            policy.backoff(2, 5),
            policy.backoff(2, 6),
            "distinct units should jitter apart"
        );
        for attempt in 2..40 {
            assert!(policy.backoff(attempt, 0) <= Duration::from_secs(2));
        }
        assert_eq!(RetryPolicy::none().backoff(2, 0), Duration::ZERO);
    }

    #[test]
    fn injection_spec_parses_and_targets_labels() {
        let plan =
            InjectionPlan::parse("panic:fig12_speedup; slow:table8_hash=40;flaky:sec64_gi=2");
        assert_eq!(plan.for_label("fig12_speedup").count(), 1);
        assert_eq!(
            plan.for_label("table8_hash").next(),
            Some(&Injection::SlowMs(40))
        );
        assert_eq!(
            plan.for_label("sec64_gi").next(),
            Some(&Injection::FlakyAttempts(2))
        );
        assert_eq!(plan.for_label("table1_scenes").count(), 0);
    }

    #[test]
    fn malformed_injection_directives_are_skipped() {
        let plan = InjectionPlan::parse("bogus; slow:x; flaky:y=z; panic:ok; ;kill:k=1");
        assert_eq!(plan.for_label("ok").next(), Some(&Injection::Panic));
        assert_eq!(plan.for_label("x").count(), 0);
        assert_eq!(plan.for_label("y").count(), 0);
        assert_eq!(plan.for_label("k").count(), 0);
    }

    #[test]
    fn flaky_injection_clears_after_n_attempts() {
        let plan = InjectionPlan::parse("flaky:unit=2");
        assert!(plan.apply("unit", 1).is_err());
        assert!(plan.apply("unit", 2).is_err());
        assert!(plan.apply("unit", 3).is_ok());
        assert!(plan.apply("other", 1).is_ok());
    }

    #[test]
    #[should_panic(expected = "injected panic in unit boom")]
    fn panic_injection_panics() {
        let _ = InjectionPlan::parse("panic:boom").apply("boom", 1);
    }
}
