//! Crash-safe checkpoint journal for resumable sweeps.
//!
//! A [`Journal`] is an append-only record of *completed* work units. Each
//! record carries the unit's label, attempt count, elapsed time, and an
//! opaque payload (the caller's serialized result), framed with a length
//! and an FNV-1a checksum so a record torn by `kill -9` mid-write is
//! detected and discarded — the reader recovers the longest valid prefix
//! and truncates the file back to it, and the unit simply re-runs.
//!
//! The file is keyed by a caller-supplied *fingerprint* (scale, scene
//! selection, schedule, format versions…). [`Journal::resume`] refuses to
//! reuse a journal whose fingerprint differs — a sweep can only resume
//! into the exact configuration that produced the checkpoint.
//!
//! On-disk layout (all integers little-endian):
//!
//! ```text
//! rip-journal v1 <fingerprint>\n
//! rec <body-len> <fnv64-hex>\n
//! <body bytes>\n
//! rec ...
//! ```
//!
//! Body: `u32 label-len, label, u32 attempts, u64 elapsed-ms,
//! u32 payload-len, payload`.

use crate::fault::fnv64;
use rip_obs::Obs;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

const HEADER_PREFIX: &str = "rip-journal v1 ";

/// One completed work unit, as recorded in the journal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalEntry {
    /// Unit label (must match the sweep's unit naming).
    pub label: String,
    /// Attempts the unit took to succeed.
    pub attempts: u32,
    /// Wall-clock time of the successful attempt chain.
    pub elapsed: Duration,
    /// Caller-defined serialized result (e.g. an encoded report).
    pub payload: Vec<u8>,
}

impl JournalEntry {
    fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(20 + self.label.len() + self.payload.len());
        body.extend_from_slice(&(self.label.len() as u32).to_le_bytes());
        body.extend_from_slice(self.label.as_bytes());
        body.extend_from_slice(&self.attempts.to_le_bytes());
        body.extend_from_slice(&(self.elapsed.as_millis() as u64).to_le_bytes());
        body.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        body.extend_from_slice(&self.payload);
        body
    }

    fn decode(body: &[u8]) -> Option<JournalEntry> {
        let mut at = 0usize;
        let take = |at: &mut usize, n: usize| -> Option<&[u8]> {
            let slice = body.get(*at..*at + n)?;
            *at += n;
            Some(slice)
        };
        let u32_at = |at: &mut usize| -> Option<u32> {
            Some(u32::from_le_bytes(take(at, 4)?.try_into().ok()?))
        };
        let label_len = u32_at(&mut at)? as usize;
        let label = String::from_utf8(take(&mut at, label_len)?.to_vec()).ok()?;
        let attempts = u32_at(&mut at)?;
        let elapsed_ms = u64::from_le_bytes(take(&mut at, 8)?.try_into().ok()?);
        let payload_len = u32_at(&mut at)? as usize;
        let payload = take(&mut at, payload_len)?.to_vec();
        (at == body.len()).then_some(JournalEntry {
            label,
            attempts,
            elapsed: Duration::from_millis(elapsed_ms),
            payload,
        })
    }
}

/// An open, append-able checkpoint journal.
///
/// Appends are serialized through an internal mutex and flushed per
/// record, so concurrent workers may checkpoint completed units directly
/// and a killed process loses at most the record being written.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Mutex<File>,
}

impl Journal {
    /// Creates a fresh journal at `path` (truncating any existing file)
    /// with the given configuration fingerprint.
    ///
    /// The fingerprint must be a single line; embedded newlines are
    /// rejected because they would corrupt the header framing.
    pub fn create(path: impl Into<PathBuf>, fingerprint: &str) -> io::Result<Journal> {
        let path = path.into();
        if fingerprint.contains('\n') || fingerprint.contains('\r') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "journal fingerprint must be a single line",
            ));
        }
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        file.write_all(format!("{HEADER_PREFIX}{fingerprint}\n").as_bytes())?;
        file.flush()?;
        Ok(Journal {
            path,
            file: Mutex::new(file),
        })
    }

    /// Opens `path` for resumption: returns the journal plus every intact
    /// record whose fingerprint matches.
    ///
    /// - Missing file → fresh journal, no entries.
    /// - Fingerprint mismatch or unreadable header → the stale journal is
    ///   discarded and recreated, no entries.
    /// - A torn/corrupt trailing record → the file is truncated back to
    ///   the last intact record and the valid prefix is returned.
    pub fn resume(
        path: impl Into<PathBuf>,
        fingerprint: &str,
    ) -> io::Result<(Journal, Vec<JournalEntry>)> {
        let path = path.into();
        let mut bytes = Vec::new();
        match File::open(&path) {
            Ok(mut file) => {
                file.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Ok((Journal::create(path, fingerprint)?, Vec::new()));
            }
            Err(e) => return Err(e),
        }
        let expected_header = format!("{HEADER_PREFIX}{fingerprint}\n");
        if !bytes.starts_with(expected_header.as_bytes()) {
            Obs::global()
                .event("exec.journal", "fingerprint_mismatch")
                .arg("path", path.display().to_string())
                .stderr(format!(
                    "[rip-exec] journal {} does not match this configuration; starting fresh",
                    path.display()
                ))
                .emit();
            return Ok((Journal::create(path, fingerprint)?, Vec::new()));
        }
        let (entries, good_len) = parse_records(&bytes, expected_header.len());
        if good_len < bytes.len() {
            let torn = (bytes.len() - good_len) as u64;
            Obs::global()
                .event("exec.journal", "torn_tail_discarded")
                .arg("path", path.display().to_string())
                .arg_u64("bytes", torn)
                .stderr(format!(
                    "[rip-exec] journal {}: discarding {torn} torn trailing byte(s)",
                    path.display(),
                ))
                .emit();
        }
        let mut file = OpenOptions::new().write(true).read(true).open(&path)?;
        file.set_len(good_len as u64)?;
        file.seek(io::SeekFrom::End(0))?;
        Ok((
            Journal {
                path,
                file: Mutex::new(file),
            },
            entries,
        ))
    }

    /// Where this journal lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one completed-unit record and flushes it to the OS.
    pub fn append(&self, entry: &JournalEntry) -> io::Result<()> {
        let body = entry.encode();
        let mut framed = Vec::with_capacity(body.len() + 32);
        framed.extend_from_slice(format!("rec {} {:016x}\n", body.len(), fnv64(&body)).as_bytes());
        framed.extend_from_slice(&body);
        framed.push(b'\n');
        let mut file = self.file.lock().unwrap_or_else(|p| p.into_inner());
        file.write_all(&framed)?;
        file.flush()?;
        Obs::global().add("exec.journal.append", 1);
        Ok(())
    }
}

/// Parses intact records starting at `offset`; returns them plus the byte
/// length of the valid prefix (header included).
fn parse_records(bytes: &[u8], offset: usize) -> (Vec<JournalEntry>, usize) {
    let mut entries = Vec::new();
    let mut at = offset;
    while let Some(rest) = bytes.get(at..) {
        if rest.is_empty() {
            break;
        }
        let Some(line_end) = rest.iter().position(|&b| b == b'\n') else {
            break;
        };
        let Ok(line) = std::str::from_utf8(&rest[..line_end]) else {
            break;
        };
        let mut parts = line.split(' ');
        let (Some("rec"), Some(len), Some(crc), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            break;
        };
        let (Ok(len), Ok(crc)) = (len.parse::<usize>(), u64::from_str_radix(crc, 16)) else {
            break;
        };
        let body_start = at + line_end + 1;
        let Some(body) = bytes.get(body_start..body_start + len) else {
            break;
        };
        if bytes.get(body_start + len) != Some(&b'\n') || fnv64(body) != crc {
            break;
        }
        let Some(entry) = JournalEntry::decode(body) else {
            break;
        };
        entries.push(entry);
        at = body_start + len + 1;
    }
    (entries, at)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("rip-journal-{tag}-{}", std::process::id()))
    }

    fn entry(label: &str, payload: &[u8]) -> JournalEntry {
        JournalEntry {
            label: label.to_string(),
            attempts: 2,
            elapsed: Duration::from_millis(37),
            payload: payload.to_vec(),
        }
    }

    #[test]
    fn round_trips_entries_across_instances() {
        let path = temp_path("roundtrip");
        {
            let journal = Journal::create(&path, "fp=a").unwrap();
            journal.append(&entry("alpha", b"payload-1")).unwrap();
            journal.append(&entry("beta", b"")).unwrap();
        }
        let (journal, entries) = Journal::resume(&path, "fp=a").unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0], entry("alpha", b"payload-1"));
        assert_eq!(entries[1].label, "beta");
        // Appending after resume keeps earlier records intact.
        journal.append(&entry("gamma", b"xyz")).unwrap();
        let (_, entries) = Journal::resume(&path, "fp=a").unwrap();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[2].payload, b"xyz");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_discarded_and_truncated() {
        let path = temp_path("torn");
        {
            let journal = Journal::create(&path, "fp").unwrap();
            journal.append(&entry("ok", b"keep me")).unwrap();
            journal.append(&entry("torn", b"about to be cut")).unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let (journal, entries) = Journal::resume(&path, "fp").unwrap();
        assert_eq!(entries.len(), 1, "torn record must be dropped");
        assert_eq!(entries[0].label, "ok");
        // The file was truncated back, so appends start from a clean tail.
        journal.append(&entry("next", b"fresh")).unwrap();
        let (_, entries) = Journal::resume(&path, "fp").unwrap();
        assert_eq!(
            entries.iter().map(|e| e.label.as_str()).collect::<Vec<_>>(),
            vec!["ok", "next"]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bit_flipped_record_is_rejected_by_checksum() {
        let path = temp_path("bitflip");
        {
            let journal = Journal::create(&path, "fp").unwrap();
            journal.append(&entry("only", b"payload-payload")).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let at = bytes.len() - 4;
        bytes[at] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let (_, entries) = Journal::resume(&path, "fp").unwrap();
        assert!(
            entries.is_empty(),
            "checksum must reject the flipped record"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_mismatch_starts_fresh() {
        let path = temp_path("fingerprint");
        {
            let journal = Journal::create(&path, "scale=tiny").unwrap();
            journal.append(&entry("stale", b"old world")).unwrap();
        }
        let (_, entries) = Journal::resume(&path, "scale=paper").unwrap();
        assert!(entries.is_empty(), "mismatched journal must be discarded");
        // And the file now carries the new fingerprint.
        let (_, entries) = Journal::resume(&path, "scale=paper").unwrap();
        assert!(entries.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_resumes_empty() {
        let path = temp_path("missing");
        let _ = std::fs::remove_file(&path);
        let (journal, entries) = Journal::resume(&path, "fp").unwrap();
        assert!(entries.is_empty());
        journal.append(&entry("first", b"x")).unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn multiline_fingerprints_are_rejected() {
        let path = temp_path("newline");
        assert!(Journal::create(&path, "two\nlines").is_err());
        let _ = std::fs::remove_file(&path);
    }
}
