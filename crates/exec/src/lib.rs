//! rip-exec: parallel experiment execution engine.
//!
//! Three layers, each usable on its own:
//!
//! - [`pool`]: a scoped-thread [`JobPool`](pool::JobPool) with a global job
//!   budget and *ordered* result collection, so parallel runs produce
//!   byte-identical output to serial runs.
//! - [`cache`]: a process-wide [`CaseCache`](cache::CaseCache) mapping
//!   `(scene, scale, viewport)` to a built [`Case`], backed by an on-disk
//!   artifact store of serialized meshes and BVH node buffers.
//! - [`runner`]: a [`ShardedRunner`](runner::ShardedRunner) fanning
//!   `(scene, config)` work units across the pool with per-unit timing and
//!   progress telemetry on stderr (stdout stays deterministic).

pub mod cache;
pub mod case;
pub mod pool;
pub mod runner;

pub use cache::{CacheStats, CaseCache};
pub use case::{Case, CaseKey};
pub use pool::{available_parallelism, global_budget, set_global_budget, JobPool};
pub use runner::{ShardedRunner, UnitReport};
