//! rip-exec: parallel, fault-tolerant experiment execution engine.
//!
//! Five layers, each usable on its own:
//!
//! - [`pool`]: a scoped-thread [`JobPool`](pool::JobPool) with a global job
//!   budget and *ordered* result collection, so parallel runs produce
//!   byte-identical output to serial runs.
//! - [`cache`]: a process-wide [`CaseCache`](cache::CaseCache) mapping
//!   `(scene, scale, viewport)` to a built [`Case`], backed by an on-disk
//!   artifact store of serialized meshes and BVH node buffers; corrupt
//!   artifacts are quarantined to `*.quarantine` and rebuilt from source.
//! - [`runner`]: a [`ShardedRunner`](runner::ShardedRunner) fanning
//!   `(scene, config)` work units across the pool with per-unit timing and
//!   progress telemetry on stderr (stdout stays deterministic), plus a
//!   fault-isolated mode ([`try_run`](runner::ShardedRunner::try_run))
//!   with panic isolation, watchdog deadlines, and bounded retry.
//! - [`fault`]: the structured fault taxonomy
//!   ([`FaultKind`](fault::FaultKind)), the retry/backoff policy, the
//!   `RIP_UNIT_TIMEOUT` watchdog knob, and the `RIP_FAULT_INJECT` test
//!   hook.
//! - [`journal`]: a crash-safe checkpoint journal of completed units so a
//!   killed sweep resumes where it left off.
//! - [`trace_store`]: a capture-once [`TraceStore`](trace_store::TraceStore)
//!   of recorded RIPT ray-trace sets keyed by workload label, honoring
//!   `$RIP_TRACE_DIR`, with the same quarantine-and-recapture fault
//!   contract as the artifact store.
//!
//! Every diagnostic that used to be a raw `eprintln!` is now a
//! structured [`rip_obs`] event: the stderr text is printed verbatim
//! (greps keep working), while the structured part feeds the bounded
//! event log, the `exec.*` counters, and — when tracing is enabled —
//! the chrome://tracing export. Caches and runners accept a scoped
//! [`Obs`](rip_obs::Obs) via their `with_obs` builders; everything else
//! uses the process-wide instance.

pub mod artifact;
pub mod cache;
pub mod case;
pub mod fault;
pub mod journal;
pub mod pool;
pub mod runner;
pub mod trace_store;

pub use artifact::MappedArtifact;
pub use cache::{CacheError, CacheStats, CaseCache};
pub use case::{Case, CaseKey};
pub use fault::{
    apply_injections, unit_timeout_from_env, Fault, FaultKind, InjectionPlan, RetryPolicy,
};
pub use journal::{Journal, JournalEntry};
pub use pool::{available_parallelism, global_budget, set_global_budget, JobPool};
pub use runner::{ShardedRunner, UnitReport};
pub use trace_store::{TraceStore, TraceStoreStats};
