//! Scoped-thread job pool with deterministic ordered collection.
//!
//! Built on [`std::thread::scope`] — no dependencies, no long-lived
//! threads. Two properties matter to the experiment harness:
//!
//! 1. **Determinism**: [`JobPool::map`] writes each result into the slot
//!    of its input index, so callers observe results in input order no
//!    matter how the work interleaved. Output is byte-identical to a
//!    serial run.
//! 2. **Deadlock-free nesting**: pools at any nesting depth draw *extra*
//!    worker threads from one process-wide budget with a non-blocking
//!    `try_acquire`. The calling thread always participates in its own
//!    `map`, so even when the budget is exhausted every pool still makes
//!    progress — nested parallelism degrades to serial execution instead
//!    of deadlocking or oversubscribing the machine.

use crate::fault::{panic_message, Fault};
use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

/// Sentinel meaning "budget not configured yet" (lazily defaults to
/// `available_parallelism() - 1` extra threads on first use).
const UNCONFIGURED: isize = -1;

/// Total extra worker threads the whole process may run at once.
static BUDGET_TOTAL: AtomicIsize = AtomicIsize::new(UNCONFIGURED);
/// Extra worker threads currently running.
static BUDGET_USED: AtomicIsize = AtomicIsize::new(0);

/// Per-unit result slot of [`JobPool::map_units`]: the unit's outcome
/// and wall-clock time, written once by whichever thread records it.
type UnitSlot<U> = Mutex<Option<(Result<U, Fault>, Duration)>>;

/// The machine's available parallelism (1 when unknown).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Sets the process-wide job budget: at most `jobs` worker threads in
/// total across all pools, however they nest (the budget stores
/// `jobs - 1` *extra* threads beyond each pool's calling thread).
///
/// Takes effect for permits acquired after the call; threads already
/// running are not interrupted.
pub fn set_global_budget(jobs: usize) {
    let extras = jobs.max(1) as isize - 1;
    BUDGET_TOTAL.store(extras, Ordering::SeqCst);
}

/// The configured process-wide job count (extra threads + 1).
pub fn global_budget() -> usize {
    budget_total() as usize + 1
}

fn budget_total() -> isize {
    let total = BUDGET_TOTAL.load(Ordering::SeqCst);
    if total != UNCONFIGURED {
        return total;
    }
    let default = available_parallelism() as isize - 1;
    // Racing first users compute the same default; either CAS winning is fine.
    let _ =
        BUDGET_TOTAL.compare_exchange(UNCONFIGURED, default, Ordering::SeqCst, Ordering::SeqCst);
    BUDGET_TOTAL.load(Ordering::SeqCst)
}

/// Takes up to `want` permits from the global budget without blocking;
/// returns how many were granted.
fn try_acquire(want: usize) -> usize {
    let want = want as isize;
    loop {
        let total = budget_total();
        let used = BUDGET_USED.load(Ordering::SeqCst);
        let grant = want.min(total - used).max(0);
        if grant == 0 {
            return 0;
        }
        if BUDGET_USED
            .compare_exchange(used, used + grant, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            return grant as usize;
        }
    }
}

fn release(granted: usize) {
    BUDGET_USED.fetch_sub(granted as isize, Ordering::SeqCst);
}

/// A job pool running closures over a slice of work items.
///
/// `jobs` is the *target* parallelism of this pool (calling thread
/// included); the pool may run narrower when the global budget is
/// already spoken for.
///
/// # Examples
///
/// ```
/// use rip_exec::JobPool;
///
/// let pool = JobPool::new(4);
/// let squares = pool.map(&[1u64, 2, 3, 4, 5], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
#[derive(Clone, Debug)]
pub struct JobPool {
    jobs: usize,
}

impl JobPool {
    /// A pool targeting `jobs`-way parallelism (clamped to at least 1).
    pub fn new(jobs: usize) -> Self {
        JobPool { jobs: jobs.max(1) }
    }

    /// A pool targeting the machine's available parallelism.
    pub fn with_available_parallelism() -> Self {
        JobPool::new(available_parallelism())
    }

    /// This pool's target parallelism (calling thread included).
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Applies `f` to every item, in parallel, returning results in
    /// **input order**. The calling thread always participates, so this
    /// makes progress even when the global budget is exhausted.
    ///
    /// # Panics
    ///
    /// Panics (after all workers finish, and after the pool's budget
    /// permits are returned) when any invocation of `f` panicked. The
    /// panic is re-raised as a named `JobPool` error carrying the input
    /// index and the original payload message, so callers see which job
    /// failed instead of a bare join panic. A caught panic never poisons
    /// the pool: subsequent `map` calls run normally.
    pub fn map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        let total = items.len();
        self.map_caught(items, f)
            .into_iter()
            .enumerate()
            .map(|(index, result)| match result {
                Ok(value) => value,
                Err(payload) => panic!(
                    "JobPool: job {index} of {total} panicked: {}",
                    panic_message(&*payload)
                ),
            })
            .collect()
    }

    /// Like [`JobPool::map`] but returns each job's caught outcome
    /// instead of re-panicking: `Err` holds the panic payload of that
    /// job. Budget permits are always returned before this method does.
    pub fn map_caught<T, U, F>(&self, items: &[T], f: F) -> Vec<std::thread::Result<U>>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        let obs = rip_obs::Obs::global();
        obs.add("exec.pool.maps", 1);
        obs.add("exec.pool.items", items.len() as u64);
        let _span = obs
            .span("exec.pool", "map")
            .arg_u64("items", items.len() as u64);
        let mut slots: Vec<Mutex<Option<std::thread::Result<U>>>> = Vec::new();
        slots.resize_with(items.len(), || Mutex::new(None));
        let next = AtomicUsize::new(0);

        let worker = || loop {
            let index = next.fetch_add(1, Ordering::Relaxed);
            let Some(item) = items.get(index) else { break };
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item)));
            *slots[index].lock().unwrap_or_else(|p| p.into_inner()) = Some(result);
        };

        let want = self
            .jobs
            .saturating_sub(1)
            .min(items.len().saturating_sub(1));
        let granted = try_acquire(want);
        std::thread::scope(|scope| {
            for _ in 0..granted {
                scope.spawn(worker);
            }
            worker();
        });
        release(granted);

        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(|p| p.into_inner())
                    .expect("every slot is filled once its worker returns")
            })
            .collect()
    }

    /// Fault-isolated map: applies the fallible `f` to every item with
    /// panic isolation and an optional per-unit watchdog `deadline`,
    /// returning `(outcome, wall-clock)` pairs in **input order**.
    ///
    /// With a deadline, each unit body runs on its own scoped thread
    /// while the worker waits on a channel; a unit that overruns is
    /// recorded as [`FaultKind::Timeout`](crate::fault::FaultKind) and
    /// the worker moves on, so one stuck unit cannot starve the rest of
    /// the queue. The overrunning body is not killed (Rust threads cannot
    /// be safely cancelled): it keeps running detached from the schedule
    /// and is joined when the whole map finishes, and whatever it
    /// eventually returns is discarded. `on_done` fires as each unit is
    /// *recorded* (completion order), timeouts included — runners use it
    /// for streaming progress telemetry.
    pub fn map_units<T, U, F, C>(
        &self,
        items: &[T],
        deadline: Option<Duration>,
        f: F,
        on_done: C,
    ) -> Vec<(Result<U, Fault>, Duration)>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> Result<U, Fault> + Sync,
        C: Fn(usize, &Result<U, Fault>, Duration) + Sync,
    {
        let obs = rip_obs::Obs::global();
        obs.add("exec.pool.maps", 1);
        obs.add("exec.pool.items", items.len() as u64);
        let _span = obs
            .span("exec.pool", "map_units")
            .arg_u64("items", items.len() as u64);
        let mut slots: Vec<UnitSlot<U>> = Vec::new();
        slots.resize_with(items.len(), || Mutex::new(None));
        let next = AtomicUsize::new(0);

        let want = self
            .jobs
            .saturating_sub(1)
            .min(items.len().saturating_sub(1));
        let granted = try_acquire(want);
        std::thread::scope(|scope| {
            let slots = &slots;
            let next = &next;
            let f = &f;
            let on_done = &on_done;
            let worker = move || loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(index) else { break };
                let start = Instant::now();
                let outcome = match deadline {
                    None => Fault::catch(|| f(item)),
                    Some(limit) => {
                        let (tx, rx) = mpsc::channel();
                        scope.spawn(move || {
                            let _ = tx.send(Fault::catch(|| f(item)));
                        });
                        match rx.recv_timeout(limit) {
                            Ok(outcome) => outcome,
                            Err(mpsc::RecvTimeoutError::Timeout) => Err(Fault::timeout(limit)),
                            Err(mpsc::RecvTimeoutError::Disconnected) => {
                                Err(Fault::panic("unit thread vanished without a result"))
                            }
                        }
                    }
                };
                let elapsed = start.elapsed();
                on_done(index, &outcome, elapsed);
                *slots[index].lock().unwrap_or_else(|p| p.into_inner()) = Some((outcome, elapsed));
            };
            for _ in 0..granted {
                scope.spawn(worker);
            }
            worker();
        });
        release(granted);

        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(|p| p.into_inner())
                    .expect("every slot is filled once its worker returns")
            })
            .collect()
    }
}

impl Default for JobPool {
    fn default() -> Self {
        JobPool::with_available_parallelism()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        let pool = JobPool::new(8);
        let items: Vec<u64> = (0..200).collect();
        let out = pool.map(&items, |&x| {
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            x * 3
        });
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_pool_matches_parallel_pool() {
        let items: Vec<u64> = (0..64).collect();
        let f = |x: &u64| x.wrapping_mul(0x9E37_79B9).rotate_left(13);
        assert_eq!(
            JobPool::new(1).map(&items, f),
            JobPool::new(6).map(&items, f)
        );
    }

    #[test]
    fn nested_maps_complete() {
        let pool = JobPool::new(4);
        let outer: Vec<u64> = (0..6).collect();
        let out = pool.map(&outer, |&o| {
            let inner: Vec<u64> = (0..8).collect();
            JobPool::new(4)
                .map(&inner, |&i| o * 100 + i)
                .iter()
                .sum::<u64>()
        });
        assert_eq!(out.len(), 6);
        assert_eq!(out[1], 8 * 100 + 28);
    }

    #[test]
    fn empty_and_single_inputs() {
        let pool = JobPool::new(4);
        assert_eq!(pool.map(&[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(pool.map(&[9u32], |&x| x + 1), vec![10]);
    }

    #[test]
    #[should_panic(expected = "boom 3")]
    fn worker_panic_propagates() {
        let pool = JobPool::new(4);
        let items: Vec<u32> = (0..16).collect();
        pool.map(&items, |&x| {
            if x == 3 {
                panic!("boom {x}");
            }
            x
        });
    }

    #[test]
    fn map_panic_is_a_named_error_and_does_not_poison_the_pool() {
        let pool = JobPool::new(4);
        let items: Vec<u32> = (0..16).collect();
        let result = std::panic::catch_unwind(|| {
            pool.map(&items, |&x| {
                if x == 5 {
                    panic!("bad job");
                }
                x
            })
        });
        let message = crate::fault::panic_message(&*result.unwrap_err());
        assert!(
            message.contains("JobPool: job 5 of 16 panicked: bad job"),
            "panic must name the failing job, got: {message}"
        );
        // The same pool keeps working: no poisoned state, no leaked
        // budget permits starving later runs.
        let out = pool.map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(BUDGET_USED.load(Ordering::SeqCst), 0, "permits leaked");
    }

    #[test]
    fn map_caught_isolates_panics_per_job() {
        let pool = JobPool::new(4);
        let items: Vec<u32> = (0..8).collect();
        let results = pool.map_caught(&items, |&x| {
            if x % 3 == 0 {
                panic!("no multiples of three");
            }
            x + 100
        });
        for (i, result) in results.iter().enumerate() {
            if i % 3 == 0 {
                assert!(result.is_err(), "job {i} must be caught");
            } else {
                assert_eq!(*result.as_ref().unwrap(), i as u32 + 100);
            }
        }
    }

    #[test]
    fn map_units_times_out_stuck_units_and_drains_the_rest() {
        let pool = JobPool::new(2);
        let items: Vec<u64> = (0..6).collect();
        let out = pool.map_units(
            &items,
            Some(Duration::from_millis(40)),
            |&x| {
                if x == 2 {
                    std::thread::sleep(Duration::from_millis(400));
                }
                Ok(x * 10)
            },
            |_, _, _| {},
        );
        for (i, (outcome, _)) in out.iter().enumerate() {
            if i == 2 {
                let fault = outcome.as_ref().unwrap_err();
                assert_eq!(fault.kind, crate::fault::FaultKind::Timeout);
            } else {
                assert_eq!(*outcome.as_ref().unwrap(), i as u64 * 10);
            }
        }
    }

    #[test]
    fn map_units_catches_panics_and_typed_faults() {
        let pool = JobPool::new(3);
        let items: Vec<u32> = (0..9).collect();
        let out = pool.map_units(
            &items,
            None,
            |&x| match x {
                4 => panic!("unit 4 exploded"),
                7 => Err(Fault::io("disk on fire")),
                _ => Ok(x),
            },
            |_, _, _| {},
        );
        assert_eq!(
            out[4].0.as_ref().unwrap_err().kind,
            crate::fault::FaultKind::Panic
        );
        assert!(out[4]
            .0
            .as_ref()
            .unwrap_err()
            .message
            .contains("unit 4 exploded"));
        assert_eq!(
            out[7].0.as_ref().unwrap_err().kind,
            crate::fault::FaultKind::Io
        );
        for i in [0usize, 1, 2, 3, 5, 6, 8] {
            assert_eq!(*out[i].0.as_ref().unwrap(), i as u32);
        }
    }
}
