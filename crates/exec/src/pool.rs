//! Scoped-thread job pool with deterministic ordered collection.
//!
//! Built on [`std::thread::scope`] — no dependencies, no long-lived
//! threads. Two properties matter to the experiment harness:
//!
//! 1. **Determinism**: [`JobPool::map`] writes each result into the slot
//!    of its input index, so callers observe results in input order no
//!    matter how the work interleaved. Output is byte-identical to a
//!    serial run.
//! 2. **Deadlock-free nesting**: pools at any nesting depth draw *extra*
//!    worker threads from one process-wide budget with a non-blocking
//!    `try_acquire`. The calling thread always participates in its own
//!    `map`, so even when the budget is exhausted every pool still makes
//!    progress — nested parallelism degrades to serial execution instead
//!    of deadlocking or oversubscribing the machine.

use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Sentinel meaning "budget not configured yet" (lazily defaults to
/// `available_parallelism() - 1` extra threads on first use).
const UNCONFIGURED: isize = -1;

/// Total extra worker threads the whole process may run at once.
static BUDGET_TOTAL: AtomicIsize = AtomicIsize::new(UNCONFIGURED);
/// Extra worker threads currently running.
static BUDGET_USED: AtomicIsize = AtomicIsize::new(0);

/// The machine's available parallelism (1 when unknown).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Sets the process-wide job budget: at most `jobs` worker threads in
/// total across all pools, however they nest (the budget stores
/// `jobs - 1` *extra* threads beyond each pool's calling thread).
///
/// Takes effect for permits acquired after the call; threads already
/// running are not interrupted.
pub fn set_global_budget(jobs: usize) {
    let extras = jobs.max(1) as isize - 1;
    BUDGET_TOTAL.store(extras, Ordering::SeqCst);
}

/// The configured process-wide job count (extra threads + 1).
pub fn global_budget() -> usize {
    budget_total() as usize + 1
}

fn budget_total() -> isize {
    let total = BUDGET_TOTAL.load(Ordering::SeqCst);
    if total != UNCONFIGURED {
        return total;
    }
    let default = available_parallelism() as isize - 1;
    // Racing first users compute the same default; either CAS winning is fine.
    let _ =
        BUDGET_TOTAL.compare_exchange(UNCONFIGURED, default, Ordering::SeqCst, Ordering::SeqCst);
    BUDGET_TOTAL.load(Ordering::SeqCst)
}

/// Takes up to `want` permits from the global budget without blocking;
/// returns how many were granted.
fn try_acquire(want: usize) -> usize {
    let want = want as isize;
    loop {
        let total = budget_total();
        let used = BUDGET_USED.load(Ordering::SeqCst);
        let grant = want.min(total - used).max(0);
        if grant == 0 {
            return 0;
        }
        if BUDGET_USED
            .compare_exchange(used, used + grant, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            return grant as usize;
        }
    }
}

fn release(granted: usize) {
    BUDGET_USED.fetch_sub(granted as isize, Ordering::SeqCst);
}

/// A job pool running closures over a slice of work items.
///
/// `jobs` is the *target* parallelism of this pool (calling thread
/// included); the pool may run narrower when the global budget is
/// already spoken for.
///
/// # Examples
///
/// ```
/// use rip_exec::JobPool;
///
/// let pool = JobPool::new(4);
/// let squares = pool.map(&[1u64, 2, 3, 4, 5], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
#[derive(Clone, Debug)]
pub struct JobPool {
    jobs: usize,
}

impl JobPool {
    /// A pool targeting `jobs`-way parallelism (clamped to at least 1).
    pub fn new(jobs: usize) -> Self {
        JobPool { jobs: jobs.max(1) }
    }

    /// A pool targeting the machine's available parallelism.
    pub fn with_available_parallelism() -> Self {
        JobPool::new(available_parallelism())
    }

    /// This pool's target parallelism (calling thread included).
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Applies `f` to every item, in parallel, returning results in
    /// **input order**. The calling thread always participates, so this
    /// makes progress even when the global budget is exhausted.
    ///
    /// # Panics
    ///
    /// Panics (after all workers finish) when any invocation of `f`
    /// panicked, propagating the first panic by input order.
    pub fn map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        let mut slots: Vec<Mutex<Option<std::thread::Result<U>>>> = Vec::new();
        slots.resize_with(items.len(), || Mutex::new(None));
        let next = AtomicUsize::new(0);

        let worker = || loop {
            let index = next.fetch_add(1, Ordering::Relaxed);
            let Some(item) = items.get(index) else { break };
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item)));
            *slots[index].lock().expect("result slot poisoned") = Some(result);
        };

        let want = self
            .jobs
            .saturating_sub(1)
            .min(items.len().saturating_sub(1));
        let granted = try_acquire(want);
        std::thread::scope(|scope| {
            for _ in 0..granted {
                scope.spawn(worker);
            }
            worker();
        });
        release(granted);

        slots
            .into_iter()
            .map(|slot| {
                match slot
                    .into_inner()
                    .expect("result slot poisoned")
                    .expect("slot filled")
                {
                    Ok(value) => value,
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            })
            .collect()
    }
}

impl Default for JobPool {
    fn default() -> Self {
        JobPool::with_available_parallelism()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        let pool = JobPool::new(8);
        let items: Vec<u64> = (0..200).collect();
        let out = pool.map(&items, |&x| {
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            x * 3
        });
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_pool_matches_parallel_pool() {
        let items: Vec<u64> = (0..64).collect();
        let f = |x: &u64| x.wrapping_mul(0x9E37_79B9).rotate_left(13);
        assert_eq!(
            JobPool::new(1).map(&items, f),
            JobPool::new(6).map(&items, f)
        );
    }

    #[test]
    fn nested_maps_complete() {
        let pool = JobPool::new(4);
        let outer: Vec<u64> = (0..6).collect();
        let out = pool.map(&outer, |&o| {
            let inner: Vec<u64> = (0..8).collect();
            JobPool::new(4)
                .map(&inner, |&i| o * 100 + i)
                .iter()
                .sum::<u64>()
        });
        assert_eq!(out.len(), 6);
        assert_eq!(out[1], 8 * 100 + 28);
    }

    #[test]
    fn empty_and_single_inputs() {
        let pool = JobPool::new(4);
        assert_eq!(pool.map(&[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(pool.map(&[9u32], |&x| x + 1), vec![10]);
    }

    #[test]
    #[should_panic(expected = "boom 3")]
    fn worker_panic_propagates() {
        let pool = JobPool::new(4);
        let items: Vec<u32> = (0..16).collect();
        pool.map(&items, |&x| {
            if x == 3 {
                panic!("boom {x}");
            }
            x
        });
    }
}
