//! Sharded experiment runner: fan work units over a [`JobPool`] with
//! per-unit timing, fault isolation, and progress telemetry.
//!
//! Results come back in **input order** regardless of completion order,
//! so tables rendered from them are byte-identical to a serial run.
//! Progress and timing lines go to stderr; experiment output on stdout
//! never depends on scheduling.
//!
//! Two execution modes:
//!
//! - [`ShardedRunner::run`] — the fast path for infallible work; a panic
//!   propagates (as `JobPool`'s named error) exactly as before.
//! - [`ShardedRunner::try_run`] — the fault-isolated path: every unit is
//!   wrapped in `catch_unwind`, optionally raced against a watchdog
//!   deadline ([`ShardedRunner::with_deadline`]), and retried with
//!   deterministic backoff for [retryable](Fault::is_retryable) faults
//!   ([`ShardedRunner::with_retry`]). One bad unit yields a recorded
//!   [`Fault`] in its [`UnitReport`]; every other unit still completes.

use crate::fault::{Fault, RetryPolicy};
use crate::pool::JobPool;
use rip_obs::Obs;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One finished work unit: identity, timing, and a structured outcome.
#[derive(Clone, Debug)]
pub struct UnitReport<U> {
    /// Position of the unit in the input slice.
    pub index: usize,
    /// Human-readable unit label (scene code, config name, …).
    pub label: String,
    /// Wall-clock time the unit took (deadline for timed-out units).
    pub elapsed: Duration,
    /// Attempts the unit consumed (1 unless retries fired).
    pub attempts: u32,
    /// The unit's result: a value, or the structured fault that felled it.
    pub outcome: Result<U, Fault>,
}

impl<U> UnitReport<U> {
    /// Whether the unit succeeded.
    pub fn is_ok(&self) -> bool {
        self.outcome.is_ok()
    }

    /// The fault that felled the unit, if any.
    pub fn fault(&self) -> Option<&Fault> {
        self.outcome.as_ref().err()
    }

    /// The unit's value.
    ///
    /// # Panics
    ///
    /// Panics with the recorded fault when the unit failed; use
    /// [`UnitReport::outcome`] to handle faults.
    pub fn value(&self) -> &U {
        match &self.outcome {
            Ok(value) => value,
            Err(fault) => panic!("unit '{}' failed: {fault}", self.label),
        }
    }

    /// Consumes the report, returning the unit's value.
    ///
    /// # Panics
    ///
    /// Panics with the recorded fault when the unit failed.
    pub fn into_value(self) -> U {
        match self.outcome {
            Ok(value) => value,
            Err(fault) => panic!("unit '{}' failed: {fault}", self.label),
        }
    }
}

/// Fans `(scene × config)`-style work units across a job pool.
///
/// # Examples
///
/// ```
/// use rip_exec::{JobPool, ShardedRunner};
///
/// let pool = JobPool::new(2);
/// let runner = ShardedRunner::new(&pool, "demo").quiet();
/// let reports = runner.run(&[10u32, 20, 30], |u| format!("u{u}"), |&u| u * 2);
/// assert_eq!(reports.iter().map(|r| *r.value()).collect::<Vec<_>>(), vec![20, 40, 60]);
/// assert_eq!(reports[2].label, "u30");
/// ```
pub struct ShardedRunner<'p> {
    pool: &'p JobPool,
    name: String,
    progress: bool,
    deadline: Option<Duration>,
    retry: RetryPolicy,
    obs: Arc<Obs>,
}

impl<'p> ShardedRunner<'p> {
    /// A runner named `name` (the prefix of its telemetry lines).
    pub fn new(pool: &'p JobPool, name: impl Into<String>) -> Self {
        ShardedRunner {
            pool,
            name: name.into(),
            progress: true,
            deadline: None,
            retry: RetryPolicy::none(),
            obs: Arc::clone(Obs::global()),
        }
    }

    /// Disables per-unit progress lines (timings are still collected).
    pub fn quiet(mut self) -> Self {
        self.progress = false;
        self
    }

    /// Routes this runner's `exec.unit.*` counters, per-unit spans, and
    /// progress events to `obs` instead of the process-wide default.
    pub fn with_obs(mut self, obs: Arc<Obs>) -> Self {
        self.obs = obs;
        self
    }

    /// Sets the per-unit watchdog deadline for [`ShardedRunner::try_run`]
    /// (`None` = no watchdog). A unit that overruns is recorded as a
    /// `Timeout` fault while the rest of the queue keeps draining.
    pub fn with_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Sets the retry policy for [`ShardedRunner::try_run`]. Only faults
    /// whose [`Fault::is_retryable`] holds are re-attempted.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The pool this runner schedules onto.
    pub fn pool(&self) -> &JobPool {
        self.pool
    }

    /// Runs `work` over every unit, returning timed reports in input
    /// order. `label` names a unit for telemetry.
    ///
    /// This is the infallible fast path: every report's outcome is `Ok`,
    /// and a panicking unit propagates (after all workers finish) as the
    /// pool's named panic. For fault isolation use
    /// [`ShardedRunner::try_run`].
    pub fn run<T, U, L, F>(&self, units: &[T], label: L, work: F) -> Vec<UnitReport<U>>
    where
        T: Sync,
        U: Send,
        L: Fn(&T) -> String + Sync,
        F: Fn(&T) -> U + Sync,
    {
        let total = units.len();
        let done = AtomicUsize::new(0);
        let indexed: Vec<(usize, &T)> = units.iter().enumerate().collect();
        self.pool.map(&indexed, |&(index, unit)| {
            let unit_label = label(unit);
            let span = self
                .obs
                .span("exec.unit", &unit_label)
                .arg("runner", &self.name);
            let start = Instant::now();
            let value = work(unit);
            let elapsed = start.elapsed();
            drop(span);
            self.obs.add("exec.unit.completed", 1);
            let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
            if self.progress {
                // The completion rank is schedule-dependent, so it lives
                // only in the stderr text — never in structured args.
                self.obs
                    .event("exec.runner", "unit_done")
                    .arg("runner", &self.name)
                    .arg("unit", &unit_label)
                    .stderr(format!(
                        "[rip-exec] {}: {finished}/{total} {unit_label} done in {} ms",
                        self.name,
                        elapsed.as_millis(),
                    ))
                    .emit();
            }
            UnitReport {
                index,
                label: unit_label,
                elapsed,
                attempts: 1,
                outcome: Ok(value),
            }
        })
    }

    /// Fault-isolated run: applies the fallible `work` to every unit with
    /// panic isolation, the configured watchdog deadline, and bounded
    /// retry for retryable faults, returning reports in input order.
    ///
    /// `work` receives the unit and the 1-based attempt number. A unit
    /// that panics is recorded as a `Panic` fault; one that overruns the
    /// deadline as `Timeout`; a retryable fault is re-attempted up to the
    /// policy's `max_attempts` with deterministic jittered backoff, and
    /// records its final fault if it never succeeds. Faults never
    /// propagate: the sweep always drains and every unit gets a report.
    pub fn try_run<T, U, L, F>(&self, units: &[T], label: L, work: F) -> Vec<UnitReport<U>>
    where
        T: Sync,
        U: Send,
        L: Fn(&T) -> String + Sync,
        F: Fn(&T, u32) -> Result<U, Fault> + Sync,
    {
        let total = units.len();
        let labels: Vec<String> = units.iter().map(&label).collect();
        let mut attempts: Vec<AtomicU32> = Vec::new();
        attempts.resize_with(total, || AtomicU32::new(1));
        let done = AtomicUsize::new(0);
        let indexed: Vec<(usize, &T)> = units.iter().enumerate().collect();

        let outcomes = self.pool.map_units(
            &indexed,
            self.deadline,
            |&(index, unit)| {
                let mut attempt = 1u32;
                loop {
                    attempts[index].store(attempt, Ordering::Relaxed);
                    let span = self
                        .obs
                        .span("exec.unit", &labels[index])
                        .arg("runner", &self.name)
                        .arg_u64("attempt", attempt as u64);
                    let outcome = Fault::catch(|| work(unit, attempt));
                    drop(span);
                    match outcome {
                        Err(fault) if fault.is_retryable() && attempt < self.retry.max_attempts => {
                            let pause = self.retry.backoff(attempt + 1, index as u64);
                            self.obs.add("exec.unit.retries", 1);
                            if self.progress {
                                self.obs
                                    .event("exec.runner", "unit_retry")
                                    .arg("runner", &self.name)
                                    .arg("unit", &labels[index])
                                    .arg_u64("attempt", attempt as u64)
                                    .stderr(format!(
                                        "[rip-exec] {}: {} attempt {attempt} hit a retryable \
                                         fault ({}); retrying in {} ms",
                                        self.name,
                                        labels[index],
                                        fault.message,
                                        pause.as_millis(),
                                    ))
                                    .emit();
                            }
                            std::thread::sleep(pause);
                            attempt += 1;
                        }
                        outcome => return outcome,
                    }
                }
            },
            |index, outcome, elapsed| {
                let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                if self.progress {
                    match outcome {
                        Ok(_) => self
                            .obs
                            .event("exec.runner", "unit_done")
                            .arg("runner", &self.name)
                            .arg("unit", &labels[index])
                            .stderr(format!(
                                "[rip-exec] {}: {finished}/{total} {} done in {} ms",
                                self.name,
                                labels[index],
                                elapsed.as_millis(),
                            ))
                            .emit(),
                        Err(fault) => self
                            .obs
                            .event("exec.runner", "unit_failed")
                            .arg("runner", &self.name)
                            .arg("unit", &labels[index])
                            .arg("fault", fault.kind.to_string())
                            .stderr(format!(
                                "[rip-exec] {}: {finished}/{total} {} FAILED ({}) after {} ms",
                                self.name,
                                labels[index],
                                fault.kind,
                                elapsed.as_millis(),
                            ))
                            .emit(),
                    }
                }
            },
        );

        outcomes
            .into_iter()
            .zip(labels)
            .zip(&attempts)
            .enumerate()
            .map(|(index, (((outcome, elapsed), label), attempts))| {
                match &outcome {
                    Ok(_) => self.obs.add("exec.unit.completed", 1),
                    Err(_) => self.obs.add("exec.unit.failed", 1),
                }
                let attempts = attempts.load(Ordering::Relaxed);
                self.obs.add("exec.unit.attempts", attempts as u64);
                UnitReport {
                    index,
                    label,
                    elapsed,
                    attempts,
                    outcome,
                }
            })
            .collect()
    }

    /// Like [`ShardedRunner::run`] but discards timing metadata and
    /// returns bare values in input order.
    pub fn run_values<T, U, F>(&self, units: &[T], work: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        self.pool.map(units, work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;

    #[test]
    fn reports_come_back_in_input_order() {
        let pool = JobPool::new(4);
        let runner = ShardedRunner::new(&pool, "test").quiet();
        let units: Vec<u64> = (0..40).collect();
        let reports = runner.run(
            &units,
            |u| format!("unit{u}"),
            |&u| {
                if u % 5 == 0 {
                    std::thread::sleep(Duration::from_micros(300));
                }
                u + 1
            },
        );
        for (i, report) in reports.iter().enumerate() {
            assert_eq!(report.index, i);
            assert_eq!(*report.value(), units[i] + 1);
            assert_eq!(report.label, format!("unit{}", units[i]));
            assert_eq!(report.attempts, 1);
        }
    }

    #[test]
    fn serial_and_parallel_values_match() {
        let serial_pool = JobPool::new(1);
        let parallel_pool = JobPool::new(8);
        let units: Vec<u32> = (0..64).collect();
        let f = |&u: &u32| u.wrapping_mul(2654435761).rotate_left(7);
        let serial = ShardedRunner::new(&serial_pool, "s")
            .quiet()
            .run_values(&units, f);
        let parallel = ShardedRunner::new(&parallel_pool, "p")
            .quiet()
            .run_values(&units, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn try_run_isolates_a_panicking_unit() {
        let pool = JobPool::new(4);
        let runner = ShardedRunner::new(&pool, "isolate").quiet();
        let units: Vec<u32> = (0..12).collect();
        let reports = runner.try_run(
            &units,
            |u| format!("u{u}"),
            |&u, _| {
                if u == 7 {
                    panic!("unit seven is cursed");
                }
                Ok(u * 2)
            },
        );
        assert_eq!(reports.len(), 12);
        for (i, report) in reports.iter().enumerate() {
            if i == 7 {
                let fault = report.fault().expect("unit 7 must fault");
                assert_eq!(fault.kind, FaultKind::Panic);
                assert!(fault.message.contains("cursed"));
            } else {
                assert_eq!(*report.value(), i as u32 * 2, "unit {i} must complete");
            }
        }
    }

    #[test]
    fn try_run_retries_retryable_faults_then_succeeds() {
        use std::sync::atomic::AtomicU32;
        let pool = JobPool::new(2);
        let runner = ShardedRunner::new(&pool, "retry")
            .quiet()
            .with_retry(RetryPolicy {
                max_attempts: 3,
                base_backoff: Duration::from_millis(1),
            });
        let failures_left = AtomicU32::new(2);
        let reports = runner.try_run(
            &[1u32],
            |_| "flaky".to_string(),
            |&u, _| {
                if failures_left
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                    .is_ok()
                {
                    return Err(Fault::retryable("transient"));
                }
                Ok(u)
            },
        );
        assert_eq!(reports[0].attempts, 3);
        assert_eq!(*reports[0].value(), 1);
    }

    #[test]
    fn try_run_reports_exhausted_retries_as_the_final_fault() {
        let pool = JobPool::new(1);
        let runner = ShardedRunner::new(&pool, "exhaust")
            .quiet()
            .with_retry(RetryPolicy {
                max_attempts: 2,
                base_backoff: Duration::ZERO,
            });
        let reports = runner.try_run(
            &[0u32],
            |_| "doomed".to_string(),
            |_, _| -> Result<u32, Fault> { Err(Fault::retryable("never works")) },
        );
        let report = &reports[0];
        assert_eq!(report.attempts, 2);
        assert_eq!(report.fault().unwrap().kind, FaultKind::Retryable);
    }

    #[test]
    fn try_run_honors_the_watchdog_deadline() {
        let pool = JobPool::new(2);
        let runner = ShardedRunner::new(&pool, "watchdog")
            .quiet()
            .with_deadline(Some(Duration::from_millis(40)));
        let units: Vec<u32> = (0..4).collect();
        let reports = runner.try_run(
            &units,
            |u| format!("u{u}"),
            |&u, _| {
                if u == 1 {
                    std::thread::sleep(Duration::from_millis(400));
                }
                Ok(u)
            },
        );
        assert_eq!(reports[1].fault().unwrap().kind, FaultKind::Timeout);
        for i in [0usize, 2, 3] {
            assert_eq!(*reports[i].value(), i as u32);
        }
    }

    #[test]
    fn non_retryable_faults_do_not_retry() {
        let pool = JobPool::new(1);
        let runner = ShardedRunner::new(&pool, "hard-fault")
            .quiet()
            .with_retry(RetryPolicy::standard());
        let reports = runner.try_run(
            &[0u32],
            |_| "io".to_string(),
            |_, _| -> Result<u32, Fault> { Err(Fault::io("hard failure")) },
        );
        assert_eq!(reports[0].attempts, 1, "hard faults must not retry");
        assert_eq!(reports[0].fault().unwrap().kind, FaultKind::Io);
    }

    #[test]
    #[should_panic(expected = "unit 'u3' failed")]
    fn value_panics_with_the_unit_label_on_fault() {
        let pool = JobPool::new(1);
        let runner = ShardedRunner::new(&pool, "named").quiet();
        let reports = runner.try_run(
            &[3u32],
            |u| format!("u{u}"),
            |_, _| -> Result<u32, Fault> { Err(Fault::io("gone")) },
        );
        let _ = reports[0].value();
    }
}
