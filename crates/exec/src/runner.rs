//! Sharded experiment runner: fan work units over a [`JobPool`] with
//! per-unit timing and progress telemetry.
//!
//! Results come back in **input order** regardless of completion order,
//! so tables rendered from them are byte-identical to a serial run.
//! Progress and timing lines go to stderr; experiment output on stdout
//! never depends on scheduling.

use crate::pool::JobPool;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// One completed work unit.
#[derive(Clone, Debug)]
pub struct UnitReport<U> {
    /// Position of the unit in the input slice.
    pub index: usize,
    /// Human-readable unit label (scene code, config name, …).
    pub label: String,
    /// Wall-clock time the unit took.
    pub elapsed: Duration,
    /// The unit's result.
    pub value: U,
}

/// Fans `(scene × config)`-style work units across a job pool.
///
/// # Examples
///
/// ```
/// use rip_exec::{JobPool, ShardedRunner};
///
/// let pool = JobPool::new(2);
/// let runner = ShardedRunner::new(&pool, "demo").quiet();
/// let reports = runner.run(&[10u32, 20, 30], |u| format!("u{u}"), |&u| u * 2);
/// assert_eq!(reports.iter().map(|r| r.value).collect::<Vec<_>>(), vec![20, 40, 60]);
/// assert_eq!(reports[2].label, "u30");
/// ```
pub struct ShardedRunner<'p> {
    pool: &'p JobPool,
    name: String,
    progress: bool,
}

impl<'p> ShardedRunner<'p> {
    /// A runner named `name` (the prefix of its telemetry lines).
    pub fn new(pool: &'p JobPool, name: impl Into<String>) -> Self {
        ShardedRunner {
            pool,
            name: name.into(),
            progress: true,
        }
    }

    /// Disables per-unit progress lines (timings are still collected).
    pub fn quiet(mut self) -> Self {
        self.progress = false;
        self
    }

    /// The pool this runner schedules onto.
    pub fn pool(&self) -> &JobPool {
        self.pool
    }

    /// Runs `work` over every unit, returning timed reports in input
    /// order. `label` names a unit for telemetry.
    pub fn run<T, U, L, F>(&self, units: &[T], label: L, work: F) -> Vec<UnitReport<U>>
    where
        T: Sync,
        U: Send,
        L: Fn(&T) -> String + Sync,
        F: Fn(&T) -> U + Sync,
    {
        let total = units.len();
        let done = AtomicUsize::new(0);
        let indexed: Vec<(usize, &T)> = units.iter().enumerate().collect();
        self.pool.map(&indexed, |&(index, unit)| {
            let unit_label = label(unit);
            let start = Instant::now();
            let value = work(unit);
            let elapsed = start.elapsed();
            let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
            if self.progress {
                eprintln!(
                    "[rip-exec] {}: {finished}/{total} {unit_label} done in {} ms",
                    self.name,
                    elapsed.as_millis(),
                );
            }
            UnitReport {
                index,
                label: unit_label,
                elapsed,
                value,
            }
        })
    }

    /// Like [`ShardedRunner::run`] but discards timing metadata and
    /// returns bare values in input order.
    pub fn run_values<T, U, F>(&self, units: &[T], work: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        self.pool.map(units, work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_come_back_in_input_order() {
        let pool = JobPool::new(4);
        let runner = ShardedRunner::new(&pool, "test").quiet();
        let units: Vec<u64> = (0..40).collect();
        let reports = runner.run(
            &units,
            |u| format!("unit{u}"),
            |&u| {
                if u % 5 == 0 {
                    std::thread::sleep(Duration::from_micros(300));
                }
                u + 1
            },
        );
        for (i, report) in reports.iter().enumerate() {
            assert_eq!(report.index, i);
            assert_eq!(report.value, units[i] + 1);
            assert_eq!(report.label, format!("unit{}", units[i]));
        }
    }

    #[test]
    fn serial_and_parallel_values_match() {
        let serial_pool = JobPool::new(1);
        let parallel_pool = JobPool::new(8);
        let units: Vec<u32> = (0..64).collect();
        let f = |&u: &u32| u.wrapping_mul(2654435761).rotate_left(7);
        let serial = ShardedRunner::new(&serial_pool, "s")
            .quiet()
            .run_values(&units, f);
        let parallel = ShardedRunner::new(&parallel_pool, "p")
            .quiet()
            .run_values(&units, f);
        assert_eq!(serial, parallel);
    }
}
