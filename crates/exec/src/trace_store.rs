//! Capture-once trace store for RIPT ray-trace sets.
//!
//! The trace-driven replay pipeline (DESIGN.md §12) wants every workload
//! traversed **once**: the functional capture runs a full while-while
//! traversal per ray and records the node/triangle streams as a RIPT
//! artifact ([`rip_bvh::ript`]); every subsequent simulation — the other
//! configurations of a sweep, the next process, the timing model — replays
//! the recorded streams instead of re-walking the BVH.
//!
//! Two tiers, mirroring [`CaseCache`](crate::CaseCache):
//!
//! 1. **In-process**: a `(label, kind) → Arc<RayTraceSet>` map, so one
//!    sweep capturing five predictor configurations over the same scene
//!    pays for exactly one traversal pass.
//! 2. **On-disk**: RIPT containers under `$RIP_TRACE_DIR` (empty value
//!    disables the tier; unset = `<system temp dir>/rip-traces`), mapped
//!    zero-copy through [`MappedArtifact`] and validated against the live
//!    BVH/batch before use. Files are keyed by workload label, traversal
//!    kind and the RIPT format version, so format bumps are plain misses.
//!
//! **Fault handling** follows the artifact-store contract: a trace that
//! fails decoding *or* no longer matches its workload (different BVH,
//! rays, or ray count) is classified as a typed [`CacheError`],
//! quarantined as `<name>.quarantine`, and recaptured from source — never
//! a panic, and a request never returns a trace that would replay the
//! wrong streams. Telemetry lands in the `exec.trace.*` counters (NOT
//! `gpusim.*`, so simulator registry diffs stay clean).

use crate::artifact::MappedArtifact;
use crate::cache::{write_atomic, CacheError};
use rip_bvh::ript::RayTraceSet;
use rip_bvh::{Bvh, RayBatch, TraversalKind};
use rip_obs::Obs;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Counters describing how a [`TraceStore`] served its requests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceStoreStats {
    /// Requests served from the in-process map.
    pub memory_hits: u64,
    /// Requests served by decoding on-disk RIPT artifacts.
    pub disk_hits: u64,
    /// Requests that captured the trace from a live traversal pass.
    pub captures: u64,
    /// Artifacts quarantined after failing decode or workload validation.
    pub quarantines: u64,
}

/// Process-wide capture-once store of recorded ray-trace sets.
pub struct TraceStore {
    traces: Mutex<HashMap<(String, TraversalKind), Arc<RayTraceSet>>>,
    dir: Option<PathBuf>,
    parallelism: usize,
    obs: Arc<Obs>,
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    captures: AtomicU64,
    quarantines: AtomicU64,
}

impl TraceStore {
    /// A store whose disk tier honors `$RIP_TRACE_DIR` (empty value =
    /// disabled; unset = `<system temp dir>/rip-traces`).
    pub fn new() -> Self {
        let dir = match std::env::var("RIP_TRACE_DIR") {
            Ok(dir) if dir.is_empty() => None,
            Ok(dir) => Some(PathBuf::from(dir)),
            Err(_) => Some(std::env::temp_dir().join("rip-traces")),
        };
        TraceStore::with_dir(dir)
    }

    /// A store with an explicit disk tier (`None` = in-memory only).
    pub fn with_dir(dir: Option<PathBuf>) -> Self {
        TraceStore {
            traces: Mutex::new(HashMap::new()),
            dir,
            parallelism: 1,
            obs: Arc::clone(Obs::global()),
            memory_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            captures: AtomicU64::new(0),
            quarantines: AtomicU64::new(0),
        }
    }

    /// A store with no disk tier.
    pub fn in_memory_only() -> Self {
        TraceStore::with_dir(None)
    }

    /// Routes this store's `exec.trace.*` counters and events to `obs`
    /// instead of the process-wide default instance.
    pub fn with_obs(mut self, obs: Arc<Obs>) -> Self {
        self.obs = obs;
        self
    }

    /// Shards capture passes over up to `threads` worker threads
    /// (`RayTraceSet::capture_parallel`). Captured bytes are identical at
    /// every thread count; only the capture wall-clock changes.
    pub fn with_parallelism(mut self, threads: usize) -> Self {
        self.parallelism = threads.max(1);
        self
    }

    /// Where this store persists traces, when it does.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Counters since construction.
    pub fn stats(&self) -> TraceStoreStats {
        TraceStoreStats {
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            captures: self.captures.load(Ordering::Relaxed),
            quarantines: self.quarantines.load(Ordering::Relaxed),
        }
    }

    /// Returns the trace of `kind` for the workload `(bvh, batch)` named
    /// `label`, capturing it at most once per process and consulting the
    /// disk tier before traversing.
    ///
    /// The returned set is always validated against the live workload:
    /// this never serves a stale or corrupt trace (those are quarantined
    /// and recaptured), and never fails — the worst case is the cost of
    /// one functional traversal pass.
    pub fn get_or_capture(
        &self,
        label: &str,
        bvh: &Bvh,
        batch: &RayBatch,
        kind: TraversalKind,
    ) -> Arc<RayTraceSet> {
        let key = (label.to_string(), kind);
        if let Some(set) = self
            .traces
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&key)
        {
            self.memory_hits.fetch_add(1, Ordering::Relaxed);
            self.obs.add("exec.trace.memory_hit", 1);
            return Arc::clone(set);
        }
        let set = Arc::new(self.load_or_capture(label, bvh, batch, kind));
        self.traces
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(key, Arc::clone(&set));
        set
    }

    fn load_or_capture(
        &self,
        label: &str,
        bvh: &Bvh,
        batch: &RayBatch,
        kind: TraversalKind,
    ) -> RayTraceSet {
        match self.try_load(label, bvh, batch, kind) {
            Ok(set) => {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                self.obs.add("exec.trace.disk_hit", 1);
                return set;
            }
            Err(CacheError::Miss | CacheError::Disabled) => {}
            Err(error @ (CacheError::Corrupt { .. } | CacheError::KeyMismatch { .. })) => {
                self.obs
                    .event("exec.trace", "trace_rejected")
                    .arg("trace", label)
                    .arg("error", error.to_string())
                    .stderr(format!("[rip-exec] {error}; quarantining and recapturing"))
                    .emit();
                self.quarantine(label, kind, &error);
            }
            Err(error @ CacheError::Io { .. }) => {
                self.obs
                    .event("exec.trace", "trace_io_error")
                    .arg("trace", label)
                    .stderr(format!("[rip-exec] {error}; recapturing"))
                    .emit();
            }
        }
        self.captures.fetch_add(1, Ordering::Relaxed);
        self.obs.add("exec.trace.capture", 1);
        let span = self.obs.span("exec.trace", "capture").arg("trace", label);
        let start = Instant::now();
        let set = RayTraceSet::capture_parallel(bvh, batch, kind, self.parallelism);
        let captured_ms = start.elapsed().as_millis() as u64;
        drop(span);
        let event = self
            .obs
            .event("exec.trace", "capture")
            .arg("trace", label)
            .arg_u64("rays", set.len() as u64)
            .arg_u64("captured_ms", captured_ms);
        match self.store(label, kind, &set) {
            Some(dir) => event
                .arg("store", "disk")
                .stderr(format!(
                    "[rip-exec] captured trace {label} ({} rays in {captured_ms} ms, cached to {})",
                    set.len(),
                    dir.display(),
                ))
                .emit(),
            None => event
                .arg("store", "none")
                .stderr(format!(
                    "[rip-exec] captured trace {label} ({} rays in {captured_ms} ms, disk store disabled)",
                    set.len(),
                ))
                .emit(),
        }
        set
    }

    /// Attempts to serve the trace from disk, classifying every failure.
    /// The decoded set must [`attach`](RayTraceSet::attach) to the live
    /// workload — a label collision or a changed scene/ray generator is a
    /// [`CacheError::KeyMismatch`], not a silent wrong replay.
    fn try_load(
        &self,
        label: &str,
        bvh: &Bvh,
        batch: &RayBatch,
        kind: TraversalKind,
    ) -> Result<RayTraceSet, CacheError> {
        let Some(path) = self.trace_path(label, kind) else {
            return Err(CacheError::Disabled);
        };
        let map = MappedArtifact::open(&path)?;
        let backend = map.backend();
        if backend == "mmap" {
            self.obs.add("exec.trace.mmap_load", 1);
        }
        let start = Instant::now();
        let set = RayTraceSet::decode_shared(map.bytes()).map_err(|e| CacheError::Corrupt {
            path: path.clone(),
            detail: e,
        })?;
        if set.kind() != kind {
            return Err(CacheError::KeyMismatch {
                label: label.to_string(),
            });
        }
        set.attach(bvh, batch)
            .map_err(|_| CacheError::KeyMismatch {
                label: label.to_string(),
            })?;
        let load_ms = start.elapsed().as_millis() as u64;
        self.obs
            .event("exec.trace", "trace_hit")
            .arg("trace", label)
            .arg("backend", backend)
            .arg_u64("load_ms", load_ms)
            .stderr(format!(
                "[rip-exec] trace hit: {label} ({} rays loaded in {load_ms} ms via {backend}, 0 traversals)",
                set.len(),
            ))
            .emit();
        Ok(set)
    }

    /// Moves a rejected trace aside as `<name>.quarantine`, preserving
    /// the bytes for diagnosis while guaranteeing they are never replayed.
    fn quarantine(&self, label: &str, kind: TraversalKind, error: &CacheError) {
        let Some(path) = self.trace_path(label, kind) else {
            return;
        };
        if !matches!(
            error,
            CacheError::Corrupt { .. } | CacheError::KeyMismatch { .. }
        ) {
            return;
        }
        let mut quarantined = path.as_os_str().to_owned();
        quarantined.push(".quarantine");
        match std::fs::rename(&path, &quarantined) {
            Ok(()) => {
                self.quarantines.fetch_add(1, Ordering::Relaxed);
                self.obs.add("exec.trace.quarantine", 1);
                self.obs
                    .event("exec.trace", "quarantine")
                    .arg("trace", label)
                    .arg("path", path.display().to_string())
                    .stderr(format!(
                        "[rip-exec] quarantined {} -> {}",
                        path.display(),
                        Path::new(&quarantined).display()
                    ))
                    .emit();
            }
            Err(e) => {
                self.obs
                    .event("exec.trace", "quarantine_failed")
                    .arg("trace", label)
                    .arg("path", path.display().to_string())
                    .stderr(format!(
                        "[rip-exec] cannot quarantine {} ({e}); removing instead",
                        path.display()
                    ))
                    .emit();
                let _ = std::fs::remove_file(&path);
            }
        }
    }

    /// Persists the trace; returns the store directory on success.
    fn store(&self, label: &str, kind: TraversalKind, set: &RayTraceSet) -> Option<&Path> {
        let path = self.trace_path(label, kind)?;
        let dir = self.dir.as_deref()?;
        if let Err(e) = std::fs::create_dir_all(dir) {
            self.obs
                .event("exec.trace", "store_failed")
                .arg("path", dir.display().to_string())
                .stderr(format!(
                    "[rip-exec] cannot create trace dir {}: {e}",
                    dir.display()
                ))
                .emit();
            return None;
        }
        write_atomic(&self.obs, &path, &set.encode()).then_some(dir)
    }

    fn trace_path(&self, label: &str, kind: TraversalKind) -> Option<PathBuf> {
        let dir = self.dir.as_deref()?;
        let tag = match kind {
            TraversalKind::AnyHit => "any",
            TraversalKind::ClosestHit => "closest",
        };
        Some(dir.join(format!(
            "{label}_{tag}_t{}.ript",
            rip_bvh::ript::FORMAT_VERSION
        )))
    }
}

impl Default for TraceStore {
    fn default() -> Self {
        TraceStore::new()
    }
}

impl std::fmt::Debug for TraceStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceStore")
            .field("dir", &self.dir)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_math::{Ray, Triangle, Vec3};

    fn workload() -> (Bvh, RayBatch) {
        let mut tris = Vec::new();
        for i in 0..8 {
            for j in 0..8 {
                let o = Vec3::new(i as f32, 0.0, j as f32);
                tris.push(Triangle::new(o, o + Vec3::X, o + Vec3::Z));
                tris.push(Triangle::new(
                    o + Vec3::X,
                    o + Vec3::X + Vec3::Z,
                    o + Vec3::Z,
                ));
            }
        }
        let bvh = Bvh::build(&tris);
        let mut batch = RayBatch::with_capacity(64);
        for i in 0..64 {
            let x = 0.3 + (i % 8) as f32 * 0.9;
            let z = 0.4 + (i / 8) as f32 * 0.9;
            batch.push(Ray::segment(Vec3::new(x, 1.5, z), -Vec3::Y, 4.0));
        }
        (bvh, batch)
    }

    fn temp_store(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rip-trace-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_tier_captures_once() {
        let (bvh, batch) = workload();
        let store = TraceStore::in_memory_only();
        let a = store.get_or_capture("w", &bvh, &batch, TraversalKind::AnyHit);
        let b = store.get_or_capture("w", &bvh, &batch, TraversalKind::AnyHit);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(
            store.stats(),
            TraceStoreStats {
                memory_hits: 1,
                disk_hits: 0,
                captures: 1,
                quarantines: 0
            }
        );
        // Distinct kinds are distinct traces.
        let c = store.get_or_capture("w", &bvh, &batch, TraversalKind::ClosestHit);
        assert_eq!(c.kind(), TraversalKind::ClosestHit);
        assert_eq!(store.stats().captures, 2);
    }

    #[test]
    fn disk_tier_round_trips_bit_exactly() {
        let (bvh, batch) = workload();
        let dir = temp_store("roundtrip");
        let captured = {
            let store = TraceStore::with_dir(Some(dir.clone()));
            store.get_or_capture("w", &bvh, &batch, TraversalKind::AnyHit)
        };
        let store = TraceStore::with_dir(Some(dir.clone()));
        let loaded = store.get_or_capture("w", &bvh, &batch, TraversalKind::AnyHit);
        assert_eq!(
            store.stats(),
            TraceStoreStats {
                memory_hits: 0,
                disk_hits: 1,
                captures: 0,
                quarantines: 0
            }
        );
        assert_eq!(
            captured.encode(),
            loaded.encode(),
            "round trip must be bit-exact"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_trace_is_quarantined_and_recaptured() {
        let (bvh, batch) = workload();
        let dir = temp_store("corrupt");
        {
            let store = TraceStore::with_dir(Some(dir.clone()));
            store.get_or_capture("w", &bvh, &batch, TraversalKind::AnyHit);
        }
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path.extension().is_some_and(|e| e == "ript") {
                let mut bytes = std::fs::read(&path).unwrap();
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0xA5;
                std::fs::write(&path, bytes).unwrap();
            }
        }
        let store = TraceStore::with_dir(Some(dir.clone()));
        let set = store.get_or_capture("w", &bvh, &batch, TraversalKind::AnyHit);
        assert_eq!(store.stats().captures, 1, "corruption must force recapture");
        assert_eq!(store.stats().quarantines, 1);
        set.attach(&bvh, &batch).unwrap();
        let quarantined = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "quarantine"))
            .count();
        assert_eq!(quarantined, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_trace_for_changed_workload_is_rejected() {
        let (bvh, batch) = workload();
        let dir = temp_store("stale");
        {
            let store = TraceStore::with_dir(Some(dir.clone()));
            store.get_or_capture("w", &bvh, &batch, TraversalKind::AnyHit);
        }
        // Same label, different rays: the on-disk digest no longer
        // matches, so the store must quarantine and recapture rather than
        // replay the wrong streams.
        let mut other = RayBatch::with_capacity(batch.len());
        for i in 0..batch.len() {
            let mut ray = batch.ray(i);
            ray.origin.x += 0.125;
            other.push(ray);
        }
        let store = TraceStore::with_dir(Some(dir.clone()));
        let set = store.get_or_capture("w", &bvh, &other, TraversalKind::AnyHit);
        assert_eq!(
            store.stats().quarantines,
            1,
            "stale trace must be quarantined"
        );
        assert_eq!(store.stats().captures, 1);
        set.attach(&bvh, &other).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
