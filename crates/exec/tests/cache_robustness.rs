//! Robustness of the on-disk artifact tier: damaged, stale, or
//! mismatched artifacts must always fall back to a clean rebuild —
//! never a panic, never a stale load.

use rip_exec::{CaseCache, CaseKey};
use rip_scene::{SceneId, SceneScale};
use std::path::{Path, PathBuf};

fn key() -> CaseKey {
    CaseKey::square(SceneId::FireplaceRoom, SceneScale::Tiny, 20)
}

fn temp_store(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("rip-cache-robustness-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Populates `dir` with artifacts for [`key`] and returns the paths of
/// the `.scene` and `.bvh` files that were written.
fn populate(dir: &Path) -> (PathBuf, PathBuf) {
    let cache = CaseCache::with_disk_dir(Some(dir.to_path_buf()));
    cache.get_or_build(key());
    assert_eq!(cache.stats().builds, 1);
    let mut scene = None;
    let mut bvh = None;
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        match path.extension().and_then(|e| e.to_str()) {
            Some("scene") => scene = Some(path),
            Some("bvh") => bvh = Some(path),
            _ => {}
        }
    }
    (scene.expect("scene artifact"), bvh.expect("bvh artifact"))
}

/// A fresh cache (stand-in for a fresh process) over the same store;
/// asserts the request rebuilt rather than loading, and that the result
/// is structurally valid.
fn assert_rebuilds(dir: &Path, why: &str) {
    let cache = CaseCache::with_disk_dir(Some(dir.to_path_buf()));
    let case = cache.get_or_build(key());
    assert_eq!(cache.stats().disk_hits, 0, "stale load despite {why}");
    assert_eq!(cache.stats().builds, 1, "expected a rebuild after {why}");
    case.bvh.validate().unwrap();
    assert!(case.scene.mesh.triangle_count() > 0);
}

#[test]
fn truncated_scene_artifact_triggers_rebuild() {
    let dir = temp_store("trunc-scene");
    let (scene_path, _) = populate(&dir);
    let bytes = std::fs::read(&scene_path).unwrap();
    // Cut mid-buffer: the header still promises the full payload.
    std::fs::write(&scene_path, &bytes[..bytes.len() / 3]).unwrap();
    assert_rebuilds(&dir, "a truncated scene artifact");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_bvh_artifact_triggers_rebuild() {
    let dir = temp_store("trunc-bvh");
    let (_, bvh_path) = populate(&dir);
    let bytes = std::fs::read(&bvh_path).unwrap();
    std::fs::write(&bvh_path, &bytes[..bytes.len() - 7]).unwrap();
    assert_rebuilds(&dir, "a truncated BVH artifact");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_artifact_files_trigger_rebuild() {
    let dir = temp_store("empty");
    let (scene_path, bvh_path) = populate(&dir);
    std::fs::write(&scene_path, []).unwrap();
    std::fs::write(&bvh_path, []).unwrap();
    assert_rebuilds(&dir, "zero-byte artifacts");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn format_version_bump_triggers_rebuild() {
    // Simulate artifacts from a *future* format: patch the version field
    // (bytes 4..8, after the 4-byte magic) in both files. The decoder must
    // reject them and the cache must rebuild, exactly as it would after a
    // real FORMAT_VERSION bump invalidated old artifacts on disk.
    let dir = temp_store("version");
    let (scene_path, bvh_path) = populate(&dir);
    for path in [&scene_path, &bvh_path] {
        let mut bytes = std::fs::read(path).unwrap();
        bytes[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(path, bytes).unwrap();
    }
    assert_rebuilds(&dir, "a foreign format version");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn artifact_for_a_different_key_triggers_rebuild() {
    // Valid, decodable artifacts that describe the *wrong* case: build a
    // different scene, then copy its files over our key's paths. The
    // post-decode key check must notice and rebuild.
    let dir = temp_store("wrong-key");
    let (scene_path, bvh_path) = populate(&dir);
    let other_dir = temp_store("wrong-key-src");
    {
        let cache = CaseCache::with_disk_dir(Some(other_dir.clone()));
        cache.get_or_build(CaseKey::square(SceneId::Sibenik, SceneScale::Tiny, 16));
    }
    for entry in std::fs::read_dir(&other_dir).unwrap() {
        let path = entry.unwrap().path();
        match path.extension().and_then(|e| e.to_str()) {
            Some("scene") => std::fs::copy(&path, &scene_path).map(|_| ()).unwrap(),
            Some("bvh") => std::fs::copy(&path, &bvh_path).map(|_| ()).unwrap(),
            _ => {}
        }
    }
    assert_rebuilds(&dir, "artifacts belonging to a different key");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&other_dir);
}

#[test]
fn header_bomb_artifacts_fail_fast_without_allocation() {
    // Headers promising astronomically more data than the file holds must
    // be rejected by the capacity guards — decoding returns Err instead of
    // attempting a multi-gigabyte allocation, and the cache rebuilds. In
    // the RIPA v2 container the attacker-controlled count is the section
    // count at bytes 8..12; it is bounds-checked against the real file
    // length before the section table is even read.
    let dir = temp_store("bomb");
    let (scene_path, bvh_path) = populate(&dir);
    for path in [&scene_path, &bvh_path] {
        let mut bomb = std::fs::read(path).unwrap();
        bomb[8..12].copy_from_slice(&u32::MAX.to_ne_bytes());
        std::fs::write(path, &bomb).unwrap();
    }
    assert_rebuilds(&dir, "header-bomb artifacts");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn garbage_artifacts_of_plausible_size_trigger_rebuild() {
    let dir = temp_store("garbage");
    let (scene_path, bvh_path) = populate(&dir);
    let scene_len = std::fs::metadata(&scene_path).unwrap().len() as usize;
    let bvh_len = std::fs::metadata(&bvh_path).unwrap().len() as usize;
    // Deterministic pseudo-random filler with the original file sizes.
    let fill = |n: usize, mut s: u32| -> Vec<u8> {
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(1664525).wrapping_add(1013904223);
                (s >> 24) as u8
            })
            .collect()
    };
    std::fs::write(&scene_path, fill(scene_len, 7)).unwrap();
    std::fs::write(&bvh_path, fill(bvh_len, 11)).unwrap();
    assert_rebuilds(&dir, "garbage artifacts");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rebuild_after_corruption_rewrites_good_artifacts() {
    // After a rebuild the store must hold fresh, loadable artifacts again:
    // the *next* process gets a disk hit, not another build.
    let dir = temp_store("self-heal");
    let (scene_path, _) = populate(&dir);
    std::fs::write(&scene_path, b"RSCN damaged beyond recognition").unwrap();
    assert_rebuilds(&dir, "a damaged scene artifact");
    let cache = CaseCache::with_disk_dir(Some(dir.clone()));
    cache.get_or_build(key());
    assert_eq!(
        cache.stats().disk_hits,
        1,
        "the rebuild must have re-persisted loadable artifacts"
    );
    assert_eq!(cache.stats().builds, 0);
    let _ = std::fs::remove_dir_all(&dir);
}
