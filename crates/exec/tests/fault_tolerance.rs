//! The fault-path matrix of the execution engine (ISSUE 3): panic
//! mid-unit, watchdog timeout, corrupt artifacts (bit-flip and header
//! bomb), retry-then-succeed, and journal-backed resume — every
//! degradation path must end in a recorded fault or a clean rebuild,
//! never an aborted sweep.

use rip_exec::{
    CaseCache, CaseKey, Fault, FaultKind, JobPool, Journal, JournalEntry, RetryPolicy,
    ShardedRunner,
};
use rip_scene::{SceneId, SceneScale};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rip-fault-tol-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn panic_mid_unit_is_recorded_and_the_sweep_drains() {
    let pool = JobPool::new(4);
    let runner = ShardedRunner::new(&pool, "matrix-panic").quiet();
    let units: Vec<u32> = (0..16).collect();
    let reports = runner.try_run(
        &units,
        |u| format!("unit{u}"),
        |&u, _| {
            if u == 9 {
                panic!("unit nine detonated");
            }
            Ok(u + 1)
        },
    );
    assert_eq!(reports.len(), 16, "every unit gets a report");
    let failed: Vec<_> = reports.iter().filter(|r| !r.is_ok()).collect();
    assert_eq!(failed.len(), 1);
    assert_eq!(failed[0].label, "unit9");
    assert_eq!(failed[0].fault().unwrap().kind, FaultKind::Panic);
    assert!(failed[0].fault().unwrap().message.contains("detonated"));
    for report in reports.iter().filter(|r| r.is_ok()) {
        assert_eq!(*report.value(), report.index as u32 + 1);
    }
}

#[test]
fn watchdog_timeout_marks_the_stuck_unit_and_frees_the_queue() {
    let pool = JobPool::new(2);
    let runner = ShardedRunner::new(&pool, "matrix-timeout")
        .quiet()
        .with_deadline(Some(Duration::from_millis(50)));
    let units: Vec<u32> = (0..8).collect();
    let reports = runner.try_run(
        &units,
        |u| format!("unit{u}"),
        |&u, _| {
            if u == 3 {
                std::thread::sleep(Duration::from_millis(500));
            }
            Ok(u)
        },
    );
    let fault = reports[3].fault().expect("unit 3 must time out");
    assert_eq!(fault.kind, FaultKind::Timeout);
    assert!(fault.message.contains("50 ms"));
    for (i, report) in reports.iter().enumerate() {
        if i != 3 {
            assert_eq!(*report.value(), i as u32, "unit {i} must still complete");
        }
    }
}

#[test]
fn retry_then_succeed_consumes_the_recorded_attempts() {
    let pool = JobPool::new(2);
    let runner = ShardedRunner::new(&pool, "matrix-retry")
        .quiet()
        .with_retry(RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(1),
        });
    let flaky_failures = AtomicU32::new(2);
    let units: Vec<u32> = (0..4).collect();
    let reports = runner.try_run(
        &units,
        |u| format!("unit{u}"),
        |&u, _| {
            if u == 2
                && flaky_failures
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                    .is_ok()
            {
                return Err(Fault::retryable("transient cache race"));
            }
            Ok(u * 7)
        },
    );
    assert_eq!(reports[2].attempts, 3, "two injected failures + success");
    assert_eq!(*reports[2].value(), 14);
    for i in [0usize, 1, 3] {
        assert_eq!(reports[i].attempts, 1);
        assert_eq!(*reports[i].value(), i as u32 * 7);
    }
}

#[test]
fn corrupt_artifact_bit_flip_quarantines_and_rebuilds() {
    let dir = temp_dir("bitflip");
    let key = CaseKey::square(SceneId::Sibenik, SceneScale::Tiny, 28);
    {
        let cache = CaseCache::with_disk_dir(Some(dir.clone()));
        cache.get_or_build(key);
    }
    // Flip one byte in the middle of the BVH artifact.
    let bvh: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "bvh"))
        .collect();
    assert_eq!(bvh.len(), 1);
    let mut bytes = std::fs::read(&bvh[0]).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&bvh[0], bytes).unwrap();

    let cache = CaseCache::with_disk_dir(Some(dir.clone()));
    let case = cache.get_or_build(key);
    assert_eq!(cache.stats().builds, 1, "bit flip must force a rebuild");
    assert_eq!(cache.stats().quarantines, 1);
    case.bvh.validate().unwrap();
    assert!(
        !bvh[0].exists() || {
            // Rebuild re-persisted a fresh artifact under the same name;
            // it must now decode cleanly.
            rip_bvh::serial::decode(&std::fs::read(&bvh[0]).unwrap()).is_ok()
        },
        "no corrupt bytes may remain under the artifact name"
    );
    // The bad bytes are preserved for diagnosis.
    let quarantined: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "quarantine"))
        .collect();
    assert_eq!(quarantined.len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_artifact_header_bomb_is_rejected_quarantined_rebuilt() {
    let dir = temp_dir("bomb");
    let key = CaseKey::square(SceneId::Sibenik, SceneScale::Tiny, 30);
    {
        let cache = CaseCache::with_disk_dir(Some(dir.clone()));
        cache.get_or_build(key);
    }
    // Valid magic+version, absurd element count right behind them: the
    // decoder's capacity guard must reject it without allocating.
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let is_artifact = path.extension().is_some_and(|e| e == "bvh" || e == "scene");
        if is_artifact {
            let mut bytes = std::fs::read(&path).unwrap();
            bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
            std::fs::write(&path, bytes).unwrap();
        }
    }
    let cache = CaseCache::with_disk_dir(Some(dir.clone()));
    let case = cache.get_or_build(key);
    assert_eq!(cache.stats().builds, 1, "header bombs must force a rebuild");
    assert!(cache.stats().quarantines >= 1);
    case.bvh.validate().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journal_resume_skips_completed_units_and_survives_torn_tails() {
    let path = temp_dir("journal").join("sweep.journal");
    let fingerprint = "matrix fp=1";
    // First "process": complete two of four units, then die (simulated by
    // simply dropping the journal mid-sweep).
    {
        let journal = Journal::create(&path, fingerprint).unwrap();
        for label in ["alpha", "beta"] {
            journal
                .append(&JournalEntry {
                    label: label.to_string(),
                    attempts: 1,
                    elapsed: Duration::from_millis(5),
                    payload: format!("payload-of-{label}").into_bytes(),
                })
                .unwrap();
        }
    }
    // Tear the tail: append garbage bytes as a torn in-flight record.
    {
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        file.write_all(b"rec 9999 deadbeef").unwrap();
    }
    // Second "process": resume, observe exactly the completed prefix.
    let (journal, entries) = Journal::resume(&path, fingerprint).unwrap();
    assert_eq!(
        entries.iter().map(|e| e.label.as_str()).collect::<Vec<_>>(),
        vec!["alpha", "beta"],
        "resume must recover exactly the intact completed units"
    );
    // The remaining units complete and checkpoint cleanly after resume.
    let pool = JobPool::new(2);
    let runner = ShardedRunner::new(&pool, "matrix-resume").quiet();
    let pending = ["gamma", "delta"];
    let reports = runner.try_run(
        &pending,
        |l| l.to_string(),
        |&label, attempt| {
            journal
                .append(&JournalEntry {
                    label: label.to_string(),
                    attempts: attempt,
                    elapsed: Duration::from_millis(1),
                    payload: format!("payload-of-{label}").into_bytes(),
                })
                .map_err(|e| Fault::io(e.to_string()))?;
            Ok(label.len())
        },
    );
    assert!(reports.iter().all(|r| r.is_ok()));
    let (_, entries) = Journal::resume(&path, fingerprint).unwrap();
    assert_eq!(entries.len(), 4, "all four units are now checkpointed");
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}

#[test]
fn injection_plan_drives_the_isolated_runner() {
    // The testkit hook in miniature, without the env var: directives
    // parsed from a spec string steer try_run through panic, flaky, and
    // clean paths in one sweep.
    let plan = rip_exec::InjectionPlan::parse("panic:u1;flaky:u2=1");
    let pool = JobPool::new(2);
    let runner = ShardedRunner::new(&pool, "matrix-inject")
        .quiet()
        .with_retry(RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_millis(1),
        });
    let units = ["u0", "u1", "u2"];
    let reports = runner.try_run(
        &units,
        |u| u.to_string(),
        |&unit, attempt| {
            plan.apply(unit, attempt)?;
            Ok(unit.len())
        },
    );
    assert!(reports[0].is_ok());
    assert_eq!(reports[1].fault().unwrap().kind, FaultKind::Panic);
    assert!(reports[2].is_ok(), "flaky unit must succeed on retry");
    assert_eq!(reports[2].attempts, 2);
}
