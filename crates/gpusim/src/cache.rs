//! Set-associative cache model.

/// Geometry of one cache (Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes (128 in Table 2).
    pub line_bytes: usize,
    /// Associativity; `usize::MAX` means fully associative (the Table 2
    /// L1 configuration).
    pub ways: usize,
}

impl CacheConfig {
    /// The baseline 64 KB fully-associative L1 with 128-byte lines.
    pub fn l1_baseline() -> Self {
        CacheConfig {
            size_bytes: 64 * 1024,
            line_bytes: 128,
            ways: usize::MAX,
        }
    }

    /// The baseline 1 MB 16-way L2 with 128-byte lines.
    pub fn l2_baseline() -> Self {
        CacheConfig {
            size_bytes: 1024 * 1024,
            line_bytes: 128,
            ways: 16,
        }
    }

    /// Same geometry with a different capacity (cache-size sweeps).
    pub fn with_size(self, size_bytes: usize) -> Self {
        CacheConfig { size_bytes, ..self }
    }

    /// Number of lines.
    pub fn lines(&self) -> usize {
        self.size_bytes / self.line_bytes
    }

    /// Effective associativity after clamping to the line count.
    pub fn effective_ways(&self) -> usize {
        self.ways.min(self.lines()).max(1)
    }

    /// Number of sets (lines / ways, at least 1).
    pub fn sets(&self) -> usize {
        (self.lines() / self.effective_ways()).max(1)
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns a message when sizes are zero, not line-divisible, or the
    /// set count is not a power of two.
    pub fn validate(&self) -> Result<(), String> {
        if self.line_bytes == 0 || self.size_bytes == 0 {
            return Err("cache sizes must be positive".into());
        }
        if !self.size_bytes.is_multiple_of(self.line_bytes) {
            return Err("capacity must be a multiple of the line size".into());
        }
        if !self.sets().is_power_of_two() {
            return Err(format!("{} sets is not a power of two", self.sets()));
        }
        Ok(())
    }
}

/// Hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Misses (`accesses − hits`).
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }
}

/// An LRU set-associative cache over byte addresses.
///
/// # Examples
///
/// ```
/// use rip_gpusim::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig { size_bytes: 256, line_bytes: 128, ways: 2 });
/// assert!(!c.access(0));   // cold miss
/// assert!(c.access(64));   // same 128-byte line
/// assert!(!c.access(128)); // next line
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    /// Per set: line tag → last-use time. Hits are O(1); the LRU scan only
    /// runs on evictions, keeping the 512-way fully-associative baseline L1
    /// fast at paper scale.
    sets: Vec<std::collections::HashMap<u64, u64>>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics when the geometry is invalid.
    pub fn new(config: CacheConfig) -> Self {
        config.validate().expect("invalid cache configuration");
        Cache {
            config,
            sets: vec![std::collections::HashMap::new(); config.sets()],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Accesses a byte address; returns `true` on hit. Misses fill the
    /// line, evicting LRU.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        self.stats.accesses += 1;
        let line = addr / self.config.line_bytes as u64;
        let set_idx = (line % self.sets.len() as u64) as usize;
        let ways = self.config.effective_ways();
        let set = &mut self.sets[set_idx];
        if let Some(last_use) = set.get_mut(&line) {
            *last_use = self.clock;
            self.stats.hits += 1;
            return true;
        }
        if set.len() >= ways {
            let victim = set
                .iter()
                .min_by_key(|(_, &used)| used)
                .map(|(&tag, _)| tag)
                .expect("set has ways");
            set.remove(&victim);
        }
        set.insert(line, self.clock);
        false
    }

    /// Looks up `addr` without recording an access: no statistics, no
    /// LRU reordering, no fill. This is the read-only view the parallel
    /// per-SM engine takes of the epoch-frozen shared L2 — contents only
    /// change at epoch barriers, where the authoritative [`Cache::access`]
    /// replays the merged traffic.
    pub fn probe(&self, addr: u64) -> bool {
        let line = addr / self.config.line_bytes as u64;
        let set_idx = (line % self.sets.len() as u64) as usize;
        self.sets[set_idx].contains_key(&line)
    }

    /// Empties the cache, keeping statistics.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(ways: usize) -> Cache {
        Cache::new(CacheConfig {
            size_bytes: 512,
            line_bytes: 128,
            ways,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny(4); // fully assoc within 4 lines
        assert!(!c.access(1000));
        assert!(c.access(1000));
        assert!(c.access(1000 + 20)); // same 128-byte line (896..1024)
        assert_eq!(c.stats().accesses, 3);
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny(4); // 4 lines, 1 set
        for line in 0..4u64 {
            assert!(!c.access(line * 128));
        }
        let _ = c.access(0); // line 0 now MRU
        assert!(!c.access(4 * 128)); // evicts line 1
        assert!(c.access(0), "line 0 must have survived");
        assert!(!c.access(128), "line 1 must have been evicted");
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 512,
            line_bytes: 128,
            ways: 1,
        });
        // 4 sets; lines 0 and 4 conflict.
        assert!(!c.access(0));
        assert!(!c.access(4 * 128));
        assert!(!c.access(0), "conflict eviction expected");
    }

    #[test]
    fn bigger_cache_hits_more() {
        let trace: Vec<u64> = (0..200u64).map(|i| (i * 37) % 64 * 128).collect();
        let run = |size: usize| {
            let mut c = Cache::new(CacheConfig {
                size_bytes: size,
                line_bytes: 128,
                ways: usize::MAX,
            });
            for &a in &trace {
                c.access(a);
            }
            c.stats().hit_rate()
        };
        assert!(run(64 * 128) >= run(16 * 128));
    }

    #[test]
    fn fully_assoc_l1_baseline_geometry() {
        let cfg = CacheConfig::l1_baseline();
        cfg.validate().unwrap();
        assert_eq!(cfg.lines(), 512);
        assert_eq!(cfg.sets(), 1);
        assert_eq!(cfg.effective_ways(), 512);
    }

    #[test]
    fn validation_rejects_bad_geometry() {
        assert!(CacheConfig {
            size_bytes: 100,
            line_bytes: 128,
            ways: 1
        }
        .validate()
        .is_err());
        assert!(CacheConfig {
            size_bytes: 0,
            line_bytes: 128,
            ways: 1
        }
        .validate()
        .is_err());
        // 3 sets (384/128 lines, 1 way) is not a power of two.
        assert!(CacheConfig {
            size_bytes: 384,
            line_bytes: 128,
            ways: 1
        }
        .validate()
        .is_err());
    }

    #[test]
    fn probe_is_invisible() {
        let mut c = tiny(2); // 2 ways, 2 sets
        assert!(!c.probe(0));
        c.access(0);
        assert!(c.probe(0));
        assert!(c.probe(64), "same line");
        assert!(!c.probe(2 * 128), "other set untouched");
        // Probes leave no trace: stats unchanged, LRU order unchanged.
        assert_eq!(c.stats().accesses, 1);
        c.access(2 * 128); // set 0: lines {0, 2}
        for _ in 0..8 {
            assert!(c.probe(0));
        }
        c.access(4 * 128); // set 0 full: evicts LRU line 0 (probes don't refresh)
        assert!(!c.probe(0), "probe must not have refreshed line 0");
        assert!(c.probe(2 * 128));
    }

    #[test]
    fn clear_keeps_stats() {
        let mut c = tiny(4);
        c.access(0);
        c.clear();
        assert!(!c.access(0), "cleared cache must miss");
        assert_eq!(c.stats().accesses, 2);
    }
}
