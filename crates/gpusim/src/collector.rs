//! The partial warp collector (§4.4.1, Figure 10).

/// Collects the ray IDs of predicted rays until a full warp accumulates or
/// a timeout expires, then releases them as a repacked warp.
///
/// Stores only ray IDs (the ray data stays in the ray buffer, indexed by
/// ID); holds up to 64 IDs to absorb overflow when a lookup adds more rays
/// than one warp's worth, with a short timeout to flush stragglers.
///
/// # Examples
///
/// ```
/// use rip_gpusim::PartialWarpCollector;
///
/// let mut c = PartialWarpCollector::new(64, 32, 16);
/// for id in 0..32 {
///     c.push(id, 100);
/// }
/// let warp = c.take_ready(100).expect("full warp available");
/// assert_eq!(warp.len(), 32);
/// ```
#[derive(Clone, Debug)]
pub struct PartialWarpCollector {
    ids: Vec<u32>,
    capacity: usize,
    warp_size: usize,
    timeout: u64,
    /// Cycle at which the oldest resident ID arrived.
    oldest_arrival: Option<u64>,
}

impl PartialWarpCollector {
    /// Creates an empty collector.
    ///
    /// # Panics
    ///
    /// Panics when `capacity < warp_size` or `warp_size == 0`.
    pub fn new(capacity: usize, warp_size: usize, timeout: u64) -> Self {
        assert!(warp_size > 0, "warp size must be positive");
        assert!(
            capacity >= warp_size,
            "collector must hold at least one warp"
        );
        PartialWarpCollector {
            ids: Vec::new(),
            capacity,
            warp_size,
            timeout,
            oldest_arrival: None,
        }
    }

    /// Rays currently waiting.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether no rays are waiting.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Adds a predicted ray ID at time `now`.
    ///
    /// The §4.4.1 overflow rule: the collector stores up to 64 IDs, so a
    /// burst may exceed one warp; callers drain full warps with
    /// [`take_ready`]. Pushing beyond capacity is a caller bug.
    ///
    /// # Panics
    ///
    /// Panics when the collector is full.
    ///
    /// [`take_ready`]: PartialWarpCollector::take_ready
    pub fn push(&mut self, ray_id: u32, now: u64) {
        assert!(self.ids.len() < self.capacity, "collector overflow");
        if self.ids.is_empty() {
            self.oldest_arrival = Some(now);
        }
        self.ids.push(ray_id);
    }

    /// Free ID slots remaining.
    pub fn free_slots(&self) -> usize {
        self.capacity - self.ids.len()
    }

    /// The deadline by which the current contents must flush, if any.
    pub fn deadline(&self) -> Option<u64> {
        self.oldest_arrival.map(|t| t + self.timeout)
    }

    /// Removes and returns a warp when one is ready at `now`: a full warp
    /// whenever enough rays are waiting, or a partial warp once the
    /// timeout has expired.
    pub fn take_ready(&mut self, now: u64) -> Option<Vec<u32>> {
        if self.ids.len() >= self.warp_size {
            let rest = self.ids.split_off(self.warp_size);
            let warp = std::mem::replace(&mut self.ids, rest);
            self.oldest_arrival = if self.ids.is_empty() { None } else { Some(now) };
            return Some(warp);
        }
        if !self.ids.is_empty() && self.deadline().is_some_and(|d| now >= d) {
            self.oldest_arrival = None;
            return Some(std::mem::take(&mut self.ids));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_warp_releases_immediately() {
        let mut c = PartialWarpCollector::new(64, 4, 10);
        for id in 0..4 {
            c.push(id, 5);
        }
        assert_eq!(c.take_ready(5), Some(vec![0, 1, 2, 3]));
        assert!(c.is_empty());
    }

    #[test]
    fn overflow_rays_stay_for_next_warp() {
        let mut c = PartialWarpCollector::new(8, 4, 10);
        for id in 0..6 {
            c.push(id, 0);
        }
        assert_eq!(c.take_ready(0), Some(vec![0, 1, 2, 3]));
        assert_eq!(c.len(), 2);
        assert_eq!(c.take_ready(0), None, "2 rays, no timeout yet");
        assert_eq!(
            c.take_ready(10),
            Some(vec![4, 5]),
            "timeout flushes partial warp"
        );
    }

    #[test]
    fn timeout_counts_from_oldest_resident() {
        let mut c = PartialWarpCollector::new(8, 4, 10);
        c.push(0, 100);
        c.push(1, 105);
        assert_eq!(c.deadline(), Some(110));
        assert_eq!(c.take_ready(109), None);
        assert_eq!(c.take_ready(110), Some(vec![0, 1]));
        assert_eq!(c.deadline(), None);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn pushing_past_capacity_panics() {
        let mut c = PartialWarpCollector::new(4, 4, 10);
        for id in 0..5 {
            c.push(id, 0);
        }
    }

    #[test]
    fn paper_parameters_are_accepted() {
        // 64 IDs, warp of 32, 5–30 cycle timeout (§4.4.1).
        let c = PartialWarpCollector::new(64, 32, 16);
        assert_eq!(c.free_slots(), 64);
    }
}
