//! Top-level GPU / RT-unit configuration (Tables 2 and 3).

use crate::{CacheConfig, DramConfig};
use rip_core::PredictorConfig;

/// Fixed-function latencies of the RT unit (§5.1.5, Figure 17 sweeps).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyConfig {
    /// Cycles to enqueue a ray query into the RT unit.
    pub queue: u64,
    /// L1 hit latency.
    pub l1_hit: u64,
    /// Additional latency of an L2 hit (on top of the L1 path).
    pub l2_hit: u64,
    /// Latency of one pipelined intersection test (box or triangle).
    pub intersection: u64,
}

impl LatencyConfig {
    /// §5.1.5 minimum-traversal numbers: 1-cycle queue, 1-cycle L1,
    /// 2-cycle intersection; L2 at an interconnect-realistic 30 cycles.
    pub fn baseline() -> Self {
        LatencyConfig {
            queue: 1,
            l1_hit: 1,
            l2_hit: 30,
            intersection: 2,
        }
    }
}

/// Predictor unit port/latency parameters (§4.1, Figure 17 sweeps).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PredictorUnitConfig {
    /// Table access ports (lookups per cycle). The paper finds four ideal.
    pub ports: u64,
    /// Table access latency in cycles (Table 3: 1; §5.1.5 budget: 2 with
    /// queueing).
    pub access_latency: u64,
}

impl PredictorUnitConfig {
    /// Table 3: four accesses per cycle, 1-cycle access.
    pub fn baseline() -> Self {
        PredictorUnitConfig {
            ports: 4,
            access_latency: 1,
        }
    }
}

/// Warp repacking operating mode (§4.4, Figure 15).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RepackMode {
    /// Predictor without repacking ("Default" in Figure 15): predicted and
    /// not-predicted rays stay in their original warp.
    #[default]
    Off,
    /// Repacking via the partial warp collector ("Repack").
    On,
    /// Repacking plus `extra` additional concurrent warps ("Repack 4" uses
    /// 4, §4.4.2).
    WithExtraWarps(
        /// Additional warps beyond the RT unit's base limit.
        u32,
    ),
}

impl RepackMode {
    /// Whether predicted rays are split out into the collector.
    pub fn repacks(self) -> bool {
        !matches!(self, RepackMode::Off)
    }

    /// Additional warp slots granted to repacked warps.
    pub fn extra_warps(self) -> u32 {
        match self {
            RepackMode::WithExtraWarps(n) => n,
            _ => 0,
        }
    }
}

/// Full timing-simulator configuration.
///
/// # Examples
///
/// ```
/// use rip_gpusim::GpuConfig;
///
/// let baseline = GpuConfig::baseline();
/// assert!(baseline.predictor.is_none());
/// let predicted = GpuConfig::with_predictor();
/// assert!(predicted.predictor.is_some());
/// ```
#[derive(Clone, Debug)]
pub struct GpuConfig {
    /// Streaming multiprocessors; Table 2 models two, each with one RT
    /// unit and one predictor.
    pub num_sms: usize,
    /// Concurrent warps per RT unit (§5.1.1: eight).
    pub max_warps_per_rt: usize,
    /// Threads (rays) per warp.
    pub warp_size: usize,
    /// Per-SM L1 configuration.
    pub l1: CacheConfig,
    /// Optional dedicated RT cache in front of the L1 (§6.2.3).
    pub rt_cache: Option<CacheConfig>,
    /// Shared L2 configuration.
    pub l2: CacheConfig,
    /// DRAM configuration.
    pub dram: DramConfig,
    /// Fixed-function latencies.
    pub latency: LatencyConfig,
    /// Predictor configuration; `None` simulates the baseline RT unit.
    pub predictor: Option<PredictorConfig>,
    /// Predictor unit ports/latency.
    pub predictor_unit: PredictorUnitConfig,
    /// Warp repacking mode (only meaningful with a predictor).
    pub repack: RepackMode,
    /// Partial warp collector timeout in cycles (§4.4.1: 5–30 show
    /// insignificant differences; default 16).
    pub collector_timeout: u64,
    /// Partial warp collector capacity in ray IDs (§4.4.1: 64).
    pub collector_capacity: usize,
    /// Epoch length of the parallel per-SM scheduler, in cycles. SMs
    /// couple only through the shared L2/DRAM; within one epoch every SM
    /// advances against a frozen snapshot of the shared levels, and the
    /// logged traffic is merged deterministically at the epoch barrier.
    /// Smaller epochs tighten shared-state freshness; larger epochs
    /// amortize barriers. The value changes timing like any other model
    /// parameter but never affects determinism.
    pub epoch_cycles: u64,
}

impl GpuConfig {
    /// The baseline RT unit of §5.1 (no predictor), Table 2 memory system.
    pub fn baseline() -> Self {
        GpuConfig {
            num_sms: 2,
            max_warps_per_rt: 8,
            warp_size: 32,
            l1: CacheConfig::l1_baseline(),
            rt_cache: None,
            l2: CacheConfig::l2_baseline(),
            dram: DramConfig::baseline(),
            latency: LatencyConfig::baseline(),
            predictor: None,
            predictor_unit: PredictorUnitConfig::baseline(),
            repack: RepackMode::Off,
            collector_timeout: 16,
            collector_capacity: 64,
            epoch_cycles: 256,
        }
    }

    /// Baseline plus the Table 3 predictor with repacking on — the
    /// configuration behind the headline Figure 12 numbers.
    pub fn with_predictor() -> Self {
        GpuConfig {
            predictor: Some(PredictorConfig::paper_default()),
            repack: RepackMode::On,
            ..Self::baseline()
        }
    }

    /// Validates the composite configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_sms == 0 || self.max_warps_per_rt == 0 || self.warp_size == 0 {
            return Err("num_sms, max_warps_per_rt and warp_size must be positive".into());
        }
        self.l1.validate()?;
        self.l2.validate()?;
        if let Some(rt) = &self.rt_cache {
            rt.validate()?;
        }
        if let Some(p) = &self.predictor {
            p.validate()?;
        }
        if self.predictor_unit.ports == 0 {
            return Err("predictor needs at least one port".into());
        }
        if self.collector_capacity < self.warp_size {
            return Err("collector must hold at least one full warp".into());
        }
        if self.epoch_cycles == 0 {
            return Err("epoch_cycles must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table_2() {
        let c = GpuConfig::baseline();
        c.validate().unwrap();
        assert_eq!(c.num_sms, 2);
        assert_eq!(c.max_warps_per_rt, 8);
        assert_eq!(c.warp_size, 32);
        assert_eq!(c.l1.size_bytes, 64 * 1024);
        assert_eq!(c.l2.size_bytes, 1024 * 1024);
    }

    #[test]
    fn repack_modes() {
        assert!(!RepackMode::Off.repacks());
        assert!(RepackMode::On.repacks());
        assert_eq!(RepackMode::WithExtraWarps(4).extra_warps(), 4);
        assert_eq!(RepackMode::On.extra_warps(), 0);
    }

    #[test]
    fn validation_catches_zero_fields() {
        let mut c = GpuConfig::baseline();
        c.num_sms = 0;
        assert!(c.validate().is_err());
        let mut c = GpuConfig::with_predictor();
        c.predictor_unit.ports = 0;
        assert!(c.validate().is_err());
        let mut c = GpuConfig::baseline();
        c.collector_capacity = 8;
        assert!(c.validate().is_err());
    }
}
