//! Banked DRAM timing model.

/// DRAM geometry and timing (core-clock cycles).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of banks (requests to distinct banks proceed in parallel).
    pub banks: usize,
    /// Access latency once a bank accepts the request.
    pub access_latency: u64,
    /// Bank occupancy per request (time until the bank is free again).
    pub bank_occupancy: u64,
}

impl DramConfig {
    /// Baseline: 16 banks, 100-cycle access, 16-cycle occupancy — a
    /// GDDR-like ratio at the Table 2 core clock.
    pub fn baseline() -> Self {
        DramConfig {
            banks: 16,
            access_latency: 100,
            bank_occupancy: 16,
        }
    }
}

/// DRAM activity counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Requests serviced.
    pub accesses: u64,
    /// Total cycles requests waited for a busy bank.
    pub bank_wait_cycles: u64,
    /// Requests per bank (for bank-level-parallelism analysis, §6.2.2).
    pub per_bank: Vec<u64>,
}

impl DramStats {
    /// Mean cycles a request waited on a busy bank.
    pub fn mean_bank_wait(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.bank_wait_cycles as f64 / self.accesses as f64
        }
    }

    /// Bank-level parallelism proxy: normalized inverse imbalance of the
    /// per-bank request distribution (1.0 = perfectly balanced). §6.2.2
    /// reports repacking "improves bank parallelism in the DRAM by 41%";
    /// this metric captures the same balance effect.
    pub fn bank_balance(&self) -> f64 {
        let total: u64 = self.per_bank.iter().sum();
        if total == 0 || self.per_bank.is_empty() {
            return 0.0;
        }
        // Inverse Herfindahl index normalized by bank count.
        let hhi: f64 = self
            .per_bank
            .iter()
            .map(|&c| {
                let share = c as f64 / total as f64;
                share * share
            })
            .sum();
        1.0 / (hhi * self.per_bank.len() as f64)
    }
}

/// Banked DRAM with occupancy-based contention.
///
/// Each request maps to a bank by line address; a busy bank delays the
/// request until free. No row-buffer model — the occupancy parameter
/// captures average activation cost.
///
/// # Examples
///
/// ```
/// use rip_gpusim::{Dram, DramConfig};
///
/// let mut d = Dram::new(DramConfig::baseline());
/// let t1 = d.access(0, 0);
/// let t2 = d.access(0, 0); // same bank: must wait for occupancy
/// assert!(t2 > t1);
/// ```
#[derive(Clone, Debug)]
pub struct Dram {
    config: DramConfig,
    bank_free_at: Vec<u64>,
    stats: DramStats,
}

impl Dram {
    /// Creates an idle DRAM.
    ///
    /// # Panics
    ///
    /// Panics when `banks` is zero.
    pub fn new(config: DramConfig) -> Self {
        assert!(config.banks > 0, "need at least one bank");
        Dram {
            config,
            bank_free_at: vec![0; config.banks],
            stats: DramStats {
                per_bank: vec![0; config.banks],
                ..Default::default()
            },
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Issues a request for `addr` at time `now`; returns the completion
    /// time.
    pub fn access(&mut self, addr: u64, now: u64) -> u64 {
        let bank = ((addr / 128) % self.config.banks as u64) as usize;
        let start = now.max(self.bank_free_at[bank]);
        self.stats.bank_wait_cycles += start - now;
        self.stats.accesses += 1;
        self.stats.per_bank[bank] += 1;
        self.bank_free_at[bank] = start + self.config.bank_occupancy;
        start + self.config.access_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_banks_proceed_in_parallel() {
        let mut d = Dram::new(DramConfig {
            banks: 4,
            access_latency: 100,
            bank_occupancy: 20,
        });
        let a = d.access(0, 0); // bank 0
        let b = d.access(128, 0); // bank 1
        assert_eq!(a, 100);
        assert_eq!(b, 100);
        assert_eq!(d.stats().bank_wait_cycles, 0);
    }

    #[test]
    fn same_bank_serializes() {
        let mut d = Dram::new(DramConfig {
            banks: 4,
            access_latency: 100,
            bank_occupancy: 20,
        });
        let a = d.access(0, 0);
        let b = d.access(4 * 128, 0); // also bank 0
        assert_eq!(a, 100);
        assert_eq!(b, 120);
        assert_eq!(d.stats().bank_wait_cycles, 20);
    }

    #[test]
    fn bank_frees_over_time() {
        let mut d = Dram::new(DramConfig {
            banks: 1,
            access_latency: 50,
            bank_occupancy: 10,
        });
        let _ = d.access(0, 0);
        let late = d.access(0, 100); // bank long since free
        assert_eq!(late, 150);
    }

    #[test]
    fn balance_metric_prefers_spread_traffic() {
        let mut spread = Dram::new(DramConfig {
            banks: 4,
            access_latency: 1,
            bank_occupancy: 1,
        });
        for i in 0..40u64 {
            spread.access(i * 128, i);
        }
        let mut hot = Dram::new(DramConfig {
            banks: 4,
            access_latency: 1,
            bank_occupancy: 1,
        });
        for i in 0..40u64 {
            hot.access(0, i * 2);
        }
        assert!(spread.stats().bank_balance() > hot.stats().bank_balance());
        assert!((spread.stats().bank_balance() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_panics() {
        let _ = Dram::new(DramConfig {
            banks: 0,
            access_latency: 1,
            bank_occupancy: 1,
        });
    }
}
