//! Cycle-level timing simulator for the baseline RT unit and the ray
//! intersection predictor (§5.1, Figure 10).
//!
//! Where the paper reports *speedups* (Figures 12, 15, 16, 17; Tables 6–8)
//! it runs GPGPU-Sim with an RT-unit model. This crate rebuilds that model
//! as a discrete-event simulator:
//!
//! * a [`Cache`] model (L1 per SM, shared L2, optional dedicated RT cache),
//! * a banked [`Dram`] with occupancy-based contention,
//! * an RT unit per SM executing up to eight 32-ray warps with
//!   greedy-then-oldest memory scheduling and MSHR-style intra-warp request
//!   merging (§5.1.2),
//! * a predictor unit with ported lookup queues (§4.1),
//! * **warp repacking** with the partial warp collector (§4.4) and the
//!   additional-warps extension (§4.4.2).
//!
//! The simulator reuses `rip-bvh`'s steppable [`rip_bvh::Traversal`] for
//! functional correctness and `rip-core`'s [`rip_core::Predictor`] for
//! prediction semantics, and adds cycle accounting on top.
//!
//! # Examples
//!
//! ```
//! use rip_gpusim::{GpuConfig, Simulator};
//! use rip_bvh::Bvh;
//! use rip_math::{Ray, Triangle, Vec3};
//!
//! let bvh = Bvh::build(&[Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y)]);
//! let rays = vec![Ray::new(Vec3::new(0.2, 0.2, -1.0), Vec3::Z); 64];
//! let report = Simulator::new(GpuConfig::baseline()).run(&bvh, &rays);
//! assert!(report.cycles > 0);
//! assert_eq!(report.completed_rays, 64);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod cache;
mod collector;
mod config;
mod dram;
mod memory;
mod report;
mod rt_unit;
mod sim;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use collector::PartialWarpCollector;
pub use config::{GpuConfig, LatencyConfig, PredictorUnitConfig, RepackMode};
pub use dram::{Dram, DramConfig, DramStats};
pub use memory::{MemoryHierarchy, MemoryStats};
pub use report::{ActivityCounts, SimReport};
pub use sim::Simulator;
