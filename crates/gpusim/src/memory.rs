//! The memory hierarchy: (optional RT cache) → per-SM L1 → shared L2 →
//! banked DRAM (§5.1.4).

use crate::{Cache, CacheConfig, CacheStats, Dram, DramConfig, DramStats, LatencyConfig};

/// Aggregate memory-system statistics.
#[derive(Clone, Debug, Default)]
pub struct MemoryStats {
    /// Per-SM RT cache stats (empty when no RT cache is configured).
    pub rt_cache: Vec<CacheStats>,
    /// Per-SM L1 stats.
    pub l1: Vec<CacheStats>,
    /// Shared L2 stats.
    pub l2: CacheStats,
    /// DRAM stats.
    pub dram: DramStats,
}

impl MemoryStats {
    /// Combined L1 statistics over all SMs.
    pub fn l1_combined(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.l1 {
            total.accesses += s.accesses;
            total.hits += s.hits;
        }
        total
    }
}

/// The full memory hierarchy.
///
/// Every request carries its issuing SM (for the private caches) and issue
/// time; the return value is the completion time. Caches are modelled as
/// blocking-free (MSHR merging happens at the warp level in the RT unit,
/// §5.1.2, so duplicate in-flight lines have already been merged).
///
/// # Examples
///
/// ```
/// use rip_gpusim::{LatencyConfig, MemoryHierarchy};
///
/// let mut mem = MemoryHierarchy::baseline(2);
/// let cold = mem.access(0, 0x1000, 0);
/// let warm = mem.access(0, 0x1000, cold);
/// assert!(warm - cold < cold, "second access must hit the L1");
/// # let _ = LatencyConfig::baseline();
/// ```
#[derive(Clone, Debug)]
pub struct MemoryHierarchy {
    rt_caches: Vec<Cache>,
    l1s: Vec<Cache>,
    l2: Cache,
    dram: Dram,
    latency: LatencyConfig,
}

impl MemoryHierarchy {
    /// Builds the Table 2 baseline hierarchy for `num_sms` SMs.
    pub fn baseline(num_sms: usize) -> Self {
        Self::new(
            num_sms,
            None,
            CacheConfig::l1_baseline(),
            CacheConfig::l2_baseline(),
            DramConfig::baseline(),
            LatencyConfig::baseline(),
        )
    }

    /// Builds a custom hierarchy.
    ///
    /// # Panics
    ///
    /// Panics when `num_sms` is zero or a cache configuration is invalid.
    pub fn new(
        num_sms: usize,
        rt_cache: Option<CacheConfig>,
        l1: CacheConfig,
        l2: CacheConfig,
        dram: DramConfig,
        latency: LatencyConfig,
    ) -> Self {
        assert!(num_sms > 0, "need at least one SM");
        MemoryHierarchy {
            rt_caches: rt_cache
                .map(|c| (0..num_sms).map(|_| Cache::new(c)).collect())
                .unwrap_or_default(),
            l1s: (0..num_sms).map(|_| Cache::new(l1)).collect(),
            l2: Cache::new(l2),
            dram: Dram::new(dram),
            latency,
        }
    }

    /// Issues a read of `addr` from SM `sm` at `now`; returns completion
    /// time.
    ///
    /// # Panics
    ///
    /// Panics when `sm` is out of range.
    pub fn access(&mut self, sm: usize, addr: u64, now: u64) -> u64 {
        // Dedicated RT cache, when configured (§6.2.3).
        if let Some(rt) = self.rt_caches.get_mut(sm) {
            if rt.access(addr) {
                return now + self.latency.l1_hit; // same fast-path latency
            }
        }
        if self.l1s[sm].access(addr) {
            return now + self.latency.l1_hit;
        }
        let l1_miss_time = now + self.latency.l1_hit;
        if self.l2.access(addr) {
            return l1_miss_time + self.latency.l2_hit;
        }
        let l2_miss_time = l1_miss_time + self.latency.l2_hit;
        self.dram.access(addr, l2_miss_time)
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> MemoryStats {
        MemoryStats {
            rt_cache: self.rt_caches.iter().map(|c| c.stats()).collect(),
            l1: self.l1s.iter().map(|c| c.stats()).collect(),
            l2: self.l2.stats(),
            dram: self.dram.stats().clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_hit_is_fast() {
        let mut mem = MemoryHierarchy::baseline(1);
        let cold = mem.access(0, 0, 0);
        assert!(cold > 100, "cold access goes to DRAM: {cold}");
        let warm = mem.access(0, 0, 1000);
        assert_eq!(warm, 1001, "L1 hit is 1 cycle");
    }

    #[test]
    fn l2_shared_between_sms() {
        let mut mem = MemoryHierarchy::baseline(2);
        let _ = mem.access(0, 0, 0); // fills L2 via SM0
        let other = mem.access(1, 0, 1000); // SM1 L1 misses, L2 hits
        assert_eq!(other, 1000 + 1 + 30);
    }

    #[test]
    fn rt_cache_front_ends_l1() {
        let rt = CacheConfig {
            size_bytes: 4 * 1024,
            line_bytes: 128,
            ways: usize::MAX,
        };
        let mut mem = MemoryHierarchy::new(
            1,
            Some(rt),
            CacheConfig::l1_baseline(),
            CacheConfig::l2_baseline(),
            DramConfig::baseline(),
            LatencyConfig::baseline(),
        );
        let _ = mem.access(0, 0, 0);
        let warm = mem.access(0, 0, 500);
        assert_eq!(warm, 501);
        let stats = mem.stats();
        assert_eq!(stats.rt_cache[0].accesses, 2);
        assert_eq!(stats.rt_cache[0].hits, 1);
        // The L1 only saw the RT-cache miss.
        assert_eq!(stats.l1[0].accesses, 1);
    }

    #[test]
    fn stats_aggregate_across_sms() {
        let mut mem = MemoryHierarchy::baseline(2);
        mem.access(0, 0, 0);
        mem.access(1, 128, 0);
        mem.access(0, 0, 10);
        let s = mem.stats();
        assert_eq!(s.l1_combined().accesses, 3);
        assert_eq!(s.l1_combined().hits, 1);
        assert_eq!(s.dram.accesses, 2);
    }

    #[test]
    #[should_panic(expected = "at least one SM")]
    fn zero_sms_panics() {
        let _ = MemoryHierarchy::new(
            0,
            None,
            CacheConfig::l1_baseline(),
            CacheConfig::l2_baseline(),
            DramConfig::baseline(),
            LatencyConfig::baseline(),
        );
    }
}
