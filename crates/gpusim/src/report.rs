//! Simulation reports and activity counts.

use crate::MemoryStats;
use rip_bvh::TraversalStats;
use rip_core::PredictionStats;

/// Event counts consumed by the energy model (`rip-energy`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ActivityCounts {
    /// L1 (and RT cache) accesses.
    pub l1_accesses: u64,
    /// L2 accesses.
    pub l2_accesses: u64,
    /// DRAM accesses.
    pub dram_accesses: u64,
    /// Ray-box intersection tests.
    pub box_tests: u64,
    /// Ray-triangle intersection tests.
    pub tri_tests: u64,
    /// Predictor table lookups.
    pub predictor_lookups: u64,
    /// Predictor table updates.
    pub predictor_updates: u64,
    /// Ray buffer reads/writes (ray data in/out, node broadcasts).
    pub ray_buffer_accesses: u64,
    /// Traversal stack pushes/pops.
    pub stack_ops: u64,
    /// Partial warp collector insertions/drains.
    pub collector_ops: u64,
    /// Requests merged into an outstanding fill (MSHR hits).
    pub mshr_merges: u64,
}

/// Result of one timing-simulation run.
#[derive(Clone, Debug, Default)]
pub struct SimReport {
    /// Total execution time in core cycles (max over SMs).
    pub cycles: u64,
    /// Rays retired.
    pub completed_rays: u64,
    /// Rays whose final result was an intersection.
    pub hits: u64,
    /// Traversal work summed over all rays.
    pub traversal: TraversalStats,
    /// Prediction outcomes (zeroed for baseline runs).
    pub prediction: PredictionStats,
    /// Memory system statistics.
    pub memory: MemoryStats,
    /// Activity counts for the energy model.
    pub activity: ActivityCounts,
    /// Warps executed (original + repacked).
    pub warps_executed: u64,
    /// Repacked warps formed by the collector.
    pub repacked_warps: u64,
}

impl SimReport {
    /// Rays per cycle (throughput).
    pub fn rays_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.completed_rays as f64 / self.cycles as f64
        }
    }

    /// Rays per second at a core clock in MHz (Table 2: 1365 MHz) — the
    /// unit of the Figure 11 correlation.
    pub fn rays_per_second(&self, core_mhz: f64) -> f64 {
        self.rays_per_cycle() * core_mhz * 1e6
    }

    /// Speedup of this run relative to `baseline` (execution-time ratio).
    pub fn speedup_over(&self, baseline: &SimReport) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            baseline.cycles as f64 / self.cycles as f64
        }
    }

    /// Total memory accesses issued to the hierarchy.
    pub fn memory_accesses(&self) -> u64 {
        self.activity.l1_accesses
    }

    /// Mirrors every field of this report into the `gpusim.*` counters
    /// of `obs` (adding, so repeated runs accumulate).
    ///
    /// The mapping is total: each scalar field lands under exactly one
    /// dotted path, and per-SM cache vectors land both as their sums
    /// (`gpusim.cache.*`) and per SM under `gpusim.sm<N>.cache.*` —
    /// `rip-testkit`'s differential test holds the registry to this.
    pub fn mirror_into(&self, obs: &rip_obs::Obs) {
        obs.add("gpusim.cycles", self.cycles);
        obs.add("gpusim.rays.completed", self.completed_rays);
        obs.add("gpusim.rays.hit", self.hits);

        let t = &self.traversal;
        obs.add("gpusim.traversal.interior_fetches", t.interior_fetches);
        obs.add("gpusim.traversal.leaf_fetches", t.leaf_fetches);
        obs.add("gpusim.traversal.tri_fetches", t.tri_fetches);
        obs.add("gpusim.traversal.box_tests", t.box_tests);
        obs.add("gpusim.traversal.tri_tests", t.tri_tests);
        obs.add("gpusim.traversal.stack_spills", t.stack_spills);

        let p = &self.prediction;
        obs.add("gpusim.predictor.rays", p.rays);
        obs.add("gpusim.predictor.hits", p.hits);
        obs.add("gpusim.predictor.predicted", p.predicted);
        obs.add("gpusim.predictor.verified", p.verified);
        obs.add(
            "gpusim.predictor.predicted_nodes_evaluated",
            p.predicted_nodes_evaluated,
        );
        obs.add(
            "gpusim.predictor.prediction_eval_fetches",
            p.prediction_eval_fetches,
        );

        let m = &self.memory;
        let rt: (u64, u64) = m
            .rt_cache
            .iter()
            .fold((0, 0), |(a, h), s| (a + s.accesses, h + s.hits));
        obs.add("gpusim.cache.rt.access", rt.0);
        obs.add("gpusim.cache.rt.hit", rt.1);
        let l1 = m.l1_combined();
        obs.add("gpusim.cache.l1.access", l1.accesses);
        obs.add("gpusim.cache.l1.hit", l1.hits);
        obs.add("gpusim.cache.l2.access", m.l2.accesses);
        obs.add("gpusim.cache.l2.hit", m.l2.hits);
        for (sm, s) in m.l1.iter().enumerate() {
            obs.add(&format!("gpusim.sm{sm}.cache.l1.access"), s.accesses);
            obs.add(&format!("gpusim.sm{sm}.cache.l1.hit"), s.hits);
        }
        for (sm, s) in m.rt_cache.iter().enumerate() {
            obs.add(&format!("gpusim.sm{sm}.cache.rt.access"), s.accesses);
            obs.add(&format!("gpusim.sm{sm}.cache.rt.hit"), s.hits);
        }
        obs.add("gpusim.dram.access", m.dram.accesses);
        obs.add("gpusim.dram.bank_wait_cycles", m.dram.bank_wait_cycles);

        let a = &self.activity;
        obs.add("gpusim.activity.l1_accesses", a.l1_accesses);
        obs.add("gpusim.activity.l2_accesses", a.l2_accesses);
        obs.add("gpusim.activity.dram_accesses", a.dram_accesses);
        obs.add("gpusim.activity.box_tests", a.box_tests);
        obs.add("gpusim.activity.tri_tests", a.tri_tests);
        obs.add("gpusim.activity.predictor_lookups", a.predictor_lookups);
        obs.add("gpusim.activity.predictor_updates", a.predictor_updates);
        obs.add("gpusim.activity.ray_buffer_accesses", a.ray_buffer_accesses);
        obs.add("gpusim.activity.stack_ops", a.stack_ops);
        obs.add("gpusim.activity.collector_ops", a.collector_ops);
        obs.add("gpusim.activity.mshr_merges", a.mshr_merges);

        obs.add("gpusim.warp.executed", self.warps_executed);
        obs.add("gpusim.warp.repacked", self.repacked_warps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_and_speedup() {
        let fast = SimReport {
            cycles: 500,
            completed_rays: 1000,
            ..Default::default()
        };
        let slow = SimReport {
            cycles: 1000,
            completed_rays: 1000,
            ..Default::default()
        };
        assert!((fast.rays_per_cycle() - 2.0).abs() < 1e-12);
        assert!((fast.speedup_over(&slow) - 2.0).abs() < 1e-12);
        assert!((fast.rays_per_second(1000.0) - 2e9).abs() < 1.0);
    }

    #[test]
    fn zero_cycles_is_safe() {
        let r = SimReport::default();
        assert_eq!(r.rays_per_cycle(), 0.0);
        assert_eq!(r.speedup_over(&r), 0.0);
    }
}
