//! Simulation reports and activity counts.

use crate::MemoryStats;
use rip_bvh::TraversalStats;
use rip_core::PredictionStats;

/// Event counts consumed by the energy model (`rip-energy`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ActivityCounts {
    /// L1 (and RT cache) accesses.
    pub l1_accesses: u64,
    /// L2 accesses.
    pub l2_accesses: u64,
    /// DRAM accesses.
    pub dram_accesses: u64,
    /// Ray-box intersection tests.
    pub box_tests: u64,
    /// Ray-triangle intersection tests.
    pub tri_tests: u64,
    /// Predictor table lookups.
    pub predictor_lookups: u64,
    /// Predictor table updates.
    pub predictor_updates: u64,
    /// Ray buffer reads/writes (ray data in/out, node broadcasts).
    pub ray_buffer_accesses: u64,
    /// Traversal stack pushes/pops.
    pub stack_ops: u64,
    /// Partial warp collector insertions/drains.
    pub collector_ops: u64,
    /// Requests merged into an outstanding fill (MSHR hits).
    pub mshr_merges: u64,
}

/// Result of one timing-simulation run.
#[derive(Clone, Debug, Default)]
pub struct SimReport {
    /// Total execution time in core cycles (max over SMs).
    pub cycles: u64,
    /// Rays retired.
    pub completed_rays: u64,
    /// Rays whose final result was an intersection.
    pub hits: u64,
    /// Traversal work summed over all rays.
    pub traversal: TraversalStats,
    /// Prediction outcomes (zeroed for baseline runs).
    pub prediction: PredictionStats,
    /// Memory system statistics.
    pub memory: MemoryStats,
    /// Activity counts for the energy model.
    pub activity: ActivityCounts,
    /// Warps executed (original + repacked).
    pub warps_executed: u64,
    /// Repacked warps formed by the collector.
    pub repacked_warps: u64,
}

impl SimReport {
    /// Rays per cycle (throughput).
    pub fn rays_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.completed_rays as f64 / self.cycles as f64
        }
    }

    /// Rays per second at a core clock in MHz (Table 2: 1365 MHz) — the
    /// unit of the Figure 11 correlation.
    pub fn rays_per_second(&self, core_mhz: f64) -> f64 {
        self.rays_per_cycle() * core_mhz * 1e6
    }

    /// Speedup of this run relative to `baseline` (execution-time ratio).
    pub fn speedup_over(&self, baseline: &SimReport) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            baseline.cycles as f64 / self.cycles as f64
        }
    }

    /// Total memory accesses issued to the hierarchy.
    pub fn memory_accesses(&self) -> u64 {
        self.activity.l1_accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_and_speedup() {
        let fast = SimReport {
            cycles: 500,
            completed_rays: 1000,
            ..Default::default()
        };
        let slow = SimReport {
            cycles: 1000,
            completed_rays: 1000,
            ..Default::default()
        };
        assert!((fast.rays_per_cycle() - 2.0).abs() < 1e-12);
        assert!((fast.speedup_over(&slow) - 2.0).abs() < 1e-12);
        assert!((fast.rays_per_second(1000.0) - 2e9).abs() < 1.0);
    }

    #[test]
    fn zero_cycles_is_safe() {
        let r = SimReport::default();
        assert_eq!(r.rays_per_cycle(), 0.0);
        assert_eq!(r.speedup_over(&r), 0.0);
    }
}
