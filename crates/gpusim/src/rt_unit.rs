//! RT-unit state: per-ray work items, warps and per-SM state (Figure 10).

use crate::PartialWarpCollector;
use rip_bvh::ript::{RayTraceSet, ReplayCursor};
use rip_bvh::{Bvh, Hit, NodeId, StepEvent, Traversal, TraversalKind, TraversalStats};
use rip_core::{Prediction, Predictor};
use rip_math::Ray;
use std::collections::VecDeque;
use std::sync::Arc;

/// Which leg of the §3 flow a ray is executing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RayPhase {
    /// Waiting for its predictor table lookup.
    AwaitingLookup,
    /// Verifying a prediction (traversing from predicted nodes).
    Predicted,
    /// Full traversal from the root (baseline, not-predicted, or
    /// misprediction recovery).
    Full,
    /// Retired.
    Done,
}

/// One traversal leg as the RT unit drives it: either a live stepped
/// [`Traversal`] or a [`ReplayCursor`] over a recorded full traversal.
/// Both expose the same request/step/done/hit/stats surface, so the warp
/// machinery is oblivious to which one it is feeding.
///
/// Predicted legs are always [`Live`](TraversalLeg::Live) (they start
/// from predictor-supplied nodes, which no trace records); full legs —
/// the baseline leg, the not-predicted leg and misprediction recovery —
/// are virgin root traversals and replay from the trace when one is
/// attached.
#[derive(Clone, Debug)]
pub(crate) enum TraversalLeg {
    Live(Traversal),
    Replay(ReplayCursor),
}

impl TraversalLeg {
    pub fn current_request(&self) -> Option<NodeId> {
        match self {
            TraversalLeg::Live(t) => t.current_request(),
            TraversalLeg::Replay(c) => c.current_request(),
        }
    }

    pub fn step(&mut self, bvh: &Bvh, ray: &Ray) -> StepEvent {
        match self {
            TraversalLeg::Live(t) => t.step(bvh, ray),
            TraversalLeg::Replay(c) => c.step(bvh),
        }
    }

    pub fn is_done(&self) -> bool {
        match self {
            TraversalLeg::Live(t) => t.is_done(),
            TraversalLeg::Replay(c) => c.is_done(),
        }
    }

    pub fn best_hit(&self) -> Option<Hit> {
        match self {
            TraversalLeg::Live(t) => t.best_hit(),
            TraversalLeg::Replay(c) => c.best_hit(),
        }
    }

    pub fn stats(&self) -> TraversalStats {
        match self {
            TraversalLeg::Live(t) => t.stats(),
            TraversalLeg::Replay(c) => c.stats(),
        }
    }
}

/// Per-ray bookkeeping inside the RT unit (one ray buffer slot).
#[derive(Clone, Debug)]
pub(crate) struct RayWork {
    pub ray: Ray,
    pub traversal: TraversalLeg,
    pub phase: RayPhase,
    pub hash: u32,
    /// SM currently servicing this ray.
    pub sm: u32,
    /// Warp slot within the SM (updated on repacking).
    pub slot: u32,
    pub was_predicted: bool,
    pub was_verified: bool,
    pub prediction_k: u32,
    /// Node fetches spent during the Predicted phase (`k·m` term).
    pub prediction_fetches: u64,
    pub hit: Option<Hit>,
    /// Stats of completed traversal legs (accumulated at leg boundaries).
    pub finished_stats: TraversalStats,
    /// Recorded trace backing this ray's full legs (replay mode), with
    /// the ray's index into the set.
    pub trace: Option<(Arc<RayTraceSet>, usize)>,
}

impl RayWork {
    /// Creates a ray work item that will start with a full traversal
    /// (baseline) unless a lookup phase intervenes.
    pub fn new(ray: Ray, needs_lookup: bool) -> Self {
        RayWork {
            ray,
            traversal: TraversalLeg::Live(Traversal::new(TraversalKind::AnyHit)),
            phase: if needs_lookup {
                RayPhase::AwaitingLookup
            } else {
                RayPhase::Full
            },
            hash: 0,
            sm: 0,
            slot: 0,
            was_predicted: false,
            was_verified: false,
            prediction_k: 0,
            prediction_fetches: 0,
            hit: None,
            finished_stats: TraversalStats::default(),
            trace: None,
        }
    }

    /// Backs this ray's full legs with a recorded trace. Replaces the
    /// current leg when it is an (unstarted) full traversal.
    pub fn attach_trace(&mut self, set: Arc<RayTraceSet>, index: usize) {
        self.trace = Some((set, index));
        if self.phase == RayPhase::Full {
            self.traversal = self.fresh_full_leg();
        }
    }

    /// A virgin full-traversal leg: a replay cursor when a trace is
    /// attached, a live root traversal otherwise.
    pub fn fresh_full_leg(&self) -> TraversalLeg {
        match &self.trace {
            Some((set, index)) => TraversalLeg::Replay(ReplayCursor::new(Arc::clone(set), *index)),
            None => TraversalLeg::Live(Traversal::new(TraversalKind::AnyHit)),
        }
    }

    /// Applies a lookup result, transitioning into Predicted or Full.
    pub fn apply_lookup(&mut self, hash: u32, prediction: Option<Prediction>) {
        debug_assert_eq!(self.phase, RayPhase::AwaitingLookup);
        self.hash = hash;
        match prediction {
            Some(pred) => {
                self.was_predicted = true;
                self.prediction_k = pred.nodes.len() as u32;
                self.traversal =
                    TraversalLeg::Live(Traversal::from_nodes(TraversalKind::AnyHit, &pred.nodes));
                self.phase = RayPhase::Predicted;
            }
            None => {
                self.traversal = self.fresh_full_leg();
                self.phase = RayPhase::Full;
            }
        }
    }

    /// Whether the ray still needs RT-unit service.
    pub fn is_active(&self) -> bool {
        self.phase != RayPhase::Done
    }
}

/// One resident warp of the RT unit. Rays progress independently (the RT
/// unit is a variable-latency unit with per-ray status, §5.1.1); the warp
/// gates dispatch and completion.
#[derive(Clone, Debug)]
pub(crate) struct WarpState {
    /// Ray IDs (indices into the simulator's global ray array).
    pub rays: Vec<u32>,
    /// Rays not yet retired (warp completes at zero).
    pub active: u32,
    /// Whether this warp was formed by the partial warp collector.
    pub repacked: bool,
}

/// Per-SM state: warp slots, pending work, predictor, collector.
#[derive(Debug)]
pub(crate) struct SmState {
    /// Active warp slots (base + extra-repack capacity).
    pub slots: Vec<Option<WarpState>>,
    /// Warps not yet dispatched (original, non-repacked).
    pub pending: VecDeque<Vec<u32>>,
    /// Per-SM predictor (None for the baseline RT unit).
    pub predictor: Option<Predictor>,
    /// Partial warp collector (repacking configurations only).
    pub collector: Option<PartialWarpCollector>,
    /// Next cycle the SM's L1 port is free (one request per cycle).
    pub issue_free_at: u64,
    /// Base warp limit (slots beyond this are reserved for repacked warps).
    pub base_warp_limit: usize,
}

impl SmState {
    /// Active warps currently resident.
    pub fn active_warps(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Finds a free slot for a normal warp (respecting the base limit) or
    /// a repacked warp (any slot).
    pub fn free_slot(&self, repacked: bool) -> Option<usize> {
        let limit = if repacked {
            self.slots.len()
        } else {
            self.base_warp_limit
        };
        let active = self.active_warps();
        if active >= limit {
            return None;
        }
        self.slots.iter().position(|s| s.is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_math::Vec3;

    #[test]
    fn ray_work_lookup_transitions() {
        let ray = Ray::new(Vec3::ZERO, Vec3::Z);
        let mut w = RayWork::new(ray, true);
        assert_eq!(w.phase, RayPhase::AwaitingLookup);
        w.apply_lookup(7, None);
        assert_eq!(w.phase, RayPhase::Full);
        assert!(!w.was_predicted);

        let mut p = RayWork::new(ray, true);
        p.apply_lookup(
            7,
            Some(Prediction {
                hash: 7,
                nodes: vec![rip_bvh::NodeId::ROOT].into(),
            }),
        );
        assert_eq!(p.phase, RayPhase::Predicted);
        assert!(p.was_predicted);
        assert_eq!(p.prediction_k, 1);
    }

    #[test]
    fn baseline_rays_skip_lookup() {
        let w = RayWork::new(Ray::new(Vec3::ZERO, Vec3::Z), false);
        assert_eq!(w.phase, RayPhase::Full);
        assert!(w.is_active());
    }

    #[test]
    fn sm_slot_accounting_respects_base_limit() {
        let sm = SmState {
            slots: vec![None, None, None],
            pending: VecDeque::new(),
            predictor: None,
            collector: None,
            issue_free_at: 0,
            base_warp_limit: 2,
        };
        assert_eq!(sm.free_slot(false), Some(0));
        assert_eq!(sm.free_slot(true), Some(0));
        let mut sm2 = sm;
        sm2.slots[0] = Some(WarpState {
            rays: vec![],
            active: 0,
            repacked: false,
        });
        sm2.slots[1] = Some(WarpState {
            rays: vec![],
            active: 0,
            repacked: false,
        });
        assert_eq!(sm2.free_slot(false), None, "base limit reached");
        assert_eq!(
            sm2.free_slot(true),
            Some(2),
            "extra slot open to repacked warps"
        );
    }
}
