//! The discrete-event timing engine.
//!
//! Warps execute in SIMT lockstep through the RT unit: each iteration the
//! memory scheduler issues the next node request of every still-active ray
//! in the selected warp "in thread order" (§5.1.2), identical in-flight
//! lines are merged MSHR-style (sharing one fill without a second DRAM
//! trip), and the warp advances once the slowest request returns and the
//! pipelined intersection units finish. A warp therefore takes as long as
//! its slowest thread (§4.4) — the divergence that warp repacking removes.
//!
//! # Parallel per-SM epochs
//!
//! SMs couple only through the shared L2 and DRAM, so each SM runs as its
//! own discrete-event engine ([`SmEngine`]) and the simulation advances in
//! **epochs** of [`GpuConfig::epoch_cycles`]: within an epoch every SM
//! processes its private event heap against (a) its live private RT/L1
//! caches and (b) an epoch-frozen snapshot of the shared L2 (read with the
//! non-mutating [`Cache::probe`]) plus a private clone of the DRAM bank
//! timeline. Every request that misses the private levels is appended to a
//! per-SM log; at the epoch barrier the logs are merged in the canonical
//! `(issue time, SM id, sequence)` order and replayed through the
//! authoritative shared L2/DRAM, which alone own the shared-level
//! statistics and the bank timeline seen by the next epoch.
//!
//! Because each SM's epoch depends only on its own state and the frozen
//! snapshot, and the barrier merge is a deterministic function of the
//! per-SM logs, the report is **byte-identical at any `--jobs` count**
//! (the serial path runs the exact same code). The epoch length is a
//! timing-model parameter like any cache latency: it bounds how stale a
//! remote SM's L2 fills and bank pressure may be within an epoch, but it
//! never affects determinism or functional results.
//!
//! # Trace replay
//!
//! With [`Simulator::with_trace`], full-traversal legs (the baseline leg,
//! not-predicted rays, and misprediction recovery — all virgin root
//! traversals) are fed from a recorded [`RayTraceSet`] instead of stepping
//! the BVH, byte-identical to the live run; predicted legs (the `k·m`
//! verification work) still run live because they start from
//! predictor-supplied nodes that no trace records.

use crate::rt_unit::{RayPhase, RayWork, SmState, WarpState};
use crate::{
    ActivityCounts, Cache, Dram, GpuConfig, LatencyConfig, MemoryStats, PartialWarpCollector,
    SimReport,
};
use rip_bvh::ript::RayTraceSet;
use rip_bvh::{Bvh, RayBatch, StepEvent, TraversalKind};
use rip_core::Predictor;
use rip_exec::JobPool;
use rip_math::Ray;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::sync::{Arc, Mutex};

/// Event kinds, ordered inside the heap tuple after time.
const EV_WARP_ITER: u8 = 0;
const EV_WARP_LOOKUP: u8 = 1;
const EV_COLLECTOR: u8 = 2;

/// The cycle-level simulator (§5.1, Figure 10).
///
/// One [`Simulator::run`] call traces a full occlusion workload through the
/// configured GPU and returns cycle counts, memory statistics, prediction
/// outcomes and energy activity counts. Speedups are computed by running a
/// baseline configuration and a predictor configuration over the same rays
/// and dividing cycles.
///
/// # Examples
///
/// ```
/// use rip_bvh::Bvh;
/// use rip_gpusim::{GpuConfig, Simulator};
/// use rip_math::{Ray, Triangle, Vec3};
///
/// let bvh = Bvh::build(&[Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y)]);
/// let rays: Vec<Ray> = (0..96).map(|i| {
///     Ray::new(Vec3::new(0.2 + (i % 3) as f32 * 0.1, 0.2, -1.0), Vec3::Z)
/// }).collect();
/// let baseline = Simulator::new(GpuConfig::baseline()).run(&bvh, &rays);
/// let predicted = Simulator::new(GpuConfig::with_predictor()).run(&bvh, &rays);
/// assert_eq!(baseline.completed_rays, predicted.completed_rays);
/// ```
#[derive(Clone, Debug)]
pub struct Simulator {
    config: GpuConfig,
    obs: std::sync::Arc<rip_obs::Obs>,
    jobs: usize,
    trace: Option<Arc<RayTraceSet>>,
}

impl Simulator {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid.
    pub fn new(config: GpuConfig) -> Self {
        config.validate().expect("invalid GPU configuration");
        Simulator {
            config,
            obs: std::sync::Arc::clone(rip_obs::Obs::global()),
            jobs: 1,
            trace: None,
        }
    }

    /// Routes this simulator's `gpusim.*` counters and run spans to
    /// `obs` instead of the process-wide default instance.
    pub fn with_obs(mut self, obs: std::sync::Arc<rip_obs::Obs>) -> Self {
        self.obs = obs;
        self
    }

    /// Steps SMs in parallel across up to `jobs` worker threads (drawn
    /// from the `rip-exec` process-wide budget). The report is
    /// byte-identical at any job count; `1` (the default) runs the same
    /// epoch machinery inline.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Replays recorded full traversals instead of stepping the BVH.
    ///
    /// The trace must have been captured with
    /// [`RayTraceSet::capture`] for **any-hit** over exactly the workload
    /// later passed to [`Simulator::run`] / [`Simulator::run_batch`]; a
    /// mismatched trace (wrong BVH, rays or kind) is rejected at run time
    /// — the run falls back to live traversal and increments
    /// `gpusim.trace.rejected`.
    pub fn with_trace(mut self, trace: Arc<RayTraceSet>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// The configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Simulates an occlusion (any-hit) workload to completion.
    ///
    /// Every [`SimReport`] field is mirrored into the attached
    /// [`Obs`](rip_obs::Obs) registry under `gpusim.*`
    /// ([`SimReport::mirror_into`]); the run is wrapped in a
    /// `gpusim`/`run` span when tracing is enabled.
    pub fn run(&self, bvh: &Bvh, rays: &[Ray]) -> SimReport {
        self.run_batch(bvh, &RayBatch::from_rays(rays))
    }

    /// Simulates an occlusion workload supplied as an SoA ray batch — the
    /// RT unit consumes the stream in batch order, so `run_batch(bvh,
    /// &RayBatch::from_rays(rays))` is identical to `run(bvh, rays)`.
    pub fn run_batch(&self, bvh: &Bvh, batch: &RayBatch) -> SimReport {
        let trace = self.validated_trace(bvh, batch);
        self.observe(batch.len() as u64, || {
            Engine::new(&self.config, bvh, batch.iter(), trace, self.jobs).run()
        })
    }

    /// Cross-checks the attached trace against the live workload; a
    /// mismatch is counted and the run proceeds live.
    fn validated_trace(&self, bvh: &Bvh, batch: &RayBatch) -> Option<Arc<RayTraceSet>> {
        let set = self.trace.as_ref()?;
        let problem = if set.kind() != TraversalKind::AnyHit {
            Some("closest-hit trace on an occlusion workload".to_string())
        } else {
            set.attach(bvh, batch).err()
        };
        match problem {
            None => Some(Arc::clone(set)),
            Some(_) => {
                self.obs.add("gpusim.trace.rejected", 1);
                None
            }
        }
    }

    fn observe(&self, rays: u64, run: impl FnOnce() -> SimReport) -> SimReport {
        let mut span = self.obs.span("gpusim", "run").arg_u64("rays", rays);
        let report = run();
        span.push_arg(
            "predictor",
            if self.config.predictor.is_some() {
                "on"
            } else {
                "off"
            },
        );
        drop(span);
        report.mirror_into(&self.obs);
        report
    }
}

/// One shared-level request logged during an epoch: issue time, per-SM
/// sequence number, byte address.
type LoggedRequest = (u64, u32, u64);

/// The authoritative shared memory levels, mutated only at epoch
/// barriers on the coordinating thread.
struct SharedMemory {
    l2: Cache,
    dram: Dram,
    latency: LatencyConfig,
}

impl SharedMemory {
    /// Replays one epoch's merged request log in canonical order. The
    /// shared-level statistics and the DRAM bank timeline the next epoch
    /// snapshots are produced here and only here, so they are identical
    /// no matter how many threads stepped the SMs.
    fn replay(&mut self, mut log: Vec<(u64, usize, u32, u64)>) {
        log.sort_unstable_by_key(|&(t, sm, seq, _)| (t, sm, seq));
        for (t_issue, _, _, addr) in log {
            if !self.l2.access(addr) {
                let l2_miss_time = t_issue + self.latency.l1_hit + self.latency.l2_hit;
                self.dram.access(addr, l2_miss_time);
            }
        }
    }
}

/// One SM's private discrete-event engine: its rays, warp slots,
/// predictor, collector, MSHR, RT/L1 caches and event heap.
struct SmEngine<'a> {
    sm_id: usize,
    config: &'a GpuConfig,
    bvh: &'a Bvh,
    /// Rays owned by this SM, keyed by global ray id (warps never
    /// migrate between SMs).
    rays: HashMap<u32, RayWork>,
    sm: SmState,
    /// Repacked warps awaiting a free slot.
    repacked_queue: VecDeque<Vec<u32>>,
    /// Pending collector-timeout event (time it was scheduled for).
    collector_event: Option<u64>,
    /// MSHR: line address → in-flight fill completion time.
    mshr: HashMap<u64, u64>,
    rt_cache: Option<Cache>,
    l1: Cache,
    /// Lines this SM filled into the (frozen) shared L2 this epoch —
    /// treated as L2 hits by the local latency view, matching what the
    /// barrier replay will install.
    epoch_lines: HashSet<u64>,
    /// Local DRAM bank-timeline view, re-seeded from the authoritative
    /// state at each barrier; its statistics are discarded.
    local_dram: Dram,
    /// Shared-level requests issued this epoch, in issue order.
    shared_log: Vec<LoggedRequest>,
    /// Monotonic per-SM request sequence (merge tie-breaker).
    seq: u32,
    /// (time, kind, payload): payload = slot index (or 0).
    events: BinaryHeap<Reverse<(u64, u8, u32)>>,
    /// Per-SM partial report; shared-level fields are filled at merge.
    report: SimReport,
}

impl<'a> SmEngine<'a> {
    fn new(sm_id: usize, config: &'a GpuConfig, bvh: &'a Bvh) -> Self {
        let total_slots = config.max_warps_per_rt + config.repack.extra_warps() as usize;
        SmEngine {
            sm_id,
            config,
            bvh,
            rays: HashMap::new(),
            sm: SmState {
                slots: (0..total_slots).map(|_| None).collect(),
                pending: VecDeque::new(),
                predictor: config.predictor.map(|pc| Predictor::new(pc, bvh.bounds())),
                collector: config.repack.repacks().then(|| {
                    PartialWarpCollector::new(
                        config.collector_capacity,
                        config.warp_size,
                        config.collector_timeout,
                    )
                }),
                issue_free_at: 0,
                base_warp_limit: config.max_warps_per_rt,
            },
            repacked_queue: VecDeque::new(),
            collector_event: None,
            mshr: HashMap::new(),
            rt_cache: config.rt_cache.map(Cache::new),
            l1: Cache::new(config.l1),
            epoch_lines: HashSet::new(),
            local_dram: Dram::new(config.dram),
            shared_log: Vec::new(),
            seq: 0,
            events: BinaryHeap::new(),
            report: SimReport::default(),
        }
    }

    /// Dispatches the initial warp list (excess warps queue as pending).
    fn seed(&mut self, warps: VecDeque<Vec<u32>>) {
        for ids in warps {
            self.dispatch(ids, false, 0);
        }
    }

    /// Time of this SM's next event, if any.
    fn peek_time(&self) -> Option<u64> {
        self.events.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Processes every event strictly before `epoch_end` against the
    /// frozen `shared` snapshot; returns the epoch's shared-request log.
    fn run_epoch(&mut self, epoch_end: u64, shared: &SharedMemory) -> Vec<LoggedRequest> {
        self.local_dram = shared.dram.clone();
        self.epoch_lines.clear();
        while let Some(&Reverse((t, _, _))) = self.events.peek() {
            if t >= epoch_end {
                break;
            }
            let Reverse((now, kind, payload)) = self.events.pop().expect("peeked event");
            match kind {
                EV_WARP_ITER => self.warp_iteration(payload as usize, now, shared),
                EV_WARP_LOOKUP => self.lookup_phase(payload as usize, now),
                EV_COLLECTOR => self.collector_tick(now),
                _ => unreachable!("unknown event kind"),
            }
        }
        std::mem::take(&mut self.shared_log)
    }

    /// Places a warp into a slot (or queues it) and schedules its first
    /// event.
    fn dispatch(&mut self, ray_ids: Vec<u32>, repacked: bool, now: u64) {
        let Some(slot) = self.sm.free_slot(repacked) else {
            if repacked {
                self.repacked_queue.push_back(ray_ids);
            } else {
                self.sm.pending.push_back(ray_ids);
            }
            return;
        };
        let start = now + self.config.latency.queue;
        for &rid in &ray_ids {
            let rw = self.rays.get_mut(&rid).expect("dispatched ray owned by SM");
            rw.sm = self.sm_id as u32;
            rw.slot = slot as u32;
        }
        let needs_lookup = self.config.predictor.is_some() && !repacked;
        self.sm.slots[slot] = Some(WarpState {
            active: ray_ids.len() as u32,
            rays: ray_ids,
            repacked,
        });
        let kind = if needs_lookup {
            EV_WARP_LOOKUP
        } else {
            EV_WARP_ITER
        };
        self.events.push(Reverse((start, kind, slot as u32)));
    }

    /// Handles a collector-timeout event.
    fn collector_tick(&mut self, now: u64) {
        if self.collector_event != Some(now) {
            return; // stale event
        }
        self.collector_event = None;
        let Some(collector) = self.sm.collector.as_mut() else {
            return;
        };
        if let Some(warp) = collector.take_ready(now) {
            self.report.activity.collector_ops += warp.len() as u64;
            self.dispatch(warp, true, now);
        }
        self.ensure_collector_event(now);
    }

    /// Guarantees a timeout event is pending whenever the collector holds
    /// rays.
    fn ensure_collector_event(&mut self, now: u64) {
        if self.collector_event.is_some() {
            return;
        }
        if let Some(deadline) = self.sm.collector.as_ref().and_then(|c| c.deadline()) {
            let at = deadline.max(now + 1);
            self.collector_event = Some(at);
            self.events.push(Reverse((at, EV_COLLECTOR, 0)));
        }
    }

    /// All rays of a freshly dispatched warp perform their predictor table
    /// lookup through the ported lookup queue (§4.1), then repack (§4.4).
    fn lookup_phase(&mut self, slot: usize, now: u64) {
        let warp_rays = self.sm.slots[slot]
            .as_ref()
            .expect("warp present")
            .rays
            .clone();
        let ports = self.config.predictor_unit.ports;
        let ready = now
            + (warp_rays.len() as u64).div_ceil(ports)
            + self.config.predictor_unit.access_latency;

        let mut remaining = Vec::with_capacity(warp_rays.len());
        let mut predicted = Vec::new();
        {
            let predictor = self
                .sm
                .predictor
                .as_mut()
                .expect("lookup phase requires predictor");
            for &rid in &warp_rays {
                let rw = self.rays.get_mut(&rid).expect("warp ray owned by SM");
                predictor.begin_ray();
                let hash = predictor.hash_ray(&rw.ray);
                let pred = predictor.lookup(&rw.ray);
                self.report.activity.predictor_lookups += 1;
                rw.apply_lookup(hash, pred);
                if rw.was_predicted {
                    predicted.push(rid);
                } else {
                    remaining.push(rid);
                }
            }
        }

        if self.config.repack.repacks() && !predicted.is_empty() {
            // Predicted rays leave for the collector; drain full warps as
            // they form (§4.4.1 overflow handling).
            let removed = predicted.len() as u32;
            let mut formed: Vec<Vec<u32>> = Vec::new();
            {
                let collector = self.sm.collector.as_mut().expect("repack has collector");
                for rid in predicted {
                    if collector.free_slots() == 0 {
                        if let Some(w) = collector.take_ready(ready) {
                            formed.push(w);
                        }
                    }
                    collector.push(rid, ready);
                    self.report.activity.collector_ops += 1;
                }
                while collector.len() >= self.config.warp_size {
                    match collector.take_ready(ready) {
                        Some(w) => formed.push(w),
                        None => break,
                    }
                }
            }
            for w in formed {
                self.report.activity.collector_ops += w.len() as u64;
                self.dispatch(w, true, ready);
            }
            self.ensure_collector_event(ready);

            let warp = self.sm.slots[slot].as_mut().expect("warp present");
            warp.active -= removed;
            warp.rays = remaining.clone();
            if remaining.is_empty() {
                self.retire_warp(slot, ready);
                return;
            }
        }
        // Without repacking, predicted and not-predicted rays stay together
        // (the "Default" configuration of Figure 15).
        self.events
            .push(Reverse((ready, EV_WARP_ITER, slot as u32)));
    }

    /// Issues one line request at `now`, merging with any in-flight fill
    /// to the same line (MSHR, §5.1.2): the merged request shares the
    /// outstanding fill instead of re-accessing DRAM, but still occupies
    /// one memory-scheduler slot ("requested from the L1 cache in thread
    /// order"). Returns the data-ready time.
    fn request_line(&mut self, addr: u64, now: u64, shared: &SharedMemory) -> u64 {
        let t_issue = now.max(self.sm.issue_free_at);
        self.sm.issue_free_at = t_issue + 1;
        self.report.activity.l1_accesses += 1;
        let line = addr / 128;
        if let Some(&fill) = self.mshr.get(&line) {
            if fill > t_issue {
                // Merged into the outstanding fill: no second DRAM trip.
                self.report.activity.mshr_merges += 1;
                return fill;
            }
        }
        let done = self.mem_access(addr, t_issue, shared);
        self.mshr.insert(line, done);
        done
    }

    /// The private-cache cascade: RT cache → L1 live; on an L1 miss the
    /// request is logged for the barrier replay (which owns all
    /// shared-level statistics) and its latency is decided against the
    /// epoch-frozen shared L2 plus this SM's own fills this epoch, with
    /// DRAM timing from the local bank-timeline view.
    fn mem_access(&mut self, addr: u64, now: u64, shared: &SharedMemory) -> u64 {
        let latency = &self.config.latency;
        if let Some(rt) = self.rt_cache.as_mut() {
            if rt.access(addr) {
                return now + latency.l1_hit; // same fast-path latency
            }
        }
        if self.l1.access(addr) {
            return now + latency.l1_hit;
        }
        self.shared_log.push((now, self.seq, addr));
        self.seq += 1;
        let l1_miss_time = now + latency.l1_hit;
        let line = addr / self.config.l2.line_bytes as u64;
        if shared.l2.probe(addr) || self.epoch_lines.contains(&line) {
            return l1_miss_time + latency.l2_hit;
        }
        self.epoch_lines.insert(line);
        let l2_miss_time = l1_miss_time + latency.l2_hit;
        self.local_dram.access(addr, l2_miss_time)
    }

    /// One SIMT warp iteration: issue every active ray's next node
    /// request in thread order, step each ray once the data returns, fetch
    /// leaf triangles, run the pipelined intersection tests, and advance
    /// the warp at the pace of its slowest thread.
    fn warp_iteration(&mut self, slot: usize, now: u64, shared: &SharedMemory) {
        let warp_rays = self.sm.slots[slot]
            .as_ref()
            .expect("warp present")
            .rays
            .clone();
        let layout = *self.bvh.layout();

        // Node request round (thread order, one issue slot each; identical
        // in-flight lines share their fill via the MSHR).
        let mut node_ready: Vec<(u32, u64)> = Vec::with_capacity(warp_rays.len());
        for &rid in &warp_rays {
            let rw = &self.rays[&rid];
            if !rw.is_active() {
                continue;
            }
            let node = rw
                .traversal
                .current_request()
                .expect("active ray must want a node");
            let done = self.request_line(layout.node_address(node), now, shared);
            self.report.activity.ray_buffer_accesses += 1;
            node_ready.push((rid, done));
        }
        if node_ready.is_empty() {
            self.retire_warp(slot, now);
            return;
        }

        // Functional step per ray, collecting leaf triangle fetches.
        let mut data_ready = now;
        let mut retirements: Vec<u32> = Vec::new();
        for (rid, ready) in node_ready {
            data_ready = data_ready.max(ready);
            let mut tri_addrs: Vec<u64> = Vec::new();
            {
                let rw = self.rays.get_mut(&rid).expect("warp ray owned by SM");
                let event = rw.traversal.step(self.bvh, &rw.ray);
                self.report.activity.stack_ops += 2;
                if rw.phase == RayPhase::Predicted {
                    rw.prediction_fetches += 1;
                }
                match &event {
                    StepEvent::Interior { .. } => self.report.activity.box_tests += 2,
                    StepEvent::Leaf { tris_tested, .. } => {
                        self.report.activity.tri_tests += tris_tested.len() as u64;
                        for &t in tris_tested {
                            tri_addrs.push(layout.tri_address(t));
                        }
                    }
                    StepEvent::Finished => {}
                }
                if rw.traversal.is_done() {
                    rw.finished_stats += rw.traversal.stats();
                    match rw.phase {
                        RayPhase::Predicted => {
                            if let Some(hit) = rw.traversal.best_hit() {
                                rw.was_verified = true;
                                rw.hit = Some(hit);
                                rw.phase = RayPhase::Done;
                                retirements.push(rid);
                            } else {
                                // Misprediction: restart from the root (§3).
                                rw.phase = RayPhase::Full;
                                rw.traversal = rw.fresh_full_leg();
                            }
                        }
                        RayPhase::Full => {
                            rw.hit = rw.traversal.best_hit();
                            rw.phase = RayPhase::Done;
                            retirements.push(rid);
                        }
                        RayPhase::AwaitingLookup | RayPhase::Done => unreachable!(),
                    }
                }
            }
            // Leaf triangle records are fetched once the node data arrives.
            tri_addrs.sort_unstable();
            tri_addrs.dedup();
            for addr in tri_addrs {
                data_ready = data_ready.max(self.request_line(addr, ready, shared));
            }
        }

        let next = data_ready + self.config.latency.intersection;
        let mut warp_done = false;
        for rid in retirements {
            if self.retire_ray(rid, next) {
                warp_done = true;
            }
        }
        if !warp_done {
            self.events.push(Reverse((next, EV_WARP_ITER, slot as u32)));
        }
    }

    /// Records a ray's final outcome, trains the predictor and updates the
    /// report; retires the warp (returning `true`) when this was its last
    /// active ray.
    fn retire_ray(&mut self, rid: u32, now: u64) -> bool {
        let rw = self.rays.get_mut(&rid).expect("retiring ray owned by SM");
        self.report.completed_rays += 1;
        self.report.cycles = self.report.cycles.max(now);
        self.report.traversal += rw.finished_stats;
        let hit = rw.hit;
        if hit.is_some() {
            self.report.hits += 1;
        }
        let stats = &mut self.report.prediction;
        stats.rays += 1;
        if hit.is_some() {
            stats.hits += 1;
        }
        if rw.was_predicted {
            stats.predicted += 1;
            stats.predicted_nodes_evaluated += rw.prediction_k as u64;
            stats.prediction_eval_fetches += rw.prediction_fetches;
            if rw.was_verified {
                stats.verified += 1;
            }
        }
        let (hash, verified, slot) = (rw.hash, rw.was_verified, rw.slot as usize);
        if let (Some(predictor), Some(hit)) = (self.sm.predictor.as_mut(), hit) {
            if verified {
                predictor.reward(hash, hit.leaf);
            }
            predictor.train(self.bvh, hash, hit.leaf);
            self.report.activity.predictor_updates += 1;
        }
        // Warp completion bookkeeping.
        let warp = self.sm.slots[slot]
            .as_mut()
            .expect("retiring ray's warp must be resident");
        warp.active -= 1;
        if warp.active == 0 {
            self.retire_warp(slot, now);
            return true;
        }
        false
    }

    /// Frees a warp slot and dispatches queued work.
    fn retire_warp(&mut self, slot: usize, now: u64) {
        let warp = self.sm.slots[slot].take().expect("warp present");
        self.report.warps_executed += 1;
        if warp.repacked {
            self.report.repacked_warps += 1;
        }
        self.report.cycles = self.report.cycles.max(now);
        // Repacked warps may use any slot; normal warps only base slots.
        loop {
            if !self.repacked_queue.is_empty() && self.sm.free_slot(true).is_some() {
                let ids = self.repacked_queue.pop_front().expect("nonempty");
                self.dispatch(ids, true, now);
                continue;
            }
            if !self.sm.pending.is_empty() && self.sm.free_slot(false).is_some() {
                let ids = self.sm.pending.pop_front().expect("nonempty");
                self.dispatch(ids, false, now);
                continue;
            }
            break;
        }
    }
}

/// The epoch coordinator: owns the per-SM engines, the authoritative
/// shared memory, and the worker pool.
struct Engine<'a> {
    config: &'a GpuConfig,
    engines: Vec<Mutex<SmEngine<'a>>>,
    shared: SharedMemory,
    pool: JobPool,
}

impl<'a> Engine<'a> {
    fn new(
        config: &'a GpuConfig,
        bvh: &'a Bvh,
        rays: impl Iterator<Item = Ray>,
        trace: Option<Arc<RayTraceSet>>,
        jobs: usize,
    ) -> Self {
        let needs_lookup = config.predictor.is_some();
        let mut ray_works: Vec<Option<RayWork>> = rays
            .enumerate()
            .map(|(i, r)| {
                let mut rw = RayWork::new(r, needs_lookup);
                if let Some(set) = &trace {
                    rw.attach_trace(Arc::clone(set), i);
                }
                Some(rw)
            })
            .collect();

        let mut engines: Vec<SmEngine<'a>> = (0..config.num_sms)
            .map(|sm_id| SmEngine::new(sm_id, config, bvh))
            .collect();

        // Chunk rays into warps, distribute round-robin over SMs. Warps
        // never migrate, so each SM takes ownership of its rays.
        let mut warp_lists: Vec<VecDeque<Vec<u32>>> = vec![VecDeque::new(); config.num_sms];
        for (w, chunk) in (0..ray_works.len() as u32)
            .collect::<Vec<_>>()
            .chunks(config.warp_size)
            .enumerate()
        {
            let sm_id = w % config.num_sms;
            for &rid in chunk {
                let rw = ray_works[rid as usize].take().expect("ray assigned once");
                engines[sm_id].rays.insert(rid, rw);
            }
            warp_lists[sm_id].push_back(chunk.to_vec());
        }
        for (engine, list) in engines.iter_mut().zip(warp_lists) {
            engine.seed(list);
        }

        Engine {
            config,
            engines: engines.into_iter().map(Mutex::new).collect(),
            shared: SharedMemory {
                l2: Cache::new(config.l2),
                dram: Dram::new(config.dram),
                latency: config.latency,
            },
            pool: JobPool::new(jobs),
        }
    }

    fn run(mut self) -> SimReport {
        let indices: Vec<usize> = (0..self.engines.len()).collect();
        let epoch = self.config.epoch_cycles;
        loop {
            let t_min = self
                .engines
                .iter_mut()
                .filter_map(|e| e.get_mut().expect("sm engine lock").peek_time())
                .min();
            let Some(t_min) = t_min else { break };
            let epoch_end = t_min.saturating_add(epoch);

            let logs: Vec<Vec<LoggedRequest>> = if indices.len() == 1 || self.pool.jobs() == 1 {
                // Serial path: identical code against identical state, so
                // identical results — no threads, no pool overhead.
                let shared = &self.shared;
                self.engines
                    .iter_mut()
                    .map(|e| {
                        e.get_mut()
                            .expect("sm engine lock")
                            .run_epoch(epoch_end, shared)
                    })
                    .collect()
            } else {
                let engines = &self.engines;
                let shared = &self.shared;
                self.pool.map(&indices, |&i| {
                    engines[i]
                        .lock()
                        .expect("sm engine lock")
                        .run_epoch(epoch_end, shared)
                })
            };

            let mut merged: Vec<(u64, usize, u32, u64)> = Vec::new();
            for (sm_id, log) in logs.into_iter().enumerate() {
                merged.extend(log.into_iter().map(|(t, seq, addr)| (t, sm_id, seq, addr)));
            }
            self.shared.replay(merged);
        }

        // Deterministic merge of the per-SM partial reports.
        let mut report = SimReport::default();
        let mut rt_stats = Vec::new();
        let mut l1_stats = Vec::new();
        let mut total_rays = 0usize;
        for engine in self.engines {
            let e = engine.into_inner().expect("sm engine lock");
            let r = e.report;
            report.cycles = report.cycles.max(r.cycles);
            report.completed_rays += r.completed_rays;
            report.hits += r.hits;
            report.traversal += r.traversal;
            report.prediction += r.prediction;
            add_activity(&mut report.activity, &r.activity);
            report.warps_executed += r.warps_executed;
            report.repacked_warps += r.repacked_warps;
            if let Some(rt) = &e.rt_cache {
                rt_stats.push(rt.stats());
            }
            l1_stats.push(e.l1.stats());
            total_rays += e.rays.len();
        }
        debug_assert_eq!(report.completed_rays as usize, total_rays);
        report.memory = MemoryStats {
            rt_cache: rt_stats,
            l1: l1_stats,
            l2: self.shared.l2.stats(),
            dram: self.shared.dram.stats().clone(),
        };
        report.activity.l2_accesses = report.memory.l2.accesses;
        report.activity.dram_accesses = report.memory.dram.accesses;
        report
    }
}

/// Field-wise accumulation of per-SM activity counts (the shared-level
/// `l2_accesses`/`dram_accesses` are zero per SM and filled at merge).
fn add_activity(total: &mut ActivityCounts, part: &ActivityCounts) {
    total.l1_accesses += part.l1_accesses;
    total.l2_accesses += part.l2_accesses;
    total.dram_accesses += part.dram_accesses;
    total.box_tests += part.box_tests;
    total.tri_tests += part.tri_tests;
    total.predictor_lookups += part.predictor_lookups;
    total.predictor_updates += part.predictor_updates;
    total.ray_buffer_accesses += part.ray_buffer_accesses;
    total.stack_ops += part.stack_ops;
    total.collector_ops += part.collector_ops;
    total.mshr_merges += part.mshr_merges;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RepackMode;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use rip_math::{Triangle, Vec3};

    /// An open scene: floor tiles plus scattered occluder boxes, so a
    /// realistic fraction of AO rays miss (as in the paper's workloads).
    fn occluder_bvh() -> Bvh {
        let mut tris = Vec::new();
        for i in 0..16 {
            for j in 0..16 {
                let o = Vec3::new(i as f32, 0.0, j as f32);
                tris.push(Triangle::new(o, o + Vec3::X, o + Vec3::Z));
                tris.push(Triangle::new(
                    o + Vec3::X,
                    o + Vec3::X + Vec3::Z,
                    o + Vec3::Z,
                ));
            }
        }
        // A porous "ceiling" at y = 2: ~3/4 of cells carry a tile, the rest
        // are sky holes, so upward AO rays mostly hit but some escape.
        for i in 0..16 {
            for j in 0..16 {
                if (i * 7 + j * 5) % 4 == 0 {
                    continue; // hole
                }
                let o = Vec3::new(i as f32, 2.0, j as f32);
                tris.push(Triangle::new(o, o + Vec3::X, o + Vec3::Z));
                tris.push(Triangle::new(
                    o + Vec3::X,
                    o + Vec3::X + Vec3::Z,
                    o + Vec3::Z,
                ));
            }
        }
        Bvh::build(&tris)
    }

    /// Dense AO-like rays over a small patch so the predictor trains (the
    /// paper reaches hash-space density with 4.2M rays; tests shrink the
    /// sampled region instead).
    fn ao_rays(n: usize, seed: u64) -> Vec<Ray> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut rays = Vec::with_capacity(n);
        while rays.len() < n {
            let o = Vec3::new(
                rng.gen_range(4.0..6.0),
                rng.gen_range(0.1..0.3),
                rng.gen_range(4.0..6.0),
            );
            for _ in 0..4 {
                // Upward hemisphere: some rays hit occluders, some escape.
                let d = rip_math::sampling::cosine_hemisphere_around(Vec3::Y, rng.gen(), rng.gen());
                rays.push(Ray::segment(o, d, 8.0));
                if rays.len() == n {
                    break;
                }
            }
        }
        rays
    }

    #[test]
    fn all_rays_complete_and_hits_match_functional() {
        let bvh = occluder_bvh();
        let rays = ao_rays(512, 3);
        let report = Simulator::new(GpuConfig::baseline()).run(&bvh, &rays);
        assert_eq!(report.completed_rays, 512);
        let functional_hits = rays
            .iter()
            .filter(|r| bvh.intersect(r, TraversalKind::AnyHit).hit.is_some())
            .count() as u64;
        assert_eq!(
            report.hits, functional_hits,
            "timing sim must be functionally exact"
        );
        assert!(report.cycles > 0);
    }

    #[test]
    fn predictor_reduces_node_fetches_on_dense_ao() {
        let bvh = occluder_bvh();
        let rays = ao_rays(4096, 5);
        let base = Simulator::new(GpuConfig::baseline()).run(&bvh, &rays);
        let pred = Simulator::new(GpuConfig::with_predictor()).run(&bvh, &rays);
        assert_eq!(pred.completed_rays, base.completed_rays);
        assert_eq!(
            pred.hits, base.hits,
            "prediction must not change visibility results"
        );
        assert!(
            pred.prediction.verified_rate() > 0.1,
            "v = {}",
            pred.prediction.verified_rate()
        );
        assert!(
            pred.traversal.node_fetches() < base.traversal.node_fetches(),
            "predictor should skip node fetches: {} vs {}",
            pred.traversal.node_fetches(),
            base.traversal.node_fetches()
        );
        assert!(pred.repacked_warps > 0, "repacking should form warps");
    }

    #[test]
    fn repacking_does_not_regress_cycles() {
        let bvh = occluder_bvh();
        let rays = ao_rays(4096, 7);
        let mut no_repack_cfg = GpuConfig::with_predictor();
        no_repack_cfg.repack = RepackMode::Off;
        let no_repack = Simulator::new(no_repack_cfg).run(&bvh, &rays);
        let repack = Simulator::new(GpuConfig::with_predictor()).run(&bvh, &rays);
        assert_eq!(no_repack.repacked_warps, 0);
        assert!(
            repack.cycles <= no_repack.cycles * 11 / 10,
            "repacking should not lose badly: {} vs {}",
            repack.cycles,
            no_repack.cycles
        );
    }

    #[test]
    fn bigger_l1_is_not_slower() {
        let bvh = occluder_bvh();
        let rays = ao_rays(2048, 9);
        let small = {
            let mut c = GpuConfig::baseline();
            c.l1 = c.l1.with_size(2 * 1024);
            Simulator::new(c).run(&bvh, &rays)
        };
        let big = Simulator::new(GpuConfig::baseline()).run(&bvh, &rays);
        assert!(
            big.cycles <= small.cycles,
            "64KB L1 ({}) vs 2KB L1 ({})",
            big.cycles,
            small.cycles
        );
        assert!(big.memory.l1_combined().hit_rate() >= small.memory.l1_combined().hit_rate());
    }

    #[test]
    fn higher_intersection_latency_slows_execution() {
        let bvh = occluder_bvh();
        let rays = ao_rays(1024, 11);
        let fast = Simulator::new(GpuConfig::baseline()).run(&bvh, &rays);
        // The AO workload is memory-bound, so a small bump disappears into
        // bank-scheduling noise; 200 cycles per test puts the intersection
        // pipe firmly on the critical path.
        let slow = {
            let mut c = GpuConfig::baseline();
            c.latency.intersection = 200;
            Simulator::new(c).run(&bvh, &rays)
        };
        assert!(
            slow.cycles > fast.cycles,
            "slow {} vs fast {}",
            slow.cycles,
            fast.cycles
        );
    }

    #[test]
    fn single_sm_handles_everything() {
        let bvh = occluder_bvh();
        let rays = ao_rays(300, 13);
        let mut c = GpuConfig::baseline();
        c.num_sms = 1;
        let report = Simulator::new(c).run(&bvh, &rays);
        assert_eq!(report.completed_rays, 300);
    }

    #[test]
    fn extra_warps_mode_completes_and_tracks_warps() {
        let bvh = occluder_bvh();
        let rays = ao_rays(2048, 17);
        let mut c = GpuConfig::with_predictor();
        c.repack = RepackMode::WithExtraWarps(4);
        let report = Simulator::new(c).run(&bvh, &rays);
        assert_eq!(report.completed_rays, 2048);
        assert!(report.warps_executed >= (2048 / 32) as u64);
    }

    #[test]
    fn activity_counts_are_consistent() {
        let bvh = occluder_bvh();
        let rays = ao_rays(512, 19);
        let report = Simulator::new(GpuConfig::with_predictor()).run(&bvh, &rays);
        assert_eq!(report.activity.predictor_lookups, 512);
        assert!(report.activity.l1_accesses > 0);
        assert!(report.activity.box_tests > 0);
        assert!(report.activity.tri_tests > 0);
        assert_eq!(report.activity.l2_accesses, report.memory.l2.accesses);
        // MSHR merging means issued L1 requests never exceed total node+tri
        // fetches.
        assert!(
            report.activity.l1_accesses
                <= report.traversal.node_fetches() + report.traversal.tri_fetches
        );
    }

    #[test]
    fn mshr_merges_in_flight_duplicate_lines() {
        // 64 identical rays dispatched together: the root-node requests
        // must largely merge while the first fill is in flight.
        let bvh = occluder_bvh();
        let rays = vec![Ray::new(Vec3::new(5.0, 0.2, 5.0), Vec3::Y); 64];
        let report = Simulator::new(GpuConfig::baseline()).run(&bvh, &rays);
        assert!(
            report.activity.mshr_merges > 0,
            "identical in-flight lines must merge: {:?}",
            report.activity
        );
        // Merged fills never re-access DRAM: far fewer memory-side
        // transactions than issued requests.
        assert!(report.memory.l2.accesses < report.activity.l1_accesses);
    }

    /// Every field that `SimReport` mirrors, flattened for byte-for-byte
    /// comparison across job counts and live/replay paths.
    fn fingerprint(r: &SimReport) -> String {
        format!("{r:?}")
    }

    #[test]
    fn reports_are_identical_at_any_job_count() {
        let bvh = occluder_bvh();
        let rays = ao_rays(2048, 23);
        let mut c = GpuConfig::with_predictor();
        c.num_sms = 4;
        let serial = Simulator::new(c.clone()).run(&bvh, &rays);
        for jobs in [2, 4, 8] {
            let parallel = Simulator::new(c.clone()).with_jobs(jobs).run(&bvh, &rays);
            assert_eq!(
                fingerprint(&serial),
                fingerprint(&parallel),
                "report diverged at --jobs {jobs}"
            );
        }
    }

    #[test]
    fn replay_is_byte_identical_to_live() {
        let bvh = occluder_bvh();
        let rays = ao_rays(1024, 29);
        let batch = RayBatch::from_rays(&rays);
        let trace = Arc::new(RayTraceSet::capture(&bvh, &batch, TraversalKind::AnyHit));
        for config in [GpuConfig::baseline(), GpuConfig::with_predictor()] {
            let live = Simulator::new(config.clone()).run_batch(&bvh, &batch);
            let replayed = Simulator::new(config.clone())
                .with_trace(Arc::clone(&trace))
                .run_batch(&bvh, &batch);
            assert_eq!(
                fingerprint(&live),
                fingerprint(&replayed),
                "replay diverged from live (predictor: {})",
                config.predictor.is_some()
            );
        }
    }

    #[test]
    fn mismatched_trace_is_rejected_and_run_falls_back_live() {
        let bvh = occluder_bvh();
        let rays = ao_rays(256, 31);
        let batch = RayBatch::from_rays(&rays);
        let other = RayBatch::from_rays(&ao_rays(256, 32));
        let trace = Arc::new(RayTraceSet::capture(&bvh, &other, TraversalKind::AnyHit));
        let obs = std::sync::Arc::new(rip_obs::Obs::new(rip_obs::ClockMode::Logical));
        let live = Simulator::new(GpuConfig::baseline()).run_batch(&bvh, &batch);
        let fallback = Simulator::new(GpuConfig::baseline())
            .with_obs(std::sync::Arc::clone(&obs))
            .with_trace(trace)
            .run_batch(&bvh, &batch);
        assert_eq!(fingerprint(&live), fingerprint(&fallback));
        assert_eq!(obs.get("gpusim.trace.rejected"), 1);
    }
}
