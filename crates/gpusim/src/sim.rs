//! The discrete-event timing engine.
//!
//! Warps execute in SIMT lockstep through the RT unit: each iteration the
//! memory scheduler issues the next node request of every still-active ray
//! in the selected warp "in thread order" (§5.1.2), identical in-flight
//! lines are merged MSHR-style (sharing one fill without a second DRAM
//! trip), and the warp advances once the slowest request returns and the
//! pipelined intersection units finish. A warp therefore takes as long as
//! its slowest thread (§4.4) — the divergence that warp repacking removes.

use crate::rt_unit::{RayPhase, RayWork, SmState, WarpState};
use crate::{GpuConfig, MemoryHierarchy, PartialWarpCollector, SimReport};
use rip_bvh::{Bvh, RayBatch, StepEvent, Traversal, TraversalKind};
use rip_core::Predictor;
use rip_math::Ray;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Event kinds, ordered inside the heap tuple after time.
const EV_WARP_ITER: u8 = 0;
const EV_WARP_LOOKUP: u8 = 1;
const EV_COLLECTOR: u8 = 2;

/// The cycle-level simulator (§5.1, Figure 10).
///
/// One [`Simulator::run`] call traces a full occlusion workload through the
/// configured GPU and returns cycle counts, memory statistics, prediction
/// outcomes and energy activity counts. Speedups are computed by running a
/// baseline configuration and a predictor configuration over the same rays
/// and dividing cycles.
///
/// # Examples
///
/// ```
/// use rip_bvh::Bvh;
/// use rip_gpusim::{GpuConfig, Simulator};
/// use rip_math::{Ray, Triangle, Vec3};
///
/// let bvh = Bvh::build(&[Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y)]);
/// let rays: Vec<Ray> = (0..96).map(|i| {
///     Ray::new(Vec3::new(0.2 + (i % 3) as f32 * 0.1, 0.2, -1.0), Vec3::Z)
/// }).collect();
/// let baseline = Simulator::new(GpuConfig::baseline()).run(&bvh, &rays);
/// let predicted = Simulator::new(GpuConfig::with_predictor()).run(&bvh, &rays);
/// assert_eq!(baseline.completed_rays, predicted.completed_rays);
/// ```
#[derive(Clone, Debug)]
pub struct Simulator {
    config: GpuConfig,
    obs: std::sync::Arc<rip_obs::Obs>,
}

impl Simulator {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid.
    pub fn new(config: GpuConfig) -> Self {
        config.validate().expect("invalid GPU configuration");
        Simulator {
            config,
            obs: std::sync::Arc::clone(rip_obs::Obs::global()),
        }
    }

    /// Routes this simulator's `gpusim.*` counters and run spans to
    /// `obs` instead of the process-wide default instance.
    pub fn with_obs(mut self, obs: std::sync::Arc<rip_obs::Obs>) -> Self {
        self.obs = obs;
        self
    }

    /// The configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Simulates an occlusion (any-hit) workload to completion.
    ///
    /// Every [`SimReport`] field is mirrored into the attached
    /// [`Obs`](rip_obs::Obs) registry under `gpusim.*`
    /// ([`SimReport::mirror_into`]); the run is wrapped in a
    /// `gpusim`/`run` span when tracing is enabled.
    pub fn run(&self, bvh: &Bvh, rays: &[Ray]) -> SimReport {
        self.observe(rays.len() as u64, || {
            Engine::new(&self.config, bvh, rays.iter().copied()).run()
        })
    }

    /// Simulates an occlusion workload supplied as an SoA ray batch — the
    /// RT unit consumes the stream in batch order, so `run_batch(bvh,
    /// &RayBatch::from_rays(rays))` is identical to `run(bvh, rays)`.
    pub fn run_batch(&self, bvh: &Bvh, batch: &RayBatch) -> SimReport {
        self.observe(batch.len() as u64, || {
            Engine::new(&self.config, bvh, batch.iter()).run()
        })
    }

    fn observe(&self, rays: u64, run: impl FnOnce() -> SimReport) -> SimReport {
        let mut span = self.obs.span("gpusim", "run").arg_u64("rays", rays);
        let report = run();
        span.push_arg(
            "predictor",
            if self.config.predictor.is_some() {
                "on"
            } else {
                "off"
            },
        );
        drop(span);
        report.mirror_into(&self.obs);
        report
    }
}

struct Engine<'a> {
    config: &'a GpuConfig,
    bvh: &'a Bvh,
    rays: Vec<RayWork>,
    sms: Vec<SmState>,
    /// Repacked warps awaiting a free slot, per SM.
    repacked_queue: Vec<VecDeque<Vec<u32>>>,
    /// Pending collector-timeout event per SM (time it was scheduled for).
    collector_event: Vec<Option<u64>>,
    /// Per-SM MSHR: line address → in-flight fill completion time.
    mshr: Vec<HashMap<u64, u64>>,
    memory: MemoryHierarchy,
    /// (time, sm, kind, payload): payload = ray id or slot index.
    events: BinaryHeap<Reverse<(u64, usize, u8, u32)>>,
    report: SimReport,
}

impl<'a> Engine<'a> {
    fn new(config: &'a GpuConfig, bvh: &'a Bvh, rays: impl Iterator<Item = Ray>) -> Self {
        let needs_lookup = config.predictor.is_some();
        let ray_works: Vec<RayWork> = rays.map(|r| RayWork::new(r, needs_lookup)).collect();
        let memory = MemoryHierarchy::new(
            config.num_sms,
            config.rt_cache,
            config.l1,
            config.l2,
            config.dram,
            config.latency,
        );
        let total_slots = config.max_warps_per_rt + config.repack.extra_warps() as usize;
        let sms = (0..config.num_sms)
            .map(|_| SmState {
                slots: (0..total_slots).map(|_| None).collect(),
                pending: VecDeque::new(),
                predictor: config.predictor.map(|pc| Predictor::new(pc, bvh.bounds())),
                collector: config.repack.repacks().then(|| {
                    PartialWarpCollector::new(
                        config.collector_capacity,
                        config.warp_size,
                        config.collector_timeout,
                    )
                }),
                issue_free_at: 0,
                base_warp_limit: config.max_warps_per_rt,
            })
            .collect();
        Engine {
            config,
            bvh,
            rays: ray_works,
            sms,
            repacked_queue: vec![VecDeque::new(); config.num_sms],
            collector_event: vec![None; config.num_sms],
            mshr: vec![HashMap::new(); config.num_sms],
            memory,
            events: BinaryHeap::new(),
            report: SimReport::default(),
        }
    }

    fn run(mut self) -> SimReport {
        // Chunk rays into warps, distribute round-robin over SMs.
        let warp_size = self.config.warp_size;
        let mut warp_lists: Vec<VecDeque<Vec<u32>>> = vec![VecDeque::new(); self.config.num_sms];
        for (w, chunk) in (0..self.rays.len() as u32)
            .collect::<Vec<_>>()
            .chunks(warp_size)
            .enumerate()
        {
            warp_lists[w % self.config.num_sms].push_back(chunk.to_vec());
        }
        for (sm_id, mut list) in warp_lists.into_iter().enumerate() {
            while self.sms[sm_id].free_slot(false).is_some() {
                match list.pop_front() {
                    Some(ids) => self.dispatch(sm_id, ids, false, 0),
                    None => break,
                }
            }
            self.sms[sm_id].pending = list;
        }

        while let Some(Reverse((now, sm_id, kind, payload))) = self.events.pop() {
            match kind {
                EV_WARP_ITER => self.warp_iteration(sm_id, payload as usize, now),
                EV_WARP_LOOKUP => self.lookup_phase(sm_id, payload as usize, now),
                EV_COLLECTOR => self.collector_tick(sm_id, now),
                _ => unreachable!("unknown event kind"),
            }
        }

        debug_assert_eq!(self.report.completed_rays as usize, self.rays.len());
        self.report.memory = self.memory.stats();
        self.report.activity.l2_accesses = self.report.memory.l2.accesses;
        self.report.activity.dram_accesses = self.report.memory.dram.accesses;
        self.report
    }

    /// Places a warp into a slot (or queues it) and schedules its first
    /// event.
    fn dispatch(&mut self, sm_id: usize, ray_ids: Vec<u32>, repacked: bool, now: u64) {
        let Some(slot) = self.sms[sm_id].free_slot(repacked) else {
            if repacked {
                self.repacked_queue[sm_id].push_back(ray_ids);
            } else {
                self.sms[sm_id].pending.push_back(ray_ids);
            }
            return;
        };
        let start = now + self.config.latency.queue;
        for &rid in &ray_ids {
            let rw = &mut self.rays[rid as usize];
            rw.sm = sm_id as u32;
            rw.slot = slot as u32;
        }
        let needs_lookup = self.config.predictor.is_some() && !repacked;
        self.sms[sm_id].slots[slot] = Some(WarpState {
            active: ray_ids.len() as u32,
            rays: ray_ids.clone(),
            repacked,
        });
        let kind = if needs_lookup {
            EV_WARP_LOOKUP
        } else {
            EV_WARP_ITER
        };
        self.events.push(Reverse((start, sm_id, kind, slot as u32)));
    }

    /// Handles a collector-timeout event.
    fn collector_tick(&mut self, sm_id: usize, now: u64) {
        if self.collector_event[sm_id] != Some(now) {
            return; // stale event
        }
        self.collector_event[sm_id] = None;
        let Some(collector) = self.sms[sm_id].collector.as_mut() else {
            return;
        };
        if let Some(warp) = collector.take_ready(now) {
            self.report.activity.collector_ops += warp.len() as u64;
            self.dispatch(sm_id, warp, true, now);
        }
        self.ensure_collector_event(sm_id, now);
    }

    /// Guarantees a timeout event is pending whenever the collector holds
    /// rays.
    fn ensure_collector_event(&mut self, sm_id: usize, now: u64) {
        if self.collector_event[sm_id].is_some() {
            return;
        }
        if let Some(deadline) = self.sms[sm_id]
            .collector
            .as_ref()
            .and_then(|c| c.deadline())
        {
            let at = deadline.max(now + 1);
            self.collector_event[sm_id] = Some(at);
            self.events.push(Reverse((at, sm_id, EV_COLLECTOR, 0)));
        }
    }

    /// All rays of a freshly dispatched warp perform their predictor table
    /// lookup through the ported lookup queue (§4.1), then repack (§4.4).
    fn lookup_phase(&mut self, sm_id: usize, slot: usize, now: u64) {
        let warp_rays = self.sms[sm_id].slots[slot]
            .as_ref()
            .expect("warp present")
            .rays
            .clone();
        let ports = self.config.predictor_unit.ports;
        let ready = now
            + (warp_rays.len() as u64).div_ceil(ports)
            + self.config.predictor_unit.access_latency;

        let mut remaining = Vec::with_capacity(warp_rays.len());
        let mut predicted = Vec::new();
        {
            let predictor = self.sms[sm_id]
                .predictor
                .as_mut()
                .expect("lookup phase requires predictor");
            for &rid in &warp_rays {
                let rw = &mut self.rays[rid as usize];
                predictor.begin_ray();
                let hash = predictor.hash_ray(&rw.ray);
                let pred = predictor.lookup(&rw.ray);
                self.report.activity.predictor_lookups += 1;
                rw.apply_lookup(hash, pred);
                if rw.was_predicted {
                    predicted.push(rid);
                } else {
                    remaining.push(rid);
                }
            }
        }

        if self.config.repack.repacks() && !predicted.is_empty() {
            // Predicted rays leave for the collector; drain full warps as
            // they form (§4.4.1 overflow handling).
            let removed = predicted.len() as u32;
            let mut formed: Vec<Vec<u32>> = Vec::new();
            {
                let collector = self.sms[sm_id]
                    .collector
                    .as_mut()
                    .expect("repack has collector");
                for rid in predicted {
                    if collector.free_slots() == 0 {
                        if let Some(w) = collector.take_ready(ready) {
                            formed.push(w);
                        }
                    }
                    collector.push(rid, ready);
                    self.report.activity.collector_ops += 1;
                }
                while collector.len() >= self.config.warp_size {
                    match collector.take_ready(ready) {
                        Some(w) => formed.push(w),
                        None => break,
                    }
                }
            }
            for w in formed {
                self.report.activity.collector_ops += w.len() as u64;
                self.dispatch(sm_id, w, true, ready);
            }
            self.ensure_collector_event(sm_id, ready);

            let warp = self.sms[sm_id].slots[slot].as_mut().expect("warp present");
            warp.active -= removed;
            warp.rays = remaining.clone();
            if remaining.is_empty() {
                self.retire_warp(sm_id, slot, ready);
                return;
            }
        }
        // Without repacking, predicted and not-predicted rays stay together
        // (the "Default" configuration of Figure 15).
        self.events
            .push(Reverse((ready, sm_id, EV_WARP_ITER, slot as u32)));
    }

    /// Issues one line request at `now`, merging with any in-flight fill
    /// to the same line (MSHR, §5.1.2): the merged request shares the
    /// outstanding fill instead of re-accessing DRAM, but still occupies
    /// one memory-scheduler slot ("requested from the L1 cache in thread
    /// order"). Returns the data-ready time.
    fn request_line(&mut self, sm_id: usize, addr: u64, now: u64) -> u64 {
        let t_issue = now.max(self.sms[sm_id].issue_free_at);
        self.sms[sm_id].issue_free_at = t_issue + 1;
        self.report.activity.l1_accesses += 1;
        let line = addr / 128;
        if let Some(&fill) = self.mshr[sm_id].get(&line) {
            if fill > t_issue {
                // Merged into the outstanding fill: no second DRAM trip.
                self.report.activity.mshr_merges += 1;
                return fill;
            }
        }
        let done = self.memory.access(sm_id, addr, t_issue);
        self.mshr[sm_id].insert(line, done);
        done
    }

    /// One SIMT warp iteration: issue every active ray's next node
    /// request in thread order, step each ray once the data returns, fetch
    /// leaf triangles, run the pipelined intersection tests, and advance
    /// the warp at the pace of its slowest thread.
    fn warp_iteration(&mut self, sm_id: usize, slot: usize, now: u64) {
        let warp_rays = self.sms[sm_id].slots[slot]
            .as_ref()
            .expect("warp present")
            .rays
            .clone();
        let layout = *self.bvh.layout();

        // Node request round (thread order, one issue slot each; identical
        // in-flight lines share their fill via the MSHR).
        let mut node_ready: Vec<(u32, u64)> = Vec::with_capacity(warp_rays.len());
        for &rid in &warp_rays {
            let rw = &self.rays[rid as usize];
            if !rw.is_active() {
                continue;
            }
            let node = rw
                .traversal
                .current_request()
                .expect("active ray must want a node");
            let done = self.request_line(sm_id, layout.node_address(node), now);
            self.report.activity.ray_buffer_accesses += 1;
            node_ready.push((rid, done));
        }
        if node_ready.is_empty() {
            self.retire_warp(sm_id, slot, now);
            return;
        }

        // Functional step per ray, collecting leaf triangle fetches.
        let mut data_ready = now;
        let mut retirements: Vec<u32> = Vec::new();
        for (rid, ready) in node_ready {
            data_ready = data_ready.max(ready);
            let mut tri_addrs: Vec<u64> = Vec::new();
            {
                let rw = &mut self.rays[rid as usize];
                let event = rw.traversal.step(self.bvh, &rw.ray);
                self.report.activity.stack_ops += 2;
                if rw.phase == RayPhase::Predicted {
                    rw.prediction_fetches += 1;
                }
                match &event {
                    StepEvent::Interior { .. } => self.report.activity.box_tests += 2,
                    StepEvent::Leaf { tris_tested, .. } => {
                        self.report.activity.tri_tests += tris_tested.len() as u64;
                        for &t in tris_tested {
                            tri_addrs.push(layout.tri_address(t));
                        }
                    }
                    StepEvent::Finished => {}
                }
                if rw.traversal.is_done() {
                    rw.finished_stats += rw.traversal.stats();
                    match rw.phase {
                        RayPhase::Predicted => {
                            if let Some(hit) = rw.traversal.best_hit() {
                                rw.was_verified = true;
                                rw.hit = Some(hit);
                                rw.phase = RayPhase::Done;
                                retirements.push(rid);
                            } else {
                                // Misprediction: restart from the root (§3).
                                rw.phase = RayPhase::Full;
                                rw.traversal = Traversal::new(TraversalKind::AnyHit);
                            }
                        }
                        RayPhase::Full => {
                            rw.hit = rw.traversal.best_hit();
                            rw.phase = RayPhase::Done;
                            retirements.push(rid);
                        }
                        RayPhase::AwaitingLookup | RayPhase::Done => unreachable!(),
                    }
                }
            }
            // Leaf triangle records are fetched once the node data arrives.
            tri_addrs.sort_unstable();
            tri_addrs.dedup();
            for addr in tri_addrs {
                data_ready = data_ready.max(self.request_line(sm_id, addr, ready));
            }
        }

        let next = data_ready + self.config.latency.intersection;
        let mut warp_done = false;
        for rid in retirements {
            if self.retire_ray(rid, sm_id, next) {
                warp_done = true;
            }
        }
        if !warp_done {
            self.events
                .push(Reverse((next, sm_id, EV_WARP_ITER, slot as u32)));
        }
    }

    /// Records a ray's final outcome, trains the predictor and updates the
    /// report; retires the warp (returning `true`) when this was its last
    /// active ray.
    fn retire_ray(&mut self, rid: u32, sm_id: usize, now: u64) -> bool {
        let rw = &mut self.rays[rid as usize];
        self.report.completed_rays += 1;
        self.report.cycles = self.report.cycles.max(now);
        self.report.traversal += rw.finished_stats;
        let hit = rw.hit;
        if hit.is_some() {
            self.report.hits += 1;
        }
        let stats = &mut self.report.prediction;
        stats.rays += 1;
        if hit.is_some() {
            stats.hits += 1;
        }
        if rw.was_predicted {
            stats.predicted += 1;
            stats.predicted_nodes_evaluated += rw.prediction_k as u64;
            stats.prediction_eval_fetches += rw.prediction_fetches;
            if rw.was_verified {
                stats.verified += 1;
            }
        }
        let (hash, verified, slot) = (rw.hash, rw.was_verified, rw.slot as usize);
        if let (Some(predictor), Some(hit)) = (self.sms[sm_id].predictor.as_mut(), hit) {
            if verified {
                predictor.reward(hash, hit.leaf);
            }
            predictor.train(self.bvh, hash, hit.leaf);
            self.report.activity.predictor_updates += 1;
        }
        // Warp completion bookkeeping.
        let warp = self.sms[sm_id].slots[slot]
            .as_mut()
            .expect("retiring ray's warp must be resident");
        warp.active -= 1;
        if warp.active == 0 {
            self.retire_warp(sm_id, slot, now);
            return true;
        }
        false
    }

    /// Frees a warp slot and dispatches queued work.
    fn retire_warp(&mut self, sm_id: usize, slot: usize, now: u64) {
        let warp = self.sms[sm_id].slots[slot].take().expect("warp present");
        self.report.warps_executed += 1;
        if warp.repacked {
            self.report.repacked_warps += 1;
        }
        self.report.cycles = self.report.cycles.max(now);
        // Repacked warps may use any slot; normal warps only base slots.
        loop {
            if !self.repacked_queue[sm_id].is_empty() && self.sms[sm_id].free_slot(true).is_some() {
                let ids = self.repacked_queue[sm_id].pop_front().expect("nonempty");
                self.dispatch(sm_id, ids, true, now);
                continue;
            }
            if !self.sms[sm_id].pending.is_empty() && self.sms[sm_id].free_slot(false).is_some() {
                let ids = self.sms[sm_id].pending.pop_front().expect("nonempty");
                self.dispatch(sm_id, ids, false, now);
                continue;
            }
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RepackMode;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use rip_math::{Triangle, Vec3};

    /// An open scene: floor tiles plus scattered occluder boxes, so a
    /// realistic fraction of AO rays miss (as in the paper's workloads).
    fn occluder_bvh() -> Bvh {
        let mut tris = Vec::new();
        for i in 0..16 {
            for j in 0..16 {
                let o = Vec3::new(i as f32, 0.0, j as f32);
                tris.push(Triangle::new(o, o + Vec3::X, o + Vec3::Z));
                tris.push(Triangle::new(
                    o + Vec3::X,
                    o + Vec3::X + Vec3::Z,
                    o + Vec3::Z,
                ));
            }
        }
        // A porous "ceiling" at y = 2: ~3/4 of cells carry a tile, the rest
        // are sky holes, so upward AO rays mostly hit but some escape.
        for i in 0..16 {
            for j in 0..16 {
                if (i * 7 + j * 5) % 4 == 0 {
                    continue; // hole
                }
                let o = Vec3::new(i as f32, 2.0, j as f32);
                tris.push(Triangle::new(o, o + Vec3::X, o + Vec3::Z));
                tris.push(Triangle::new(
                    o + Vec3::X,
                    o + Vec3::X + Vec3::Z,
                    o + Vec3::Z,
                ));
            }
        }
        Bvh::build(&tris)
    }

    /// Dense AO-like rays over a small patch so the predictor trains (the
    /// paper reaches hash-space density with 4.2M rays; tests shrink the
    /// sampled region instead).
    fn ao_rays(n: usize, seed: u64) -> Vec<Ray> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut rays = Vec::with_capacity(n);
        while rays.len() < n {
            let o = Vec3::new(
                rng.gen_range(4.0..6.0),
                rng.gen_range(0.1..0.3),
                rng.gen_range(4.0..6.0),
            );
            for _ in 0..4 {
                // Upward hemisphere: some rays hit occluders, some escape.
                let d = rip_math::sampling::cosine_hemisphere_around(Vec3::Y, rng.gen(), rng.gen());
                rays.push(Ray::segment(o, d, 8.0));
                if rays.len() == n {
                    break;
                }
            }
        }
        rays
    }

    #[test]
    fn all_rays_complete_and_hits_match_functional() {
        let bvh = occluder_bvh();
        let rays = ao_rays(512, 3);
        let report = Simulator::new(GpuConfig::baseline()).run(&bvh, &rays);
        assert_eq!(report.completed_rays, 512);
        let functional_hits = rays
            .iter()
            .filter(|r| bvh.intersect(r, TraversalKind::AnyHit).hit.is_some())
            .count() as u64;
        assert_eq!(
            report.hits, functional_hits,
            "timing sim must be functionally exact"
        );
        assert!(report.cycles > 0);
    }

    #[test]
    fn predictor_reduces_node_fetches_on_dense_ao() {
        let bvh = occluder_bvh();
        let rays = ao_rays(4096, 5);
        let base = Simulator::new(GpuConfig::baseline()).run(&bvh, &rays);
        let pred = Simulator::new(GpuConfig::with_predictor()).run(&bvh, &rays);
        assert_eq!(pred.completed_rays, base.completed_rays);
        assert_eq!(
            pred.hits, base.hits,
            "prediction must not change visibility results"
        );
        assert!(
            pred.prediction.verified_rate() > 0.1,
            "v = {}",
            pred.prediction.verified_rate()
        );
        assert!(
            pred.traversal.node_fetches() < base.traversal.node_fetches(),
            "predictor should skip node fetches: {} vs {}",
            pred.traversal.node_fetches(),
            base.traversal.node_fetches()
        );
        assert!(pred.repacked_warps > 0, "repacking should form warps");
    }

    #[test]
    fn repacking_does_not_regress_cycles() {
        let bvh = occluder_bvh();
        let rays = ao_rays(4096, 7);
        let mut no_repack_cfg = GpuConfig::with_predictor();
        no_repack_cfg.repack = RepackMode::Off;
        let no_repack = Simulator::new(no_repack_cfg).run(&bvh, &rays);
        let repack = Simulator::new(GpuConfig::with_predictor()).run(&bvh, &rays);
        assert_eq!(no_repack.repacked_warps, 0);
        assert!(
            repack.cycles <= no_repack.cycles * 11 / 10,
            "repacking should not lose badly: {} vs {}",
            repack.cycles,
            no_repack.cycles
        );
    }

    #[test]
    fn bigger_l1_is_not_slower() {
        let bvh = occluder_bvh();
        let rays = ao_rays(2048, 9);
        let small = {
            let mut c = GpuConfig::baseline();
            c.l1 = c.l1.with_size(2 * 1024);
            Simulator::new(c).run(&bvh, &rays)
        };
        let big = Simulator::new(GpuConfig::baseline()).run(&bvh, &rays);
        assert!(
            big.cycles <= small.cycles,
            "64KB L1 ({}) vs 2KB L1 ({})",
            big.cycles,
            small.cycles
        );
        assert!(big.memory.l1_combined().hit_rate() >= small.memory.l1_combined().hit_rate());
    }

    #[test]
    fn higher_intersection_latency_slows_execution() {
        let bvh = occluder_bvh();
        let rays = ao_rays(1024, 11);
        let fast = Simulator::new(GpuConfig::baseline()).run(&bvh, &rays);
        let slow = {
            let mut c = GpuConfig::baseline();
            c.latency.intersection = 20;
            Simulator::new(c).run(&bvh, &rays)
        };
        assert!(slow.cycles > fast.cycles);
    }

    #[test]
    fn single_sm_handles_everything() {
        let bvh = occluder_bvh();
        let rays = ao_rays(300, 13);
        let mut c = GpuConfig::baseline();
        c.num_sms = 1;
        let report = Simulator::new(c).run(&bvh, &rays);
        assert_eq!(report.completed_rays, 300);
    }

    #[test]
    fn extra_warps_mode_completes_and_tracks_warps() {
        let bvh = occluder_bvh();
        let rays = ao_rays(2048, 17);
        let mut c = GpuConfig::with_predictor();
        c.repack = RepackMode::WithExtraWarps(4);
        let report = Simulator::new(c).run(&bvh, &rays);
        assert_eq!(report.completed_rays, 2048);
        assert!(report.warps_executed >= (2048 / 32) as u64);
    }

    #[test]
    fn activity_counts_are_consistent() {
        let bvh = occluder_bvh();
        let rays = ao_rays(512, 19);
        let report = Simulator::new(GpuConfig::with_predictor()).run(&bvh, &rays);
        assert_eq!(report.activity.predictor_lookups, 512);
        assert!(report.activity.l1_accesses > 0);
        assert!(report.activity.box_tests > 0);
        assert!(report.activity.tri_tests > 0);
        assert_eq!(report.activity.l2_accesses, report.memory.l2.accesses);
        // MSHR merging means issued L1 requests never exceed total node+tri
        // fetches.
        assert!(
            report.activity.l1_accesses
                <= report.traversal.node_fetches() + report.traversal.tri_fetches
        );
    }

    #[test]
    fn mshr_merges_in_flight_duplicate_lines() {
        // 64 identical rays dispatched together: the root-node requests
        // must largely merge while the first fill is in flight.
        let bvh = occluder_bvh();
        let rays = vec![Ray::new(Vec3::new(5.0, 0.2, 5.0), Vec3::Y); 64];
        let report = Simulator::new(GpuConfig::baseline()).run(&bvh, &rays);
        assert!(
            report.activity.mshr_merges > 0,
            "identical in-flight lines must merge: {:?}",
            report.activity
        );
        // Merged fills never re-access DRAM: far fewer memory-side
        // transactions than issued requests.
        assert!(report.memory.l2.accesses < report.activity.l1_accesses);
    }
}
