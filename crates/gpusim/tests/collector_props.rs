//! Property-based tests for the §4.4.1 partial warp collector: a
//! driver feeds it randomized push/advance schedules and checks the
//! structural invariants the repacking pipeline relies on.

use proptest::prelude::*;
use rip_gpusim::PartialWarpCollector;

/// One step of a randomized schedule.
#[derive(Clone, Debug)]
enum Step {
    /// Push the next sequential ray ID (skipped when full).
    Push,
    /// Advance time by this many cycles and drain ready warps.
    Advance(u64),
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    // 3:1 push/advance mix, encoded as a tagged tuple (the vendored
    // proptest stand-in has no prop_oneof!).
    prop::collection::vec(
        (0u8..4, 0u64..40).prop_map(|(tag, dt)| {
            if tag < 3 {
                Step::Push
            } else {
                Step::Advance(dt)
            }
        }),
        1..200,
    )
}

proptest! {
    #[test]
    fn collector_invariants_hold_under_any_schedule(
        schedule in steps(),
        capacity_warps in 1usize..4,
        warp_size in 1usize..33,
        timeout in 1u64..32,
    ) {
        let capacity = capacity_warps * warp_size;
        let mut c = PartialWarpCollector::new(capacity, warp_size, timeout);
        let mut now = 0u64;
        let mut next_id = 0u32;
        let mut pushed: Vec<u32> = Vec::new();
        let mut released: Vec<u32> = Vec::new();

        for step in &schedule {
            match step {
                Step::Push => {
                    if c.free_slots() > 0 {
                        c.push(next_id, now);
                        pushed.push(next_id);
                        next_id += 1;
                    }
                }
                Step::Advance(dt) => now += dt,
            }
            // Drain everything ready at the current cycle, the way the
            // RT unit polls the collector every cycle.
            loop {
                let deadline = c.deadline();
                let Some(warp) = c.take_ready(now) else { break };
                prop_assert!(!warp.is_empty());
                prop_assert!(warp.len() <= warp_size);
                if warp.len() < warp_size {
                    // Partial warps only ever flush via an expired
                    // timeout, never eagerly.
                    prop_assert!(deadline.is_some_and(|d| now >= d),
                        "partial warp of {} released before its deadline", warp.len());
                }
                released.extend(warp);
            }
            // Occupancy never exceeds capacity, and a full warp never
            // survives a same-cycle poll.
            prop_assert!(c.len() <= capacity);
            prop_assert!(c.len() < warp_size,
                "full warp not released eagerly: {} waiting >= warp {}", c.len(), warp_size);
            prop_assert_eq!(c.free_slots(), capacity - c.len());
            prop_assert_eq!(c.is_empty(), c.free_slots() == capacity);
            // Conservation: every pushed ID is either released or waiting.
            prop_assert_eq!(released.len() + c.len(), pushed.len());
        }

        // Timeout always flushes stragglers: once the deadline passes,
        // nothing may remain.
        if let Some(deadline) = c.deadline() {
            while let Some(warp) = c.take_ready(deadline) {
                released.extend(warp);
            }
            prop_assert!(c.is_empty(),
                "stragglers survived an expired timeout: {} waiting", c.len());
        }
        prop_assert!(c.deadline().is_none(), "empty collector kept a deadline");

        // Released IDs are exactly the pushed IDs, in order (the
        // collector is FIFO: warps are carved off the front).
        prop_assert_eq!(&released, &pushed);
    }

    #[test]
    fn drained_ids_are_a_permutation_of_pushed_ids(
        burst in 1usize..130,
        warp_size in 1usize..33,
        timeout in 1u64..16,
    ) {
        // Feed one saturating burst, draining as needed, then advance
        // past the timeout: everything pushed must come back once.
        let capacity = warp_size.max(64);
        let mut c = PartialWarpCollector::new(capacity, warp_size, timeout);
        let mut released = Vec::new();
        for id in 0..burst as u32 {
            while c.free_slots() == 0 {
                let warp = c.take_ready(0).expect("full collector must have a ready warp");
                released.extend(warp);
            }
            c.push(id, 0);
        }
        // Carving a full warp off restarts the residual's wait clock, so
        // chase the deadline until the timeout has flushed everything.
        let mut now = 0u64;
        loop {
            if let Some(warp) = c.take_ready(now) {
                released.extend(warp);
                continue;
            }
            match c.deadline() {
                Some(deadline) => now = deadline,
                None => break,
            }
        }
        prop_assert!(c.is_empty());
        let mut sorted = released.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), burst, "duplicate or lost ray IDs");
        prop_assert_eq!(released, (0..burst as u32).collect::<Vec<_>>());
    }
}
