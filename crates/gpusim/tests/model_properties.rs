//! Property-based tests for the timing-simulator building blocks and
//! whole-simulation invariants.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rip_bvh::{Bvh, TraversalKind};
use rip_gpusim::{Cache, CacheConfig, Dram, DramConfig, GpuConfig, RepackMode, Simulator};
use rip_math::{Ray, Triangle, Vec3};
use std::collections::HashMap;

/// Reference LRU cache: naive but obviously correct.
struct ReferenceLru {
    lines: usize,
    map: HashMap<u64, u64>,
    clock: u64,
}

impl ReferenceLru {
    fn access(&mut self, line: u64) -> bool {
        self.clock += 1;
        if self.map.contains_key(&line) {
            self.map.insert(line, self.clock);
            return true;
        }
        if self.map.len() >= self.lines {
            let victim = *self.map.iter().min_by_key(|(_, &t)| t).expect("nonempty").0;
            self.map.remove(&victim);
        }
        self.map.insert(line, self.clock);
        false
    }
}

proptest! {
    #[test]
    fn fully_associative_cache_matches_reference_lru(
        trace in prop::collection::vec(0u64..256, 1..600),
        lines in 1usize..32,
    ) {
        let mut cache = Cache::new(CacheConfig {
            size_bytes: lines * 128,
            line_bytes: 128,
            ways: usize::MAX,
        });
        let mut reference = ReferenceLru { lines, map: HashMap::new(), clock: 0 };
        for &line in &trace {
            let model = cache.access(line * 128);
            let expect = reference.access(line);
            prop_assert_eq!(model, expect, "divergence on line {}", line);
        }
    }

    #[test]
    fn cache_hit_rate_monotone_in_capacity(
        trace in prop::collection::vec(0u64..512, 50..400),
    ) {
        let run = |lines: usize| {
            let mut cache = Cache::new(CacheConfig {
                size_bytes: lines * 128,
                line_bytes: 128,
                ways: usize::MAX,
            });
            for &line in &trace {
                cache.access(line * 128);
            }
            cache.stats().hits
        };
        // Fully associative LRU has the stack property: a bigger cache
        // never hits less on the same trace.
        prop_assert!(run(64) >= run(16));
        prop_assert!(run(256) >= run(64));
    }

    #[test]
    fn dram_completion_is_monotone_and_causal(
        addrs in prop::collection::vec(0u64..100_000, 1..200),
    ) {
        let mut dram = Dram::new(DramConfig::baseline());
        let mut now = 0u64;
        for &addr in &addrs {
            let done = dram.access(addr * 64, now);
            prop_assert!(done >= now + dram.config().access_latency,
                "completion before minimum latency");
            now += 3; // requests arrive over time
        }
        let stats = dram.stats();
        prop_assert_eq!(stats.accesses, addrs.len() as u64);
        prop_assert_eq!(stats.per_bank.iter().sum::<u64>(), addrs.len() as u64);
    }

    #[test]
    fn dram_bank_balance_bounded(
        addrs in prop::collection::vec(0u64..4096, 2..300),
    ) {
        let mut dram = Dram::new(DramConfig::baseline());
        for (i, &addr) in addrs.iter().enumerate() {
            dram.access(addr * 128, i as u64);
        }
        let balance = dram.stats().bank_balance();
        prop_assert!(balance > 0.0 && balance <= 1.0 + 1e-9, "balance {balance}");
    }
}

/// A small porous scene for whole-simulation properties.
fn scene() -> Bvh {
    let mut tris = Vec::new();
    for i in 0..10 {
        for j in 0..10 {
            if (i * 3 + j) % 4 == 0 {
                continue;
            }
            let o = Vec3::new(i as f32, 2.0, j as f32);
            tris.push(Triangle::new(o, o + Vec3::X, o + Vec3::Z));
        }
    }
    Bvh::build(&tris)
}

fn rays(n: usize, seed: u64) -> Vec<Ray> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let o = Vec3::new(rng.gen_range(1.0..9.0), 0.2, rng.gen_range(1.0..9.0));
            let d = rip_math::sampling::cosine_hemisphere_around(Vec3::Y, rng.gen(), rng.gen());
            Ray::segment(o, d, 6.0)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn simulation_is_functionally_exact_for_any_config(
        seed in 0u64..200,
        n in 32usize..400,
        repack_idx in 0usize..3,
        l1_kb_idx in 0usize..3,
        predictor_on in any::<bool>(),
    ) {
        let bvh = scene();
        let rays = rays(n, seed);
        let mut config =
            if predictor_on { GpuConfig::with_predictor() } else { GpuConfig::baseline() };
        config.repack = [RepackMode::Off, RepackMode::On, RepackMode::WithExtraWarps(2)]
            [repack_idx];
        config.l1 = config.l1.with_size([4, 16, 64][l1_kb_idx] * 1024);
        let report = Simulator::new(config).run(&bvh, &rays);
        prop_assert_eq!(report.completed_rays, n as u64);
        let functional = rays
            .iter()
            .filter(|r| bvh.intersect(r, TraversalKind::AnyHit).hit.is_some())
            .count() as u64;
        prop_assert_eq!(report.hits, functional);
        prop_assert!(report.cycles > 0);
        // Memory-side transactions never exceed issued requests.
        prop_assert!(report.memory.l2.accesses <= report.activity.l1_accesses);
        prop_assert!(report.memory.dram.accesses <= report.memory.l2.accesses);
    }

    #[test]
    fn simulation_is_deterministic(seed in 0u64..100) {
        let bvh = scene();
        let rays = rays(128, seed);
        let a = Simulator::new(GpuConfig::with_predictor()).run(&bvh, &rays);
        let b = Simulator::new(GpuConfig::with_predictor()).run(&bvh, &rays);
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.activity.l1_accesses, b.activity.l1_accesses);
        prop_assert_eq!(a.prediction.verified, b.prediction.verified);
    }

    #[test]
    fn slower_memory_never_speeds_execution(seed in 0u64..60) {
        let bvh = scene();
        let rays = rays(192, seed);
        let fast = Simulator::new(GpuConfig::baseline()).run(&bvh, &rays);
        let mut slow_cfg = GpuConfig::baseline();
        slow_cfg.dram.access_latency *= 4;
        slow_cfg.latency.l2_hit *= 4;
        let slow = Simulator::new(slow_cfg).run(&bvh, &rays);
        prop_assert!(slow.cycles >= fast.cycles,
            "slower memory produced fewer cycles: {} vs {}", slow.cycles, fast.cycles);
    }
}
